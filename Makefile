GO ?= go

.PHONY: all build test short race vet golden bench clean

all: build vet test

build:
	$(GO) build ./...

# Tier-1 gate: the full suite, including the bench-scale golden-figure
# regression (see TESTING.md).
test:
	$(GO) test ./...

# Quick iteration loop: skips the bench-scale golden run.
short:
	$(GO) test -short ./...

# Race-enabled pass over the simulator internals. The strict invariant tier
# runs inside TestStrictInvariantsCleanAcrossSchemes, so this exercises the
# harness's worker parallelism, the checker, and the data plane together.
race:
	$(GO) test -race ./internal/...

vet:
	$(GO) vet ./...

# Refresh the committed golden figures after an intentional behavior change,
# then review the diff (TESTING.md explains what "intentional" means here).
golden:
	$(GO) test ./internal/harness/ -run TestGoldenFigures -update-golden

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

clean:
	$(GO) clean ./...
