GO ?= go

.PHONY: all build test short race race-short vet lint simlint golden grids-golden spec-verify telemetry-verify telemetry-golden bench bench-smoke bench-json bench-gate fuzz-smoke fuzz cover clean ci

all: build lint test

build:
	$(GO) build ./...

# Tier-1 gate: static analysis, the race-detector smoke pass, the
# allocation-free hot-path smoke check, and the full suite including the
# bench-scale golden-figure regression (see TESTING.md).
test: lint race-short bench-smoke
	$(GO) test ./...

# Perf smoke: the engine-dispatch zero-alloc assertion plus one quick pass
# over the engine and port micro-benchmarks. Fails the build if the hot path
# starts allocating again.
bench-smoke:
	$(GO) test -run 'TestEngineDispatchZeroAlloc' -count=1 ./internal/sim/
	$(GO) test -run '^$$' -bench 'EngineDispatchTyped|PortPingPong' -benchtime 100x -benchmem ./internal/sim/ ./internal/fabric/

# Regenerate the committed perf trajectory: run the tracked benchmarks and
# join them against the PR-9 record (BENCH_PR9.json, the flat-table data
# plane) into BENCH_PR10.json. Figures run at 3 iterations to match how the
# baseline was captured; the telemetry sampler micro-benchmark is new in
# PR 10 and appears without a "before". Telemetry stays disabled in every
# figure benchmark, so the record doubles as the disabled-telemetry parity
# proof against PR 9. See TESTING.md's Performance section.
bench-json:
	{ $(GO) test -run '^$$' -bench 'BenchmarkEngineScheduleRun|BenchmarkEngineDispatchTyped|BenchmarkEngineScheduleCancel|BenchmarkEngineBucketRollover' -benchmem ./internal/sim/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkFlatmapGet|BenchmarkFlatmapPutDelete|BenchmarkFlatmapStamps' -benchmem ./internal/flatmap/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkSamplerTick' -benchmem ./internal/telemetry/ ; \
	  $(GO) test -run '^$$' -bench 'Fig3MotivationPFC|Fig6FCTCDFSymmetric|Fig8aIncastDegree|ScaleFabric' -benchmem -benchtime 3x . ; } \
	| $(GO) run ./cmd/benchjson -baseline BENCH_PR9.json \
		-note "after: receiver dup-accounting fixes + observation-only telemetry layer (disabled in figure benches)" -out BENCH_PR10.json
	@cat BENCH_PR10.json

# Perf regression gate: rerun the figure and scale benchmarks and compare
# events/sec against the committed BENCH_PR10.json with a ±10% tolerance.
# Wall-clock sensitive; scripts/ci.sh runs it by default (RLB_BENCH_GATE=0
# opts out on noisy or mismatched machines).
bench-gate:
	$(GO) test -run '^$$' -bench 'Fig3MotivationPFC|Fig6FCTCDFSymmetric|Fig8aIncastDegree|ScaleFabric' -benchmem -benchtime 3x . \
	| $(GO) run ./cmd/benchjson -gate BENCH_PR10.json -tolerance 10

# Telemetry tier (TESTING.md "Telemetry tier"): the observation-only
# contract in one command — determinism fingerprints bit-identical with
# sampling on and off, the exported JSONL pinned byte-for-byte to its golden,
# and the sampler/registry/exporter unit suite including the steady-state
# zero-allocation assertion.
telemetry-verify:
	$(GO) test -count=1 ./internal/telemetry/
	$(GO) test -count=1 -run 'TestTelemetry' ./internal/harness/

# Refresh the committed telemetry golden after an intentional change to the
# exporter format or the simulation's observable trajectory; review the diff.
telemetry-golden:
	$(GO) test ./internal/harness/ -run TestTelemetryGoldenJSONL -update-telemetry

# Fuzz tier (see TESTING.md "Fuzz tier"): the deterministic metamorphic
# sweep (50 generated scenarios, every property checked, failures shrunk
# into repro files) plus the seeded-breach meta-test proving the pipeline
# catches real bugs, then a time-boxed run of the mutating fuzzer over the
# committed corpus. Scenario failures write repro files replayable with
# `rlbsim -repro <file>` (set RLB_REPRO_DIR to choose where).
fuzz-smoke:
	$(GO) test -run 'TestMetamorphicSweep|TestSeededBreachIsCaughtAndShrunk' -count=1 ./internal/scenario/
	$(GO) test -run '^$$' -fuzz FuzzScenario -fuzztime 20s ./internal/scenario/

# Open-ended fuzzing session: run until interrupted or a failure is found.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzScenario ./internal/scenario/

# Coverage over the simulator internals (the golden-figure runs at the repo
# root dominate runtime and add little line coverage, so internal/... only).
cover:
	$(GO) test -coverprofile=coverage.out ./internal/...
	$(GO) tool cover -func=coverage.out | tail -1

# Quick iteration loop: skips the bench-scale golden run.
short:
	$(GO) test -short ./...

# Race-enabled pass over the simulator internals. The strict invariant tier
# runs inside TestStrictInvariantsCleanAcrossSchemes, so this exercises the
# harness's worker parallelism, the checker, and the data plane together.
race:
	$(GO) test -race ./internal/...

# Race-detector smoke: same packages as `race` but with -short, skipping the
# bench-scale golden runs. Fast enough to sit inside `make test`.
race-short:
	$(GO) test -race -short ./internal/...

vet:
	$(GO) vet ./...

# Static-analysis tier: go vet plus the project-specific simlint suite
# (determinism, poolcheck, timercheck, unitsafe — see TESTING.md).
lint: vet simlint

simlint:
	$(GO) run ./cmd/simlint ./...

# Spec-layer verification tier (TESTING.md "Spec round-trip tier"): the
# canonical-spec contracts in one command — JSON round trips byte-stable with
# unknown fields rejected, the compiler's unit math pinned to harness.Scale,
# the declarative figure grids pinned to their golden, a serialized cell
# replaying bit-identically, and every committed fuzz-corpus entry and repro
# fixture still decoding.
spec-verify:
	$(GO) test -count=1 ./internal/spec/
	$(GO) test -count=1 -run 'TestCompile|TestFigureGrids' ./internal/harness/
	$(GO) test -count=1 -run 'TestCommittedCorpusStillDecodes|TestCommittedReproStillReplays' ./internal/scenario/

# Full CI sequence: build → lint → race smoke → full suite with goldens.
ci:
	./scripts/ci.sh

# Refresh the committed golden figures after an intentional behavior change,
# then review the diff (TESTING.md explains what "intentional" means here).
golden:
	$(GO) test ./internal/harness/ -run TestGoldenFigures -update-golden

# Refresh the committed figure-grid golden after deliberately changing which
# experiments a figure runs, then review the diff.
grids-golden:
	$(GO) test ./internal/harness/ -run TestFigureGridsGolden -update-grids

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

clean:
	$(GO) clean ./...
