// Motivation (Fig. 2 / §2.2): two leaf switches joined by many equal-cost
// paths; background flows share the fabric with line-rate bursts and a long
// congested flow. With PFC enabled the bursts pause the parallel paths, and
// PFC-oblivious load balancers reorder packets badly; the same scenario with
// PFC disabled (lossy) shows how much of the damage PFC itself causes.
//
//	go run ./examples/motivation
package main

import (
	"fmt"

	"github.com/rlb-project/rlb/internal/harness"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/units"
)

func main() {
	scale := harness.Scale{
		Name: "example", LinkRate: 10 * units.Gbps, LinkDelay: 2 * sim.Microsecond,
		Duration: 3 * sim.Millisecond, Drain: 9 * sim.Millisecond,
		MaxFlowBytes: 2_000_000,
		MotivSpines:  8, MotivHosts: 10,
	}
	fmt.Println("Fig. 2 scenario: 8 parallel paths, 10 background pairs, bursts + 1 elephant")
	fmt.Println()
	fmt.Printf("%-8s %-4s %10s %10s %10s %10s\n",
		"scheme", "pfc", "pauses/ms", "p99 OOD", "afct(ms)", "p99(ms)")
	for _, scheme := range []string{"presto", "letflow", "hermes", "drill"} {
		for _, pfc := range []bool{true, false} {
			res := harness.RunMotivation(harness.MotivationSpec{
				Scale:      scale,
				Scheme:     harness.MustScheme(scheme, scale.LinkDelay, nil),
				PFCEnabled: pfc,
				SprayPaths: 5,
				Bursts:     2,
				Seed:       42,
			})
			onOff := "on"
			if !pfc {
				onOff = "off"
			}
			fmt.Printf("%-8s %-4s %10.1f %10.0f %10.3f %10.3f\n",
				scheme, onOff,
				res.PauseRatePerMs(),
				res.Background.OOD.Percentile(99),
				res.Background.AvgFCTms(),
				res.Background.TailFCTms())
		}
	}
	fmt.Println("\nPFC pausing inflates out-of-order degree and tail FCT for every")
	fmt.Println("PFC-oblivious scheme — the problem RLB's prediction removes.")
}
