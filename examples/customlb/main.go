// Custom load balancer: RLB is a *building block* — it wraps any scheme that
// implements lb.Chooser. This example writes a deliberately naive
// "weighted-coin" balancer from scratch, runs it vanilla and with RLB
// layered on top, and shows the integration takes one struct and two
// methods.
//
//	go run ./examples/customlb
package main

import (
	"fmt"

	"github.com/rlb-project/rlb/internal/core"
	"github.com/rlb-project/rlb/internal/fabric"
	"github.com/rlb-project/rlb/internal/lb"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/topo"
	"github.com/rlb-project/rlb/internal/units"
)

// coinFlip sends each packet to a random path, but flips again if the first
// pick's local queue is deeper than the second's — a toy two-choices scheme.
type coinFlip struct{}

// Name implements lb.Chooser.
func (coinFlip) Name() string { return "coinflip" }

// Choose implements lb.Chooser. Honoring the exclude mask is what lets RLB
// ask for "your next-best path" when the favorite carries a PFC warning.
func (coinFlip) Choose(v lb.View, pkt *fabric.Packet, exclude lb.PathSet) int {
	n := v.NumPaths()
	pick := func() int {
		for tries := 0; tries < 8; tries++ {
			if i := v.Rng().Intn(n); !exclude.Has(i) {
				return i
			}
		}
		return v.Rng().Intn(n)
	}
	a, b := pick(), pick()
	if v.QueueBytes(b) < v.QueueBytes(a) {
		return b
	}
	return a
}

func run(withRLB bool) {
	p := topo.Default(3, 4, 4)
	p.LinkRate = 10 * units.Gbps
	p.Switch.PFCThreshold = 32 * 1000
	p.Switch.ECNKmin, p.Switch.ECNKmax = 10*1000, 40*1000
	p.LB = func() lb.Chooser { return coinFlip{} }
	label := "coinflip"
	if withRLB {
		rlb := core.DefaultParams(p.LinkDelay)
		p.RLB = &rlb
		label += "+rlb"
	}
	net := topo.Build(p)

	// Hand-rolled traffic: four hosts gang up on one receiver (PFC fodder)
	// while four victims stream to distinct peers across the same fabric.
	for src := 0; src < 4; src++ {
		net.StartFlow(src, 8, 600_000) // incast into host 8 (leaf 2)
	}
	for src := 4; src < 8; src++ {
		net.StartFlow(src, src+4, 400_000) // victims: leaf 1 -> leaf 2
	}
	net.Run(30 * sim.Millisecond)
	net.StopRLB()

	var ooo, rcvd uint64
	done := 0
	for _, f := range net.Flows {
		ooo += f.OOOPkts
		rcvd += f.PktsRcvd
		if f.Done {
			done++
		}
	}
	fmt.Printf("%-14s done %d/%d  out-of-order %5.2f%%  pauses %d  recirculations %d\n",
		label, done, len(net.Flows), 100*float64(ooo)/float64(rcvd),
		net.PauseFramesSent(), net.Recirculations())
}

func main() {
	fmt.Println("a from-scratch load balancer, with and without the RLB building block:")
	fmt.Println()
	run(false)
	run(true)
}
