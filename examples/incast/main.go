// Incast: many servers answer one client simultaneously (the §4.3 scenario).
// The burst pauses fabric ports via PFC; the example compares how a vanilla
// per-packet load balancer and its RLB-enhanced version ride it out.
//
//	go run ./examples/incast
package main

import (
	"fmt"

	"github.com/rlb-project/rlb/internal/core"
	"github.com/rlb-project/rlb/internal/lb"
	"github.com/rlb-project/rlb/internal/metrics"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/topo"
	"github.com/rlb-project/rlb/internal/units"
	"github.com/rlb-project/rlb/internal/workload"
)

func run(withRLB bool) (*metrics.FlowReport, sim.Time, uint64) {
	p := topo.Default(3, 4, 4) // 12 hosts
	p.LinkRate = 10 * units.Gbps
	p.Switch.PFCThreshold = 32 * 1000 // scaled to the 10 Gb/s links
	p.Switch.ECNKmin = 10 * 1000
	p.Switch.ECNKmax = 40 * 1000
	p.LB = lb.NewDRILL(2, 1)
	if withRLB {
		rlb := core.DefaultParams(p.LinkDelay)
		p.RLB = &rlb
	}
	net := topo.Build(p)

	// Client host 0; 8 servers spread over the other leaves respond with
	// 2 MB total, split evenly — a degree-8 incast.
	servers := []int{4, 5, 6, 7, 8, 9, 10, 11}
	workload.Incast(net.Starter(), 0, servers, 2_000_000)

	net.Run(30 * sim.Millisecond)
	net.StopRLB()

	var last sim.Time
	for _, f := range net.Flows {
		if f.FinishAt > last {
			last = f.FinishAt
		}
	}
	return metrics.BuildFlowReport(net.Flows), last, net.PauseFramesSent()
}

func main() {
	for _, mode := range []struct {
		name    string
		withRLB bool
	}{{"drill", false}, {"drill+rlb", true}} {
		rep, ict, pauses := run(mode.withRLB)
		fmt.Printf("%-10s incast completion %-9v  out-of-order %5.2f%%  retx %5.2f%%  pauses %d\n",
			mode.name, ict, 100*rep.OOORatio(), 100*rep.RetxRatio(), pauses)
	}
	fmt.Println("\nRLB steers responses off the paths PFC is about to pause,")
	fmt.Println("so fewer packets are discarded by go-back-N at the client NIC.")
}
