// Canonical experiment specs: every entry point of this repo — the figure
// builders, cmd/rlbsim, cmd/figures -dump-spec, the scenario fuzzer — speaks
// one serializable spec type (internal/spec), compiled to a runnable config
// by exactly one function (harness.Compile). This example builds a spec in
// code, sweeps it with a declarative grid, round-trips one cell through the
// canonical JSON form, and shows the replay is bit-identical.
//
//	go run ./examples/spec
package main

import (
	"fmt"

	"github.com/rlb-project/rlb/internal/harness"
	"github.com/rlb-project/rlb/internal/spec"
)

func main() {
	// One spec = one experiment. Integral units only (µs, KB, percent):
	// the compiler owns every conversion to simulator types.
	base := spec.Spec{
		SimSeed: 1,
		Leaves:  3, Spines: 4, HostsPerLeaf: 4, LinkGbps: 10,
		AsymPct: 20,
		Scheme:  "drill", Workload: "cachefollower",
		LoadPct: 50, MaxFlowKB: 2000,
		DurationUs: 2000, DrainUs: 8000,
	}

	// A Grid is a declarative sweep: base spec x named axes. The same
	// machinery drives every paper figure (see `figures -dump-spec`).
	grid := spec.Grid{
		Name: "example",
		Base: base,
		Axes: []spec.Axis{{Field: "scheme", Strs: []string{"drill", "drill+rlb"}}},
	}
	specs, metrics := mustRun(grid)

	fmt.Println("asymmetric 3x4 fabric, cache-follower @ 50% load")
	fmt.Println()
	fmt.Printf("%-11s %9s %9s %9s\n", "scheme", "afct(ms)", "p99(ms)", "ooo(%)")
	for i, m := range metrics {
		fmt.Printf("%-11s %9.3f %9.3f %9.2f\n", specs[i].Scheme, m.AFCT, m.P99, m.OOOPct)
	}

	// Any cell round-trips through the canonical JSON form byte-stably and
	// replays bit-identically — this is what `figures -dump-spec` piped into
	// `rlbsim -spec` relies on.
	data, err := spec.Encode(specs[1])
	if err != nil {
		panic(err)
	}
	decoded, err := spec.Decode(data)
	if err != nil {
		panic(err)
	}
	a, b := fingerprint(specs[1]), fingerprint(decoded)
	fmt.Println()
	fmt.Printf("replay of %q from its JSON form: bit-identical=%v\n", specs[1].Scheme, a == b)
}

// mustRun expands and runs the grid through the generic sweep engine.
func mustRun(g spec.Grid) ([]spec.Spec, []harness.Metrics) {
	specs, metrics, err := harness.RunGrid(g)
	if err != nil {
		panic(err)
	}
	return specs, metrics
}

// fingerprint compiles and runs one spec, returning the determinism
// fingerprint of the completed simulation.
func fingerprint(s spec.Spec) string {
	cfg := harness.MustCompile(s)
	cfg.KeepNetwork = true
	res := harness.Run(cfg)
	fp := harness.Fingerprint(res)
	res.Network = nil
	return fp
}
