// Asymmetric fabric (§4.2): 20% of the leaf-spine links run at a quarter of
// the nominal rate (the paper's 40 -> 10 Gb/s degradation). Congestion-
// oblivious spraying keeps hitting the slow links, PFC pauses them, and
// reordering follows; this example measures a realistic workload with and
// without RLB.
//
//	go run ./examples/asymmetric
package main

import (
	"fmt"

	"github.com/rlb-project/rlb/internal/core"
	"github.com/rlb-project/rlb/internal/harness"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/units"
	"github.com/rlb-project/rlb/internal/workload"
)

func main() {
	scale := harness.Scale{
		Name: "example", Leaves: 3, Spines: 4, HostsPerLeaf: 4,
		LinkRate: 10 * units.Gbps, LinkDelay: 2 * sim.Microsecond,
		Duration: 3 * sim.Millisecond, Drain: 12 * sim.Millisecond,
		MaxFlowBytes: 2_000_000,
	}
	fmt.Println("asymmetric 3x4 fabric, cache-follower workload @ 50% load, 4 seeds")
	fmt.Println()
	fmt.Printf("%-11s %9s %9s %9s %8s\n", "scheme", "afct(ms)", "p99(ms)", "ooo(%)", "pauses")
	for _, name := range []string{"drill", "drill+rlb"} {
		var afct, p99, ooo metrics
		var pauses uint64
		for seed := uint64(1); seed <= 4; seed++ {
			p := scale.AsymTopoParams()
			rlb := core.DefaultParams(p.LinkDelay)
			harness.MustScheme(name, p.LinkDelay, &rlb).Apply(&p)
			res := harness.Run(harness.RunConfig{
				Topo: p, Workload: workload.CacheFollower(), Load: 0.5,
				MaxFlowBytes: scale.MaxFlowBytes,
				Duration:     scale.Duration, Drain: scale.Drain, Seed: seed * 97,
			})
			afct.add(res.Report.AvgFCTms())
			p99.add(res.Report.TailFCTms())
			ooo.add(100 * res.Report.OOORatio())
			pauses += res.Pauses
		}
		fmt.Printf("%-11s %9.3f %9.3f %9.2f %8d\n", name, afct.mean(), p99.mean(), ooo.mean(), pauses/4)
	}
}

// metrics is a tiny mean accumulator for the example.
type metrics struct {
	sum float64
	n   int
}

func (m *metrics) add(v float64) { m.sum += v; m.n++ }
func (m *metrics) mean() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}
