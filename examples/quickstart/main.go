// Quickstart: build a small lossless leaf-spine fabric, run a handful of
// RDMA-style flows under DRILL with RLB on top, and print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"github.com/rlb-project/rlb/internal/core"
	"github.com/rlb-project/rlb/internal/lb"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/topo"
	"github.com/rlb-project/rlb/internal/units"
)

func main() {
	// A 2x4 leaf-spine fabric: 2 leaves, 4 spines (4 equal-cost paths
	// between any two leaves), 4 hosts per leaf, 10 Gb/s links, PFC and
	// DCQCN on — the lossless datacenter setting of the paper.
	p := topo.Default(2, 4, 4)
	p.LinkRate = 10 * units.Gbps

	// Base load balancer: DRILL (per-packet, power-of-two-choices).
	p.LB = lb.NewDRILL(2, 1)

	// Layer RLB on top: predictors on every switch differentiate ingress
	// queues and send PFC warnings upstream; leaf agents apply Algorithm 1.
	rlb := core.DefaultParams(p.LinkDelay)
	p.RLB = &rlb

	net := topo.Build(p)

	// Start a few transfers: hosts 0..3 live on leaf 0, hosts 4..7 on
	// leaf 1, so these flows cross the spine layer.
	f1 := net.StartFlow(0, 4, 2_000_000) // 2 MB
	f2 := net.StartFlow(1, 5, 500_000)
	f3 := net.StartFlow(2, 4, 1_000_000) // same receiver as f1: contention

	net.Run(20 * sim.Millisecond)
	net.StopRLB()

	fmt.Println("flow  size      done  FCT        retrans  out-of-order")
	for i, f := range net.Flows {
		fmt.Printf("f%d    %-8d  %-5v %-10v %-8d %d\n",
			i+1, f.Size, f.Done, f.FCT(), f.Retrans, f.OOOPkts)
	}
	fmt.Printf("\nPFC PAUSE frames: %d, drops: %d (lossless!)\n",
		net.PauseFramesSent(), net.Drops())
	fmt.Printf("RLB recirculations: %d\n", net.Recirculations())
	for i, a := range net.Agents {
		if a != nil && a.Stats.WarningsRcvd > 0 {
			fmt.Printf("leaf %d accepted %d PFC warnings\n", i, a.Stats.WarningsRcvd)
		}
	}
	_ = f1
	_ = f2
	_ = f3
}
