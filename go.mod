module github.com/rlb-project/rlb

go 1.22
