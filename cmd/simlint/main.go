// Command simlint runs the repository's static simulation-discipline suite
// (internal/analysis): determinism, poolcheck, timercheck, unitsafe,
// hotpath, and exhaustive. The suite is interprocedural — a module-wide
// call graph with interface devirtualization feeds hot-path reachability
// and bottom-up packet-ownership summaries — so run it over the whole
// module (./...) for full-precision results; narrowing the argument list
// narrows where findings are *reported*, while facts still flow in from the
// requested packages' in-tree dependencies.
//
// Usage:
//
//	simlint ./...          # whole module (from anywhere inside it)
//	simlint ./internal/lb  # specific directories
//	simlint -json ./...    # one JSON object per finding (JSON Lines)
//
// Findings print as file:line:col: analyzer: message and exit status 1.
// With -json each finding is instead one {"analyzer","file","line","col",
// "message"} object per line on stdout, for CI artifacts and tooling; exit
// status semantics are unchanged.
// Suppress a justified finding with an annotation on the same line or the
// line above (the reason is mandatory):
//
//	//simlint:allow(determinism) wall-clock only feeds the Wall perf counter
//
// See TESTING.md, "Static analysis tier", for what each analyzer enforces.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/rlb-project/rlb/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "print findings as JSON Lines (one object per finding)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [-json] [./... | dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, modPath, err := analysis.FindModule(cwd)
	if err != nil {
		fatal(err)
	}

	var paths []string
	for _, arg := range args {
		ps, err := expand(arg, cwd, root, modPath)
		if err != nil {
			fatal(err)
		}
		paths = append(paths, ps...)
	}

	diags, err := analysis.RunPackages(analysis.NewLoader(analysis.ModuleResolver(root, modPath)), paths)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		if err := analysis.PrintJSON(os.Stdout, diags); err != nil {
			fatal(err)
		}
	} else if len(diags) > 0 {
		analysis.Print(os.Stdout, diags)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// expand turns one command-line pattern into import paths. "./..." and
// "dir/..." recurse; plain directories map to their single package.
func expand(arg, cwd, root, modPath string) ([]string, error) {
	rec := false
	if strings.HasSuffix(arg, "/...") {
		rec = true
		arg = strings.TrimSuffix(arg, "/...")
		if arg == "." {
			arg = cwd
		}
	}
	abs := arg
	if !filepath.IsAbs(abs) {
		abs = filepath.Join(cwd, abs)
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("simlint: %s is outside module %s", arg, modPath)
	}
	sub := modPath
	if rel != "." {
		sub = modPath + "/" + filepath.ToSlash(rel)
	}
	if !rec {
		return []string{sub}, nil
	}
	all, err := analysis.ModulePackages(abs, sub)
	if err != nil {
		return nil, err
	}
	return all, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simlint:", err)
	os.Exit(2)
}
