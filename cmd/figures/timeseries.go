package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/rlb-project/rlb/internal/harness"
	"github.com/rlb-project/rlb/internal/spec"
	"github.com/rlb-project/rlb/internal/telemetry"
)

// runTimeseries regenerates a Fig. 2-style time series — per-switch queue
// occupancy and PFC pause state over the run — from the motivation
// scenario's first grid cell (Fig. 3 grid: packet spraying with PFC on, the
// configuration whose queue build-up and pause propagation the paper's
// motivation section plots). The sampled series are written to path (JSONL,
// or CSV for a .csv suffix) and a short timeline summary is printed.
func runTimeseries(path string, interval time.Duration, scale harness.Scale, seed uint64) int {
	us := int(interval / time.Microsecond)
	if us < 1 {
		us = 1
	}
	grids, err := harness.FigureGrids("3", scale, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		return 2
	}
	cells, err := grids[0].Cells()
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		return 2
	}
	s := cells[0] // spraying with PFC on: the motivation baseline
	s.Telemetry = &spec.TelemetrySpec{SampleUs: us}
	cfg, err := harness.Compile(s)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		return 2
	}
	res := harness.Run(cfg)
	rec := res.Telemetry

	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		return 2
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		err = telemetry.WriteCSV(f, rec)
	} else {
		err = telemetry.WriteJSONL(f, rec)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		return 2
	}

	fmt.Printf("timeseries: %s @ %dus -> %s\n", s.Params(), us, path)
	fmt.Printf("recorded:   %d probes x %d samples (%d dropped) over %v\n",
		len(rec.Names), len(rec.Times), rec.Dropped, res.SimTime)
	for j, name := range rec.Names {
		switch {
		case strings.HasSuffix(name, "/shared"):
			var peak int64
			for _, v := range rec.Series[j] {
				if v > peak {
					peak = v
				}
			}
			fmt.Printf("  %-18s peak %d B\n", name, peak)
		case strings.HasSuffix(name, "/paused"):
			var ticks int64
			for _, v := range rec.Series[j] {
				ticks += v
			}
			if ticks > 0 {
				fmt.Printf("  %-18s paused %d/%d ticks\n", name, ticks, len(rec.Times))
			}
		}
	}
	return 0
}
