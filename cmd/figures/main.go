// Command figures regenerates every figure of the paper's evaluation
// section. Each figure prints as an aligned text table; EXPERIMENTS.md
// records the measured outputs next to the paper's reported numbers.
//
// Usage:
//
//	figures [-scale bench|default|paper] [-fig 3|4|6|7|8|9|10|all] [-seed N]
//	figures -fig 7 -dump-spec        # the spec grids behind the figure, as JSON
//	figures -timeseries fig2.jsonl   # Fig. 2-style queue/pause timeline
//
// -dump-spec prints, instead of running anything, the declarative sweep grids
// a figure is built from together with every expanded cell spec. Any cell is
// a complete canonical experiment spec: save it to a file and `rlbsim -spec
// cell.json` replays exactly that simulation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/rlb-project/rlb/internal/harness"
	"github.com/rlb-project/rlb/internal/spec"
)

// gridDump pairs a figure's sweep grid with its expanded cells so consumers
// can replay individual cells without reimplementing axis expansion.
type gridDump struct {
	Grid  spec.Grid   `json:"grid"`
	Cells []spec.Spec `json:"cells"`
}

// figOrder is the dump order for -fig all.
var figOrder = []string{"3", "4", "6", "7", "8", "9", "10", "irn"}

func dumpSpecs(figSel string, scale harness.Scale, seed uint64) int {
	figs := figOrder
	if figSel != "all" {
		figs = []string{figSel}
	}
	var dumps []gridDump
	for _, f := range figs {
		grids, err := harness.FigureGrids(f, scale, seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			return 2
		}
		for _, g := range grids {
			cells, err := g.Cells()
			if err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				return 2
			}
			dumps = append(dumps, gridDump{Grid: g, Cells: cells})
		}
	}
	data, err := json.MarshalIndent(dumps, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		return 2
	}
	os.Stdout.Write(append(data, '\n'))
	return 0
}

func main() {
	scaleName := flag.String("scale", "default", "fabric scale: bench, default, or paper")
	fig := flag.String("fig", "all", "figure to regenerate: 3, 4, 6, 7, 8, 9, 10, irn, or all")
	seed := flag.Uint64("seed", 1, "simulation seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	dumpSpec := flag.Bool("dump-spec", false, "print the figure's spec grids and expanded cells as JSON and exit without running")
	timeseries := flag.String("timeseries", "", "write a Fig. 2-style queue/pause time series (JSONL, or CSV with a .csv suffix) to this file and exit")
	sampleInterval := flag.Duration("sample-interval", 10*time.Microsecond, "telemetry sampling interval for -timeseries (min 1us)")
	flag.Parse()

	scale, ok := harness.ScaleByName(*scaleName)
	if !ok {
		fmt.Fprintf(os.Stderr, "figures: unknown scale %q (want bench, default, paper)\n", *scaleName)
		os.Exit(2)
	}

	if *dumpSpec {
		os.Exit(dumpSpecs(*fig, scale, *seed))
	}
	if *timeseries != "" {
		os.Exit(runTimeseries(*timeseries, *sampleInterval, scale, *seed))
	}

	want := func(f string) bool { return *fig == "all" || *fig == f }
	printed := false
	emit := func(tables ...*harness.Table) {
		for _, t := range tables {
			if *csv {
				fmt.Println(t.CSV())
			} else {
				fmt.Println(t)
			}
		}
		printed = true
	}

	start := time.Now()
	if want("3") {
		emit(harness.Fig3(scale, *seed))
	}
	if want("4") {
		emit(harness.Fig4Paths(scale, *seed), harness.Fig4Bursts(scale, *seed))
	}
	if want("6") {
		emit(harness.Fig6(scale, *seed))
	}
	if want("7") {
		emit(harness.Fig7(scale, *seed)...)
	}
	if want("8") {
		emit(harness.Fig8Degree(scale, *seed), harness.Fig8Size(scale, *seed))
	}
	if want("9") {
		emit(harness.Fig9(scale, *seed)...)
	}
	if want("10") {
		emit(harness.Fig10Qth(scale, *seed), harness.Fig10DeltaT(scale, *seed))
	}
	if want("irn") {
		emit(harness.ExtIRN(scale, *seed))
	}
	if !printed {
		fmt.Fprintf(os.Stderr, "figures: unknown figure %q\n", *fig)
		os.Exit(2)
	}
	fmt.Printf("done: scale=%s figs=%s wall=%s\n", scale.Name, strings.TrimSpace(*fig), time.Since(start).Round(time.Millisecond))
}
