// Command benchjson converts `go test -bench -benchmem` output into a JSON
// perf record, optionally joined against a committed baseline to show the
// trajectory (before/after ns/op, B/op, allocs/op, events/sec and the
// relative deltas). `make bench-json` pipes the figure benchmarks through it
// to regenerate BENCH_PR2.json; see TESTING.md's Performance section.
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchjson [-baseline old.json] [-out new.json]
//	go test -bench Fig -benchmem . | benchjson -gate BENCH_PR4.json [-tolerance 10]
//
// The baseline file may be a bare run (its "benchmarks" map) or a previous
// joined record (its "after" map is then the new "before").
//
// Gate mode (-gate, used by `make bench-gate`) compares the fresh run's
// events/sec against the committed record instead of emitting JSON: any
// benchmark whose throughput falls more than -tolerance percent below the
// committed figure fails the gate with exit status 1.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Bench is one benchmark's measurements. EventsPerSec is only present on
// harness figure benchmarks (they report the simulator's event throughput).
type Bench struct {
	NsOp         float64 `json:"ns_op"`
	BOp          float64 `json:"b_op"`
	AllocsOp     float64 `json:"allocs_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

// Delta is the relative change from baseline to current, in percent
// (negative = reduction), plus the wall-clock speedup factor.
type Delta struct {
	NsOpPct      float64 `json:"ns_op_pct"`
	BOpPct       float64 `json:"b_op_pct"`
	AllocsOpPct  float64 `json:"allocs_op_pct"`
	Speedup      float64 `json:"speedup"`
	EventsPerSec float64 `json:"events_per_sec_ratio,omitempty"`
}

// Record is the file format: a bare run carries only Benchmarks; a joined
// record carries Before/After/Delta.
type Record struct {
	Go         string           `json:"go"`
	Note       string           `json:"note,omitempty"`
	Benchmarks map[string]Bench `json:"benchmarks,omitempty"`
	Before     map[string]Bench `json:"before,omitempty"`
	After      map[string]Bench `json:"after,omitempty"`
	Delta      map[string]Delta `json:"delta,omitempty"`
}

// benchLine matches one result line, e.g.
// "BenchmarkFig3MotivationPFC-8   1   130 ns/op   12 events/sec   42 B/op   7 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

func parse(r *bufio.Scanner) (map[string]Bench, error) {
	out := make(map[string]Bench)
	for r.Scan() {
		m := benchLine.FindStringSubmatch(r.Text())
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		// Strip the -GOMAXPROCS suffix so records from different machines join.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var b Bench
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad value %q", name, fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsOp = v
			case "B/op":
				b.BOp = v
			case "allocs/op":
				b.AllocsOp = v
			case "events/sec":
				b.EventsPerSec = v
			}
		}
		out[name] = b
	}
	return out, r.Err()
}

func pct(before, after float64) float64 {
	if before == 0 {
		return 0
	}
	return 100 * (after - before) / before
}

// gate compares a fresh run's events/sec against the committed record and
// reports whether every shared benchmark stayed within tolerance. Benchmarks
// without an events/sec metric on both sides (micro-benchmarks, new
// additions) are skipped: wall-clock ns/op is too machine-dependent to gate
// on, while events/sec regressions on the same machine mean the engine got
// slower.
func gate(committed map[string]Bench, cur map[string]Bench, tolerancePct float64) bool {
	ok := true
	checked := 0
	for name, c := range committed {
		if c.EventsPerSec == 0 {
			continue
		}
		a, present := cur[name]
		if !present || a.EventsPerSec == 0 {
			continue
		}
		checked++
		ratio := a.EventsPerSec / c.EventsPerSec
		verdict := "ok"
		if ratio < 1-tolerancePct/100 {
			verdict = "REGRESSION"
			ok = false
		}
		fmt.Printf("gate %-28s committed %12.0f ev/s, now %12.0f ev/s (%+.1f%%) %s\n",
			name, c.EventsPerSec, a.EventsPerSec, 100*(ratio-1), verdict)
	}
	if checked == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: gate found no shared events/sec benchmarks to compare")
		return false
	}
	return ok
}

func main() {
	baseline := flag.String("baseline", "", "baseline JSON to diff against (bare run or previous joined record)")
	out := flag.String("out", "", "output file (default stdout)")
	note := flag.String("note", "", "free-form note embedded in the record")
	gateFile := flag.String("gate", "", "committed record to gate the fresh run's events/sec against (exit 1 on regression)")
	tolerance := flag.Float64("tolerance", 10, "allowed events/sec shortfall in percent for -gate")
	flag.Parse()

	cur, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(cur) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *gateFile != "" {
		raw, err := os.ReadFile(*gateFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var committed Record
		if err := json.Unmarshal(raw, &committed); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		ref := committed.After
		if ref == nil {
			ref = committed.Benchmarks
		}
		if !gate(ref, cur, *tolerance) {
			fmt.Fprintf(os.Stderr, "benchjson: events/sec regressed more than %.0f%% below %s\n", *tolerance, *gateFile)
			os.Exit(1)
		}
		fmt.Printf("bench gate passed (tolerance %.0f%%)\n", *tolerance)
		return
	}

	rec := Record{Go: runtime.Version(), Note: *note}
	if *baseline == "" {
		rec.Benchmarks = cur
	} else {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var base Record
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		before := base.Benchmarks
		if before == nil {
			before = base.After
		}
		rec.Before = before
		rec.After = cur
		rec.Delta = make(map[string]Delta)
		for name, a := range cur {
			b, ok := before[name]
			if !ok {
				continue
			}
			d := Delta{
				NsOpPct:     pct(b.NsOp, a.NsOp),
				BOpPct:      pct(b.BOp, a.BOp),
				AllocsOpPct: pct(b.AllocsOp, a.AllocsOp),
			}
			if a.NsOp > 0 {
				d.Speedup = b.NsOp / a.NsOp
			}
			if b.EventsPerSec > 0 && a.EventsPerSec > 0 {
				d.EventsPerSec = a.EventsPerSec / b.EventsPerSec
			}
			rec.Delta[name] = d
		}
	}

	enc, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
