// Command rlbsim runs one simulation scenario and prints its metrics — the
// quick way to poke at a configuration without the full figure harness.
//
// The scenario is a canonical experiment spec (internal/spec): flags build
// one, `-spec file.json` loads one, and flags given alongside `-spec` overlay
// the file field by field. `-dump-spec` prints the effective spec instead of
// running it, so any invocation can be frozen to a replayable JSON document:
//
//	rlbsim -scheme drill -workload websearch -load 0.6
//	rlbsim -scheme drill+rlb -load 0.4 -asym -dump-spec > exp.json
//	rlbsim -spec exp.json -load 0.6          # same spec, one knob changed
//	rlbsim -scheme ecmp -kill 2 -kill-at 1ms -restore-at 3ms -strict
//	rlbsim -telemetry out.jsonl -sample-interval 10us
//	rlbsim -repro /tmp/rlb-repro-flows-complete.json
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"github.com/rlb-project/rlb/internal/harness"
	"github.com/rlb-project/rlb/internal/metrics"
	"github.com/rlb-project/rlb/internal/scenario"
	"github.com/rlb-project/rlb/internal/spec"
	"github.com/rlb-project/rlb/internal/telemetry"
	"github.com/rlb-project/rlb/internal/trace"
)

// scenarioFlags are the flags that shape the scenario itself (as opposed to
// observation/profiling knobs). They conflict with -repro, which replays a
// recorded spec verbatim: silently ignoring them would run a different
// scenario than the user asked for.
var scenarioFlags = map[string]bool{
	"scheme": true, "workload": true, "load": true, "leaves": true,
	"spines": true, "hosts": true, "gbps": true, "duration": true,
	"drain": true, "asym": true, "cap": true, "seed": true, "seeds": true,
	"noguard": true, "norecirc": true, "probe": true, "kill": true,
	"kill-at": true, "restore-at": true, "strict": true, "sched": true,
	"spec": true,
}

func main() {
	scheme := flag.String("scheme", "drill+rlb", "load balancer: ecmp|presto|letflow|hermes|drill|conga, optionally +rlb")
	wl := flag.String("workload", "websearch", "workload: webserver|cachefollower|websearch|datamining")
	load := flag.Float64("load", 0.5, "offered load fraction of host line rate")
	leaves := flag.Int("leaves", 4, "number of leaf switches")
	spines := flag.Int("spines", 6, "number of spine switches")
	hosts := flag.Int("hosts", 6, "hosts per leaf")
	gbps := flag.Int("gbps", 10, "link rate in Gb/s")
	duration := flag.Duration("duration", 5*time.Millisecond, "traffic generation window")
	drain := flag.Duration("drain", 15*time.Millisecond, "extra drain time after generation stops")
	asym := flag.Bool("asym", false, "downgrade 20% of leaf-spine links to quarter rate")
	capBytes := flag.Int("cap", 5_000_000, "max flow size in bytes (0 = uncapped)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	seeds := flag.Int("seeds", 1, "number of seeds to run and average")
	noGuard := flag.Bool("noguard", false, "RLB ablation: disable the flow-order guard")
	noRecirc := flag.Bool("norecirc", false, "RLB ablation: disable packet recirculation")
	traceN := flag.Int("trace", 0, "record the last N control-plane events and dump them")
	telemetryOut := flag.String("telemetry", "", "sample run-time telemetry and write the series to this file (JSONL; a .csv suffix writes CSV)")
	sampleInterval := flag.Duration("sample-interval", 10*time.Microsecond, "telemetry sampling interval (with -telemetry)")
	probe := flag.Duration("probe", 0, "use in-band probe telemetry at this interval instead of oracle path state (0 = oracle)")
	kill := flag.Int("kill", 0, "fault plane: kill this many of leaf 0's spine uplinks")
	killAt := flag.Duration("kill-at", time.Millisecond, "fault plane: when to kill the links")
	restoreAt := flag.Duration("restore-at", 0, "fault plane: when to restore them (0 = never)")
	strict := flag.Bool("strict", false, "enable the strict invariant-checker tier")
	sched := flag.String("sched", "calendar", "event scheduler: calendar|heap (heap is the reference implementation, for A/B debugging)")
	specPath := flag.String("spec", "", "load the scenario from this canonical spec JSON file; other flags overlay it")
	dumpSpec := flag.Bool("dump-spec", false, "print the effective spec as canonical JSON and exit without running")
	fingerprint := flag.Bool("fingerprint", false, "print the run's determinism fingerprint (single-seed runs)")
	repro := flag.String("repro", "", "replay a scenario-fuzzer repro file (exit 1 if it still fails)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	flag.Parse()

	visited := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { visited[f.Name] = true })

	if *repro != "" {
		var conflicts []string
		for name := range visited {
			if name != "repro" && scenarioFlags[name] {
				conflicts = append(conflicts, "-"+name)
			}
		}
		if len(conflicts) > 0 {
			sort.Strings(conflicts)
			fmt.Fprintf(os.Stderr, "rlbsim: -repro replays the recorded scenario verbatim; drop the conflicting scenario flag(s): %s\n",
				strings.Join(conflicts, ", "))
			os.Exit(2)
		}
		os.Exit(runRepro(*repro))
	}

	// Build the effective spec: flag defaults (or the -spec file when given)
	// overlaid with every flag the user set explicitly.
	var s spec.Spec
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rlbsim:", err)
			os.Exit(2)
		}
		s, err = spec.Decode(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rlbsim:", err)
			os.Exit(2)
		}
	}
	set := func(name string) bool { return *specPath == "" || visited[name] }
	if set("scheme") {
		s.Scheme = *scheme
	}
	if set("workload") {
		s.Workload = *wl
	}
	if set("load") {
		s.LoadPct = int(math.Round(*load * 100))
	}
	if set("leaves") {
		s.Leaves = *leaves
	}
	if set("spines") {
		s.Spines = *spines
	}
	if set("hosts") {
		s.HostsPerLeaf = *hosts
	}
	if set("gbps") {
		s.LinkGbps = *gbps
	}
	if set("duration") {
		s.DurationUs = int(*duration / time.Microsecond)
	}
	if set("drain") {
		s.DrainUs = int(*drain / time.Microsecond)
	}
	if set("asym") {
		if *asym {
			s.AsymPct = 20
		} else {
			s.AsymPct = 0
		}
	}
	if set("cap") {
		s.MaxFlowKB = *capBytes / 1000
	}
	if set("seed") {
		s.SimSeed = *seed
	}
	if set("seeds") {
		s.Seeds = *seeds
	}
	if visited["noguard"] {
		s.NoOrderGuard = *noGuard
	}
	if visited["norecirc"] {
		s.NoRecirc = *noRecirc
	}
	if visited["probe"] {
		s.ProbeUs = int(*probe / time.Microsecond)
	}
	if visited["sched"] {
		s.Scheduler = *sched
	}
	if visited["strict"] {
		s.Strict = *strict
	}
	if visited["telemetry"] || visited["sample-interval"] {
		us := int(*sampleInterval / time.Microsecond)
		if us < 1 {
			us = 1
		}
		s.Telemetry = &spec.TelemetrySpec{SampleUs: us}
	}
	if set("kill") {
		if *kill > s.Spines {
			fmt.Fprintf(os.Stderr, "rlbsim: -kill %d exceeds %d spines\n", *kill, s.Spines)
			os.Exit(2)
		}
		s.Faults = nil
		for i := 0; i < *kill; i++ {
			s.Faults = append(s.Faults, spec.FaultSpec{
				Leaf: 0, Spine: i,
				DownAtUs: int(*killAt / time.Microsecond),
				UpAtUs:   int(*restoreAt / time.Microsecond),
			})
		}
	}

	if *dumpSpec {
		data, err := spec.Encode(s)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rlbsim:", err)
			os.Exit(2)
		}
		os.Stdout.Write(data)
		return
	}

	// Compile once up front so registry errors (unknown scheme, workload,
	// scheduler — each listing the valid names) surface before any profiling
	// starts or simulations run.
	cfg, err := harness.Compile(s)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rlbsim:", err)
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rlbsim:", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "rlbsim:", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rlbsim:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows retained heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "rlbsim:", err)
			}
		}()
	}

	nSeeds := s.Seeds
	if nSeeds < 1 {
		nSeeds = 1
	}
	if nSeeds > 1 {
		if *telemetryOut != "" {
			fmt.Fprintln(os.Stderr, "rlbsim: -telemetry records one run's time series; use -seeds 1")
			os.Exit(2)
		}
		runAveraged(s, nSeeds)
		return
	}

	var buf *trace.Buffer
	if *traceN > 0 {
		buf = trace.NewBuffer(*traceN)
		// Data-plane arrivals/departures would drown the buffer; keep the
		// control-plane story (pauses, warnings, recirculations, drops).
		buf.Filter = func(e trace.Event) bool {
			return e.Kind != trace.DataArrive && e.Kind != trace.DataDepart
		}
		cfg.Topo.Trace = buf
	}
	if *fingerprint {
		cfg.KeepNetwork = true
	}

	res := harness.Run(cfg)
	r := res.Report
	asymLabel := ""
	if s.AsymPct > 0 {
		asymLabel = " (asym)"
	}
	fmt.Printf("scheme=%s workload=%s load=%.2f fabric=%dx%d/%d @%s%s\n",
		s.Scheme, s.Workload, float64(s.LoadPct)/100, s.Leaves, s.Spines, s.HostsPerLeaf,
		cfg.Topo.LinkRate, asymLabel)
	fmt.Printf("flows:      %d generated, %d completed\n", r.Flows, r.Completed)
	fmt.Printf("fct:        %s\n", r.FCT.Summary("ms"))
	fmt.Printf("small fct:  %s\n", r.SmallFCT.Summary("ms"))
	fmt.Printf("large fct:  %s\n", r.LargeFCT.Summary("ms"))
	fmt.Printf("reordering: %.3f%% of %d received frames; p99 OOD %.0f pkts\n",
		100*r.OOORatio(), r.TotalRcvd, r.OOD.Percentile(99))
	fmt.Printf("retx:       %.3f%% of %d sent frames\n", 100*r.RetxRatio(), r.TotalSent)
	fmt.Printf("pfc:        %d PAUSE frames (%.1f/ms), %d drops\n",
		res.Pauses, metrics.PauseRate(res.Pauses, res.SimTime), res.Drops)
	if len(s.Faults) > 0 || s.Strict {
		fmt.Printf("faults:     %d fault windows, %d frames lost on the wire\n", len(s.Faults), res.WireLost)
	}
	if len(res.Violations) > 0 {
		fmt.Printf("INVARIANT VIOLATIONS (%d, of %d checks):\n", len(res.Violations), res.InvariantChecks)
		for _, v := range res.Violations {
			fmt.Printf("  %s\n", v)
		}
	} else if s.Strict {
		fmt.Printf("invariants: ok (%d checks, strict)\n", res.InvariantChecks)
	}
	fmt.Printf("rlb:        %d warnings accepted, %d recirculations\n", res.Warnings, res.Recircs)
	if res.Agents.PicksTotal > 0 {
		a := res.Agents
		fmt.Printf("rlb picks:  %d total, %d warned, %d reroutes, %d recircs (+%d order, %d sticky), %d orderstay, %d staycheap, %d fallback\n",
			a.PicksTotal, a.PicksWarned, a.Reroutes, a.Recircs, a.OrderRecircs, a.DivertSticky, a.OrderStays, a.StayCheaper, a.Fallbacks)
	}
	if *telemetryOut != "" {
		if err := writeTelemetry(*telemetryOut, res.Telemetry); err != nil {
			fmt.Fprintln(os.Stderr, "rlbsim:", err)
			os.Exit(2)
		}
		fmt.Printf("telemetry:  %d probes x %d samples (%d dropped) -> %s\n",
			len(res.Telemetry.Names), len(res.Telemetry.Times), res.Telemetry.Dropped, *telemetryOut)
	}
	fmt.Printf("wall:       %s for %v simulated\n", res.Wall.Round(time.Millisecond), res.SimTime)
	if *fingerprint {
		fmt.Printf("fingerprint: %s\n", harness.Fingerprint(res))
	}
	if buf != nil {
		fmt.Printf("\ntrace:      %d events recorded (%s)\n", buf.Total(), buf.Summary())
		fmt.Printf("last %d control-plane events:\n", buf.Len())
		_ = buf.Dump(os.Stdout)
	}
}

// writeTelemetry writes a recording to path, choosing the format from the
// extension (.csv = wide CSV, anything else = JSONL).
func writeTelemetry(path string, rec *telemetry.Recording) error {
	if rec == nil {
		return fmt.Errorf("telemetry: run produced no recording")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return telemetry.WriteCSV(f, rec)
	}
	return telemetry.WriteJSONL(f, rec)
}

// runAveraged executes the spec at n consecutive seed offsets (the CLI's
// historical stride of 1000) and prints the averaged headline metrics.
func runAveraged(s spec.Spec, n int) {
	var cfgs []harness.RunConfig
	for i := 0; i < n; i++ {
		c := s.Clone()
		c.SimSeed = s.SimSeed + uint64(i)*1000
		cfg, err := harness.Compile(c)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rlbsim:", err)
			os.Exit(2)
		}
		cfgs = append(cfgs, cfg)
	}
	results := harness.RunAll(cfgs)
	var afct, p50, p99, ooo metrics.Digest
	for _, res := range results {
		afct.Add(res.Report.AvgFCTms())
		p50.Add(res.Report.FCT.Percentile(50))
		p99.Add(res.Report.TailFCTms())
		ooo.Add(100 * res.Report.OOORatio())
	}
	fmt.Printf("scheme=%s workload=%s load=%.2f seeds=%d\n", s.Scheme, s.Workload, float64(s.LoadPct)/100, n)
	fmt.Printf("avg over seeds: afct=%.4gms p50=%.4gms p99=%.4gms ooo=%.3g%%\n",
		afct.Mean(), p50.Mean(), p99.Mean(), ooo.Mean())
	var viol, lost uint64
	for _, res := range results {
		viol += uint64(len(res.Violations))
		lost += res.WireLost
	}
	if viol > 0 {
		fmt.Printf("INVARIANT VIOLATIONS: %d across %d seeds (rerun with -seeds 1 for detail)\n", viol, n)
	} else if s.Strict {
		fmt.Printf("invariants: ok across %d seeds (strict); %d frames lost on the wire\n", n, lost)
	}
}

// runRepro replays a scenario-fuzzer repro file through the full metamorphic
// property suite and reports whether the recorded failure still reproduces.
// Exit codes: 0 = fixed (no property fails any more), 1 = still failing,
// 2 = unreadable file.
func runRepro(path string) int {
	r, fail, err := scenario.Replay(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rlbsim:", err)
		return 2
	}
	fmt.Printf("repro:    %s\n", path)
	fmt.Printf("recorded: %s: %s\n", r.Property, r.Detail)
	fmt.Printf("scenario: %s\n", r.Spec.Params())
	if fail == nil {
		fmt.Println("verdict:  PASS — the recorded failure no longer reproduces")
		return 0
	}
	fmt.Printf("verdict:  FAIL — %s: %s\n", fail.Property, fail.Detail)
	return 1
}
