// Command rlbsim runs one simulation scenario and prints its metrics — the
// quick way to poke at a configuration without the full figure harness.
//
// Usage examples:
//
//	rlbsim -scheme drill -workload websearch -load 0.6
//	rlbsim -scheme drill+rlb -workload datamining -load 0.4 -asym
//	rlbsim -scheme presto+rlb -leaves 4 -spines 6 -hosts 6 -duration 10ms
//	rlbsim -scheme ecmp -kill 2 -kill-at 1ms -restore-at 3ms -strict
//	rlbsim -repro /tmp/rlb-repro-flows-complete.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"github.com/rlb-project/rlb/internal/core"
	"github.com/rlb-project/rlb/internal/harness"
	"github.com/rlb-project/rlb/internal/metrics"
	"github.com/rlb-project/rlb/internal/scenario"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/topo"
	"github.com/rlb-project/rlb/internal/trace"
	"github.com/rlb-project/rlb/internal/units"
	"github.com/rlb-project/rlb/internal/workload"
)

func main() {
	scheme := flag.String("scheme", "drill+rlb", "load balancer: ecmp|presto|letflow|hermes|drill, optionally +rlb")
	wl := flag.String("workload", "websearch", "workload: webserver|cachefollower|websearch|datamining")
	load := flag.Float64("load", 0.5, "offered load fraction of host line rate")
	leaves := flag.Int("leaves", 4, "number of leaf switches")
	spines := flag.Int("spines", 6, "number of spine switches")
	hosts := flag.Int("hosts", 6, "hosts per leaf")
	gbps := flag.Int("gbps", 10, "link rate in Gb/s")
	duration := flag.Duration("duration", 5*time.Millisecond, "traffic generation window")
	drain := flag.Duration("drain", 15*time.Millisecond, "extra drain time after generation stops")
	asym := flag.Bool("asym", false, "downgrade 20% of leaf-spine links to quarter rate")
	capBytes := flag.Int("cap", 5_000_000, "max flow size in bytes (0 = uncapped)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	seeds := flag.Int("seeds", 1, "number of seeds to run and average")
	noGuard := flag.Bool("noguard", false, "RLB ablation: disable the flow-order guard")
	noRecirc := flag.Bool("norecirc", false, "RLB ablation: disable packet recirculation")
	traceN := flag.Int("trace", 0, "record the last N control-plane events and dump them")
	probe := flag.Duration("probe", 0, "use in-band probe telemetry at this interval instead of oracle path state (0 = oracle)")
	kill := flag.Int("kill", 0, "fault plane: kill this many of leaf 0's spine uplinks")
	killAt := flag.Duration("kill-at", time.Millisecond, "fault plane: when to kill the links")
	restoreAt := flag.Duration("restore-at", 0, "fault plane: when to restore them (0 = never)")
	strict := flag.Bool("strict", false, "enable the strict invariant-checker tier")
	sched := flag.String("sched", "calendar", "event scheduler: calendar|heap (heap is the reference implementation, for A/B debugging)")
	repro := flag.String("repro", "", "replay a scenario-fuzzer repro file (ignores the other flags; exit 1 if it still fails)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	flag.Parse()

	if *repro != "" {
		os.Exit(runRepro(*repro))
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rlbsim:", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "rlbsim:", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rlbsim:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows retained heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "rlbsim:", err)
			}
		}()
	}

	dist, err := workload.ByName(*wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rlbsim:", err)
		os.Exit(2)
	}
	scale := harness.Scale{
		Name: "custom", Leaves: *leaves, Spines: *spines, HostsPerLeaf: *hosts,
		LinkRate: units.Bandwidth(*gbps) * units.Gbps, LinkDelay: 2 * sim.Microsecond,
		Duration: sim.FromStd(*duration), Drain: sim.FromStd(*drain),
	}
	p := scale.TopoParams()
	if *asym {
		p = scale.AsymTopoParams()
	}
	kind, ok := sim.SchedulerByName(*sched)
	if !ok {
		fmt.Fprintf(os.Stderr, "rlbsim: unknown -sched %q (want calendar or heap)\n", *sched)
		os.Exit(2)
	}
	p.Scheduler = kind
	if *probe > 0 {
		p.ProbeInterval = sim.FromStd(*probe)
	}
	var buf *trace.Buffer
	if *traceN > 0 {
		buf = trace.NewBuffer(*traceN)
		// Data-plane arrivals/departures would drown the buffer; keep the
		// control-plane story (pauses, warnings, recirculations, drops).
		buf.Filter = func(e trace.Event) bool {
			return e.Kind != trace.DataArrive && e.Kind != trace.DataDepart
		}
		p.Trace = buf
	}
	rlbParams := core.DefaultParams(p.LinkDelay)
	rlbParams.DisableOrderGuard = *noGuard
	rlbParams.DisableRecirculation = *noRecirc
	sch, err := harness.SchemeByName(*scheme, p.LinkDelay, &rlbParams)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rlbsim:", err)
		os.Exit(2)
	}
	sch.Apply(&p)

	var faults []topo.Fault
	if *kill > 0 {
		if *kill > *spines {
			fmt.Fprintf(os.Stderr, "rlbsim: -kill %d exceeds %d spines\n", *kill, *spines)
			os.Exit(2)
		}
		faults = harness.KillUplinks(0, *kill, sim.FromStd(*killAt), sim.FromStd(*restoreAt))
	}

	var cfgs []harness.RunConfig
	for i := 0; i < *seeds; i++ {
		cfgs = append(cfgs, harness.RunConfig{
			Topo: p, Workload: dist, Load: *load, MaxFlowBytes: *capBytes,
			Duration: scale.Duration, Drain: scale.Drain, Seed: *seed + uint64(i)*1000,
			Faults: faults, StrictInvariants: *strict,
		})
	}
	results := harness.RunAll(cfgs)
	if *seeds > 1 {
		var afct, p50, p99, ooo metrics.Digest
		for _, res := range results {
			afct.Add(res.Report.AvgFCTms())
			p50.Add(res.Report.FCT.Percentile(50))
			p99.Add(res.Report.TailFCTms())
			ooo.Add(100 * res.Report.OOORatio())
		}
		fmt.Printf("scheme=%s workload=%s load=%.2f seeds=%d\n", sch.Name, dist.Name, *load, *seeds)
		fmt.Printf("avg over seeds: afct=%.4gms p50=%.4gms p99=%.4gms ooo=%.3g%%\n",
			afct.Mean(), p50.Mean(), p99.Mean(), ooo.Mean())
		var viol, lost uint64
		for _, res := range results {
			viol += uint64(len(res.Violations))
			lost += res.WireLost
		}
		if viol > 0 {
			fmt.Printf("INVARIANT VIOLATIONS: %d across %d seeds (rerun with -seeds 1 for detail)\n", viol, *seeds)
		} else if *strict {
			fmt.Printf("invariants: ok across %d seeds (strict); %d frames lost on the wire\n", *seeds, lost)
		}
		return
	}
	res := results[0]
	r := res.Report
	fmt.Printf("scheme=%s workload=%s load=%.2f fabric=%dx%d/%d @%s%s\n",
		sch.Name, dist.Name, *load, *leaves, *spines, *hosts, p.LinkRate, map[bool]string{true: " (asym)", false: ""}[*asym])
	fmt.Printf("flows:      %d generated, %d completed\n", r.Flows, r.Completed)
	fmt.Printf("fct:        %s\n", r.FCT.Summary("ms"))
	fmt.Printf("small fct:  %s\n", r.SmallFCT.Summary("ms"))
	fmt.Printf("large fct:  %s\n", r.LargeFCT.Summary("ms"))
	fmt.Printf("reordering: %.3f%% of %d received frames; p99 OOD %.0f pkts\n",
		100*r.OOORatio(), r.TotalRcvd, r.OOD.Percentile(99))
	fmt.Printf("retx:       %.3f%% of %d sent frames\n", 100*r.RetxRatio(), r.TotalSent)
	fmt.Printf("pfc:        %d PAUSE frames (%.1f/ms), %d drops\n",
		res.Pauses, metrics.PauseRate(res.Pauses, res.SimTime), res.Drops)
	if *kill > 0 || *strict {
		fmt.Printf("faults:     %d links killed, %d frames lost on the wire\n", *kill, res.WireLost)
	}
	if len(res.Violations) > 0 {
		fmt.Printf("INVARIANT VIOLATIONS (%d, of %d checks):\n", len(res.Violations), res.InvariantChecks)
		for _, v := range res.Violations {
			fmt.Printf("  %s\n", v)
		}
	} else if *strict {
		fmt.Printf("invariants: ok (%d checks, strict)\n", res.InvariantChecks)
	}
	fmt.Printf("rlb:        %d warnings accepted, %d recirculations\n", res.Warnings, res.Recircs)
	if res.Agents.PicksTotal > 0 {
		a := res.Agents
		fmt.Printf("rlb picks:  %d total, %d warned, %d reroutes, %d recircs (+%d order, %d sticky), %d orderstay, %d staycheap, %d fallback\n",
			a.PicksTotal, a.PicksWarned, a.Reroutes, a.Recircs, a.OrderRecircs, a.DivertSticky, a.OrderStays, a.StayCheaper, a.Fallbacks)
	}
	fmt.Printf("wall:       %s for %v simulated\n", res.Wall.Round(time.Millisecond), res.SimTime)
	if buf != nil {
		fmt.Printf("\ntrace:      %d events recorded (%s)\n", buf.Total(), buf.Summary())
		fmt.Printf("last %d control-plane events:\n", buf.Len())
		_ = buf.Dump(os.Stdout)
	}
}

// runRepro replays a scenario-fuzzer repro file through the full metamorphic
// property suite and reports whether the recorded failure still reproduces.
// Exit codes: 0 = fixed (no property fails any more), 1 = still failing,
// 2 = unreadable file.
func runRepro(path string) int {
	r, fail, err := scenario.Replay(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rlbsim:", err)
		return 2
	}
	fmt.Printf("repro:    %s\n", path)
	fmt.Printf("recorded: %s: %s\n", r.Property, r.Detail)
	fmt.Printf("scenario: %s\n", r.Spec.Params())
	if fail == nil {
		fmt.Println("verdict:  PASS — the recorded failure no longer reproduces")
		return 0
	}
	fmt.Printf("verdict:  FAIL — %s: %s\n", fail.Property, fail.Detail)
	return 1
}
