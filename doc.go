// Package rlb is a from-scratch Go reproduction of "RLB: Reordering-Robust
// Load Balancing in Lossless Datacenter Networks" (Hu et al., ICPP 2023).
//
// The repository contains a packet-level discrete-event simulator for
// lossless (PFC-enabled) Ethernet fabrics — shared-memory switches, DCQCN
// congestion control, a RoCEv2-style go-back-N transport — four baseline
// load balancers (Presto, LetFlow, Hermes, DRILL), and RLB itself: a
// building block that predicts PFC triggering from the derivative of ingress
// queue lengths and reroutes or recirculates packets so that load balancing
// stays effective without reordering.
//
// Entry points:
//
//   - internal/core      — RLB (the paper's contribution)
//   - internal/harness   — experiment runner; one builder per paper figure
//   - cmd/figures        — regenerate every figure
//   - cmd/rlbsim         — run a single scenario
//   - examples/          — runnable walkthroughs
//
// See README.md for a tour, DESIGN.md for the system inventory and
// substitutions, and EXPERIMENTS.md for paper-vs-measured results.
package rlb
