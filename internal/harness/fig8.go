package harness

import "fmt"

// fig8Schemes are the eight schemes of Fig. 8.
var fig8Schemes = []string{
	"presto", "presto+rlb", "letflow", "letflow+rlb",
	"hermes", "hermes+rlb", "drill", "drill+rlb",
}

// fig8Dims returns the degree and size sweeps for a scale. The paper sweeps
// degree 10-25 and response 4-10 MB; reduced fabrics scale both down.
func fig8Dims(s Scale) (degrees []int, sizes []int, fixedDegree int, fixedSize int) {
	hosts := s.Leaves * s.HostsPerLeaf
	maxDeg := hosts - 1
	degrees = sweepInts(maxDeg/3, maxDeg, 4)
	base := 4 * 1000 * 1000
	if s.MaxFlowBytes > 0 && base > s.MaxFlowBytes*4 {
		base = s.MaxFlowBytes * 4
	}
	sizes = []int{base, base * 3 / 2, base * 2, base * 5 / 2}
	fixedDegree = degrees[len(degrees)/2]
	fixedSize = base
	return
}

// Fig8Degree reproduces Fig. 8(a,c): out-of-order ratio and incast
// completion time vs. incast degree at a fixed total response size.
func Fig8Degree(s Scale, seed uint64) *Table {
	degrees, _, _, fixedSize := fig8Dims(s)
	t := &Table{
		Title:   fmt.Sprintf("Fig. 8(a,c) — incast: OOO%% and completion time vs. degree (response %dKB)", fixedSize/1000),
		Headers: []string{"scheme"},
	}
	for _, d := range degrees {
		t.Headers = append(t.Headers, fmt.Sprintf("ooo%%@%d", d), fmt.Sprintf("ict@%d", d))
	}
	fig8Rows(t, MustRunGridMetrics(Fig8DegreeGrid(s, seed)), len(degrees))
	t.AddNote("ict in ms; paper sweeps degree 10..25 on 288 hosts, this scale %v on %d hosts",
		degrees, s.Leaves*s.HostsPerLeaf)
	return t
}

// Fig8Size reproduces Fig. 8(b,d): out-of-order ratio and incast completion
// time vs. total response size at a fixed degree.
func Fig8Size(s Scale, seed uint64) *Table {
	_, sizes, fixedDegree, _ := fig8Dims(s)
	t := &Table{
		Title:   fmt.Sprintf("Fig. 8(b,d) — incast: OOO%% and completion time vs. response size (degree %d)", fixedDegree),
		Headers: []string{"scheme"},
	}
	for _, sz := range sizes {
		t.Headers = append(t.Headers, fmt.Sprintf("ooo%%@%.1fMB", float64(sz)/1e6), fmt.Sprintf("ict@%.1fMB", float64(sz)/1e6))
	}
	fig8Rows(t, MustRunGridMetrics(Fig8SizeGrid(s, seed)), len(sizes))
	t.AddNote("paper sweeps 4..10 MB; this scale sweeps %v bytes", sizes)
	return t
}

// fig8Rows renders one table row per scheme from scheme-major sweep results,
// points columns each: the averaged out-of-order ratio as a percentage and
// the mean incast completion time.
func fig8Rows(t *Table, results []Metrics, points int) {
	idx := 0
	for _, scheme := range fig8Schemes {
		row := []interface{}{scheme}
		for p := 0; p < points; p++ {
			row = append(row, 100*results[idx].OOORatio, results[idx].ICTms)
			idx++
		}
		t.AddRow(row...)
	}
}
