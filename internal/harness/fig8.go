package harness

import (
	"fmt"

	"github.com/rlb-project/rlb/internal/metrics"
	"github.com/rlb-project/rlb/internal/rng"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/topo"
	"github.com/rlb-project/rlb/internal/transport"
	"github.com/rlb-project/rlb/internal/units"
)

// fig8Schemes are the eight schemes of Fig. 8.
var fig8Schemes = []string{
	"presto", "presto+rlb", "letflow", "letflow+rlb",
	"hermes", "hermes+rlb", "drill", "drill+rlb",
}

// incastOutcome summarizes repeated incast initiations in one simulation.
type incastOutcome struct {
	OOORatio    float64
	MeanICTms   float64 // mean completion time of the last flow per initiation
	Initiations int
	Finished    int
}

// runIncast executes reps incast initiations of the given degree and total
// response size under one scheme and returns the aggregate outcome.
func runIncast(s Scale, schemeName string, degree, totalBytes, reps int, seed uint64) incastOutcome {
	p := s.TopoParams()
	MustScheme(schemeName, s.LinkDelay, nil).Apply(&p)

	type group struct {
		initAt sim.Time
		flows  []*transport.Flow
	}
	groups := make([]*group, 0, reps)
	// Space initiations so each completes before the next begins even with
	// contention slowdown: the client's downlink needs totalBytes/rate, and
	// PFC/retransmissions can stretch that several-fold.
	ideal := units.TxTime(totalBytes, p.LinkRate)
	gap := 4 * ideal
	if gap < s.Duration/sim.Time(reps) {
		gap = s.Duration / sim.Time(reps)
	}

	cfg := RunConfig{
		Topo:     p,
		Duration: sim.Time(reps) * gap,
		Drain:    s.Drain + 8*ideal,
		Seed:     seed,
		Inject: func(n *topo.Network) {
			r := rng.New(seed + 31)
			numHosts := len(n.Hosts)
			for rep := 0; rep < reps; rep++ {
				rep := rep
				at := sim.Time(rep) * gap
				n.Eng.At(at, func() {
					g := &group{initAt: n.Eng.Now()}
					groups = append(groups, g)
					client := r.Intn(numHosts)
					per := totalBytes / degree
					if per < 1 {
						per = 1
					}
					used := map[int]bool{client: true}
					for k := 0; k < degree && len(used) < numHosts; k++ {
						srv := r.Intn(numHosts)
						for used[srv] {
							srv = r.Intn(numHosts)
						}
						used[srv] = true
						g.flows = append(g.flows, n.StartFlow(srv, client, per))
					}
				})
			}
		},
	}
	res := Run(cfg)

	var ict metrics.Digest
	var all []*transport.Flow
	finished := 0
	for _, g := range groups {
		all = append(all, g.flows...)
		done := true
		var last sim.Time
		for _, f := range g.flows {
			if !f.Done {
				done = false
				break
			}
			if f.FinishAt > last {
				last = f.FinishAt
			}
		}
		if done && len(g.flows) > 0 {
			finished++
			ict.AddTime(last - g.initAt)
		}
	}
	rep := metrics.BuildFlowReport(all)
	_ = res
	return incastOutcome{
		OOORatio:    rep.OOORatio(),
		MeanICTms:   ict.Mean(),
		Initiations: len(groups),
		Finished:    finished,
	}
}

// incastSweep runs all eight schemes over a sweep dimension concurrently,
// averaging each point over the scale's seed count.
func incastSweep(s Scale, degrees []int, sizes []int, reps int, seed uint64) map[string][]incastOutcome {
	type job struct {
		scheme string
		degree int
		total  int
		seed   uint64
	}
	seeds := s.seeds()
	var jobs []job
	for _, scheme := range fig8Schemes {
		for i := range degrees {
			for k := 0; k < seeds; k++ {
				jobs = append(jobs, job{scheme, degrees[i], sizes[i], seed + uint64(k)*seedStride})
			}
		}
	}
	outs := make([]incastOutcome, len(jobs))
	sem := make(chan struct{}, maxWorkers(len(jobs)))
	done := make(chan struct{})
	for i := range jobs {
		i := i
		// Worker-isolation contract: runIncast constructs a private engine
		// and RNG streams from the job's value-typed fields; nothing mutable
		// is shared across workers. Each goroutine writes only outs[i], and
		// the aggregation below reads outs in the fixed fig8Schemes × degrees
		// order, so the sweep is deterministic regardless of worker count or
		// completion order.
		go func() {
			sem <- struct{}{}
			outs[i] = runIncast(s, jobs[i].scheme, jobs[i].degree, jobs[i].total, reps, jobs[i].seed)
			<-sem
			done <- struct{}{}
		}()
	}
	for range jobs {
		<-done
	}
	result := make(map[string][]incastOutcome)
	idx := 0
	for _, scheme := range fig8Schemes {
		points := make([]incastOutcome, len(degrees))
		for i := range degrees {
			var agg incastOutcome
			for k := 0; k < seeds; k++ {
				o := outs[idx]
				idx++
				agg.OOORatio += o.OOORatio
				agg.MeanICTms += o.MeanICTms
				agg.Initiations += o.Initiations
				agg.Finished += o.Finished
			}
			agg.OOORatio /= float64(seeds)
			agg.MeanICTms /= float64(seeds)
			points[i] = agg
		}
		result[scheme] = points
	}
	return result
}

// fig8Dims returns the degree and size sweeps for a scale. The paper sweeps
// degree 10-25 and response 4-10 MB; reduced fabrics scale both down.
func fig8Dims(s Scale) (degrees []int, sizes []int, fixedDegree int, fixedSize int) {
	hosts := s.Leaves * s.HostsPerLeaf
	maxDeg := hosts - 1
	degrees = sweepInts(maxDeg/3, maxDeg, 4)
	base := 4 * 1000 * 1000
	if s.MaxFlowBytes > 0 && base > s.MaxFlowBytes*4 {
		base = s.MaxFlowBytes * 4
	}
	sizes = []int{base, base * 3 / 2, base * 2, base * 5 / 2}
	fixedDegree = degrees[len(degrees)/2]
	fixedSize = base
	return
}

// Fig8Degree reproduces Fig. 8(a,c): out-of-order ratio and incast
// completion time vs. incast degree at a fixed total response size.
func Fig8Degree(s Scale, seed uint64) *Table {
	degrees, _, _, fixedSize := fig8Dims(s)
	t := &Table{
		Title:   fmt.Sprintf("Fig. 8(a,c) — incast: OOO%% and completion time vs. degree (response %dKB)", fixedSize/1000),
		Headers: []string{"scheme"},
	}
	for _, d := range degrees {
		t.Headers = append(t.Headers, fmt.Sprintf("ooo%%@%d", d), fmt.Sprintf("ict@%d", d))
	}
	sizes := make([]int, len(degrees))
	for i := range sizes {
		sizes[i] = fixedSize
	}
	outs := incastSweep(s, degrees, sizes, 5, seed)
	for _, scheme := range fig8Schemes {
		row := []interface{}{scheme}
		for _, o := range outs[scheme] {
			row = append(row, 100*o.OOORatio, o.MeanICTms)
		}
		t.AddRow(row...)
	}
	t.AddNote("ict in ms; paper sweeps degree 10..25 on 288 hosts, this scale %v on %d hosts",
		degrees, s.Leaves*s.HostsPerLeaf)
	return t
}

// Fig8Size reproduces Fig. 8(b,d): out-of-order ratio and incast completion
// time vs. total response size at a fixed degree.
func Fig8Size(s Scale, seed uint64) *Table {
	_, sizes, fixedDegree, _ := fig8Dims(s)
	t := &Table{
		Title:   fmt.Sprintf("Fig. 8(b,d) — incast: OOO%% and completion time vs. response size (degree %d)", fixedDegree),
		Headers: []string{"scheme"},
	}
	for _, sz := range sizes {
		t.Headers = append(t.Headers, fmt.Sprintf("ooo%%@%.1fMB", float64(sz)/1e6), fmt.Sprintf("ict@%.1fMB", float64(sz)/1e6))
	}
	degrees := make([]int, len(sizes))
	for i := range degrees {
		degrees[i] = fixedDegree
	}
	outs := incastSweep(s, degrees, sizes, 5, seed)
	for _, scheme := range fig8Schemes {
		row := []interface{}{scheme}
		for _, o := range outs[scheme] {
			row = append(row, 100*o.OOORatio, o.MeanICTms)
		}
		t.AddRow(row...)
	}
	t.AddNote("paper sweeps 4..10 MB; this scale sweeps %v bytes", sizes)
	return t
}
