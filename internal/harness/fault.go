package harness

import (
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/topo"
	"github.com/rlb-project/rlb/internal/units"
)

// KillUplinks builds the fault schedule for the canonical failure drill:
// take down `count` of leaf `leaf`'s spine uplinks (spines 0..count-1) at
// `at`, and — when `restore` is nonzero — bring them back at `restore`.
// Assign the result to RunConfig.Faults, e.g. "kill 2 of 8 spine uplinks at
// t=10ms":
//
//	cfg.Faults = harness.KillUplinks(0, 2, 10*sim.Millisecond, 0)
func KillUplinks(leaf, count int, at, restore sim.Time) []topo.Fault {
	var fs []topo.Fault
	for s := 0; s < count; s++ {
		fs = append(fs, topo.Fault{At: at, Kind: topo.LinkDown, Leaf: leaf, Spine: s})
		if restore > 0 {
			fs = append(fs, topo.Fault{At: restore, Kind: topo.LinkUp, Leaf: leaf, Spine: s})
		}
	}
	return fs
}

// DegradeUplinks builds a schedule degrading `count` of leaf `leaf`'s spine
// uplinks to `rate` at time `at` (the §4.2 asymmetry, but mid-run).
func DegradeUplinks(leaf, count int, at sim.Time, rate units.Bandwidth) []topo.Fault {
	var fs []topo.Fault
	for s := 0; s < count; s++ {
		fs = append(fs, topo.Fault{At: at, Kind: topo.LinkRate, Leaf: leaf, Spine: s, Rate: rate})
	}
	return fs
}
