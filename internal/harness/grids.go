package harness

import (
	"fmt"

	"github.com/rlb-project/rlb/internal/spec"
)

// This file declares every paper figure as a spec.Grid — a base Spec plus
// named axes — so the exact experiment behind each figure is inspectable
// (`figures -dump-spec`), replayable one cell at a time (`rlbsim -spec`), and
// executed by the one generic sweep engine (RunGrid) instead of per-figure
// loop code. Axis order matters: Cells expands row-major with the last axis
// fastest, which is the row/column order the table renderers consume.

// withRLBPairs interleaves each base scheme with its +rlb variant
// (presto, presto+rlb, letflow, letflow+rlb, ...).
func withRLBPairs(bases []string) []string {
	out := make([]string, 0, 2*len(bases))
	for _, b := range bases {
		out = append(out, b, b+spec.RLBSuffix)
	}
	return out
}

// Fig3Grid sweeps the four base schemes with PFC on/off in the Fig. 2
// motivation scenario.
func Fig3Grid(s Scale, seed uint64) spec.Grid {
	return spec.Grid{
		Name:  "fig3",
		Seeds: s.seeds(),
		Base:  s.MotivSpec(seed, 5, 2),
		Axes: []spec.Axis{
			{Field: "scheme", Strs: FourSchemes},
			{Field: "pfcOff", Ints: []int{0, 1}},
		},
	}
}

// Fig4PathsGrid sweeps the number of paths the congested flow sprays over.
func Fig4PathsGrid(s Scale, seed uint64) spec.Grid {
	return spec.Grid{
		Name:  "fig4_paths",
		Seeds: s.seeds(),
		Base:  s.MotivSpec(seed, 5, 2),
		Axes: []spec.Axis{
			{Field: "scheme", Strs: FourSchemes},
			{Field: "sprayPaths", Ints: sweepInts(1, s.MotivSpines, 6)},
		},
	}
}

// Fig4BurstsGrid sweeps the number of continuous burst waves.
func Fig4BurstsGrid(s Scale, seed uint64) spec.Grid {
	return spec.Grid{
		Name:  "fig4_bursts",
		Seeds: s.seeds(),
		Base:  s.MotivSpec(seed, 5, 2),
		Axes: []spec.Axis{
			{Field: "scheme", Strs: FourSchemes},
			{Field: "bursts", Ints: []int{1, 2, 3, 4, 5, 6}},
		},
	}
}

// Fig6Grid runs every base scheme with and without RLB under Web Search at
// 60% load on the symmetric fabric.
func Fig6Grid(s Scale, seed uint64) spec.Grid {
	base := s.Spec(seed)
	base.Workload = "websearch"
	base.LoadPct = 60
	return spec.Grid{
		Name:  "fig6",
		Seeds: s.seeds(),
		Base:  base,
		Axes: []spec.Axis{
			{Field: "scheme", Strs: withRLBPairs(FourSchemes)},
		},
	}
}

// Fig7Grid sweeps scheme x load on the asymmetric fabric for one workload.
func Fig7Grid(s Scale, wl string, seed uint64) spec.Grid {
	base := s.Spec(seed)
	base.Workload = wl
	base.AsymPct = 20
	return spec.Grid{
		Name:  "fig7_" + wl,
		Seeds: s.seeds(),
		Base:  base,
		Axes: []spec.Axis{
			{Field: "scheme", Strs: fig7Schemes},
			{Field: "loadPct", Ints: []int{20, 30, 40, 50, 60, 70}},
		},
	}
}

// fig8Base is the shared repeated-incast base: 5 initiations, no background
// workload (Compile enforces that the incast kind runs alone).
func fig8Base(s Scale, seed uint64) spec.Spec {
	base := s.Spec(seed)
	base.IncastReps = 5
	return base
}

// Fig8DegreeGrid sweeps incast degree at a fixed total response size.
func Fig8DegreeGrid(s Scale, seed uint64) spec.Grid {
	degrees, _, _, fixedSize := fig8Dims(s)
	base := fig8Base(s, seed)
	base.IncastKB = fixedSize / 1000
	return spec.Grid{
		Name:  "fig8_degree",
		Seeds: s.seeds(),
		Base:  base,
		Axes: []spec.Axis{
			{Field: "scheme", Strs: fig8Schemes},
			{Field: "incastDegree", Ints: degrees},
		},
	}
}

// Fig8SizeGrid sweeps total response size at a fixed incast degree.
func Fig8SizeGrid(s Scale, seed uint64) spec.Grid {
	_, sizes, fixedDegree, _ := fig8Dims(s)
	base := fig8Base(s, seed)
	base.IncastDegree = fixedDegree
	kbs := make([]int, len(sizes))
	for i, sz := range sizes {
		kbs[i] = sz / 1000
	}
	return spec.Grid{
		Name:  "fig8_size",
		Seeds: s.seeds(),
		Base:  base,
		Axes: []spec.Axis{
			{Field: "scheme", Strs: fig8Schemes},
			{Field: "incastKB", Ints: kbs},
		},
	}
}

// Fig9Grid is the recirculation ablation for one workload: Presto+RLB and
// Hermes+RLB with recirculation disabled (noRecirc=1 first, matching the
// paper's "W/O Recir." row order) vs. enabled, across three loads.
func Fig9Grid(s Scale, wl string, seed uint64) spec.Grid {
	base := s.Spec(seed)
	base.Workload = wl
	return spec.Grid{
		Name:  "fig9_" + wl,
		Seeds: s.seeds(),
		Base:  base,
		Axes: []spec.Axis{
			{Field: "scheme", Strs: []string{"presto+rlb", "hermes+rlb"}},
			{Field: "noRecirc", Ints: []int{1, 0}},
			{Field: "loadPct", Ints: []int{40, 60, 80}},
		},
	}
}

// fig10Grid is the shared Fig. 10 sensitivity base: the study scheme with RLB
// at 50% load, swept per workload by one parameter axis.
func fig10Grid(s Scale, seed uint64, name string, axis spec.Axis) spec.Grid {
	base := s.Spec(seed)
	base.Scheme = fig10Base + spec.RLBSuffix
	base.LoadPct = 50
	return spec.Grid{
		Name:  name,
		Seeds: s.seeds(),
		Base:  base,
		Axes: []spec.Axis{
			{Field: "workload", Strs: []string{"webserver", "datamining"}},
			axis,
		},
	}
}

// Fig10QthGrid sweeps the PFC-warning threshold fraction.
func Fig10QthGrid(s Scale, seed uint64) spec.Grid {
	return fig10Grid(s, seed, "fig10_qth",
		spec.Axis{Field: "qthFracPct", Ints: []int{20, 30, 40, 50, 60, 70, 80}})
}

// Fig10DeltaTGrid sweeps the queue-derivative sampling interval.
func Fig10DeltaTGrid(s Scale, seed uint64) spec.Grid {
	return fig10Grid(s, seed, "fig10_deltat",
		spec.Axis{Field: "deltaTNs", Ints: []int{2000, 2500, 3000, 3500, 4000, 4500, 5000}})
}

// ExtIRNGrids declares the extension experiment's three transport modes,
// each a scheme sweep over the two base LBs (letflow, drill) on the same
// fabric and workload. ExtIRN runs the cells base-major to keep the table's
// row order.
func ExtIRNGrids(s Scale, seed uint64) []spec.Grid {
	base := s.Spec(seed)
	base.Workload = "webserver"
	base.LoadPct = 60

	gbn := spec.Grid{Name: "ext_irn_pfc_gbn", Seeds: s.seeds(), Base: base.Clone(),
		Axes: []spec.Axis{{Field: "scheme", Strs: []string{"letflow", "drill"}}}}

	rlb := spec.Grid{Name: "ext_irn_pfc_gbn_rlb", Seeds: s.seeds(), Base: base.Clone(),
		Axes: []spec.Axis{{Field: "scheme", Strs: []string{"letflow+rlb", "drill+rlb"}}}}

	irnBase := base.Clone()
	irnBase.PFCOff = true
	irnBase.SelectiveRepeat = true
	irn := spec.Grid{Name: "ext_irn_lossy_irn", Seeds: s.seeds(), Base: irnBase,
		Axes: []spec.Axis{{Field: "scheme", Strs: []string{"letflow", "drill"}}}}

	return []spec.Grid{gbn, rlb, irn}
}

// FigureGrids returns the declarative grids behind a figure name as
// cmd/figures spells it ("3", "4", ..., "irn"). This is the registry
// `figures -dump-spec` serializes.
func FigureGrids(fig string, s Scale, seed uint64) ([]spec.Grid, error) {
	switch fig {
	case "3":
		return []spec.Grid{Fig3Grid(s, seed)}, nil
	case "4":
		return []spec.Grid{Fig4PathsGrid(s, seed), Fig4BurstsGrid(s, seed)}, nil
	case "6":
		return []spec.Grid{Fig6Grid(s, seed)}, nil
	case "7":
		var gs []spec.Grid
		for _, wl := range spec.WorkloadNames() {
			gs = append(gs, Fig7Grid(s, wl, seed))
		}
		return gs, nil
	case "8":
		return []spec.Grid{Fig8DegreeGrid(s, seed), Fig8SizeGrid(s, seed)}, nil
	case "9":
		return []spec.Grid{Fig9Grid(s, "webserver", seed), Fig9Grid(s, "datamining", seed)}, nil
	case "10":
		return []spec.Grid{Fig10QthGrid(s, seed), Fig10DeltaTGrid(s, seed)}, nil
	case "irn":
		return ExtIRNGrids(s, seed), nil
	}
	return nil, fmt.Errorf("harness: no grids for figure %q", fig)
}
