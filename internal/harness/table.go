package harness

import (
	"fmt"
	"strings"
)

// Table is a printable experiment result: a title, column headers, and rows
// of formatted cells. Figure builders return Tables; cmd/figures and the
// benchmarks print them.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends one row, formatting each cell with %v (floats as %.4g).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// CSV renders the table as comma-separated values (headers first, notes as
// trailing comment lines), for feeding plotting scripts.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	fmt.Fprintf(&b, "# %s\n", t.Title)
	for i, h := range t.Headers {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(esc(h))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, c := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteByte('\n')
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		b.WriteString("  note: ")
		b.WriteString(note)
		b.WriteByte('\n')
	}
	return b.String()
}
