package harness

import (
	"fmt"

	"github.com/rlb-project/rlb/internal/workload"
)

// Fig6 reproduces Fig. 6: the FCT distribution of every flow under the Web
// Search workload at 60% load on the symmetric topology, for each base
// scheme with and without RLB. The paper plots full CDFs; this table prints
// the distribution's quantiles plus the headline tail change.
func Fig6(s Scale, seed uint64) *Table {
	t := &Table{
		Title: "Fig. 6 — FCT of all flows, symmetric topology, Web Search @ 60% load",
		Headers: []string{"scheme", "done", "p25 (ms)", "p50 (ms)", "p75 (ms)",
			"p90 (ms)", "p99 (ms)", "AFCT (ms)", "OOO%"},
	}
	cells, results := MustRunGrid(Fig6Grid(s, seed))
	for i, c := range cells {
		r := results[i]
		t.AddRow(c.Scheme, r.Completed, r.P25, r.P50, r.P75, r.P90, r.P99, r.AFCT, r.OOOPct)
	}
	// Headline: tail change per base scheme (paper: cuts of 58/67/72/54%).
	for i := 0; i < len(cells); i += 2 {
		van, rlb := results[i], results[i+1]
		if van.P99 > 0 {
			red := 100 * (van.P99 - rlb.P99) / van.P99
			t.AddNote("%s: RLB changes p99 FCT by %+.0f%% (paper: cuts up to 58/67/72/54%% for presto/letflow/hermes/drill)",
				cells[i].Scheme, -red)
		}
	}
	return t
}

// Fig6CDF returns the raw FCT CDF points for one scheme (for plotting).
func Fig6CDF(s Scale, schemeName string, points int, seed uint64) ([]float64, error) {
	sch, err := SchemeByName(schemeName, s.LinkDelay, nil)
	if err != nil {
		return nil, err
	}
	p := s.TopoParams()
	sch.Apply(&p)
	res := Run(RunConfig{
		Topo: p, Workload: workload.WebSearch(), Load: 0.6,
		MaxFlowBytes: s.MaxFlowBytes, Duration: s.Duration, Drain: s.Drain, Seed: seed,
	})
	cdf := res.Report.FCT.CDF(points)
	out := make([]float64, len(cdf))
	for i, pt := range cdf {
		out[i] = pt.X
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("harness: no completed flows for %s", schemeName)
	}
	return out, nil
}
