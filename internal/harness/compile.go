package harness

import (
	"fmt"
	"strings"

	"github.com/rlb-project/rlb/internal/core"
	"github.com/rlb-project/rlb/internal/rng"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/spec"
	"github.com/rlb-project/rlb/internal/topo"
	"github.com/rlb-project/rlb/internal/units"
	"github.com/rlb-project/rlb/internal/workload"
)

// usTime converts integral microseconds to sim.Time.
func usTime(us int) sim.Time { return sim.Time(us) * sim.Microsecond }

// nsTime converts integral nanoseconds to sim.Time.
func nsTime(ns int) sim.Time { return sim.Time(ns) * sim.Nanosecond }

// specLinkDelay returns the spec's per-hop delay (default 2 µs).
func specLinkDelay(s spec.Spec) sim.Time {
	if s.LinkDelayNs > 0 {
		return nsTime(s.LinkDelayNs)
	}
	return 2 * sim.Microsecond
}

// specScale bundles a spec's dimensions as a Scale, the unit-conversion
// point between the integral spec fields and the simulator types. All
// threshold rescaling (PFC/ECN constants following the link rate) flows
// through Scale.ScaleSwitch, so spec-compiled fabrics pause exactly like
// figure-built ones; compile_test pins the equality.
func specScale(s spec.Spec) Scale {
	return Scale{
		Name:         "spec",
		Leaves:       s.Leaves,
		Spines:       s.Spines,
		HostsPerLeaf: s.HostsPerLeaf,
		LinkRate:     units.Bandwidth(s.LinkGbps) * units.Gbps,
		LinkDelay:    specLinkDelay(s),
		Duration:     usTime(s.DurationUs),
		Drain:        usTime(s.DrainUs),
		MaxFlowBytes: s.MaxFlowKB * 1000,
	}
}

// rlbParamsFor returns the custom RLB parameter block the spec's ablation
// knobs call for, or nil when every knob is default (SchemeByName then uses
// core.DefaultParams verbatim, which is behaviorally identical).
func rlbParamsFor(s spec.Spec, linkDelay sim.Time) *core.Params {
	if !s.NoRecirc && !s.NoOrderGuard && s.QthFracPct == 0 && s.DeltaTNs == 0 {
		return nil
	}
	p := core.DefaultParams(linkDelay)
	p.DisableRecirculation = s.NoRecirc
	p.DisableOrderGuard = s.NoOrderGuard
	if s.QthFracPct > 0 {
		p.QthFraction = float64(s.QthFracPct) / 100
	}
	if s.DeltaTNs > 0 {
		p.DeltaT = nsTime(s.DeltaTNs)
	}
	return &p
}

// specFaults renders the spec's fault windows as the topo fault schedule.
// Windows that restore (UpAtUs > DownAtUs) schedule both the break and the
// repair; non-restoring windows schedule the break only.
func specFaults(s spec.Spec, rate units.Bandwidth) []topo.Fault {
	var fs []topo.Fault
	for _, f := range s.Faults {
		if f.Kill() {
			fs = append(fs, topo.Fault{At: usTime(f.DownAtUs), Kind: topo.LinkDown, Leaf: f.Leaf, Spine: f.Spine})
			if f.Restores() {
				fs = append(fs, topo.Fault{At: usTime(f.UpAtUs), Kind: topo.LinkUp, Leaf: f.Leaf, Spine: f.Spine})
			}
		} else {
			fs = append(fs, topo.Fault{At: usTime(f.DownAtUs), Kind: topo.LinkRate, Leaf: f.Leaf, Spine: f.Spine, Rate: rate / units.Bandwidth(f.RateDiv)})
			if f.Restores() {
				fs = append(fs, topo.Fault{At: usTime(f.UpAtUs), Kind: topo.LinkRate, Leaf: f.Leaf, Spine: f.Spine, Rate: rate})
			}
		}
	}
	return fs
}

// Compile translates the canonical experiment spec into the RunConfig the
// harness executes — the single point where spec fields become simulator
// parameters, shared by the figure sweep engine, both CLIs, and the scenario
// fuzzer. It validates against the real registries (scheme, workload,
// scheduler, fault addresses) and returns errors that list the valid names.
//
// The compiled config always carries Context = s.Params(), so every
// invariant violation is labeled with the full reproducible parameter set in
// one format, no matter which layer launched the run.
func Compile(s spec.Spec) (RunConfig, error) {
	if s.Motiv != nil {
		return compileMotivation(s)
	}
	return compileFabric(s)
}

// MustCompile is Compile for code-authored specs, where an error is a bug.
func MustCompile(s spec.Spec) RunConfig {
	cfg, err := Compile(s)
	if err != nil {
		panic(fmt.Sprintf("harness: compile spec: %v", err))
	}
	return cfg
}

// validateShape checks the fields every kind shares.
func validateShape(s spec.Spec) error {
	if s.LinkGbps < 1 {
		return fmt.Errorf("linkGbps %d: need >= 1", s.LinkGbps)
	}
	if s.DurationUs <= 0 {
		return fmt.Errorf("durationUs %d: need > 0", s.DurationUs)
	}
	if s.DrainUs < 0 || s.MaxFlowKB < 0 || s.LoadPct < 0 {
		return fmt.Errorf("negative drainUs/maxFlowKB/loadPct")
	}
	if s.Scheduler != "" {
		if _, ok := sim.SchedulerByName(s.Scheduler); !ok {
			return fmt.Errorf("unknown scheduler %q (valid: calendar, heap)", s.Scheduler)
		}
	}
	if s.Telemetry != nil && s.Telemetry.SampleUs < 1 {
		return fmt.Errorf("telemetry sampleUs %d: need >= 1", s.Telemetry.SampleUs)
	}
	return nil
}

// specTelemetry returns the spec's sampling interval (0 = telemetry off).
func specTelemetry(s spec.Spec) sim.Time {
	if s.Telemetry == nil {
		return 0
	}
	return usTime(s.Telemetry.SampleUs)
}

// compileFabric builds the config for the fabric and repeated-incast kinds.
func compileFabric(s spec.Spec) (RunConfig, error) {
	if err := validateShape(s); err != nil {
		return RunConfig{}, err
	}
	if s.Leaves < 1 || s.Spines < 1 || s.HostsPerLeaf < 1 {
		return RunConfig{}, fmt.Errorf("fabric %dx%d/%d: need >= 1 leaves, spines, hosts per leaf",
			s.Leaves, s.Spines, s.HostsPerLeaf)
	}
	sc := specScale(s)
	p := sc.TopoParams()
	if s.AsymPct > 0 {
		p.AsymFraction = float64(s.AsymPct) / 100
		p.AsymRate = sc.LinkRate / 4
	}
	sch, err := SchemeByName(s.Scheme, sc.LinkDelay, rlbParamsFor(s, sc.LinkDelay))
	if err != nil {
		return RunConfig{}, err
	}
	sch.Apply(&p)
	if s.PFCOff {
		p.Switch.PFCEnabled = false
	}
	if s.SelectiveRepeat {
		p.Host.SelectiveRepeat = true
	}
	if s.ProbeUs > 0 {
		p.ProbeInterval = usTime(s.ProbeUs)
	}
	if s.Scheduler != "" {
		kind, _ := sim.SchedulerByName(s.Scheduler) // validated above
		p.Scheduler = kind
	}
	for _, f := range s.Faults {
		if f.Leaf < 0 || f.Leaf >= s.Leaves || f.Spine < 0 || f.Spine >= s.Spines {
			return RunConfig{}, fmt.Errorf("fault on link (l%d,s%d) outside the %dx%d fabric",
				f.Leaf, f.Spine, s.Leaves, s.Spines)
		}
	}

	if s.IncastReps > 0 {
		if s.Workload != "" || s.LoadPct > 0 {
			return RunConfig{}, fmt.Errorf("incastReps runs the dedicated repeated-incast experiment; background workload/load must be empty")
		}
		if s.IncastDegree < 1 || s.IncastKB < 1 {
			return RunConfig{}, fmt.Errorf("incastReps %d needs incastDegree >= 1 and incastKB >= 1", s.IncastReps)
		}
		return compileIncastReps(s, sc, p), nil
	}

	var dist *workload.SizeDist
	if s.Workload != "" {
		dist, err = workload.ByName(s.Workload)
		if err != nil {
			return RunConfig{}, err
		}
	}

	sp := s // captured by the inject hook below
	var inject func(n *topo.Network)
	if sp.LeakPutEvery > 0 || sp.IncastDegree >= 2 {
		inject = func(n *topo.Network) {
			if sp.LeakPutEvery > 0 {
				n.PacketPool().LeakEvery = sp.LeakPutEvery
			}
			if sp.IncastDegree >= 2 {
				var servers []int
				hosts := sp.Leaves * sp.HostsPerLeaf
				for h := 0; h < hosts && len(servers) < sp.IncastDegree; h++ {
					if h != sp.IncastClient {
						servers = append(servers, h)
					}
				}
				n.Eng.At(usTime(sp.IncastAtUs), func() {
					workload.Incast(n.Starter(), sp.IncastClient, servers, sp.IncastKB*1000)
				})
			}
		}
	}

	return RunConfig{
		Topo:             p,
		Workload:         dist,
		Load:             float64(s.LoadPct) / 100,
		MaxFlowBytes:     sc.MaxFlowBytes,
		Duration:         sc.Duration,
		Drain:            sc.Drain,
		Inject:           inject,
		Faults:           specFaults(s, sc.LinkRate),
		StrictInvariants: s.Strict,
		Context:          s.Params(),
		Seed:             s.SimSeed,
		Telemetry:        specTelemetry(s),
	}, nil
}

// compileIncastReps builds the Fig. 8 repeated-incast experiment: IncastReps
// initiations, each a fan-in of IncastDegree randomly drawn servers sending
// IncastKB total to a randomly drawn client. Initiations are spaced so each
// completes before the next begins even with contention slowdown: the
// client's downlink needs totalBytes/rate, and PFC/retransmissions can
// stretch that several-fold. The network is retained so incastMetrics can
// reconstruct the per-initiation groups.
func compileIncastReps(s spec.Spec, sc Scale, p topo.Params) RunConfig {
	totalBytes := s.IncastKB * 1000
	reps := s.IncastReps
	degree := s.IncastDegree
	ideal := units.TxTime(totalBytes, p.LinkRate)
	gap := 4 * ideal
	if gap < sc.Duration/sim.Time(reps) {
		gap = sc.Duration / sim.Time(reps)
	}
	seed := s.SimSeed
	return RunConfig{
		Topo:             p,
		Duration:         sim.Time(reps) * gap,
		Drain:            sc.Drain + 8*ideal,
		Seed:             seed,
		KeepNetwork:      true,
		StrictInvariants: s.Strict,
		Context:          s.Params(),
		Telemetry:        specTelemetry(s),
		Inject: func(n *topo.Network) {
			r := rng.New(seed + 31)
			numHosts := len(n.Hosts)
			for rep := 0; rep < reps; rep++ {
				at := sim.Time(rep) * gap
				n.Eng.At(at, func() {
					client := r.Intn(numHosts)
					per := totalBytes / degree
					if per < 1 {
						per = 1
					}
					used := map[int]bool{client: true}
					for k := 0; k < degree && len(used) < numHosts; k++ {
						srv := r.Intn(numHosts)
						for used[srv] {
							srv = r.Intn(numHosts)
						}
						used[srv] = true
						n.StartFlow(srv, client, per)
					}
				})
			}
		},
	}
}

// incastGap recomputes the initiation spacing compileIncastReps used, so the
// metrics extractor can reconstruct initiation times from the spec alone.
func incastGap(s spec.Spec) sim.Time {
	sc := specScale(s)
	ideal := units.TxTime(s.IncastKB*1000, sc.LinkRate)
	gap := 4 * ideal
	if gap < sc.Duration/sim.Time(s.IncastReps) {
		gap = sc.Duration / sim.Time(s.IncastReps)
	}
	return gap
}

// compileMotivation builds the Fig. 2 scenario config from a motivation-kind
// spec. The topology is derived (2 leaves x Motiv.Spines, host count from
// Motiv.Hosts); the spec's fabric shape fields are ignored. The network is
// retained so specMetrics can separate the background (victim) flows.
func compileMotivation(s spec.Spec) (RunConfig, error) {
	if err := validateShape(s); err != nil {
		return RunConfig{}, err
	}
	m := s.Motiv
	if m.Spines < 1 || m.Hosts < 1 {
		return RunConfig{}, fmt.Errorf("motiv %d paths / %d pairs: need >= 1 of each", m.Spines, m.Hosts)
	}
	if m.SprayPaths < 1 {
		return RunConfig{}, fmt.Errorf("motiv sprayPaths %d: need >= 1", m.SprayPaths)
	}
	ms, err := toMotivationSpec(s)
	if err != nil {
		return RunConfig{}, err
	}
	cfg, _ := motivationConfig(ms)
	if s.Scheduler != "" {
		kind, _ := sim.SchedulerByName(s.Scheduler) // validated above
		cfg.Topo.Scheduler = kind
	}
	cfg.Context = s.Params()
	cfg.Telemetry = specTelemetry(s)
	return cfg, nil
}

// toMotivationSpec bridges a motivation-kind spec onto the legacy
// MotivationSpec API (kept for direct callers and tests).
func toMotivationSpec(s spec.Spec) (MotivationSpec, error) {
	sc := specScale(s)
	sc.MotivSpines = s.Motiv.Spines
	sc.MotivHosts = s.Motiv.Hosts
	sch, err := SchemeByName(s.Scheme, sc.LinkDelay, rlbParamsFor(s, sc.LinkDelay))
	if err != nil {
		return MotivationSpec{}, err
	}
	return MotivationSpec{
		Scale:            sc,
		Scheme:           sch,
		PFCEnabled:       !s.PFCOff,
		SprayPaths:       s.Motiv.SprayPaths,
		Bursts:           s.Motiv.Bursts,
		BgLoad:           float64(s.Motiv.BgLoadPct) / 100,
		StrictInvariants: s.Strict,
		Seed:             s.SimSeed,
	}, nil
}

// schemeNameList is the valid-name suffix for unknown-scheme errors.
func schemeNameList() string { return strings.Join(spec.SchemeNames(), ", ") }
