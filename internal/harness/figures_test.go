package harness

import (
	"strings"
	"testing"

	"github.com/rlb-project/rlb/internal/workload"
)

func wlWebServer() *workload.SizeDist { return workload.WebServer() }

// Figure-builder smoke tests at the tiny test scale: each figure's code path
// must produce a well-formed table with the expected rows.

func TestFig3Builds(t *testing.T) {
	tbl := Fig3(testScale, 3)
	if len(tbl.Rows) != 8 { // 4 schemes x pfc on/off
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	out := tbl.String()
	for _, scheme := range FourSchemes {
		if !strings.Contains(out, scheme) {
			t.Fatalf("missing scheme %s:\n%s", scheme, out)
		}
	}
	// PFC-off rows must report a zero pause rate.
	for _, row := range tbl.Rows {
		if row[1] == "off" && row[2] != "0" {
			t.Fatalf("pause rate nonzero without PFC: %v", row)
		}
	}
}

func TestFig4Builds(t *testing.T) {
	a := Fig4Paths(testScale, 3)
	b := Fig4Bursts(testScale, 3)
	if len(a.Rows) != 4 || len(b.Rows) != 4 {
		t.Fatalf("rows = %d/%d", len(a.Rows), len(b.Rows))
	}
	if len(b.Headers) != 7 { // scheme + 6 burst counts
		t.Fatalf("fig4b headers = %v", b.Headers)
	}
}

func TestFig6Builds(t *testing.T) {
	tbl := Fig6(testScale, 3)
	if len(tbl.Rows) != 8 { // 4 schemes x {vanilla, +rlb}
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if !strings.Contains(tbl.String(), "drill+rlb") {
		t.Fatal("rlb rows missing")
	}
}

func TestFig9Builds(t *testing.T) {
	tables := Fig9(testScale, 3)
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) != 4 {
			t.Fatalf("rows = %d", len(tbl.Rows))
		}
		if !strings.Contains(tbl.Rows[0][0], "w/o recir.") {
			t.Fatalf("ablation label missing: %v", tbl.Rows[0])
		}
	}
}

func TestFig10Builds(t *testing.T) {
	tbl := Fig10Qth(testScale, 3)
	if len(tbl.Rows) != 2 || len(tbl.Headers) != 8 {
		t.Fatalf("shape = %dx%d", len(tbl.Rows), len(tbl.Headers))
	}
	// Normalized values: every row's minimum must be 1.
	for _, row := range tbl.Rows {
		found := false
		for _, c := range row[1:] {
			if c == "1" {
				found = true
			}
		}
		if !found {
			t.Fatalf("row not normalized to 1: %v", row)
		}
	}
}

func TestExtIRNBuilds(t *testing.T) {
	tbl := ExtIRN(testScale, 3)
	if len(tbl.Rows) != 6 { // 2 bases x 3 modes
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// The lossy rows must show zero pause rate.
	for _, row := range tbl.Rows {
		if row[1] == "lossy+irn" && row[5] != "0" {
			t.Fatalf("IRN row has pauses: %v", row)
		}
	}
}

func TestFig8Builds(t *testing.T) {
	tbl := Fig8Degree(testScale, 3)
	if len(tbl.Rows) != len(fig8Schemes) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{Title: "T", Headers: []string{"a", "b,c"}}
	tbl.AddRow("x\"y", 1.5)
	tbl.AddNote("n")
	csv := tbl.CSV()
	for _, want := range []string{"# T\n", `a,"b,c"`, `"x""y",1.5`, "# n"} {
		if !strings.Contains(csv, want) {
			t.Fatalf("CSV missing %q:\n%s", want, csv)
		}
	}
}

func TestCongaSchemeRuns(t *testing.T) {
	s, err := SchemeByName("conga+rlb", testScale.LinkDelay, nil)
	if err != nil || s.RLB == nil {
		t.Fatalf("conga+rlb: %v", err)
	}
	p := testScale.TopoParams()
	s.Apply(&p)
	res := Run(RunConfig{
		Topo: p, Workload: wlWebServer(), Load: 0.3,
		MaxFlowBytes: testScale.MaxFlowBytes,
		Duration:     testScale.Duration, Drain: testScale.Drain, Seed: 1,
	})
	if res.Report.Completed == 0 {
		t.Fatal("no flows completed under conga+rlb")
	}
	if res.Drops != 0 {
		t.Fatalf("%d drops", res.Drops)
	}
}
