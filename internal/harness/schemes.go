package harness

import (
	"fmt"
	"strings"

	"github.com/rlb-project/rlb/internal/core"
	"github.com/rlb-project/rlb/internal/fabric"
	"github.com/rlb-project/rlb/internal/lb"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/topo"
)

// Scheme is one evaluated configuration: a base load balancer, optionally
// with RLB layered on top.
type Scheme struct {
	Name string
	LB   lb.Factory
	// RLB is nil for vanilla schemes.
	RLB *core.Params
}

// baseFactory returns the base LB factory by name, with parameters matched
// to the paper's configurations.
func baseFactory(name string, linkDelay sim.Time) (lb.Factory, error) {
	switch name {
	case "ecmp":
		return lb.NewECMP(), nil
	case "presto":
		return lb.NewPresto(64*1000, fabric.DefaultMTU), nil
	case "letflow":
		return lb.NewLetFlow(50 * sim.Microsecond), nil
	case "hermes":
		return lb.NewHermes(fabric.DefaultMTU, 2*linkDelay), nil
	case "conga":
		return lb.NewCONGA(50 * sim.Microsecond), nil
	case "drill":
		return lb.NewDRILL(2, 1), nil
	default:
		return nil, fmt.Errorf("harness: unknown scheme %q (valid: %s)", name, schemeNameList())
	}
}

// SchemeByName builds a Scheme from names like "presto", "drill+rlb".
// rlbParams customizes RLB; pass nil for defaults.
func SchemeByName(name string, linkDelay sim.Time, rlbParams *core.Params) (Scheme, error) {
	base, withRLB := name, false
	if strings.HasSuffix(name, "+rlb") {
		base, withRLB = strings.TrimSuffix(name, "+rlb"), true
	}
	f, err := baseFactory(base, linkDelay)
	if err != nil {
		return Scheme{}, err
	}
	s := Scheme{Name: name, LB: f}
	if withRLB {
		if rlbParams != nil {
			p := *rlbParams
			s.RLB = &p
		} else {
			p := core.DefaultParams(linkDelay)
			s.RLB = &p
		}
	}
	return s, nil
}

// MustScheme is SchemeByName that panics on error (for internal tables).
func MustScheme(name string, linkDelay sim.Time, rlbParams *core.Params) Scheme {
	s, err := SchemeByName(name, linkDelay, rlbParams)
	if err != nil {
		panic(err)
	}
	return s
}

// Apply installs the scheme into topology params.
func (s Scheme) Apply(p *topo.Params) {
	p.LB = s.LB
	p.RLB = s.RLB
}

// FourSchemes lists the paper's four base schemes in presentation order.
var FourSchemes = []string{"presto", "letflow", "hermes", "drill"}
