package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/rlb-project/rlb/internal/spec"
	"github.com/rlb-project/rlb/internal/telemetry"
)

// Refresh the telemetry golden after an intentional behavior change:
//
//	go test ./internal/harness/ -run TestTelemetryGoldenJSONL -update-telemetry
var updateTelemetry = flag.Bool("update-telemetry", false, "rewrite testdata/telemetry_golden.jsonl")

// telemetrySpec is the pinned scenario behind the telemetry golden: small
// enough to run in a unit test, busy enough that queues build, PFC fires,
// and DCQCN reacts — so the sampled series actually move.
func telemetrySpec() spec.Spec {
	return spec.Spec{
		SimSeed: goldenSeed, Leaves: 2, Spines: 2, HostsPerLeaf: 2, LinkGbps: 10,
		Scheme: "drill+rlb", Workload: "websearch", LoadPct: 40,
		MaxFlowKB: 100, DurationUs: 200, DrainUs: 300,
		Telemetry: &spec.TelemetrySpec{SampleUs: 20},
	}
}

// TestTelemetryFingerprintParity is the observation-only contract: the same
// spec must produce a bit-identical determinism fingerprint — including every
// retained flow's finish time — with telemetry sampling on and off. Sampler
// events may interleave with simulation events on the calendar, but they read
// state without mutating it, so nothing downstream may shift.
func TestTelemetryFingerprintParity(t *testing.T) {
	run := func(s spec.Spec) (string, *telemetry.Recording) {
		cfg := MustCompile(s)
		cfg.KeepNetwork = true
		cfg.StrictInvariants = true
		res := Run(cfg)
		if len(res.Violations) != 0 {
			t.Fatalf("invariant violations: %v", res.Violations[0])
		}
		fp := Fingerprint(res)
		res.Network = nil
		return fp, res.Telemetry
	}

	with := telemetrySpec()
	without := telemetrySpec()
	without.Telemetry = nil

	fpOn, rec := run(with)
	fpOff, recOff := run(without)

	if rec == nil {
		t.Fatal("telemetry spec produced no recording")
	}
	if recOff != nil {
		t.Fatal("telemetry-off run attached a recording")
	}
	if len(rec.Times) < 10 || len(rec.Names) == 0 {
		t.Fatalf("implausibly small recording: %d samples x %d probes", len(rec.Times), len(rec.Names))
	}
	if fpOn != fpOff {
		t.Fatalf("telemetry sampling perturbed the simulation:\non:  %s\noff: %s", fpOn, fpOff)
	}
}

// TestTelemetryGoldenJSONL pins the exported JSONL byte-for-byte: probe set,
// sample times, and every sampled value for the pinned spec at goldenSeed.
// Any diff means either the exporter format changed or the simulation's
// observable state trajectory changed — both require a deliberate refresh
// with -update-telemetry and a CHANGES.md note.
func TestTelemetryGoldenJSONL(t *testing.T) {
	res := Run(MustCompile(telemetrySpec()))
	if res.Telemetry == nil {
		t.Fatal("no recording")
	}
	if res.Telemetry.Dropped != 0 {
		t.Fatalf("sampler dropped %d samples; capacity math is wrong", res.Telemetry.Dropped)
	}
	var buf bytes.Buffer
	if err := telemetry.WriteJSONL(&buf, res.Telemetry); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "telemetry_golden.jsonl")
	if *updateTelemetry {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, buf.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no telemetry golden (run with -update-telemetry to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		got := buf.Bytes()
		line := 1
		for i := 0; i < len(got) && i < len(want); i++ {
			if got[i] != want[i] {
				break
			}
			if got[i] == '\n' {
				line++
			}
		}
		t.Fatalf("telemetry JSONL drifted from golden at line %d (got %d bytes, want %d); refresh with -update-telemetry if intentional",
			line, len(got), len(want))
	}
}
