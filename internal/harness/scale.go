package harness

import (
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/spec"
	"github.com/rlb-project/rlb/internal/switchsim"
	"github.com/rlb-project/rlb/internal/topo"
	"github.com/rlb-project/rlb/internal/units"
	"github.com/rlb-project/rlb/internal/workload"
)

// Scale bundles the fabric size and run length used by the figure builders.
// Per-packet simulation of the paper's full 288-host 40 Gb/s fabric over
// seconds of traffic is CPU-days of work, so the default Scale is reduced;
// the relative orderings the figures demonstrate are preserved (DESIGN.md,
// substitution 4). Use PaperScale for full-size runs.
type Scale struct {
	Name         string
	Leaves       int
	Spines       int
	HostsPerLeaf int
	LinkRate     units.Bandwidth
	LinkDelay    sim.Time
	// Duration is the traffic window; Drain lets in-flight flows finish.
	Duration sim.Time
	Drain    sim.Time
	// MaxFlowBytes truncates elephant flows so they can complete within the
	// reduced window (0 = no cap).
	MaxFlowBytes int
	// MotivSpines / MotivHosts size the Fig. 2 two-leaf scenario.
	MotivSpines int
	MotivHosts  int
	// Seeds is how many seeds each figure point averages over.
	Seeds int
}

// seeds returns the averaging count, at least 1.
func (s Scale) seeds() int {
	if s.Seeds < 1 {
		return 1
	}
	return s.Seeds
}

// BenchScale is sized for `go test -bench`: a couple of seconds per figure.
var BenchScale = Scale{
	Name: "bench", Leaves: 3, Spines: 4, HostsPerLeaf: 4,
	LinkRate: 10 * units.Gbps, LinkDelay: 2 * sim.Microsecond,
	Duration: 3 * sim.Millisecond, Drain: 9 * sim.Millisecond,
	MaxFlowBytes: 2 * 1000 * 1000,
	MotivSpines:  8, MotivHosts: 10,
	Seeds: 2,
}

// DefaultScale is the cmd/figures default: minutes for the full set.
var DefaultScale = Scale{
	Name: "default", Leaves: 4, Spines: 6, HostsPerLeaf: 6,
	LinkRate: 10 * units.Gbps, LinkDelay: 2 * sim.Microsecond,
	Duration: 5 * sim.Millisecond, Drain: 15 * sim.Millisecond,
	MaxFlowBytes: 5 * 1000 * 1000,
	MotivSpines:  12, MotivHosts: 16,
	Seeds: 3,
}

// ScaleTier is the large-topology benchmark tier (BenchmarkScaleFabric* in
// bench_test.go): a fabric with an order of magnitude more hosts and links
// than BenchScale, so the event queue carries the port count the scheduler
// was sized for. One scheme, one seed — the tier measures engine throughput
// at scale, not figure statistics.
var ScaleTier = Scale{
	Name: "scale", Leaves: 8, Spines: 8, HostsPerLeaf: 8,
	LinkRate: 10 * units.Gbps, LinkDelay: 2 * sim.Microsecond,
	Duration: 2 * sim.Millisecond, Drain: 6 * sim.Millisecond,
	MaxFlowBytes: 2 * 1000 * 1000,
	MotivSpines:  8, MotivHosts: 10,
	Seeds: 1,
}

// PaperScale matches the paper's §4 settings (very slow on one machine).
var PaperScale = Scale{
	Name: "paper", Leaves: 12, Spines: 12, HostsPerLeaf: 24,
	LinkRate: 40 * units.Gbps, LinkDelay: 2 * sim.Microsecond,
	Duration: 20 * sim.Millisecond, Drain: 60 * sim.Millisecond,
	MaxFlowBytes: 0,
	MotivSpines:  40, MotivHosts: 100,
	Seeds: 3,
}

// ScaleByName resolves "bench", "scale", "default" or "paper".
func ScaleByName(name string) (Scale, bool) {
	switch name {
	case "bench":
		return BenchScale, true
	case "scale":
		return ScaleTier, true
	case "default":
		return DefaultScale, true
	case "paper":
		return PaperScale, true
	}
	return Scale{}, false
}

// ScaleThroughput runs one simulation of the Web Search workload at 60% load
// on Scale s under the named scheme and returns its Result — the scale
// benchmark tier's unit of work. Figure builders average several schemes and
// seeds; this deliberately runs one fabric so events/sec reflects the engine,
// not harness fan-out.
func ScaleThroughput(s Scale, schemeName string, seed uint64) *Result {
	p := s.TopoParams()
	MustScheme(schemeName, s.LinkDelay, nil).Apply(&p)
	return Run(RunConfig{
		Topo: p, Workload: workload.WebSearch(), Load: 0.6,
		MaxFlowBytes: s.MaxFlowBytes, Duration: s.Duration, Drain: s.Drain, Seed: seed,
	})
}

// TopoParams returns symmetric fabric params for this scale.
func (s Scale) TopoParams() topo.Params {
	p := topo.Default(s.Leaves, s.Spines, s.HostsPerLeaf)
	p.LinkRate = s.LinkRate
	p.LinkDelay = s.LinkDelay
	s.ScaleSwitch(&p.Switch)
	return p
}

// ScaleSwitch rescales the paper's 40 Gb/s switch thresholds to this scale's
// link rate, preserving the time constants (a 256 KB PFC threshold at
// 40 Gb/s is ~51 us of line rate; the same microseconds at 10 Gb/s are
// 64 KB). Without this, reduced-rate fabrics would never trigger PFC. The
// PFC threshold is tightened by a further 2x because a reduced fabric also
// has proportionally fewer simultaneous flows per port than the paper's
// 288-host fabric, so transient bursts aggregate less (see EXPERIMENTS.md).
func (s Scale) ScaleSwitch(cfg *switchsim.Config) {
	ratio := float64(s.LinkRate) / float64(40*units.Gbps)
	if ratio >= 1 {
		return
	}
	scale := func(v int, r float64) int {
		w := int(float64(v) * r)
		if w < 2000 {
			w = 2000
		}
		return w
	}
	cfg.PFCThreshold = scale(cfg.PFCThreshold, ratio/2)
	cfg.ECNKmin = scale(cfg.ECNKmin, ratio)
	cfg.ECNKmax = scale(cfg.ECNKmax, ratio)
	// The shared pool keeps the paper's 9 MB: shrinking it would introduce
	// tail drops in the PFC-off baselines that the paper's setup never has.
}

// Spec renders this scale as a canonical fabric-kind spec base: the fabric
// shape, link rate/delay, window, and flow cap in the spec's integral units.
// Scheme/workload/load stay empty for the figure grids' axes to fill. Every
// committed Scale has microsecond-aligned durations and kilobyte-aligned
// caps, so the conversion is exact and Compile(s.Spec(seed)) reproduces
// s.TopoParams() bit-for-bit (compile_test pins it).
func (s Scale) Spec(seed uint64) spec.Spec {
	return spec.Spec{
		SimSeed:      seed,
		Leaves:       s.Leaves,
		Spines:       s.Spines,
		HostsPerLeaf: s.HostsPerLeaf,
		LinkGbps:     int(s.LinkRate / units.Gbps),
		LinkDelayNs:  int(s.LinkDelay / sim.Nanosecond),
		MaxFlowKB:    s.MaxFlowBytes / 1000,
		DurationUs:   int(s.Duration / sim.Microsecond),
		DrainUs:      int(s.Drain / sim.Microsecond),
	}
}

// MotivSpec renders this scale as a motivation-kind spec base (the Fig. 2
// scenario). The fabric shape fields are zeroed — the motivation topology is
// derived from the Motiv block — and the scheme axis fills Scheme.
func (s Scale) MotivSpec(seed uint64, sprayPaths, bursts int) spec.Spec {
	sp := s.Spec(seed)
	sp.Leaves, sp.Spines, sp.HostsPerLeaf = 0, 0, 0
	sp.Motiv = &spec.MotivSpec{
		Spines:     s.MotivSpines,
		Hosts:      s.MotivHosts,
		SprayPaths: sprayPaths,
		Bursts:     bursts,
	}
	return sp
}

// AsymTopoParams returns the §4.2 asymmetric fabric: 20% of leaf-spine links
// at a quarter of the rate (the paper's 40 -> 10 Gb/s).
func (s Scale) AsymTopoParams() topo.Params {
	p := s.TopoParams()
	p.AsymFraction = 0.2
	p.AsymRate = s.LinkRate / 4
	return p
}
