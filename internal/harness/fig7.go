package harness

import (
	"fmt"

	"github.com/rlb-project/rlb/internal/workload"
)

// fig7Loads are the offered loads swept in Fig. 7.
var fig7Loads = []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7}

// fig7Schemes are the schemes compared in Fig. 7.
var fig7Schemes = []string{"drill", "drill+rlb", "hermes", "hermes+rlb"}

// Fig7 reproduces Fig. 7: average FCT on the asymmetric topology (20% of
// leaf-spine links at quarter rate) for DRILL and Hermes with and without
// RLB, across the four realistic workloads and loads 0.2-0.7.
func Fig7(s Scale, seed uint64) []*Table {
	var tables []*Table
	for _, dist := range workload.All() {
		tables = append(tables, fig7One(s, dist, seed))
	}
	return tables
}

// Fig7Workload runs Fig. 7 for a single named workload.
func Fig7Workload(s Scale, name string, seed uint64) (*Table, error) {
	dist, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	return fig7One(s, dist, seed), nil
}

func fig7One(s Scale, dist *workload.SizeDist, seed uint64) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Fig. 7 — AFCT (ms) on asymmetric topology, %s workload", dist.Name),
		Headers: []string{"scheme"},
	}
	for _, l := range fig7Loads {
		t.Headers = append(t.Headers, fmt.Sprintf("load %.1f", l))
	}
	var cfgs []RunConfig
	for _, name := range fig7Schemes {
		for _, load := range fig7Loads {
			p := s.AsymTopoParams()
			MustScheme(name, s.LinkDelay, nil).Apply(&p)
			cfgs = append(cfgs, RunConfig{
				Topo:         p,
				Workload:     dist,
				Load:         load,
				MaxFlowBytes: s.MaxFlowBytes,
				Duration:     s.Duration,
				Drain:        s.Drain,
				Seed:         seed,
			})
		}
	}
	results := RunAveraged(cfgs, s.seeds())
	idx := 0
	for _, name := range fig7Schemes {
		row := []interface{}{name}
		for range fig7Loads {
			row = append(row, results[idx].AFCT)
			idx++
		}
		t.AddRow(row...)
	}
	return t
}
