package harness

import (
	"fmt"

	"github.com/rlb-project/rlb/internal/spec"
	"github.com/rlb-project/rlb/internal/workload"
)

// fig7Schemes are the schemes compared in Fig. 7.
var fig7Schemes = []string{"drill", "drill+rlb", "hermes", "hermes+rlb"}

// Fig7 reproduces Fig. 7: average FCT on the asymmetric topology (20% of
// leaf-spine links at quarter rate) for DRILL and Hermes with and without
// RLB, across the four realistic workloads and loads 0.2-0.7.
func Fig7(s Scale, seed uint64) []*Table {
	var tables []*Table
	for _, wl := range spec.WorkloadNames() {
		tables = append(tables, fig7One(s, wl, seed))
	}
	return tables
}

// Fig7Workload runs Fig. 7 for a single named workload.
func Fig7Workload(s Scale, name string, seed uint64) (*Table, error) {
	if _, err := workload.ByName(name); err != nil {
		return nil, err
	}
	return fig7One(s, name, seed), nil
}

func fig7One(s Scale, wl string, seed uint64) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Fig. 7 — AFCT (ms) on asymmetric topology, %s workload", wl),
		Headers: []string{"scheme"},
	}
	g := Fig7Grid(s, wl, seed)
	loads := g.Axes[1].Ints
	for _, l := range loads {
		t.Headers = append(t.Headers, fmt.Sprintf("load %.1f", float64(l)/100))
	}
	_, results := MustRunGrid(g)
	idx := 0
	for _, name := range fig7Schemes {
		row := []interface{}{name}
		for range loads {
			row = append(row, results[idx].AFCT)
			idx++
		}
		t.AddRow(row...)
	}
	return t
}
