package harness

import (
	"testing"

	"github.com/rlb-project/rlb/internal/workload"
)

func averageTestCfg(load float64) RunConfig {
	p := testScale.TopoParams()
	MustScheme("ecmp", testScale.LinkDelay, nil).Apply(&p)
	return RunConfig{
		Topo: p, Workload: workload.WebServer(), Load: load,
		MaxFlowBytes: testScale.MaxFlowBytes,
		Duration:     testScale.Duration, Drain: testScale.Drain, Seed: 5,
	}
}

func TestRunAveragedShape(t *testing.T) {
	cfgs := []RunConfig{averageTestCfg(0.2), averageTestCfg(0.4)}
	out := RunAveraged(cfgs, 2)
	if len(out) != 2 {
		t.Fatalf("%d results", len(out))
	}
	for i, m := range out {
		if m.Seeds != 2 {
			t.Fatalf("Seeds = %d", m.Seeds)
		}
		if m.Completed <= 0 || m.AFCT <= 0 {
			t.Fatalf("cfg %d: empty metrics %+v", i, m)
		}
		// Percentiles must be ordered.
		if !(m.P25 <= m.P50 && m.P50 <= m.P75 && m.P75 <= m.P90 && m.P90 <= m.P99) {
			t.Fatalf("cfg %d: percentiles not monotone: %+v", i, m)
		}
	}
	// More load, more flows.
	if out[1].Completed <= out[0].Completed {
		t.Fatalf("flow counts not increasing with load: %v vs %v", out[0].Completed, out[1].Completed)
	}
}

func TestRunAveragedSingleSeedMatchesRun(t *testing.T) {
	cfg := averageTestCfg(0.3)
	direct := Run(cfg)
	avg := RunAveraged([]RunConfig{cfg}, 1)[0]
	if avg.AFCT != direct.Report.AvgFCTms() {
		t.Fatalf("single-seed average %v != direct %v", avg.AFCT, direct.Report.AvgFCTms())
	}
	if avg.Completed != float64(direct.Report.Completed) {
		t.Fatal("completed mismatch")
	}
}

func TestRunAveragedClampsSeeds(t *testing.T) {
	out := RunAveraged([]RunConfig{averageTestCfg(0.2)}, 0)
	if out[0].Seeds != 1 {
		t.Fatalf("seeds not clamped: %d", out[0].Seeds)
	}
}

func TestRunMotivationsAveraged(t *testing.T) {
	specs := []MotivationSpec{{
		Scale: testScale, Scheme: motivScheme("presto", testScale),
		PFCEnabled: true, SprayPaths: 2, Bursts: 2, Seed: 3,
	}}
	out := RunMotivationsAveraged(specs, 2)
	if len(out) != 1 {
		t.Fatalf("%d results", len(out))
	}
	if out[0].Completed <= 0 {
		t.Fatalf("no background flows completed: %+v", out[0])
	}
	if out[0].PauseRate <= 0 {
		t.Fatalf("motivation scenario produced no pauses: %+v", out[0])
	}
}

func TestScaleSeedsHelper(t *testing.T) {
	s := Scale{}
	if s.seeds() != 1 {
		t.Fatal("zero Seeds should clamp to 1")
	}
	s.Seeds = 3
	if s.seeds() != 3 {
		t.Fatal("explicit Seeds ignored")
	}
}
