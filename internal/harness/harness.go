// Package harness runs the paper's experiments: it builds scenarios
// (topology + scheme + workload), executes many independent simulations in
// parallel across CPU cores, and renders the result tables/series for every
// figure in the evaluation section (Figs. 3, 4, 6, 7, 8, 9, 10).
package harness

import (
	"runtime"
	"sync"
	"time"

	"github.com/rlb-project/rlb/internal/core"
	"github.com/rlb-project/rlb/internal/metrics"
	"github.com/rlb-project/rlb/internal/rng"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/topo"
	"github.com/rlb-project/rlb/internal/workload"
)

// RunConfig describes one simulation.
type RunConfig struct {
	// Topo is the fabric; Build-ready.
	Topo topo.Params
	// Workload, when non-nil, drives Poisson inter-leaf traffic at Load.
	Workload *workload.SizeDist
	Load     float64
	// MaxFlowBytes truncates sampled flow sizes (0 = no cap). Scaled-down
	// runs cap elephants so they can finish within the window; see
	// EXPERIMENTS.md.
	MaxFlowBytes int
	// Duration is the traffic generation window; Drain is extra time for
	// in-flight flows to finish.
	Duration sim.Time
	Drain    sim.Time
	// Inject, when non-nil, adds custom traffic after the network is built
	// (bursts, incast, the Fig. 2 scenario).
	Inject func(n *topo.Network)
	Seed   uint64
}

// Result captures one simulation's outcome.
type Result struct {
	Report   *metrics.FlowReport
	Pauses   uint64
	Recircs  uint64
	Drops    uint64
	Warnings uint64 // CNMs accepted by leaf agents
	// Agents aggregates RLB rerouting-module stats across leaves.
	Agents  core.AgentStats
	SimTime sim.Time
	Wall    time.Duration
	Network *topo.Network // retained for scenario-specific digging
}

// PauseRatePerMs returns PAUSE frames per simulated millisecond.
func (r *Result) PauseRatePerMs() float64 {
	return metrics.PauseRate(r.Pauses, r.SimTime)
}

// Run executes one simulation to completion.
func Run(cfg RunConfig) *Result {
	start := time.Now()
	cfg.Topo.Seed = cfg.Seed + 1
	n := topo.Build(cfg.Topo)

	if cfg.Workload != nil && cfg.Load > 0 {
		hosts := make([]int, len(n.Hosts))
		for i := range hosts {
			hosts[i] = i
		}
		gen := &workload.Poisson{
			Eng:           n.Eng,
			Rng:           rng.New(cfg.Seed + 7),
			Dist:          cfg.Workload,
			Hosts:         hosts,
			HostsPerLeaf:  cfg.Topo.HostsPerLeaf,
			InterLeafOnly: true,
			Load:          cfg.Load,
			LineRate:      cfg.Topo.LinkRate,
			Start:         n.Starter(),
			CapBytes:      cfg.MaxFlowBytes,
		}
		gen.Run(cfg.Duration)
	}
	if cfg.Inject != nil {
		cfg.Inject(n)
	}

	n.Run(cfg.Duration + cfg.Drain)
	n.StopRLB()

	res := &Result{
		Report:  metrics.BuildFlowReport(n.Flows),
		Pauses:  n.PauseFramesSent(),
		Recircs: n.Recirculations(),
		Drops:   n.Drops(),
		SimTime: n.Eng.Now(),
		Wall:    time.Since(start),
		Network: n,
	}
	for _, a := range n.Agents {
		if a == nil {
			continue
		}
		res.Warnings += a.Stats.WarningsRcvd
		res.Agents.WarningsRcvd += a.Stats.WarningsRcvd
		res.Agents.PicksTotal += a.Stats.PicksTotal
		res.Agents.PicksWarned += a.Stats.PicksWarned
		res.Agents.Reroutes += a.Stats.Reroutes
		res.Agents.Recircs += a.Stats.Recircs
		res.Agents.Fallbacks += a.Stats.Fallbacks
		res.Agents.OrderStays += a.Stats.OrderStays
		res.Agents.OrderRecircs += a.Stats.OrderRecircs
		res.Agents.DivertSticky += a.Stats.DivertSticky
		res.Agents.StayCheaper += a.Stats.StayCheaper
	}
	return res
}

// workers returns the simulation parallelism (one worker per CPU).
func workers() int { return runtime.GOMAXPROCS(0) }

// RunAll executes configs concurrently (one goroutine per simulation, capped
// at GOMAXPROCS workers) and returns results in input order. Each simulation
// is fully independent — separate engine, RNG streams, and network — so this
// is embarrassingly parallel.
func RunAll(cfgs []RunConfig) []*Result {
	results := make([]*Result, len(cfgs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = Run(cfgs[i])
			}
		}()
	}
	for i := range cfgs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}
