// Package harness runs the paper's experiments: it builds scenarios
// (topology + scheme + workload), executes many independent simulations in
// parallel across CPU cores, and renders the result tables/series for every
// figure in the evaluation section (Figs. 3, 4, 6, 7, 8, 9, 10).
package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rlb-project/rlb/internal/core"
	"github.com/rlb-project/rlb/internal/invariant"
	"github.com/rlb-project/rlb/internal/metrics"
	"github.com/rlb-project/rlb/internal/rng"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/telemetry"
	"github.com/rlb-project/rlb/internal/topo"
	"github.com/rlb-project/rlb/internal/workload"
)

// RunConfig describes one simulation.
type RunConfig struct {
	// Topo is the fabric; Build-ready.
	Topo topo.Params
	// Workload, when non-nil, drives Poisson inter-leaf traffic at Load.
	Workload *workload.SizeDist
	Load     float64
	// MaxFlowBytes truncates sampled flow sizes (0 = no cap). Scaled-down
	// runs cap elephants so they can finish within the window; see
	// EXPERIMENTS.md.
	MaxFlowBytes int
	// Duration is the traffic generation window; Drain is extra time for
	// in-flight flows to finish.
	Duration sim.Time
	Drain    sim.Time
	// Inject, when non-nil, adds custom traffic after the network is built
	// (bursts, incast, the Fig. 2 scenario).
	Inject func(n *topo.Network)
	// Faults schedules fault-plane events (link down/up/degrade) on the
	// simulation clock; see topo.Fault and KillUplinks for the common
	// "kill N spine uplinks at t, restore at t2" scenario.
	Faults []topo.Fault
	// KeepNetwork retains the full built network in Result.Network for
	// scenario-specific digging. Off by default: a sweep's worth of retained
	// topologies pins gigabytes.
	KeepNetwork bool
	// StrictInvariants enables the invariant checker's expensive tier
	// (per-mutation shared-pool conservation audits, per-flow PSN delivery
	// tracking) on top of the always-on cheap assertions.
	StrictInvariants bool
	// Context, when non-empty, labels every invariant violation this run
	// records so a failure in a log is reproducible from the message alone.
	// Empty means Run composes one from the config (seed, fabric, workload,
	// load, fault count); scenario generators pass their full parameter set.
	Context string
	Seed    uint64
	// Telemetry, when nonzero, samples the network's probe set at this
	// interval and attaches the recorded series to Result.Telemetry.
	// Sampling is observation-only — probes read state, the sampler's
	// events shift no other event's relative order — so every figure and
	// fingerprint is bit-identical with telemetry on or off.
	Telemetry sim.Time
}

// Result captures one simulation's outcome.
type Result struct {
	Report   *metrics.FlowReport
	Pauses   uint64
	Recircs  uint64
	Drops    uint64
	Warnings uint64 // CNMs accepted by leaf agents
	// Agents aggregates RLB rerouting-module stats across leaves.
	Agents  core.AgentStats
	SimTime sim.Time
	Wall    time.Duration
	// Events counts engine events dispatched during the run (throughput
	// denominator for the perf harness's events/sec metric).
	Events uint64
	// WireLost counts frames lost on cut links (fault plane), which are
	// deliberately not part of Drops: wire loss is injected, buffer drops
	// are a simulator bug under PFC.
	WireLost uint64
	// Violations holds every invariant the checker saw break during the run
	// (empty on a healthy simulation; see internal/invariant).
	Violations []invariant.Violation
	// InvariantChecks counts executed assertions (sanity that checking ran).
	InvariantChecks uint64
	// Network is only retained when RunConfig.KeepNetwork is set.
	Network *topo.Network
	// Telemetry holds the sampled probe series when RunConfig.Telemetry was
	// set (nil otherwise).
	Telemetry *telemetry.Recording
}

// PauseRatePerMs returns PAUSE frames per simulated millisecond.
func (r *Result) PauseRatePerMs() float64 {
	return metrics.PauseRate(r.Pauses, r.SimTime)
}

// runContext is the violation label for this run: the explicit Context when
// one was provided, otherwise the reproduction essentials from the config.
func (cfg *RunConfig) runContext() string {
	if cfg.Context != "" {
		return cfg.Context
	}
	wl := "none"
	if cfg.Workload != nil {
		wl = cfg.Workload.Name
	}
	return fmt.Sprintf("seed=%d fabric=%dx%d/%d wl=%s load=%.2f faults=%d",
		cfg.Seed, cfg.Topo.Leaves, cfg.Topo.Spines, cfg.Topo.HostsPerLeaf,
		wl, cfg.Load, len(cfg.Faults))
}

// Run executes one simulation to completion.
func Run(cfg RunConfig) *Result {
	//simlint:allow(determinism) wall-clock feeds only the Wall perf counter, never simulation state
	start := time.Now()
	cfg.Topo.Seed = cfg.Seed + 1
	checker := cfg.Topo.Checker
	if checker == nil {
		checker = invariant.New(cfg.StrictInvariants)
		cfg.Topo.Checker = checker
	}
	checker.SetContext(cfg.runContext())
	n := topo.Build(cfg.Topo)
	n.ScheduleFaults(cfg.Faults)

	if cfg.Workload != nil && cfg.Load > 0 {
		hosts := make([]int, len(n.Hosts))
		for i := range hosts {
			hosts[i] = i
		}
		gen := &workload.Poisson{
			Eng:           n.Eng,
			Rng:           rng.New(cfg.Seed + 7),
			Dist:          cfg.Workload,
			Hosts:         hosts,
			HostsPerLeaf:  cfg.Topo.HostsPerLeaf,
			InterLeafOnly: true,
			Load:          cfg.Load,
			LineRate:      cfg.Topo.LinkRate,
			Start:         n.Starter(),
			CapBytes:      cfg.MaxFlowBytes,
		}
		gen.Run(cfg.Duration)
	}
	if cfg.Inject != nil {
		cfg.Inject(n)
	}

	var samp *telemetry.Sampler
	if cfg.Telemetry > 0 {
		reg := telemetry.NewRegistry()
		n.AttachTelemetry(reg)
		// One tick at t=0, one per interval through Duration+Drain, plus one
		// slot of slack for the boundary tick.
		capacity := int((cfg.Duration+cfg.Drain)/cfg.Telemetry) + 2
		samp = telemetry.NewSampler(n.Eng, reg, cfg.Telemetry, capacity)
		samp.Start()
	}

	n.Run(cfg.Duration + cfg.Drain)
	if samp != nil {
		samp.Stop()
	}
	n.StopRLB()
	n.AuditInvariants()

	res := &Result{
		Report:          metrics.BuildFlowReport(n.Flows),
		Pauses:          n.PauseFramesSent(),
		Recircs:         n.Recirculations(),
		Drops:           n.Drops(),
		SimTime:         n.Eng.Now(),
		Wall:            time.Since(start), //simlint:allow(determinism) wall-clock perf counter only; excluded from golden figures
		Events:          n.Eng.Executed,
		WireLost:        n.WireLost(),
		Violations:      checker.Violations(),
		InvariantChecks: checker.Checks(),
	}
	totalEvents.Add(res.Events)
	if samp != nil {
		res.Telemetry = samp.Recording()
	}
	if cfg.KeepNetwork {
		res.Network = n
	}
	for _, a := range n.Agents {
		if a == nil {
			continue
		}
		res.Warnings += a.Stats.WarningsRcvd
		res.Agents.WarningsRcvd += a.Stats.WarningsRcvd
		res.Agents.PicksTotal += a.Stats.PicksTotal
		res.Agents.PicksWarned += a.Stats.PicksWarned
		res.Agents.Reroutes += a.Stats.Reroutes
		res.Agents.Recircs += a.Stats.Recircs
		res.Agents.Fallbacks += a.Stats.Fallbacks
		res.Agents.OrderStays += a.Stats.OrderStays
		res.Agents.OrderRecircs += a.Stats.OrderRecircs
		res.Agents.DivertSticky += a.Stats.DivertSticky
		res.Agents.StayCheaper += a.Stats.StayCheaper
	}
	return res
}

// workers returns the simulation parallelism (one worker per CPU).
func workers() int { return runtime.GOMAXPROCS(0) }

// totalEvents accumulates engine events dispatched across every Run in the
// process. Atomic because RunAll executes simulations on parallel goroutines.
var totalEvents atomic.Uint64

// TotalEvents returns the process-wide count of engine events dispatched by
// completed runs; benchmarks difference it around the measured region to
// report events/sec.
func TotalEvents() uint64 { return totalEvents.Load() }

// RunAll executes configs concurrently (one goroutine per simulation, capped
// at GOMAXPROCS workers) and returns results in input order. Each simulation
// is fully independent — separate engine, RNG streams, and network — so this
// is embarrassingly parallel and results do not depend on the worker count
// (runAllN with any n yields identical results; harness_test.go asserts it).
func RunAll(cfgs []RunConfig) []*Result {
	return runAllN(cfgs, runtime.GOMAXPROCS(0))
}

// runAllN is RunAll with an explicit worker count.
func runAllN(cfgs []RunConfig, workers int) []*Result {
	results := make([]*Result, len(cfgs))
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		// Worker-isolation contract: Run(cfgs[i]) is a pure function of its
		// config — it builds a fresh engine, network, and seeded RNG streams
		// per call. Workers communicate only via the idx channel and write
		// disjoint results[i] slots, so no locks are needed and the output
		// is byte-identical for any worker count.
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = Run(cfgs[i])
			}
		}()
	}
	for i := range cfgs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}
