package harness

import (
	"github.com/rlb-project/rlb/internal/workload"
)

// ExtIRN is an extension experiment beyond the paper's figures: it compares
// the three positions in the design space the paper's related work (§5)
// sketches, on the same fabric and workload:
//
//   - lossless + go-back-N (the status quo RLB targets),
//   - lossless + go-back-N + RLB (the paper's proposal),
//   - lossy + IRN-style selective repeat (Mittal et al.: drop PFC, fix the
//     transport instead).
//
// The interesting comparison is reordering cost vs. loss-recovery cost.
func ExtIRN(s Scale, seed uint64) *Table {
	t := &Table{
		Title: "Extension — lossless+GBN vs lossless+GBN+RLB vs lossy+IRN (Web Server @ 60%)",
		Headers: []string{"base", "mode", "AFCT (ms)", "p99 (ms)", "OOO%",
			"pauses/ms", "done"},
	}
	type mode struct {
		label     string
		rlb       bool
		pfc       bool
		selective bool
	}
	modes := []mode{
		{"pfc+gbn", false, true, false},
		{"pfc+gbn+rlb", true, true, false},
		{"lossy+irn", false, false, true},
	}
	var cfgs []RunConfig
	var labels [][2]string
	for _, base := range []string{"letflow", "drill"} {
		for _, m := range modes {
			name := base
			if m.rlb {
				name += "+rlb"
			}
			p := s.TopoParams()
			MustScheme(name, s.LinkDelay, nil).Apply(&p)
			p.Switch.PFCEnabled = m.pfc
			p.Host.SelectiveRepeat = m.selective
			cfgs = append(cfgs, RunConfig{
				Topo:         p,
				Workload:     workload.WebServer(),
				Load:         0.6,
				MaxFlowBytes: s.MaxFlowBytes,
				Duration:     s.Duration,
				Drain:        s.Drain,
				Seed:         seed,
			})
			labels = append(labels, [2]string{base, m.label})
		}
	}
	results := RunAveraged(cfgs, s.seeds())
	for i, l := range labels {
		r := results[i]
		t.AddRow(l[0], l[1], r.AFCT, r.P99, r.OOOPct, r.PauseRate, r.Completed)
	}
	t.AddNote("IRN keeps out-of-order arrivals and retransmits selectively, so its OOO%% is harmless; GBN discards them")
	return t
}
