package harness

import "github.com/rlb-project/rlb/internal/spec"

// ExtIRN is an extension experiment beyond the paper's figures: it compares
// the three positions in the design space the paper's related work (§5)
// sketches, on the same fabric and workload:
//
//   - lossless + go-back-N (the status quo RLB targets),
//   - lossless + go-back-N + RLB (the paper's proposal),
//   - lossy + IRN-style selective repeat (Mittal et al.: drop PFC, fix the
//     transport instead).
//
// The interesting comparison is reordering cost vs. loss-recovery cost.
func ExtIRN(s Scale, seed uint64) *Table {
	t := &Table{
		Title: "Extension — lossless+GBN vs lossless+GBN+RLB vs lossy+IRN (Web Server @ 60%)",
		Headers: []string{"base", "mode", "AFCT (ms)", "p99 (ms)", "OOO%",
			"pauses/ms", "done"},
	}
	grids := ExtIRNGrids(s, seed)
	modeLabels := []string{"pfc+gbn", "pfc+gbn+rlb", "lossy+irn"}
	// The table reads base-major (all three modes of letflow, then drill),
	// while each grid holds one mode's two bases; interleave the cells.
	var cells []spec.Spec
	var labels [][2]string
	perMode := make([][]spec.Spec, len(grids))
	for m, g := range grids {
		gc, err := g.Cells()
		if err != nil {
			panic("harness: " + err.Error())
		}
		perMode[m] = gc
	}
	bases := []string{"letflow", "drill"}
	for b, base := range bases {
		for m := range grids {
			cells = append(cells, perMode[m][b])
			labels = append(labels, [2]string{base, modeLabels[m]})
		}
	}
	results, err := RunSpecsAveraged(cells, s.seeds())
	if err != nil {
		panic("harness: " + err.Error())
	}
	for i, l := range labels {
		r := results[i]
		t.AddRow(l[0], l[1], r.AFCT, r.P99, r.OOOPct, r.PauseRate, r.Completed)
	}
	t.AddNote("IRN keeps out-of-order arrivals and retransmits selectively, so its OOO%% is harmless; GBN discards them")
	return t
}
