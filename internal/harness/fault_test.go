package harness

import (
	"testing"

	"github.com/rlb-project/rlb/internal/invariant"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/topo"
	"github.com/rlb-project/rlb/internal/workload"
)

func TestKillUplinksSchedule(t *testing.T) {
	fs := KillUplinks(2, 3, 10*sim.Millisecond, 20*sim.Millisecond)
	if len(fs) != 6 {
		t.Fatalf("faults = %d, want 3 downs + 3 ups", len(fs))
	}
	downs, ups := 0, 0
	for _, f := range fs {
		if f.Leaf != 2 {
			t.Fatalf("wrong leaf: %+v", f)
		}
		switch f.Kind {
		case topo.LinkDown:
			downs++
			if f.At != 10*sim.Millisecond {
				t.Fatalf("down at %v", f.At)
			}
		case topo.LinkUp:
			ups++
			if f.At != 20*sim.Millisecond {
				t.Fatalf("up at %v", f.At)
			}
		}
	}
	if downs != 3 || ups != 3 {
		t.Fatalf("downs=%d ups=%d", downs, ups)
	}
	if got := KillUplinks(0, 2, sim.Millisecond, 0); len(got) != 2 {
		t.Fatalf("no-restore schedule = %d faults, want 2", len(got))
	}
}

// faultCfg is a Poisson run with the given scheme and fault schedule.
func faultCfg(t *testing.T, scheme string, faults []topo.Fault) RunConfig {
	t.Helper()
	p := testScale.TopoParams()
	MustScheme(scheme, testScale.LinkDelay, nil).Apply(&p)
	return RunConfig{
		Topo: p, Workload: workload.WebServer(), Load: 0.3,
		MaxFlowBytes: testScale.MaxFlowBytes,
		Duration:     testScale.Duration, Drain: testScale.Drain,
		Faults: faults, Seed: 21,
	}
}

func TestLinkDownTriggersRLBReroutes(t *testing.T) {
	// Killing an uplink mid-run must show up as RLB reroutes: the agent is
	// notified and diverts flows the base LB still pins to the dead path.
	quiet := Run(faultCfg(t, "ecmp+rlb", nil))
	faulted := Run(faultCfg(t, "ecmp+rlb",
		KillUplinks(0, 1, testScale.Duration/4, 0)))
	if faulted.Agents.Reroutes <= quiet.Agents.Reroutes {
		t.Fatalf("link-down did not increase reroutes: %d (faulted) vs %d (quiet)",
			faulted.Agents.Reroutes, quiet.Agents.Reroutes)
	}
	if faulted.Report.Completed == 0 {
		t.Fatal("no flows completed under fault with RLB")
	}
}

func TestFlowsCompleteAfterLinkUp(t *testing.T) {
	// Kill one of two uplinks for a window, restore it, and let the drain
	// window absorb the repair: every generated flow must still finish, for an
	// oblivious scheme (go-back-N repairs the wire loss) and for RLB.
	for _, scheme := range []string{"ecmp", "drill+rlb"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			res := Run(faultCfg(t, scheme,
				KillUplinks(0, 1, testScale.Duration/4, testScale.Duration)))
			if res.Report.Flows == 0 {
				t.Fatal("no flows generated")
			}
			if res.Report.Completed != res.Report.Flows {
				t.Fatalf("%d/%d flows completed after link restore",
					res.Report.Completed, res.Report.Flows)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("violations after recovery: %v", res.Violations)
			}
		})
	}
}

func TestECMPBlackholesIntoDeadLink(t *testing.T) {
	// ECMP has no path telemetry: with a dead uplink never restored, flows
	// hashed onto it keep forwarding into the hole. The end-of-run audit must
	// flag the stranded bytes, and the wire must have eaten frames.
	res := Run(faultCfg(t, "ecmp",
		KillUplinks(0, 1, testScale.Duration/4, 0)))
	if res.WireLost == 0 {
		t.Fatal("dead link lost no frames under ECMP")
	}
	if res.Report.Completed == res.Report.Flows {
		t.Fatal("every flow completed despite a permanent blackhole")
	}
	found := false
	for _, v := range res.Violations {
		if v.Rule == invariant.RuleBlackhole {
			found = true
		}
	}
	if !found {
		t.Fatalf("blackhole not detected; violations: %v", res.Violations)
	}
}

func TestDelayAwareSchemeAvoidsDeadLink(t *testing.T) {
	// Hermes reads the poisoned path telemetry and must keep completing flows
	// without RLB's help, losing far less than ECMP does.
	ecmp := Run(faultCfg(t, "ecmp", KillUplinks(0, 1, 0, 0)))
	hermes := Run(faultCfg(t, "hermes", KillUplinks(0, 1, 0, 0)))
	if hermes.Report.Completed != hermes.Report.Flows {
		t.Fatalf("%d/%d hermes flows completed around a day-one dead link",
			hermes.Report.Completed, hermes.Report.Flows)
	}
	if ecmp.Report.Completed == ecmp.Report.Flows {
		t.Fatal("ECMP unaffected by a dead link; scenario too gentle")
	}
}

func TestDegradeUplinksSchedule(t *testing.T) {
	fs := DegradeUplinks(1, 2, sim.Millisecond, testScale.LinkRate/4)
	if len(fs) != 2 {
		t.Fatalf("faults = %d", len(fs))
	}
	for _, f := range fs {
		if f.Kind != topo.LinkRate || f.Rate != testScale.LinkRate/4 || f.Leaf != 1 {
			t.Fatalf("bad fault: %+v", f)
		}
	}
	// And it runs: degrading links mid-run must not break completion.
	res := Run(faultCfg(t, "drill", DegradeUplinks(0, 1, testScale.Duration/2, testScale.LinkRate/4)))
	if res.Report.Completed != res.Report.Flows {
		t.Fatalf("%d/%d flows completed after degrade", res.Report.Completed, res.Report.Flows)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
}
