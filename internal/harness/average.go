package harness

// AvgMetrics are seed-averaged headline metrics for one configuration.
type AvgMetrics struct {
	AFCT      float64 // mean FCT, ms
	P25       float64
	P50       float64
	P75       float64
	P90       float64
	P99       float64 // tail FCT, ms
	OOOPct    float64 // out-of-order arrivals, % of received
	OODp99    float64 // 99th percentile out-of-order degree, packets
	PauseRate float64 // PAUSE frames per simulated ms
	Completed float64 // flows completed
	// Violations totals invariant-checker findings across all seeds (not
	// averaged: any nonzero value is a bug).
	Violations int
	Seeds      int
}

// seedStride spaces seed offsets so derived streams stay independent.
const seedStride = 9973

// RunAveraged executes every config with `seeds` different seeds and returns
// per-config averaged metrics, preserving input order.
func RunAveraged(cfgs []RunConfig, seeds int) []AvgMetrics {
	if seeds < 1 {
		seeds = 1
	}
	expanded := make([]RunConfig, 0, len(cfgs)*seeds)
	for _, c := range cfgs {
		for s := 0; s < seeds; s++ {
			c2 := c
			c2.Seed = c.Seed + uint64(s)*seedStride
			expanded = append(expanded, c2)
		}
	}
	results := RunAll(expanded)
	out := make([]AvgMetrics, len(cfgs))
	for i := range cfgs {
		group := results[i*seeds : (i+1)*seeds]
		var m AvgMetrics
		m.Seeds = seeds
		for _, r := range group {
			rep := r.Report
			m.AFCT += rep.AvgFCTms()
			m.P25 += rep.FCT.Percentile(25)
			m.P50 += rep.FCT.Percentile(50)
			m.P75 += rep.FCT.Percentile(75)
			m.P90 += rep.FCT.Percentile(90)
			m.P99 += rep.TailFCTms()
			m.OOOPct += 100 * rep.OOORatio()
			m.OODp99 += rep.OOD.Percentile(99)
			m.PauseRate += r.PauseRatePerMs()
			m.Completed += float64(rep.Completed)
			m.Violations += len(r.Violations)
		}
		n := float64(seeds)
		m.AFCT /= n
		m.P25 /= n
		m.P50 /= n
		m.P75 /= n
		m.P90 /= n
		m.P99 /= n
		m.OOOPct /= n
		m.OODp99 /= n
		m.PauseRate /= n
		m.Completed /= n
		out[i] = m
	}
	return out
}

// MotivAvg is the seed-averaged view of a motivation-scenario run, measured
// over the background (victim) flows.
type MotivAvg struct {
	PauseRate float64
	OODp99    float64
	OOOPct    float64
	AFCT      float64
	P99       float64
	Completed float64
	// Violations totals invariant-checker findings across seeds (see
	// AvgMetrics.Violations).
	Violations int
}

// RunMotivationsAveraged executes each spec with `seeds` seeds and averages.
func RunMotivationsAveraged(specs []MotivationSpec, seeds int) []MotivAvg {
	if seeds < 1 {
		seeds = 1
	}
	expanded := make([]MotivationSpec, 0, len(specs)*seeds)
	for _, sp := range specs {
		for s := 0; s < seeds; s++ {
			sp2 := sp
			sp2.Seed = sp.Seed + uint64(s)*seedStride
			expanded = append(expanded, sp2)
		}
	}
	results := runMotivations(expanded)
	out := make([]MotivAvg, len(specs))
	for i := range specs {
		group := results[i*seeds : (i+1)*seeds]
		var m MotivAvg
		for _, r := range group {
			m.PauseRate += r.PauseRatePerMs()
			m.OODp99 += r.Background.OOD.Percentile(99)
			m.OOOPct += 100 * r.Background.OOORatio()
			m.AFCT += r.Background.AvgFCTms()
			m.P99 += r.Background.TailFCTms()
			m.Completed += float64(r.Background.Completed)
			m.Violations += len(r.Violations)
		}
		n := float64(seeds)
		m.PauseRate /= n
		m.OODp99 /= n
		m.OOOPct /= n
		m.AFCT /= n
		m.P99 /= n
		m.Completed /= n
		out[i] = m
	}
	return out
}
