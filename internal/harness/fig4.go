package harness

import "fmt"

// Fig4Paths reproduces Fig. 4(a): the ratio of out-of-order packets as the
// congested flow is sprayed over more parallel paths (more paths paused by
// PFC -> more reordering for every scheme).
func Fig4Paths(s Scale, seed uint64) *Table {
	t := &Table{
		Title:   "Fig. 4(a) — out-of-order packets (%) vs. affected paths",
		Headers: []string{"scheme"},
	}
	paths := sweepInts(1, s.MotivSpines, 6)
	for _, k := range paths {
		t.Headers = append(t.Headers, fmt.Sprintf("%dp", k))
	}
	_, results := MustRunGrid(Fig4PathsGrid(s, seed))
	idx := 0
	for _, name := range FourSchemes {
		row := []interface{}{name}
		for range paths {
			row = append(row, results[idx].OOOPct)
			idx++
		}
		t.AddRow(row...)
	}
	t.AddNote("paper sweeps 5..30 of 40 paths; this scale sweeps %v of %d", paths, s.MotivSpines)
	return t
}

// Fig4Bursts reproduces Fig. 4(b): out-of-order packet ratio as the number
// of continuous bursts grows.
func Fig4Bursts(s Scale, seed uint64) *Table {
	t := &Table{
		Title:   "Fig. 4(b) — out-of-order packets (%) vs. continuous bursts",
		Headers: []string{"scheme", "1", "2", "3", "4", "5", "6"},
	}
	_, results := MustRunGrid(Fig4BurstsGrid(s, seed))
	idx := 0
	for _, name := range FourSchemes {
		row := []interface{}{name}
		for range t.Headers[1:] {
			row = append(row, results[idx].OOOPct)
			idx++
		}
		t.AddRow(row...)
	}
	return t
}

// sweepInts returns up to n roughly even values in [lo, hi], always
// including hi.
func sweepInts(lo, hi, n int) []int {
	if hi <= lo {
		return []int{hi}
	}
	if n < 2 {
		n = 2
	}
	var out []int
	prev := -1
	for i := 0; i < n; i++ {
		v := lo + (hi-lo)*i/(n-1)
		if v != prev {
			out = append(out, v)
			prev = v
		}
	}
	return out
}

// maxWorkers caps concurrent simulations.
func maxWorkers(n int) int {
	w := workers()
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}
