package harness

import (
	"fmt"
	"testing"

	"github.com/rlb-project/rlb/internal/workload"
)

func poissonCfg(scheme string, seed uint64) RunConfig {
	p := testScale.TopoParams()
	MustScheme(scheme, testScale.LinkDelay, nil).Apply(&p)
	return RunConfig{
		Topo: p, Workload: workload.WebServer(), Load: 0.4,
		MaxFlowBytes: testScale.MaxFlowBytes,
		Duration:     testScale.Duration, Drain: testScale.Drain, Seed: seed,
	}
}

// fingerprint reduces a Result to a string that any nondeterminism would
// perturb: aggregate counters, agent decisions, and every flow's finish time
// (when the network was kept).
func fingerprint(r *Result) string {
	s := fmt.Sprintf("flows=%d done=%d sent=%d rcvd=%d ooo=%d pauses=%d recircs=%d drops=%d agents=%+v",
		r.Report.Flows, r.Report.Completed, r.Report.TotalSent, r.Report.TotalRcvd,
		r.Report.TotalOOO, r.Pauses, r.Recircs, r.Drops, r.Agents)
	if r.Network != nil {
		for _, f := range r.Network.Flows {
			s += fmt.Sprintf("|%d@%d", f.ID, f.FinishAt)
		}
	}
	return s
}

func TestNetworkNotRetainedByDefault(t *testing.T) {
	res := Run(poissonCfg("ecmp", 1))
	if res.Network != nil {
		t.Fatal("Result.Network retained without KeepNetwork")
	}
	cfg := poissonCfg("ecmp", 1)
	cfg.KeepNetwork = true
	if kept := Run(cfg); kept.Network == nil {
		t.Fatal("KeepNetwork did not retain the network")
	}
}

func TestIdenticalSeedsIdenticalRuns(t *testing.T) {
	// The determinism contract behind every figure: the same config and seed
	// must replay bit-for-bit, for every scheme, with and without RLB.
	schemes := append([]string{}, FourSchemes...)
	schemes = append(schemes, "ecmp", "conga")
	for _, base := range FourSchemes {
		schemes = append(schemes, base+"+rlb")
	}
	for _, scheme := range schemes {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			t.Parallel()
			mk := func() string {
				cfg := poissonCfg(scheme, 17)
				cfg.KeepNetwork = true
				return fingerprint(Run(cfg))
			}
			a, b := mk(), mk()
			if a != b {
				t.Fatalf("same seed diverged:\n%s\nvs\n%s", a, b)
			}
		})
	}
}

func TestRunAllIndependentOfWorkerCount(t *testing.T) {
	mkCfgs := func() []RunConfig {
		var cfgs []RunConfig
		for i, scheme := range []string{"ecmp", "drill", "drill+rlb", "presto"} {
			cfgs = append(cfgs, poissonCfg(scheme, uint64(31+i)))
		}
		return cfgs
	}
	serial := runAllN(mkCfgs(), 1)
	wide := runAllN(mkCfgs(), 8)
	if len(serial) != len(wide) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(wide))
	}
	for i := range serial {
		a, b := fingerprint(serial[i]), fingerprint(wide[i])
		if a != b {
			t.Fatalf("config %d differs across worker counts:\n%s\nvs\n%s", i, a, b)
		}
	}
}

func TestStrictInvariantsCleanAcrossSchemes(t *testing.T) {
	// The strict tier (per-mutation pool audits, per-flow PSN tracking) must
	// stay silent on healthy runs of every scheme. `make race` runs this under
	// the race detector, which also exercises the harness's parallelism.
	var cfgs []RunConfig
	schemes := append([]string{"ecmp", "conga"}, FourSchemes...)
	schemes = append(schemes, "drill+rlb", "presto+rlb")
	for _, scheme := range schemes {
		cfg := poissonCfg(scheme, 41)
		cfg.StrictInvariants = true
		cfgs = append(cfgs, cfg)
	}
	for i, res := range RunAll(cfgs) {
		if res.InvariantChecks == 0 {
			t.Errorf("%s: strict checker ran zero assertions", schemes[i])
		}
		if len(res.Violations) != 0 {
			t.Errorf("%s: %d violations, e.g. %v", schemes[i], len(res.Violations), res.Violations[0])
		}
	}
}

func TestMotivationStrictAndUnretained(t *testing.T) {
	// The motivation scenario (PFC storms, recirculation, spraying) is the
	// hardest path for the checker; it must stay clean in strict mode, and
	// RunMotivation must not leak its network.
	res := RunMotivation(MotivationSpec{
		Scale: testScale, Scheme: motivScheme("drill", testScale),
		PFCEnabled: true, SprayPaths: 2, Bursts: 2, Seed: 3,
		StrictInvariants: true,
	})
	if res.Network != nil {
		t.Fatal("RunMotivation leaked Result.Network")
	}
	if res.InvariantChecks == 0 {
		t.Fatal("checker not wired through the motivation path")
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
}
