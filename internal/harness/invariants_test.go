package harness

import (
	"strings"
	"testing"

	"github.com/rlb-project/rlb/internal/workload"
)

func poissonCfg(scheme string, seed uint64) RunConfig {
	p := testScale.TopoParams()
	MustScheme(scheme, testScale.LinkDelay, nil).Apply(&p)
	return RunConfig{
		Topo: p, Workload: workload.WebServer(), Load: 0.4,
		MaxFlowBytes: testScale.MaxFlowBytes,
		Duration:     testScale.Duration, Drain: testScale.Drain, Seed: seed,
	}
}

// fingerprint is the exported Fingerprint (fingerprint.go), kept as a local
// alias so the property tests below read naturally.
func fingerprint(r *Result) string { return Fingerprint(r) }

func TestNetworkNotRetainedByDefault(t *testing.T) {
	res := Run(poissonCfg("ecmp", 1))
	if res.Network != nil {
		t.Fatal("Result.Network retained without KeepNetwork")
	}
	cfg := poissonCfg("ecmp", 1)
	cfg.KeepNetwork = true
	if kept := Run(cfg); kept.Network == nil {
		t.Fatal("KeepNetwork did not retain the network")
	}
}

func TestIdenticalSeedsIdenticalRuns(t *testing.T) {
	// The determinism contract behind every figure: the same config and seed
	// must replay bit-for-bit, for every scheme, with and without RLB.
	schemes := append([]string{}, FourSchemes...)
	schemes = append(schemes, "ecmp", "conga")
	for _, base := range FourSchemes {
		schemes = append(schemes, base+"+rlb")
	}
	for _, scheme := range schemes {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			t.Parallel()
			mk := func() string {
				cfg := poissonCfg(scheme, 17)
				cfg.KeepNetwork = true
				return fingerprint(Run(cfg))
			}
			a, b := mk(), mk()
			if a != b {
				t.Fatalf("same seed diverged:\n%s\nvs\n%s", a, b)
			}
		})
	}
}

func TestRunAllIndependentOfWorkerCount(t *testing.T) {
	mkCfgs := func() []RunConfig {
		var cfgs []RunConfig
		for i, scheme := range []string{"ecmp", "drill", "drill+rlb", "presto"} {
			cfgs = append(cfgs, poissonCfg(scheme, uint64(31+i)))
		}
		return cfgs
	}
	serial := runAllN(mkCfgs(), 1)
	wide := runAllN(mkCfgs(), 8)
	if len(serial) != len(wide) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(wide))
	}
	for i := range serial {
		a, b := fingerprint(serial[i]), fingerprint(wide[i])
		if a != b {
			t.Fatalf("config %d differs across worker counts:\n%s\nvs\n%s", i, a, b)
		}
	}
}

func TestStrictInvariantsCleanAcrossSchemes(t *testing.T) {
	// The strict tier (per-mutation pool audits, per-flow PSN tracking) must
	// stay silent on healthy runs of every scheme. `make race` runs this under
	// the race detector, which also exercises the harness's parallelism.
	var cfgs []RunConfig
	schemes := append([]string{"ecmp", "conga"}, FourSchemes...)
	schemes = append(schemes, "drill+rlb", "presto+rlb")
	for _, scheme := range schemes {
		cfg := poissonCfg(scheme, 41)
		cfg.StrictInvariants = true
		cfgs = append(cfgs, cfg)
	}
	for i, res := range RunAll(cfgs) {
		if res.InvariantChecks == 0 {
			t.Errorf("%s: strict checker ran zero assertions", schemes[i])
		}
		if len(res.Violations) != 0 {
			t.Errorf("%s: %d violations, e.g. %v", schemes[i], len(res.Violations), res.Violations[0])
		}
	}
}

func TestViolationsCarryRunContext(t *testing.T) {
	// Every violation must be reproducible from the log alone: the recorded
	// message carries the run's seed and scenario parameters. A permanent
	// ECMP blackhole reliably produces violations to inspect.
	cfg := poissonCfg("ecmp", 21)
	cfg.Faults = KillUplinks(0, 1, testScale.Duration/4, 0)
	res := Run(cfg)
	if len(res.Violations) == 0 {
		t.Fatal("blackhole scenario recorded no violations")
	}
	for _, v := range res.Violations {
		if !strings.Contains(v.Ctx, "seed=21") || !strings.Contains(v.Ctx, "fabric=2x2/3") {
			t.Fatalf("violation context missing run identity: %q", v.String())
		}
		if !strings.Contains(v.String(), v.Ctx) {
			t.Fatalf("String() omits the context: %q", v.String())
		}
	}
	// An explicit Context (e.g. the scenario fuzzer's generator parameters)
	// replaces the composed default verbatim.
	cfg = poissonCfg("ecmp", 21)
	cfg.Faults = KillUplinks(0, 1, testScale.Duration/4, 0)
	cfg.Context = "scenario gen-seed=99 custom"
	res = Run(cfg)
	if len(res.Violations) == 0 {
		t.Fatal("blackhole scenario recorded no violations with explicit context")
	}
	if got := res.Violations[0].Ctx; got != "scenario gen-seed=99 custom" {
		t.Fatalf("explicit context not used: %q", got)
	}
}

func TestMotivationStrictAndUnretained(t *testing.T) {
	// The motivation scenario (PFC storms, recirculation, spraying) is the
	// hardest path for the checker; it must stay clean in strict mode, and
	// RunMotivation must not leak its network.
	res := RunMotivation(MotivationSpec{
		Scale: testScale, Scheme: motivScheme("drill", testScale),
		PFCEnabled: true, SprayPaths: 2, Bursts: 2, Seed: 3,
		StrictInvariants: true,
	})
	if res.Network != nil {
		t.Fatal("RunMotivation leaked Result.Network")
	}
	if res.InvariantChecks == 0 {
		t.Fatal("checker not wired through the motivation path")
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
}
