package harness

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// updateGolden refreshes testdata/golden.json from the current code:
//
//	go test ./internal/harness/ -run TestGoldenFigures -update-golden
//
// Review the diff before committing — the goldens are the regression anchor
// for the paper's headline metrics (see TESTING.md).
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden.json")

// goldenSeed pins the golden runs; simulations replay bit-for-bit by seed, so
// the tolerance below only absorbs float-summation drift across platforms.
const goldenSeed = 7

// goldenTolerance is the allowed relative error per numeric cell.
const goldenTolerance = 0.005

type goldenTable struct {
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

func goldenFromTable(t *Table) goldenTable {
	return goldenTable{Headers: t.Headers, Rows: t.Rows}
}

func goldenPath(t *testing.T) string {
	t.Helper()
	return filepath.Join("testdata", "golden.json")
}

// cellsMatch compares two formatted cells: numerically within tolerance when
// both parse as numbers, byte-for-byte otherwise.
func cellsMatch(got, want string) bool {
	g, gerr := strconv.ParseFloat(got, 64)
	w, werr := strconv.ParseFloat(want, 64)
	if gerr != nil || werr != nil {
		return got == want
	}
	if g == w {
		return true
	}
	denom := math.Max(math.Abs(g), math.Abs(w))
	return math.Abs(g-w)/denom <= goldenTolerance
}

func TestGoldenFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-scale golden run skipped in -short mode")
	}
	got := map[string]goldenTable{
		"fig3":       goldenFromTable(Fig3(BenchScale, goldenSeed)),
		"fig4_paths": goldenFromTable(Fig4Paths(BenchScale, goldenSeed)),
	}

	path := goldenPath(t)
	if *updateGolden {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden refreshed: %s", path)
		return
	}

	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no golden file (run with -update-golden to create): %v", err)
	}
	var want map[string]goldenTable
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}

	for name, wt := range want {
		gt, ok := got[name]
		if !ok {
			t.Errorf("%s: golden table no longer produced", name)
			continue
		}
		if len(gt.Rows) != len(wt.Rows) {
			t.Errorf("%s: %d rows, golden has %d", name, len(gt.Rows), len(wt.Rows))
			continue
		}
		for i := range wt.Rows {
			if len(gt.Rows[i]) != len(wt.Rows[i]) {
				t.Errorf("%s row %d: %d cells, golden has %d", name, i, len(gt.Rows[i]), len(wt.Rows[i]))
				continue
			}
			for j := range wt.Rows[i] {
				if !cellsMatch(gt.Rows[i][j], wt.Rows[i][j]) {
					t.Errorf("%s row %d (%s) col %d (%s): got %s, golden %s",
						name, i, gt.Rows[i][0], j, header(gt.Headers, j), gt.Rows[i][j], wt.Rows[i][j])
				}
			}
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("%s: missing from golden file (refresh with -update-golden)", name)
		}
	}
}

func header(hs []string, j int) string {
	if j < len(hs) {
		return hs[j]
	}
	return "?"
}
