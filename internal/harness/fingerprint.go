package harness

import "fmt"

// Fingerprint reduces a Result to a string that any nondeterminism in the
// simulation would perturb: aggregate counters, agent decisions, and — when
// the network was retained via RunConfig.KeepNetwork — every flow's finish
// time. Two runs of the same config and seed must produce identical
// fingerprints; the determinism property tests and the scenario fuzzer's
// metamorphic runner (internal/scenario) both compare runs through it.
func Fingerprint(r *Result) string {
	s := fmt.Sprintf("flows=%d done=%d sent=%d rcvd=%d ooo=%d pauses=%d recircs=%d drops=%d agents=%+v",
		r.Report.Flows, r.Report.Completed, r.Report.TotalSent, r.Report.TotalRcvd,
		r.Report.TotalOOO, r.Pauses, r.Recircs, r.Drops, r.Agents)
	if r.Network != nil {
		for _, f := range r.Network.Flows {
			s += fmt.Sprintf("|%d@%d", f.ID, f.FinishAt)
		}
	}
	return s
}
