package harness

import (
	"fmt"

	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/workload"
)

// fig10Base is the scheme used for the parameter sensitivity study.
const fig10Base = "drill"

// Fig10Qth reproduces Fig. 10(a): normalized AFCT as the PFC warning
// threshold Qth sweeps 20%-80% of the PFC threshold, under Web Server and
// Data Mining. AFCT is normalized per workload to the best value in the
// sweep (1.0 = optimum).
func Fig10Qth(s Scale, seed uint64) *Table {
	fracs := []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
	t := &Table{
		Title:   "Fig. 10(a) — sensitivity to Qth (normalized AFCT, " + fig10Base + "+rlb)",
		Headers: []string{"workload"},
	}
	for _, f := range fracs {
		t.Headers = append(t.Headers, fmt.Sprintf("%.0f%%", f*100))
	}
	for _, wl := range []string{"webserver", "datamining"} {
		dist, _ := workload.ByName(wl)
		var cfgs []RunConfig
		for _, frac := range fracs {
			rlb := defaultRLBFor(s)
			rlb.QthFraction = frac
			p := s.TopoParams()
			MustScheme(fig10Base+"+rlb", s.LinkDelay, &rlb).Apply(&p)
			cfgs = append(cfgs, RunConfig{
				Topo: p, Workload: dist, Load: 0.5,
				MaxFlowBytes: s.MaxFlowBytes, Duration: s.Duration, Drain: s.Drain, Seed: seed,
			})
		}
		results := RunAveraged(cfgs, s.seeds())
		t.AddRow(normalizedRow(wl, results)...)
	}
	return t
}

// Fig10DeltaT reproduces Fig. 10(b): normalized AFCT as the derivative
// sampling interval Δt sweeps 2-5 us.
func Fig10DeltaT(s Scale, seed uint64) *Table {
	dts := []sim.Time{
		2 * sim.Microsecond, 2500 * sim.Nanosecond, 3 * sim.Microsecond,
		3500 * sim.Nanosecond, 4 * sim.Microsecond, 4500 * sim.Nanosecond, 5 * sim.Microsecond,
	}
	t := &Table{
		Title:   "Fig. 10(b) — sensitivity to Δt (normalized AFCT, " + fig10Base + "+rlb)",
		Headers: []string{"workload"},
	}
	for _, dt := range dts {
		t.Headers = append(t.Headers, dt.String())
	}
	for _, wl := range []string{"webserver", "datamining"} {
		dist, _ := workload.ByName(wl)
		var cfgs []RunConfig
		for _, dt := range dts {
			rlb := defaultRLBFor(s)
			rlb.DeltaT = dt
			p := s.TopoParams()
			MustScheme(fig10Base+"+rlb", s.LinkDelay, &rlb).Apply(&p)
			cfgs = append(cfgs, RunConfig{
				Topo: p, Workload: dist, Load: 0.5,
				MaxFlowBytes: s.MaxFlowBytes, Duration: s.Duration, Drain: s.Drain, Seed: seed,
			})
		}
		results := RunAveraged(cfgs, s.seeds())
		t.AddRow(normalizedRow(wl, results)...)
	}
	return t
}

// normalizedRow converts AFCTs into a row normalized to the sweep's best.
func normalizedRow(label string, results []AvgMetrics) []interface{} {
	best := 0.0
	for _, r := range results {
		if r.AFCT > 0 && (best == 0 || r.AFCT < best) {
			best = r.AFCT
		}
	}
	row := []interface{}{label}
	for _, r := range results {
		if best == 0 {
			row = append(row, 0.0)
			continue
		}
		row = append(row, r.AFCT/best)
	}
	return row
}
