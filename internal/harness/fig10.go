package harness

import (
	"fmt"

	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/spec"
)

// fig10Base is the scheme used for the parameter sensitivity study.
const fig10Base = "drill"

// Fig10Qth reproduces Fig. 10(a): normalized AFCT as the PFC warning
// threshold Qth sweeps 20%-80% of the PFC threshold, under Web Server and
// Data Mining. AFCT is normalized per workload to the best value in the
// sweep (1.0 = optimum).
func Fig10Qth(s Scale, seed uint64) *Table {
	g := Fig10QthGrid(s, seed)
	t := &Table{
		Title:   "Fig. 10(a) — sensitivity to Qth (normalized AFCT, " + fig10Base + "+rlb)",
		Headers: []string{"workload"},
	}
	for _, pct := range g.Axes[1].Ints {
		t.Headers = append(t.Headers, fmt.Sprintf("%d%%", pct))
	}
	fig10Rows(t, g)
	return t
}

// Fig10DeltaT reproduces Fig. 10(b): normalized AFCT as the derivative
// sampling interval Δt sweeps 2-5 us.
func Fig10DeltaT(s Scale, seed uint64) *Table {
	g := Fig10DeltaTGrid(s, seed)
	t := &Table{
		Title:   "Fig. 10(b) — sensitivity to Δt (normalized AFCT, " + fig10Base + "+rlb)",
		Headers: []string{"workload"},
	}
	for _, ns := range g.Axes[1].Ints {
		t.Headers = append(t.Headers, (sim.Time(ns) * sim.Nanosecond).String())
	}
	fig10Rows(t, g)
	return t
}

// fig10Rows runs the sensitivity grid (workload-major, parameter fastest) and
// adds one normalized row per workload.
func fig10Rows(t *Table, g spec.Grid) {
	points := g.Axes[1].Len()
	_, results := MustRunGrid(g)
	for w, wl := range g.Axes[0].Strs {
		t.AddRow(normalizedRow(wl, results[w*points:(w+1)*points])...)
	}
}

// normalizedRow converts AFCTs into a row normalized to the sweep's best.
func normalizedRow(label string, results []Metrics) []interface{} {
	best := 0.0
	for _, r := range results {
		if r.AFCT > 0 && (best == 0 || r.AFCT < best) {
			best = r.AFCT
		}
	}
	row := []interface{}{label}
	for _, r := range results {
		if best == 0 {
			row = append(row, 0.0)
			continue
		}
		row = append(row, r.AFCT/best)
	}
	return row
}
