package harness

import (
	"strings"
	"testing"

	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/spec"
	"github.com/rlb-project/rlb/internal/units"
)

// tinySpec is a fabric spec small enough to simulate inside a unit test.
func tinySpec() spec.Spec {
	return spec.Spec{
		SimSeed: 5, Leaves: 2, Spines: 2, HostsPerLeaf: 2, LinkGbps: 10,
		Scheme: "drill+rlb", Workload: "websearch", LoadPct: 30,
		MaxFlowKB: 100, DurationUs: 300, DrainUs: 4000,
	}
}

// TestCompileThresholdsMatchScaleMath pins the compiler's unit conversion to
// harness.Scale's threshold rescaling: a spec at each paper-relevant link
// rate must produce bit-identical switch thresholds, link timing, and flow
// cap to the Scale it round-trips from. This is the contract that makes
// spec-compiled fabrics pause exactly like figure-built ones.
func TestCompileThresholdsMatchScaleMath(t *testing.T) {
	for _, gbps := range []int{10, 25, 40} {
		sc := Scale{
			Name: "tt", Leaves: 4, Spines: 6, HostsPerLeaf: 6,
			LinkRate: units.Bandwidth(gbps) * units.Gbps, LinkDelay: 2 * sim.Microsecond,
			Duration: 5 * sim.Millisecond, Drain: 15 * sim.Millisecond,
			MaxFlowBytes: 5 * 1000 * 1000,
		}
		want := sc.TopoParams()

		s := sc.Spec(1)
		s.Scheme = "ecmp"
		s.Workload = "websearch"
		s.LoadPct = 50
		cfg, err := Compile(s)
		if err != nil {
			t.Fatalf("%dG: %v", gbps, err)
		}
		got := cfg.Topo

		if got.Switch.PFCThreshold != want.Switch.PFCThreshold {
			t.Errorf("%dG: PFC threshold %d, Scale math says %d", gbps, got.Switch.PFCThreshold, want.Switch.PFCThreshold)
		}
		if got.Switch.ECNKmin != want.Switch.ECNKmin || got.Switch.ECNKmax != want.Switch.ECNKmax {
			t.Errorf("%dG: ECN (%d,%d), Scale math says (%d,%d)", gbps,
				got.Switch.ECNKmin, got.Switch.ECNKmax, want.Switch.ECNKmin, want.Switch.ECNKmax)
		}
		if got.LinkRate != want.LinkRate || got.LinkDelay != want.LinkDelay {
			t.Errorf("%dG: link %v/%v, want %v/%v", gbps, got.LinkRate, got.LinkDelay, want.LinkRate, want.LinkDelay)
		}
		if cfg.Duration != sc.Duration || cfg.Drain != sc.Drain || cfg.MaxFlowBytes != sc.MaxFlowBytes {
			t.Errorf("%dG: window %v+%v cap %d, want %v+%v cap %d", gbps,
				cfg.Duration, cfg.Drain, cfg.MaxFlowBytes, sc.Duration, sc.Drain, sc.MaxFlowBytes)
		}
	}
}

// TestCompileContextIsSpecParams pins the satellite contract that the
// compiler is the single composer of RunConfig.Context.
func TestCompileContextIsSpecParams(t *testing.T) {
	s := tinySpec()
	s.Faults = []spec.FaultSpec{{Leaf: 0, Spine: 1, DownAtUs: 100, UpAtUs: 200}}
	cfg := MustCompile(s)
	if cfg.Context != s.Params() {
		t.Fatalf("Context drifted from spec.Params:\n%q\nvs\n%q", cfg.Context, s.Params())
	}
	m := DefaultScale.MotivSpec(1, 2, 2)
	m.Scheme = "presto"
	mcfg := MustCompile(m)
	if mcfg.Context != m.Params() {
		t.Fatalf("motivation Context drifted:\n%q\nvs\n%q", mcfg.Context, m.Params())
	}
}

// TestCompileSchemeRegistryAgreement pins spec.SchemeNames to the harness
// scheme registry: every advertised name compiles, and an unknown name's
// error lists the valid ones.
func TestCompileSchemeRegistryAgreement(t *testing.T) {
	for _, name := range spec.SchemeNames() {
		s := tinySpec()
		s.Scheme = name
		if _, err := Compile(s); err != nil {
			t.Errorf("advertised scheme %q does not compile: %v", name, err)
		}
	}
	s := tinySpec()
	s.Scheme = "bogus"
	_, err := Compile(s)
	if err == nil {
		t.Fatal("unknown scheme compiled")
	}
	for _, name := range spec.SchemeNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("unknown-scheme error does not list %q: %v", name, err)
		}
	}

	s = tinySpec()
	s.Workload = "bogus"
	_, err = Compile(s)
	if err == nil {
		t.Fatal("unknown workload compiled")
	}
	for _, name := range spec.WorkloadNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("unknown-workload error does not list %q: %v", name, err)
		}
	}
}

func TestCompileValidation(t *testing.T) {
	cases := []struct {
		name   string
		mut    func(*spec.Spec)
		errHas string
	}{
		{"zero rate", func(s *spec.Spec) { s.LinkGbps = 0 }, "linkGbps"},
		{"zero duration", func(s *spec.Spec) { s.DurationUs = 0 }, "durationUs"},
		{"negative load", func(s *spec.Spec) { s.LoadPct = -1 }, "negative"},
		{"no leaves", func(s *spec.Spec) { s.Leaves = 0 }, "fabric"},
		{"bad scheduler", func(s *spec.Spec) { s.Scheduler = "fifo" }, "calendar, heap"},
		{"fault off fabric", func(s *spec.Spec) {
			s.Faults = []spec.FaultSpec{{Leaf: 0, Spine: 9, DownAtUs: 10, UpAtUs: 20}}
		}, "outside the"},
		{"incast reps with workload", func(s *spec.Spec) {
			s.IncastReps, s.IncastDegree, s.IncastKB = 3, 4, 40
		}, "repeated-incast"},
		{"incast reps without degree", func(s *spec.Spec) {
			s.IncastReps, s.Workload, s.LoadPct = 3, "", 0
		}, "incastDegree"},
	}
	for _, c := range cases {
		s := tinySpec()
		c.mut(&s)
		_, err := Compile(s)
		if err == nil || !strings.Contains(err.Error(), c.errHas) {
			t.Errorf("%s: want error containing %q, got %v", c.name, c.errHas, err)
		}
	}
	badMotiv := DefaultScale.MotivSpec(1, 0, 2)
	badMotiv.Scheme = "ecmp"
	if _, err := Compile(badMotiv); err == nil || !strings.Contains(err.Error(), "sprayPaths") {
		t.Errorf("zero sprayPaths: %v", err)
	}
}

// TestCompiledCellReplaysBitIdentically is the end-to-end replay acceptance:
// a figure-grid cell, serialized to canonical JSON and decoded back (the
// `figures -dump-spec` → `rlbsim -spec` path), compiles and runs to the same
// determinism fingerprint as the in-memory cell.
func TestCompiledCellReplaysBitIdentically(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g := spec.Grid{
		Name: "replay",
		Base: tinySpec(),
		Axes: []spec.Axis{
			{Field: "scheme", Strs: []string{"drill+rlb", "presto"}},
			{Field: "loadPct", Ints: []int{20, 40}},
		},
	}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	for i, cell := range cells {
		data, err := spec.Encode(cell)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := spec.Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		run := func(s spec.Spec) string {
			cfg := MustCompile(s)
			cfg.KeepNetwork = true
			res := Run(cfg)
			defer func() { res.Network = nil }()
			return Fingerprint(res)
		}
		direct, replayed := run(cell), run(decoded)
		if direct != replayed {
			t.Fatalf("cell %d: replay fingerprint diverged:\n%s\nvs\n%s", i, direct, replayed)
		}
	}
}

// TestCompileFaultSchedule pins the spec→topo fault translation: restored
// kills schedule down+up, unrestored kills schedule the break only, degrade
// windows carry the divided rate.
func TestCompileFaultSchedule(t *testing.T) {
	s := tinySpec()
	s.Faults = []spec.FaultSpec{
		{Leaf: 0, Spine: 0, DownAtUs: 100, UpAtUs: 200},
		{Leaf: 1, Spine: 1, DownAtUs: 50, UpAtUs: 0},
		{Leaf: 0, Spine: 1, DownAtUs: 80, UpAtUs: 120, RateDiv: 4},
	}
	cfg := MustCompile(s)
	if len(cfg.Faults) != 5 {
		t.Fatalf("want 5 scheduled fault events (2 + 1 + 2), got %d", len(cfg.Faults))
	}
	if cfg.Faults[2].At != 50*sim.Microsecond {
		t.Fatalf("unrestored kill scheduled at %v, want 50us", cfg.Faults[2].At)
	}
	wantRate := units.Bandwidth(10) * units.Gbps / 4
	if cfg.Faults[3].Rate != wantRate {
		t.Fatalf("degrade window rate %v, want %v", cfg.Faults[3].Rate, wantRate)
	}
}
