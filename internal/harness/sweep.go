package harness

import (
	"fmt"

	"github.com/rlb-project/rlb/internal/metrics"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/spec"
	"github.com/rlb-project/rlb/internal/transport"
)

// Metrics is the seed-averaged outcome of one spec cell, covering all three
// experiment kinds. Fabric cells fill the FCT/reordering/pause block (like
// AvgMetrics); motivation cells fill the same block measured over the
// background (victim) flows only; repeated-incast cells fill OOORatio/ICTms
// and the initiation counters. Unused fields stay zero.
type Metrics struct {
	AFCT      float64 // mean FCT, ms
	P25       float64
	P50       float64
	P75       float64
	P90       float64
	P99       float64 // tail FCT, ms
	OOOPct    float64 // out-of-order arrivals, % of received
	OODp99    float64 // 99th percentile out-of-order degree, packets
	PauseRate float64 // PAUSE frames per simulated ms
	Completed float64 // flows completed

	// OOORatio is the incast kind's raw out-of-order ratio (the Fig. 8
	// tables multiply the averaged value by 100 at presentation time).
	OOORatio float64
	// ICTms is the incast kind's mean completion time of the last flow per
	// initiation, ms.
	ICTms float64
	// Initiations/Finished count incast initiations scheduled/fully finished,
	// summed (not averaged) across seeds.
	Initiations int
	Finished    int

	// Violations totals invariant-checker findings across all seeds (not
	// averaged: any nonzero value is a bug).
	Violations int
	Seeds      int
}

// specMetrics extracts one run's raw metric values for the spec that compiled
// it, dispatching on the spec's experiment kind. It releases r.Network after
// extraction so a sweep's worth of retained topologies is not pinned.
func specMetrics(s spec.Spec, r *Result) Metrics {
	defer func() { r.Network = nil }()
	switch {
	case s.Motiv != nil:
		return motivationMetrics(s, r)
	case s.IncastReps > 0:
		return incastMetrics(s, r)
	default:
		rep := r.Report
		return Metrics{
			AFCT:       rep.AvgFCTms(),
			P25:        rep.FCT.Percentile(25),
			P50:        rep.FCT.Percentile(50),
			P75:        rep.FCT.Percentile(75),
			P90:        rep.FCT.Percentile(90),
			P99:        rep.TailFCTms(),
			OOOPct:     100 * rep.OOORatio(),
			OODp99:     rep.OOD.Percentile(99),
			PauseRate:  r.PauseRatePerMs(),
			Completed:  float64(rep.Completed),
			Violations: len(r.Violations),
		}
	}
}

// motivationMetrics measures the background (victim) flows of a motivation
// run — host ids below Motiv.Hosts are the Fig. 2 senders H1..Hn.
func motivationMetrics(s spec.Spec, r *Result) Metrics {
	nBg := s.Motiv.Hosts
	var flows []*transport.Flow
	for _, f := range r.Network.Flows {
		if f.Src < nBg {
			flows = append(flows, f)
		}
	}
	bg := metrics.BuildFlowReport(flows)
	return Metrics{
		AFCT:       bg.AvgFCTms(),
		P99:        bg.TailFCTms(),
		OOOPct:     100 * bg.OOORatio(),
		OODp99:     bg.OOD.Percentile(99),
		PauseRate:  r.PauseRatePerMs(),
		Completed:  float64(bg.Completed),
		Violations: len(r.Violations),
	}
}

// incastMetrics reconstructs the per-initiation flow groups of a
// repeated-incast run. compileIncastReps starts exactly
// min(degree, hosts-1) flows per initiation, in initiation order, with no
// other traffic in the run, so the retained network's flow list slices into
// groups and the initiation times recompute from the spec's gap.
func incastMetrics(s spec.Spec, r *Result) Metrics {
	numHosts := s.Leaves * s.HostsPerLeaf
	flowsPerRep := s.IncastDegree
	if flowsPerRep > numHosts-1 {
		flowsPerRep = numHosts - 1
	}
	gap := incastGap(s)
	flows := r.Network.Flows

	var ict metrics.Digest
	finished := 0
	reps := 0
	for rep := 0; rep*flowsPerRep < len(flows); rep++ {
		reps++
		group := flows[rep*flowsPerRep : minI((rep+1)*flowsPerRep, len(flows))]
		initAt := sim.Time(rep) * gap
		done := true
		var last sim.Time
		for _, f := range group {
			if !f.Done {
				done = false
				break
			}
			if f.FinishAt > last {
				last = f.FinishAt
			}
		}
		if done && len(group) > 0 {
			finished++
			ict.AddTime(last - initAt)
		}
	}
	return Metrics{
		OOORatio:    r.Report.OOORatio(),
		ICTms:       ict.Mean(),
		Initiations: reps,
		Finished:    finished,
		Violations:  len(r.Violations),
	}
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RunSpecsAveraged compiles every spec at `seeds` seed offsets (SimSeed,
// SimSeed+stride, ...), executes all runs concurrently, and returns
// per-spec averaged Metrics in input order — the generic engine behind every
// figure grid. A compile error on any cell aborts the whole sweep: a sweep
// that silently skipped cells would render a figure with holes.
func RunSpecsAveraged(specs []spec.Spec, seeds int) ([]Metrics, error) {
	if seeds < 1 {
		seeds = 1
	}
	expanded := make([]RunConfig, 0, len(specs)*seeds)
	for i, sp := range specs {
		for k := 0; k < seeds; k++ {
			c := sp.Clone()
			c.SimSeed = sp.SimSeed + uint64(k)*seedStride
			cfg, err := Compile(c)
			if err != nil {
				return nil, fmt.Errorf("harness: spec %d: %w", i, err)
			}
			expanded = append(expanded, cfg)
		}
	}
	results := RunAll(expanded)
	out := make([]Metrics, len(specs))
	for i, sp := range specs {
		var m Metrics
		m.Seeds = seeds
		for k := 0; k < seeds; k++ {
			one := specMetrics(sp, results[i*seeds+k])
			m.AFCT += one.AFCT
			m.P25 += one.P25
			m.P50 += one.P50
			m.P75 += one.P75
			m.P90 += one.P90
			m.P99 += one.P99
			m.OOOPct += one.OOOPct
			m.OODp99 += one.OODp99
			m.PauseRate += one.PauseRate
			m.Completed += one.Completed
			m.OOORatio += one.OOORatio
			m.ICTms += one.ICTms
			m.Initiations += one.Initiations
			m.Finished += one.Finished
			m.Violations += one.Violations
		}
		n := float64(seeds)
		m.AFCT /= n
		m.P25 /= n
		m.P50 /= n
		m.P75 /= n
		m.P90 /= n
		m.P99 /= n
		m.OOOPct /= n
		m.OODp99 /= n
		m.PauseRate /= n
		m.Completed /= n
		m.OOORatio /= n
		m.ICTms /= n
		out[i] = m
	}
	return out, nil
}

// RunGrid expands a grid and runs its cells through RunSpecsAveraged,
// returning the cells alongside their metrics so callers can label rows.
func RunGrid(g spec.Grid) ([]spec.Spec, []Metrics, error) {
	cells, err := g.Cells()
	if err != nil {
		return nil, nil, err
	}
	ms, err := RunSpecsAveraged(cells, g.Seeds)
	if err != nil {
		return nil, nil, fmt.Errorf("grid %q: %w", g.Name, err)
	}
	return cells, ms, nil
}

// MustRunGrid is RunGrid for the code-authored figure grids, where an error
// is a bug in the grid definition.
func MustRunGrid(g spec.Grid) ([]spec.Spec, []Metrics) {
	cells, ms, err := RunGrid(g)
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	return cells, ms
}

// MustRunGridMetrics is MustRunGrid for callers that only need the metrics.
func MustRunGridMetrics(g spec.Grid) []Metrics {
	_, ms := MustRunGrid(g)
	return ms
}
