package harness

import (
	"strings"
	"testing"

	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/units"
	"github.com/rlb-project/rlb/internal/workload"
)

// testScale is a deliberately tiny fabric so unit tests stay fast.
var testScale = Scale{
	Name: "test", Leaves: 2, Spines: 2, HostsPerLeaf: 3,
	LinkRate: 10 * units.Gbps, LinkDelay: 2 * sim.Microsecond,
	Duration: sim.Millisecond, Drain: 4 * sim.Millisecond,
	MaxFlowBytes: 500 * 1000,
	MotivSpines:  4, MotivHosts: 4,
}

func TestRunPoissonScenario(t *testing.T) {
	p := testScale.TopoParams()
	MustScheme("ecmp", testScale.LinkDelay, nil).Apply(&p)
	res := Run(RunConfig{
		Topo: p, Workload: workload.WebServer(), Load: 0.4,
		MaxFlowBytes: testScale.MaxFlowBytes,
		Duration:     testScale.Duration, Drain: testScale.Drain, Seed: 1,
	})
	if res.Report.Flows == 0 {
		t.Fatal("no flows generated")
	}
	if res.Report.Completed == 0 {
		t.Fatal("no flows completed")
	}
	if res.Drops != 0 {
		t.Fatalf("%d drops in lossless run", res.Drops)
	}
	if res.SimTime != testScale.Duration+testScale.Drain {
		t.Fatalf("SimTime = %v", res.SimTime)
	}
}

func TestRunAllOrderAndParallel(t *testing.T) {
	var cfgs []RunConfig
	loads := []float64{0.1, 0.2, 0.3, 0.4}
	for _, l := range loads {
		p := testScale.TopoParams()
		MustScheme("ecmp", testScale.LinkDelay, nil).Apply(&p)
		cfgs = append(cfgs, RunConfig{
			Topo: p, Workload: workload.WebServer(), Load: l,
			MaxFlowBytes: testScale.MaxFlowBytes,
			Duration:     testScale.Duration, Drain: testScale.Drain, Seed: 5,
		})
	}
	results := RunAll(cfgs)
	if len(results) != 4 {
		t.Fatalf("%d results", len(results))
	}
	// Higher load must generate more flows (same seed, same duration).
	for i := 1; i < len(results); i++ {
		if results[i].Report.Flows <= results[i-1].Report.Flows {
			t.Fatalf("flow counts not increasing with load: %d then %d",
				results[i-1].Report.Flows, results[i].Report.Flows)
		}
	}
}

func TestSchemeByName(t *testing.T) {
	for _, name := range []string{"ecmp", "presto", "letflow", "hermes", "drill"} {
		s, err := SchemeByName(name, 2*sim.Microsecond, nil)
		if err != nil || s.RLB != nil {
			t.Errorf("%s: %v rlb=%v", name, err, s.RLB)
		}
		s, err = SchemeByName(name+"+rlb", 2*sim.Microsecond, nil)
		if err != nil || s.RLB == nil {
			t.Errorf("%s+rlb: %v rlb=%v", name, err, s.RLB)
		}
	}
	if _, err := SchemeByName("bogus", 0, nil); err == nil {
		t.Error("bogus scheme accepted")
	}
	if _, err := SchemeByName("bogus+rlb", 0, nil); err == nil {
		t.Error("bogus+rlb scheme accepted")
	}
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"bench", "default", "paper"} {
		if s, ok := ScaleByName(name); !ok || s.Leaves == 0 {
			t.Errorf("ScaleByName(%s) failed", name)
		}
	}
	if _, ok := ScaleByName("nope"); ok {
		t.Error("unknown scale accepted")
	}
}

func TestAsymTopoParams(t *testing.T) {
	p := testScale.AsymTopoParams()
	if p.AsymFraction != 0.2 || p.AsymRate != testScale.LinkRate/4 {
		t.Fatalf("asym params wrong: %v %v", p.AsymFraction, p.AsymRate)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "T", Headers: []string{"a", "bb"}}
	tbl.AddRow("x", 1.23456)
	tbl.AddRow("longer", 2)
	tbl.AddNote("hello %d", 7)
	out := tbl.String()
	for _, want := range []string{"T\n", "a", "bb", "1.235", "longer", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestSweepInts(t *testing.T) {
	got := sweepInts(1, 8, 6)
	if got[0] != 1 || got[len(got)-1] != 8 {
		t.Fatalf("sweep endpoints wrong: %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("sweep not increasing: %v", got)
		}
	}
	if one := sweepInts(5, 5, 4); len(one) != 1 || one[0] != 5 {
		t.Fatalf("degenerate sweep: %v", one)
	}
}

func TestMotivationScenarioRuns(t *testing.T) {
	res := RunMotivation(MotivationSpec{
		Scale: testScale, Scheme: motivScheme("presto", testScale),
		PFCEnabled: true, SprayPaths: 2, Bursts: 2, Seed: 3,
	})
	if res.Background.Flows == 0 {
		t.Fatal("no background flows")
	}
	if res.Report.Flows <= res.Background.Flows {
		t.Fatal("burst/congested flows missing from aggregate")
	}
	if res.Pauses == 0 {
		t.Fatal("motivation scenario did not trigger PFC")
	}
}

func TestMotivationPFCOffHasNoPauses(t *testing.T) {
	res := RunMotivation(MotivationSpec{
		Scale: testScale, Scheme: motivScheme("drill", testScale),
		PFCEnabled: false, SprayPaths: 2, Bursts: 2, Seed: 3,
	})
	if res.Pauses != 0 {
		t.Fatalf("%d pauses with PFC disabled", res.Pauses)
	}
}

func TestRLBReducesReorderingUnderPFC(t *testing.T) {
	// The paper's headline claim, at test scale: with PFC on, adding RLB to
	// a PFC-oblivious per-packet scheme (DRILL) must reduce the
	// out-of-order ratio of the victim background flows.
	base := RunMotivation(MotivationSpec{
		Scale: testScale, Scheme: motivScheme("drill", testScale),
		PFCEnabled: true, SprayPaths: 4, Bursts: 3, Seed: 11,
	})
	rlb := defaultRLBFor(testScale)
	withRLB := RunMotivation(MotivationSpec{
		Scale: testScale, Scheme: MustScheme("drill+rlb", testScale.LinkDelay, &rlb),
		PFCEnabled: true, SprayPaths: 4, Bursts: 3, Seed: 11,
	})
	if base.Background.TotalOOO == 0 {
		t.Skip("scenario too gentle at test scale to reorder packets")
	}
	if withRLB.Background.OOORatio() >= base.Background.OOORatio() {
		t.Fatalf("RLB did not reduce reordering: %.4f -> %.4f (warnings=%d recircs=%d)",
			base.Background.OOORatio(), withRLB.Background.OOORatio(),
			withRLB.Warnings, withRLB.Recircs)
	}
}

func TestNormalizedRow(t *testing.T) {
	mk := func(afct float64) *Result {
		r := &Result{Report: nil}
		_ = r
		return nil
	}
	_ = mk
	// normalizedRow is exercised through Fig10 at bench scale; here check
	// the degenerate empty case does not panic.
	row := normalizedRow("x", nil)
	if len(row) != 1 {
		t.Fatalf("row = %v", row)
	}
}
