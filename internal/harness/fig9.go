package harness

import "fmt"

// Fig9 reproduces Fig. 9 (deep dive): the benefit of packet recirculation.
// Presto+RLB and Hermes+RLB run with recirculation enabled vs. disabled
// ("W/O Recir." always reroutes on a warning) under the Web Server and Data
// Mining workloads at 40/60/80% load; the metric is 99th-percentile FCT.
func Fig9(s Scale, seed uint64) []*Table {
	var tables []*Table
	for _, wl := range []string{"webserver", "datamining"} {
		g := Fig9Grid(s, wl, seed)
		loads := g.Axes[2].Ints
		t := &Table{
			Title:   fmt.Sprintf("Fig. 9 — p99 FCT (ms), recirculation ablation, %s workload", wl),
			Headers: []string{"scheme"},
		}
		for _, l := range loads {
			t.Headers = append(t.Headers, fmt.Sprintf("load %d%%", l))
		}
		cells, results := MustRunGrid(g)
		for i := 0; i < len(cells); i += len(loads) {
			name := cells[i].Scheme
			if cells[i].NoRecirc {
				name += " w/o recir."
			}
			row := []interface{}{name}
			for j := 0; j < len(loads); j++ {
				row = append(row, results[i+j].P99)
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables
}
