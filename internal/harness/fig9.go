package harness

import (
	"fmt"

	"github.com/rlb-project/rlb/internal/workload"
)

// Fig9 reproduces Fig. 9 (deep dive): the benefit of packet recirculation.
// Presto+RLB and Hermes+RLB run with recirculation enabled vs. disabled
// ("W/O Recir." always reroutes on a warning) under the Web Server and Data
// Mining workloads at 40/60/80% load; the metric is 99th-percentile FCT.
func Fig9(s Scale, seed uint64) []*Table {
	loads := []float64{0.4, 0.6, 0.8}
	bases := []string{"presto", "hermes"}
	var tables []*Table
	for _, wl := range []string{"webserver", "datamining"} {
		dist, err := workload.ByName(wl)
		if err != nil {
			panic(err)
		}
		t := &Table{
			Title:   fmt.Sprintf("Fig. 9 — p99 FCT (ms), recirculation ablation, %s workload", wl),
			Headers: []string{"scheme"},
		}
		for _, l := range loads {
			t.Headers = append(t.Headers, fmt.Sprintf("load %.0f%%", l*100))
		}
		var cfgs []RunConfig
		var names []string
		for _, base := range bases {
			for _, recirc := range []bool{false, true} {
				name := base + "+rlb"
				rlb := defaultRLBFor(s)
				rlb.DisableRecirculation = !recirc
				if !recirc {
					name += " w/o recir."
				}
				for _, load := range loads {
					p := s.TopoParams()
					MustScheme(base+"+rlb", s.LinkDelay, &rlb).Apply(&p)
					cfgs = append(cfgs, RunConfig{
						Topo:         p,
						Workload:     dist,
						Load:         load,
						MaxFlowBytes: s.MaxFlowBytes,
						Duration:     s.Duration,
						Drain:        s.Drain,
						Seed:         seed,
					})
				}
				names = append(names, name)
			}
		}
		results := RunAveraged(cfgs, s.seeds())
		idx := 0
		for _, name := range names {
			row := []interface{}{name}
			for range loads {
				row = append(row, results[idx].P99)
				idx++
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables
}
