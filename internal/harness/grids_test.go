package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/rlb-project/rlb/internal/spec"
)

// updateGrids refreshes testdata/grids_golden.json from the current grid
// definitions:
//
//	go test ./internal/harness/ -run TestFigureGridsGolden -update-grids
//
// Review the diff before committing — every changed line is a deliberate
// change to which experiments a paper figure runs.
var updateGrids = flag.Bool("update-grids", false, "rewrite testdata/grids_golden.json")

// gridFigs are the figure keys FigureGrids serves, in dump order.
var gridFigs = []string{"3", "4", "6", "7", "8", "9", "10", "irn"}

// allFigureGrids collects every figure's grids at the default scale, seed 1 —
// the exact inputs `cmd/figures` runs with no flags.
func allFigureGrids(t *testing.T) []spec.Grid {
	t.Helper()
	var out []spec.Grid
	for _, f := range gridFigs {
		gs, err := FigureGrids(f, DefaultScale, 1)
		if err != nil {
			t.Fatalf("FigureGrids(%q): %v", f, err)
		}
		out = append(out, gs...)
	}
	return out
}

// TestFigureGridsGolden pins the declarative sweep grids behind every paper
// figure byte-for-byte. The figure-output golden (golden_test.go) catches
// changes in what the simulations produce; this one catches changes in which
// simulations the figures ask for, and fails with a reviewable JSON diff
// instead of mysteriously shifted metrics.
func TestFigureGridsGolden(t *testing.T) {
	got, err := spec.EncodeGrids(allFigureGrids(t))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "grids_golden.json")
	if *updateGrids {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no grids golden file (run with -update-grids to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("figure grids drifted from %s; if intentional, refresh with -update-grids and review the diff", path)
	}
	// The golden file must itself round-trip through the strict decoder.
	decoded, err := spec.DecodeGrids(want)
	if err != nil {
		t.Fatalf("golden grids no longer decode: %v", err)
	}
	reencoded, err := spec.EncodeGrids(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, reencoded) {
		t.Fatal("golden grids round trip is not byte-stable")
	}
}

// TestFigureGridsExpand asserts every figure grid expands without error and
// every cell compiles — no figure can reach the sweep engine with an invalid
// axis field or a cell the compiler rejects.
func TestFigureGridsExpand(t *testing.T) {
	for _, g := range allFigureGrids(t) {
		cells, err := g.Cells()
		if err != nil {
			t.Errorf("grid %q: %v", g.Name, err)
			continue
		}
		if len(cells) != g.Size() {
			t.Errorf("grid %q: %d cells, Size says %d", g.Name, len(cells), g.Size())
		}
		for i, c := range cells {
			if _, err := Compile(c); err != nil {
				t.Errorf("grid %q cell %d does not compile: %v", g.Name, i, err)
			}
		}
	}
}

func TestFigureGridsUnknownFigure(t *testing.T) {
	if _, err := FigureGrids("2", DefaultScale, 1); err == nil {
		t.Fatal("unknown figure accepted")
	}
}
