package harness

// Fig3 reproduces Fig. 3: the four load-balancing schemes in the Fig. 2
// scenario, with PFC enabled vs. disabled, measuring (a) PFC pause rate,
// (b) 99th-percentile out-of-order degree, (c) average FCT and (d) 99th
// percentile FCT of the background flows.
func Fig3(s Scale, seed uint64) *Table {
	t := &Table{
		Title: "Fig. 3 — LB schemes with vs. without PFC (motivation scenario)",
		Headers: []string{"scheme", "pfc", "pause/ms", "p99 OOD (pkts)", "OOO%",
			"AFCT (ms)", "p99 FCT (ms)", "bg flows done"},
	}
	cells, results := MustRunGrid(Fig3Grid(s, seed))
	for i, c := range cells {
		r := results[i]
		pfcLabel := "on"
		if c.PFCOff {
			pfcLabel = "off"
		}
		t.AddRow(c.Scheme, pfcLabel,
			r.PauseRate, r.OODp99, r.OOOPct, r.AFCT, r.P99, r.Completed)
	}
	t.AddNote("scale=%s: %d paths, %d bg pairs, %d seeds; paper uses 40 paths, 100 pairs",
		s.Name, s.MotivSpines, s.MotivHosts, s.seeds())
	return t
}

// runMotivations executes motivation specs concurrently in input order.
func runMotivations(specs []MotivationSpec) []*MotivationResult {
	results := make([]*MotivationResult, len(specs))
	done := make(chan int)
	sem := make(chan struct{}, maxWorkers(len(specs)))
	for i := range specs {
		i := i
		// Worker-isolation contract: each RunMotivation builds its own
		// engine, topology, and seeded RNG streams from specs[i] alone and
		// shares no mutable state with its siblings. Workers write only
		// results[i] — a distinct element per goroutine — so the only
		// synchronization needed is the completion channel, and output is
		// identical for any worker count.
		go func() {
			sem <- struct{}{}
			results[i] = RunMotivation(specs[i])
			<-sem
			done <- i
		}()
	}
	for range specs {
		<-done
	}
	return results
}
