package harness

import (
	"github.com/rlb-project/rlb/internal/core"
	"github.com/rlb-project/rlb/internal/metrics"
	"github.com/rlb-project/rlb/internal/rng"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/topo"
	"github.com/rlb-project/rlb/internal/transport"
	"github.com/rlb-project/rlb/internal/workload"
)

// MotivationSpec parameterizes the Fig. 2 scenario: two leaf switches, many
// equal-cost paths between them, background flows H1..Hn -> R1..Rn, bursty
// hosts Hb blasting receiver Rc, and a long congested flow fc from Hc to Rc
// sprayed over several parallel paths.
type MotivationSpec struct {
	Scale  Scale
	Scheme Scheme
	// PFCEnabled toggles lossless mode (the Fig. 3 comparison axis).
	PFCEnabled bool
	// SprayPaths is how many parallel paths fc uses (Fig. 4(a) sweeps this).
	SprayPaths int
	// Bursts is the number of continuous burst waves (Fig. 4(b) sweeps it).
	Bursts int
	// BgLoad is the background senders' offered load fraction.
	BgLoad float64
	// StrictInvariants turns on the checker's expensive tier for this run
	// (see RunConfig.StrictInvariants).
	StrictInvariants bool
	Seed             uint64
}

// MotivationResult separates the victim (background) flows' metrics from the
// aggregate, since the paper's Fig. 3/4 measure the uncongested flows.
type MotivationResult struct {
	*Result
	Background *metrics.FlowReport
}

// RunMotivation executes the Fig. 2 scenario once.
func RunMotivation(spec MotivationSpec) *MotivationResult {
	cfg, nBg := motivationConfig(spec)
	res := Run(cfg)
	// Background flows are those sourced by H1..Hn (host ids < nBg).
	var bg []*transport.Flow
	for _, f := range res.Network.Flows {
		if f.Src < nBg {
			bg = append(bg, f)
		}
	}
	res.Network = nil
	return &MotivationResult{Result: res, Background: metrics.BuildFlowReport(bg)}
}

// motivationConfig builds the Fig. 2 scenario's RunConfig and returns it with
// the background-sender count (host ids below it are the victim flows the
// figures measure). Shared by RunMotivation and the spec compiler.
func motivationConfig(spec MotivationSpec) (RunConfig, int) {
	s := spec.Scale
	nBg := s.MotivHosts
	nBurst := nBg / 4
	if nBurst < 2 {
		nBurst = 2
	}
	hostsPerLeaf := nBg + 1 + nBurst

	p := topo.Default(2, s.MotivSpines, hostsPerLeaf)
	p.LinkRate = s.LinkRate
	p.LinkDelay = s.LinkDelay
	s.ScaleSwitch(&p.Switch)
	p.Switch.PFCEnabled = spec.PFCEnabled
	spec.Scheme.Apply(&p)

	// Host roles (leaf 0 then leaf 1). Burst hosts sit on leaf 0 so their
	// line-rate 64 KB flows cross the fabric toward Rc: they are what pauses
	// the parallel paths (Fig. 2 places Hb behind the spine layer).
	hc := nBg                // congested-flow sender on leaf 0
	rc := hostsPerLeaf + nBg // its receiver on leaf 1
	burstBase := nBg + 1     // burst hosts on leaf 0

	fcSize := 25 * 1000 * 1000 // scaled stand-in for the paper's 250 MB flow
	if s.MaxFlowBytes > 0 && fcSize > 10*s.MaxFlowBytes {
		fcSize = 10 * s.MaxFlowBytes
	}
	burstFlowSize := 64 * 1000
	burstFlowsPerHost := 10 // scaled stand-in for the paper's 40
	burstGap := 400 * sim.Microsecond

	bgLoad := spec.BgLoad
	if bgLoad <= 0 {
		bgLoad = 0.55
	}

	cfg := RunConfig{
		Topo: p,
		// KeepNetwork so the victim flows can be separated below; released
		// again before returning.
		KeepNetwork:      true,
		StrictInvariants: spec.StrictInvariants,
		Duration:         s.Duration,
		Drain:            s.Drain,
		Seed:             spec.Seed,
		Inject: func(n *topo.Network) {
			// Congested flow fc over SprayPaths parallel paths.
			fc := n.StartFlow(hc, rc, fcSize)
			n.SprayFlow(fc, spec.SprayPaths)

			// Continuous bursts into Rc (intra-leaf on leaf 1).
			var burstHosts []int
			for b := 0; b < nBurst; b++ {
				burstHosts = append(burstHosts, burstBase+b)
			}
			workload.Bursts(n.Eng, n.Starter(), burstHosts, rc,
				burstFlowsPerHost, burstFlowSize, spec.Bursts, burstGap)

			// Background pairs Hi -> Ri with Poisson arrivals (Web Search).
			pairedPoisson(n, rng.New(spec.Seed+13), workload.WebSearch(),
				nBg, hostsPerLeaf, bgLoad, s.Duration, s.MaxFlowBytes)
		},
	}
	return cfg, nBg
}

// pairedPoisson drives Poisson flow arrivals from sender i (host id i on
// leaf 0) to receiver i (host id hostsPerLeaf+i on leaf 1), at the given
// aggregate load, with sizes from dist (optionally capped).
func pairedPoisson(n *topo.Network, r *rng.Source, dist *workload.SizeDist,
	nPairs, hostsPerLeaf int, load float64, dur sim.Time, cap int) {

	lambda := load * float64(n.P.LinkRate) * float64(nPairs) / (8 * dist.Mean())
	stopAt := n.Eng.Now() + dur
	var schedule func()
	schedule = func() {
		gap := sim.Time(r.ExpFloat64() / lambda * float64(sim.Second))
		if gap < sim.Nanosecond {
			gap = sim.Nanosecond
		}
		at := n.Eng.Now() + gap
		if at >= stopAt {
			return
		}
		n.Eng.At(at, func() {
			i := r.Intn(nPairs)
			size := dist.Sample(r)
			if cap > 0 && size > cap {
				size = cap
			}
			n.StartFlow(i, hostsPerLeaf+i, size)
			schedule()
		})
	}
	schedule()
}

// motivScheme builds the Scheme for a motivation run (vanilla base LB).
func motivScheme(name string, s Scale) Scheme {
	return MustScheme(name, s.LinkDelay, nil)
}

// defaultRLBFor returns RLB defaults for a scale.
func defaultRLBFor(s Scale) core.Params { return core.DefaultParams(s.LinkDelay) }
