package topo

import (
	"testing"

	"github.com/rlb-project/rlb/internal/core"
	"github.com/rlb-project/rlb/internal/fabric"
	"github.com/rlb-project/rlb/internal/invariant"
	"github.com/rlb-project/rlb/internal/lb"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/units"
)

func TestFailRestoreLinkState(t *testing.T) {
	n := Build(tiny())
	if !n.LinkIsUp(0, 1) || len(n.DownLinks()) != 0 {
		t.Fatal("links not up after build")
	}
	n.FailLink(0, 1)
	n.FailLink(0, 1) // idempotent
	if n.LinkIsUp(0, 1) || n.LinkIsUp(1, 1) == false {
		t.Fatal("wrong link failed")
	}
	if got := n.DownLinks(); len(got) != 1 || got[0] != [2]int{0, 1} {
		t.Fatalf("DownLinks = %v", got)
	}
	// Both directions of the physical link are cut.
	up := n.Leaves[0].Port(n.P.HostsPerLeaf + 1)
	if !up.Down() || !n.Spines[1].Port(0).Down() {
		t.Fatal("fault did not cut both directions")
	}
	n.RestoreLink(0, 1)
	n.RestoreLink(0, 1) // idempotent
	if !n.LinkIsUp(0, 1) || up.Down() || n.Spines[1].Port(0).Down() {
		t.Fatal("restore incomplete")
	}
}

func TestScheduleFaultsAppliesOnClock(t *testing.T) {
	n := Build(tiny())
	n.ScheduleFaults([]Fault{
		{At: sim.Millisecond, Kind: LinkDown, Leaf: 0, Spine: 0},
		{At: 2 * sim.Millisecond, Kind: LinkUp, Leaf: 0, Spine: 0},
		{At: 3 * sim.Millisecond, Kind: LinkRate, Leaf: 1, Spine: 1, Rate: units.Gbps},
	})
	if !n.LinkIsUp(0, 0) {
		t.Fatal("fault applied before its time")
	}
	n.Run(1500 * sim.Microsecond)
	if n.LinkIsUp(0, 0) {
		t.Fatal("scheduled link-down did not fire")
	}
	n.Run(2 * sim.Millisecond) // advances to t=3.5ms
	if !n.LinkIsUp(0, 0) {
		t.Fatal("scheduled link-up did not fire")
	}
	up := n.Leaves[1].Port(n.P.HostsPerLeaf + 1)
	if up.Rate != units.Gbps || up.Peer.Rate != units.Gbps {
		t.Fatal("scheduled rate change did not apply to both directions")
	}
}

func TestScheduleFaultsRejectsBadLink(t *testing.T) {
	n := Build(tiny())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for nonexistent link")
		}
	}()
	n.ScheduleFaults([]Fault{{Kind: LinkDown, Leaf: 0, Spine: 99}})
}

func TestSetLinkRateRejectsNonPositive(t *testing.T) {
	n := Build(tiny())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero rate")
		}
	}()
	n.SetLinkRate(0, 0, 0)
}

func TestFaultKindString(t *testing.T) {
	for k, want := range map[FaultKind]string{
		LinkDown: "link-down", LinkUp: "link-up", LinkRate: "link-rate",
		FaultKind(9): "FaultKind(9)",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestFailLinkNotifiesAgents(t *testing.T) {
	p := tiny()
	rlb := core.DefaultParams(p.LinkDelay)
	p.RLB = &rlb
	p.LB = lb.NewDRILL(2, 1)
	n := Build(p)
	n.FailLink(0, 1)
	// Leaf 0 lost its own uplink: spine 1 is dead toward every destination.
	if !n.Agents[0].Faulted(1, 0) || !n.Agents[0].Faulted(1, 1) {
		t.Fatal("local agent not told its uplink died")
	}
	if n.Agents[0].Faulted(0, 1) {
		t.Fatal("healthy uplink marked faulted")
	}
	// Leaf 1 can still reach spine 1, but spine 1 can't deliver to leaf 0.
	if !n.Agents[1].Faulted(1, 0) {
		t.Fatal("remote agent not told about the dead far leg")
	}
	if n.Agents[1].Faulted(1, 1) {
		t.Fatal("remote agent over-notified: leaf 1 destinations unaffected")
	}
	n.RestoreLink(0, 1)
	if n.Agents[0].Faulted(1, 0) || n.Agents[1].Faulted(1, 0) {
		t.Fatal("restore did not clear agent fault state")
	}
}

func TestDeadPathTelemetryPoisoning(t *testing.T) {
	n := Build(tiny())
	v := n.views[0]
	pkt := mkDataTo(n, 0, 5) // leaf 0 -> leaf 1
	if v.QueueBytes(0) >= deadPathBytes || v.PathDelay(0, pkt) >= deadPathDelay {
		t.Fatal("healthy path reads as dead")
	}
	n.FailLink(0, 0)
	if v.QueueBytes(0) != deadPathBytes {
		t.Fatal("dead local uplink not poisoned in QueueBytes")
	}
	if v.PathDelay(0, pkt) != deadPathDelay {
		t.Fatal("dead local uplink not poisoned in PathDelay")
	}
	n.RestoreLink(0, 0)
	// Far leg down: leaf 0's uplink to spine 0 is fine, but spine 0 can't
	// reach leaf 1 — only PathDelay (which knows the destination) can see it.
	n.FailLink(1, 0)
	if v.QueueBytes(0) == deadPathBytes {
		t.Fatal("local queue poisoned for a remote fault")
	}
	if v.PathDelay(0, pkt) != deadPathDelay {
		t.Fatal("dead far leg not poisoned in PathDelay")
	}
}

// mkDataTo builds a data packet addressed from host src to host dst.
func mkDataTo(n *Network, src, dst int) *fabric.Packet {
	return fabric.NewData(1, 0, fabric.DefaultMTU, src, dst)
}

func TestWireLossOnCutLink(t *testing.T) {
	chk := invariant.New(false)
	p := tiny()
	p.Checker = chk
	n := Build(p)
	f := n.StartFlow(0, 5, 400*1000) // leaf 0 -> leaf 1, long enough to straddle the cut
	n.ScheduleFaults([]Fault{
		{At: 50 * sim.Microsecond, Kind: LinkDown, Leaf: 0, Spine: 0},
		{At: 51 * sim.Microsecond, Kind: LinkDown, Leaf: 0, Spine: 1},
		{At: 300 * sim.Microsecond, Kind: LinkUp, Leaf: 0, Spine: 0},
		{At: 300 * sim.Microsecond, Kind: LinkUp, Leaf: 0, Spine: 1},
	})
	n.Run(30 * sim.Millisecond)
	if !f.Done {
		t.Fatal("flow did not recover after links came back")
	}
	if n.WireLost() == 0 {
		t.Fatal("cutting every uplink mid-flow lost no frames on the wire")
	}
	n.AuditInvariants()
	if !chk.Ok() {
		t.Fatalf("recovered run has violations:\n%s", chk.Summary())
	}
}
