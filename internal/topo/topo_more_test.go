package topo

import (
	"testing"
	"testing/quick"

	"github.com/rlb-project/rlb/internal/core"
	"github.com/rlb-project/rlb/internal/fabric"
	"github.com/rlb-project/rlb/internal/lb"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/trace"
	"github.com/rlb-project/rlb/internal/units"
)

func TestPathDelayReflectsQueues(t *testing.T) {
	p := tiny()
	n := Build(p)
	view := n.views[0]
	pkt := fabric.NewData(1, 0, 1000, 0, 5) // leaf 0 -> leaf 1
	base := view.PathDelay(0, pkt)
	if base < 2*p.LinkDelay {
		t.Fatalf("empty-fabric path delay %v below propagation floor", base)
	}
	// Stuff the uplink 0 egress queue; its path delay must grow.
	up := n.Leaves[0].Port(p.HostsPerLeaf + 0)
	up.SetPaused(fabric.PrioData, true, 0)
	for i := 0; i < 20; i++ {
		up.Enqueue(fabric.NewData(9, uint32(i), 1000, 0, 5))
	}
	if got := view.PathDelay(0, pkt); got <= base {
		t.Fatalf("path delay ignored local queue: %v <= %v", got, base)
	}
	if got := view.PathDelay(1, pkt); got != base {
		t.Fatalf("unrelated path delay changed: %v != %v", got, base)
	}
}

func TestPathDelayReflectsAsymmetricRate(t *testing.T) {
	p := tiny()
	p.AsymFraction = 0.26 // exactly one of 4 links at this size
	p.AsymRate = units.Gbps
	n := Build(p)
	// Find the slow uplink on leaf 0, if any, and confirm its drain time is
	// larger once queued.
	view := n.views[0]
	pkt := fabric.NewData(1, 0, 1000, 0, 5)
	for s := 0; s < p.Spines; s++ {
		up := n.Leaves[0].Port(p.HostsPerLeaf + s)
		up.SetPaused(fabric.PrioData, true, 0)
		up.Enqueue(fabric.NewData(9, 0, 10000, 0, 5))
		d := view.PathDelay(s, pkt)
		want := units.TxTime(10000, up.Rate) + 2*p.LinkDelay
		if d != want {
			t.Fatalf("uplink %d delay %v, want %v", s, d, want)
		}
	}
}

func TestViewQueueBytes(t *testing.T) {
	p := tiny()
	n := Build(p)
	view := n.views[0]
	if view.NumPaths() != p.Spines {
		t.Fatalf("NumPaths = %d", view.NumPaths())
	}
	up := n.Leaves[0].Port(p.HostsPerLeaf)
	up.SetPaused(fabric.PrioData, true, 0)
	up.Enqueue(fabric.NewData(9, 0, 777, 0, 5))
	if got := view.QueueBytes(0); got != 777 {
		t.Fatalf("QueueBytes = %d", got)
	}
}

func TestSprayCapsAtSpineCount(t *testing.T) {
	n := Build(tiny())
	f := n.StartFlow(0, 5, 50*1000)
	n.SprayFlow(f, 100) // far more than 2 spines
	n.Run(10 * sim.Millisecond)
	if !f.Done {
		t.Fatal("over-sprayed flow incomplete")
	}
}

func TestAsymFractionProperty(t *testing.T) {
	prop := func(seedRaw uint16, fracRaw uint8) bool {
		frac := float64(fracRaw%90) / 100
		p := Default(3, 4, 2)
		p.AsymFraction = frac
		p.AsymRate = units.Gbps
		p.Seed = uint64(seedRaw)
		n := Build(p)
		slow := 0
		for l := 0; l < p.Leaves; l++ {
			for s := 0; s < p.Spines; s++ {
				if n.Leaves[l].Port(p.HostsPerLeaf+s).Rate == units.Gbps {
					slow++
				}
			}
		}
		return slow == int(frac*float64(p.Leaves*p.Spines))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRLBDisabledHasNoAgents(t *testing.T) {
	n := Build(tiny())
	for _, a := range n.Agents {
		if a != nil {
			t.Fatal("agent present without RLB")
		}
	}
	if len(n.Predictors) != 0 || len(n.Relays) != 0 {
		t.Fatal("RLB machinery present without RLB")
	}
}

func TestStopRLBDrainsEvents(t *testing.T) {
	p := tiny()
	rlb := core.DefaultParams(p.LinkDelay)
	p.RLB = &rlb
	n := Build(p)
	n.StartFlow(0, 5, 50*1000)
	n.Run(5 * sim.Millisecond)
	n.StopRLB()
	n.Eng.Run() // must terminate with no periodic samplers left
	if n.Eng.Pending() != 0 {
		t.Fatalf("%d events pending after StopRLB", n.Eng.Pending())
	}
}

func TestMixedRLBTraffic(t *testing.T) {
	// RLB network carrying bidirectional mixed flows stays lossless and
	// completes everything.
	p := tiny()
	p.Switch.PFCThreshold = 24 * 1000
	rlb := core.DefaultParams(p.LinkDelay)
	p.RLB = &rlb
	p.LB = lb.NewPresto(64*1000, 1000)
	n := Build(p)
	for i := 0; i < 12; i++ {
		src := i % 6
		dst := (i + 3) % 6
		n.StartFlow(src, dst, 150*1000)
	}
	n.Run(40 * sim.Millisecond)
	n.StopRLB()
	for i, f := range n.Flows {
		if !f.Done {
			t.Fatalf("flow %d incomplete under RLB+Presto", i)
		}
	}
	if n.Drops() != 0 {
		t.Fatalf("%d drops", n.Drops())
	}
}

func TestTraceRecordsFabricEvents(t *testing.T) {
	p := tiny()
	p.Switch.PFCThreshold = 24 * 1000
	rlb := core.DefaultParams(p.LinkDelay)
	p.RLB = &rlb
	buf := trace.NewBuffer(4096)
	p.Trace = buf
	n := Build(p)
	for src := 0; src < 3; src++ {
		n.StartFlow(src, 3, 400*1000)
	}
	n.Run(20 * sim.Millisecond)
	n.StopRLB()
	if buf.Total() == 0 {
		t.Fatal("no events recorded")
	}
	if buf.CountKind(trace.DataArrive) == 0 || buf.CountKind(trace.DataDepart) == 0 {
		t.Fatal("data-plane events missing")
	}
	if n.PauseFramesSent() > 0 && buf.CountKind(trace.PauseOn) == 0 {
		t.Fatal("pauses happened but were not traced")
	}
	if buf.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestProbeTelemetry(t *testing.T) {
	p := tiny()
	p.ProbeInterval = 20 * sim.Microsecond
	n := Build(p)
	// Pause uplink 0 of leaf 0: its data-class probes get stuck while
	// uplink 1's probes keep returning.
	up := n.Leaves[0].Port(p.HostsPerLeaf + 0)
	up.SetPaused(fabric.PrioData, true, 0)
	n.Run(2 * sim.Millisecond)
	n.StopRLB()
	sent, rcvd := n.ProbeStats()
	if sent == 0 || rcvd == 0 {
		t.Fatalf("probes sent=%d rcvd=%d", sent, rcvd)
	}
	// Paused-uplink probes never return (or are stale on arrival): strictly
	// fewer receptions than transmissions.
	if rcvd >= sent {
		t.Fatalf("expected stuck probes on the paused uplink: sent=%d rcvd=%d", sent, rcvd)
	}
	pkt := fabric.NewData(1, 0, 1000, 0, 5)
	for i := 0; i < p.Spines; i++ {
		if d := n.views[0].PathDelay(i, pkt); d <= 0 {
			t.Fatalf("probe path delay %v for uplink %d", d, i)
		}
	}
}

func TestProbeTelemetryFlowsStillComplete(t *testing.T) {
	p := tiny()
	p.ProbeInterval = 50 * sim.Microsecond
	p.LB = lb.NewHermes(1000, 2*p.LinkDelay)
	n := Build(p)
	f := n.StartFlow(0, 5, 200*1000)
	n.Run(10 * sim.Millisecond)
	n.StopRLB()
	if !f.Done {
		t.Fatal("flow incomplete with probe telemetry")
	}
	if n.Eng.Pending() != 0 {
		n.Eng.Run()
	}
}
