package topo

import (
	"github.com/rlb-project/rlb/internal/fabric"
	"github.com/rlb-project/rlb/internal/flatmap"
	"github.com/rlb-project/rlb/internal/lb"
	"github.com/rlb-project/rlb/internal/rng"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/switchsim"
)

// leafView implements lb.View for one leaf switch. PathDelay inspects the
// local uplink queue and the spine's queue toward the destination leaf — an
// idealized-freshness path telemetry (see DESIGN.md substitution 2). Queue
// drain times automatically reflect asymmetric link rates.
type leafView struct {
	net  *Network
	leaf int
}

func (v *leafView) NumPaths() int { return v.net.P.Spines }

// Dead-path telemetry poisoning: a failed link reads as an effectively
// infinite queue/delay, so queue- and delay-aware schemes (DRILL, Hermes,
// CONGA) steer around failures on their own, while oblivious schemes (ECMP,
// Presto, LetFlow) keep forwarding into the hole — the asymmetry the fault
// plane exists to expose.
const (
	deadPathBytes = 1 << 40
	deadPathDelay = sim.Time(1000 * sim.Second)
)

func (v *leafView) QueueBytes(i int) int {
	if !v.net.LinkIsUp(v.leaf, i) {
		return deadPathBytes
	}
	return v.net.Leaves[v.leaf].Port(v.net.P.HostsPerLeaf + i).QueuedBytes(fabric.PrioData)
}

func (v *leafView) PathDelay(i int, pkt *fabric.Packet) sim.Time {
	dstLeaf := v.net.LeafOf(pkt.DstID)
	if !v.net.LinkIsUp(v.leaf, i) ||
		(dstLeaf >= 0 && dstLeaf < v.net.P.Leaves && dstLeaf != v.leaf && !v.net.LinkIsUp(dstLeaf, i)) {
		return deadPathDelay
	}
	if v.net.probes != nil {
		// Probe telemetry: an in-band, EWMA'd, slightly stale estimate of
		// the uplink leg, plus the propagation floor of the spine leg.
		return v.net.probes[v.leaf].delay(i) + v.net.P.LinkDelay
	}
	up := v.net.Leaves[v.leaf].Port(v.net.P.HostsPerLeaf + i)
	d := up.DrainTime() + 2*v.net.P.LinkDelay
	if dstLeaf >= 0 && dstLeaf < v.net.P.Leaves && dstLeaf != v.leaf {
		d += v.net.Spines[i].Port(dstLeaf).DrainTime()
	}
	return d
}

func (v *leafView) Now() sim.Time { return v.net.Eng.Now() }

func (v *leafView) Rng() *rng.Source { return v.net.Leaves[v.leaf].Rng }

// leafRouter forwards frames at a leaf: local hosts directly, remote leaves
// via the LB policy (data) or a flow hash (control). The spray table
// overrides the policy for designated flows (the paper's multi-path
// congested-flow knob).
type leafRouter struct {
	net    *Network
	leaf   int
	view   *leafView
	policy lb.Policy
	trc    sim.Time
	spray  flatmap.U32[int]
}

func (r *leafRouter) Route(sw *switchsim.Switch, pkt *fabric.Packet, in int) switchsim.Decision {
	p := r.net.P
	if pkt.Type == fabric.Probe {
		// A reflected probe returning home: ingest and consume.
		if r.net.probes != nil && int(pkt.FlowID) == r.leaf {
			r.net.probes[r.leaf].onReturn(pkt)
		}
		return switchsim.Decision{Drop: true}
	}
	dstLeaf := r.net.LeafOf(pkt.DstID)
	if dstLeaf == r.leaf {
		return switchsim.Decision{Out: pkt.DstID % p.HostsPerLeaf}
	}
	if pkt.Type != fabric.Data {
		// Control frames take a deterministic hashed uplink.
		return switchsim.Decision{Out: p.HostsPerLeaf + int(pkt.FlowID)%p.Spines}
	}
	if k, ok := r.spray.Get(pkt.FlowID); ok && k > 0 {
		if k > p.Spines {
			k = p.Spines
		}
		return switchsim.Decision{Out: p.HostsPerLeaf + int(pkt.Seq)%k}
	}
	d := r.policy.Pick(r.view, pkt)
	if d.Recirculate {
		return switchsim.Decision{Recirculate: true, RecircDelay: r.trc}
	}
	return switchsim.Decision{Out: p.HostsPerLeaf + d.Uplink}
}

// spineRouter forwards every frame to its destination leaf's port.
type spineRouter struct{ net *Network }

func (r spineRouter) Route(sw *switchsim.Switch, pkt *fabric.Packet, in int) switchsim.Decision {
	if pkt.Type == fabric.Probe {
		// Reflect probes straight back to the leaf that sent them.
		return switchsim.Decision{Out: in}
	}
	return switchsim.Decision{Out: r.net.LeafOf(pkt.DstID)}
}
