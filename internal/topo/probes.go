package topo

import (
	"github.com/rlb-project/rlb/internal/fabric"
	"github.com/rlb-project/rlb/internal/sim"
)

// probeMonitor measures per-uplink round-trip times with real probe frames
// instead of the oracle queue inspection: every Interval, the leaf emits one
// probe per uplink; the spine reflects it back through the same port, and
// the leaf keeps an EWMA of half the measured RTT as the uplink's one-way
// delay estimate. This is the honest (in-band, delayed, quantized) version
// of the path telemetry that DESIGN.md substitution 2 idealizes — enable it
// with Params.ProbeInterval to study how much signal freshness matters.
type probeMonitor struct {
	net      *Network
	leaf     int
	interval sim.Time

	// est[i] is the EWMA'd one-way delay estimate for uplink i.
	est []sim.Time
	// sentAt[i] is the departure time of the probe in flight on uplink i;
	// lastSeq[i] identifies it so stale reflections are ignored.
	sentAt  []sim.Time
	lastSeq []uint32
	seq     uint32

	stopped bool
	timer   sim.Timer

	// ProbesSent / ProbesRcvd count monitor activity.
	ProbesSent uint64
	ProbesRcvd uint64
}

// ewmaShift is the EWMA gain as a power of two: est += (sample - est) / 2^k.
const ewmaShift = 2

func newProbeMonitor(n *Network, leaf int, interval sim.Time) *probeMonitor {
	m := &probeMonitor{
		net:      n,
		leaf:     leaf,
		interval: interval,
		est:      make([]sim.Time, n.P.Spines),
		sentAt:   make([]sim.Time, n.P.Spines),
		lastSeq:  make([]uint32, n.P.Spines),
	}
	base := 2 * n.P.LinkDelay
	for i := range m.est {
		m.est[i] = base
	}
	m.arm()
	return m
}

// OnEvent implements sim.Handler: one probe-emission tick.
func (m *probeMonitor) OnEvent(sim.EventArg) {
	if m.stopped {
		return
	}
	m.emit()
	m.arm()
}

func (m *probeMonitor) arm() {
	m.timer = m.net.Eng.ScheduleAfter(m.interval, m, sim.EventArg{})
}

// emit sends one probe out of every uplink. Probes ride the control class:
// they measure propagation and the control path's serialization, plus the
// data backlog indirectly via the spine's reflection time — an intentionally
// imperfect signal, like real in-band telemetry.
func (m *probeMonitor) emit() {
	sw := m.net.Leaves[m.leaf]
	for i := 0; i < m.net.P.Spines; i++ {
		m.seq++
		p := sw.Pool.Control(fabric.Probe, sw.ID, -1)
		p.Prio = fabric.PrioData // measure the data class, pause and all
		p.FlowID = uint32(m.leaf)
		p.Seq = m.seq
		p.CNMsg.IngressPort = i // uplink index, echoed back
		m.sentAt[i] = m.net.Eng.Now()
		m.lastSeq[i] = m.seq
		m.ProbesSent++
		sw.Port(m.net.P.HostsPerLeaf + i).Enqueue(p)
	}
}

// onReturn ingests a reflected probe.
func (m *probeMonitor) onReturn(pkt *fabric.Packet) {
	i := pkt.CNMsg.IngressPort
	if i < 0 || i >= len(m.est) {
		return
	}
	if pkt.Seq != m.lastSeq[i] {
		return // superseded by a newer probe on this uplink
	}
	m.ProbesRcvd++
	rtt := m.net.Eng.Now() - m.sentAt[i]
	oneWay := rtt / 2
	m.est[i] += (oneWay - m.est[i]) >> ewmaShift
}

// delay returns the probed one-way delay estimate for uplink i.
func (m *probeMonitor) delay(i int) sim.Time { return m.est[i] }

func (m *probeMonitor) stop() {
	m.stopped = true
	m.timer.Stop()
}
