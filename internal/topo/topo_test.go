package topo

import (
	"testing"

	"github.com/rlb-project/rlb/internal/core"
	"github.com/rlb-project/rlb/internal/lb"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/units"
)

func tiny() Params {
	p := Default(2, 2, 3)
	p.LinkRate = 10 * units.Gbps // keep test event counts small
	return p
}

func TestBuildShape(t *testing.T) {
	n := Build(Default(3, 4, 2))
	if len(n.Hosts) != 6 || len(n.Leaves) != 3 || len(n.Spines) != 4 {
		t.Fatalf("shape wrong: %d hosts %d leaves %d spines", len(n.Hosts), len(n.Leaves), len(n.Spines))
	}
	if n.Leaves[0].NumPorts() != 2+4 || n.Spines[0].NumPorts() != 3 {
		t.Fatal("port counts wrong")
	}
	if n.LeafOf(5) != 2 {
		t.Fatal("LeafOf wrong")
	}
	if got := n.HostsOfLeaf(1); got[0] != 2 || got[1] != 3 {
		t.Fatalf("HostsOfLeaf = %v", got)
	}
}

func TestInterLeafFlowCompletes(t *testing.T) {
	n := Build(tiny())
	f := n.StartFlow(0, 5, 200*1000) // leaf 0 -> leaf 1
	n.Run(10 * sim.Millisecond)
	if !f.Done {
		t.Fatal("inter-leaf flow did not complete")
	}
	// 200KB at 10G ~ 160us + queueing.
	if f.FCT() > 2*sim.Millisecond {
		t.Fatalf("FCT %v way too slow", f.FCT())
	}
}

func TestIntraLeafFlowCompletes(t *testing.T) {
	n := Build(tiny())
	f := n.StartFlow(0, 1, 100*1000)
	n.Run(5 * sim.Millisecond)
	if !f.Done {
		t.Fatal("intra-leaf flow did not complete")
	}
}

func TestAllSchemesDeliverEverything(t *testing.T) {
	factories := map[string]lb.Factory{
		"ecmp":    lb.NewECMP(),
		"presto":  lb.NewPresto(64*1000, 1000),
		"letflow": lb.NewLetFlow(50 * sim.Microsecond),
		"drill":   lb.NewDRILL(2, 1),
		"hermes":  lb.NewHermes(1000, 4*sim.Microsecond),
	}
	for name, f := range factories {
		t.Run(name, func(t *testing.T) {
			p := tiny()
			p.LB = f
			n := Build(p)
			for i := 0; i < 10; i++ {
				n.StartFlow(i%3, 3+(i%3), 50*1000)
			}
			n.Run(20 * sim.Millisecond)
			for i, fl := range n.Flows {
				if !fl.Done {
					t.Fatalf("%s: flow %d incomplete", name, i)
				}
			}
			if n.Drops() != 0 {
				t.Fatalf("%s: %d drops in lossless fabric", name, n.Drops())
			}
		})
	}
}

func TestIncastTriggersPFCWithoutLoss(t *testing.T) {
	p := tiny()
	p.Switch.PFCThreshold = 30 * 1000 // tighten to force PFC at this scale
	n := Build(p)
	// 5 hosts all blast host 0.
	for src := 1; src < 6; src++ {
		n.StartFlow(src, 0, 500*1000)
	}
	n.Run(30 * sim.Millisecond)
	if n.PauseFramesSent() == 0 {
		t.Fatal("incast did not trigger PFC")
	}
	if n.Drops() != 0 {
		t.Fatalf("%d drops despite PFC", n.Drops())
	}
	for i, fl := range n.Flows {
		if !fl.Done {
			t.Fatalf("flow %d incomplete", i)
		}
	}
}

func TestAsymmetricLinksApplied(t *testing.T) {
	p := tiny()
	p.AsymFraction = 0.5
	p.AsymRate = units.Gbps
	n := Build(p)
	slow := 0
	for l := 0; l < p.Leaves; l++ {
		for s := 0; s < p.Spines; s++ {
			if n.Leaves[l].Port(p.HostsPerLeaf+s).Rate == units.Gbps {
				slow++
			}
		}
	}
	if slow != 2 { // 50% of 4 links
		t.Fatalf("downgraded links = %d, want 2", slow)
	}
}

func TestSprayFlowUsesKUplinks(t *testing.T) {
	p := tiny()
	n := Build(p)
	f := n.StartFlow(0, 5, 100*1000)
	n.SprayFlow(f, 2)
	n.Run(10 * sim.Millisecond)
	if !f.Done {
		t.Fatal("sprayed flow incomplete")
	}
	// Both spines must have carried traffic from leaf 0.
	for s := 0; s < 2; s++ {
		if n.Spines[s].Stats.DataIn == 0 {
			t.Fatalf("spine %d saw no data from sprayed flow", s)
		}
	}
}

func TestRLBDeployment(t *testing.T) {
	p := tiny()
	rlb := core.DefaultParams(p.LinkDelay)
	p.RLB = &rlb
	p.LB = lb.NewDRILL(2, 1)
	n := Build(p)
	if n.Agents[0] == nil || n.Agents[1] == nil {
		t.Fatal("agents missing")
	}
	if len(n.Predictors) != 4 || len(n.Relays) != 2 {
		t.Fatalf("predictors=%d relays=%d", len(n.Predictors), len(n.Relays))
	}
	f := n.StartFlow(0, 5, 100*1000)
	n.Run(10 * sim.Millisecond)
	n.StopRLB()
	if !f.Done {
		t.Fatal("flow incomplete under RLB")
	}
}

func TestRLBWarningsFlowUnderCongestion(t *testing.T) {
	p := tiny()
	p.Switch.PFCThreshold = 40 * 1000
	rlb := core.DefaultParams(p.LinkDelay)
	p.RLB = &rlb
	p.LB = lb.NewPresto(64*1000, 1000)
	n := Build(p)
	// Hammer host 3 (leaf 1) from every other host to congest the fabric.
	for src := 0; src < 3; src++ {
		n.StartFlow(src, 3, 2*1000*1000)
	}
	n.StartFlow(4, 3, 2*1000*1000) // intra-leaf contributor
	n.Run(50 * sim.Millisecond)
	n.StopRLB()
	var warns uint64
	for _, a := range n.Agents {
		if a != nil {
			warns += a.Stats.WarningsRcvd
		}
	}
	if warns == 0 {
		t.Fatal("no PFC warnings reached any leaf agent under heavy congestion")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (sim.Time, uint64) {
		p := tiny()
		p.Seed = 99
		p.LB = lb.NewDRILL(2, 1)
		n := Build(p)
		for i := 0; i < 8; i++ {
			n.StartFlow(i%6, (i+3)%6, 80*1000)
		}
		n.Run(20 * sim.Millisecond)
		var last sim.Time
		for _, f := range n.Flows {
			if f.FinishAt > last {
				last = f.FinishAt
			}
		}
		return last, n.PauseFramesSent()
	}
	t1, p1 := run()
	t2, p2 := run()
	if t1 != t2 || p1 != p2 {
		t.Fatalf("non-deterministic: (%v,%d) vs (%v,%d)", t1, p1, t2, p2)
	}
}

func TestControlFramesUseHashedUplink(t *testing.T) {
	// ACK path must be stable: a flow completes even when data path choices
	// churn (DRILL per-packet).
	p := tiny()
	p.LB = lb.NewDRILL(2, 1)
	n := Build(p)
	f := n.StartFlow(0, 5, 300*1000)
	n.Run(20 * sim.Millisecond)
	if !f.Done {
		t.Fatal("flow with per-packet LB incomplete")
	}
}

func TestBuildPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 0 leaves")
		}
	}()
	Build(Params{Leaves: 0, Spines: 1, HostsPerLeaf: 1})
}
