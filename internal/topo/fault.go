package topo

import (
	"fmt"

	"github.com/rlb-project/rlb/internal/fabric"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/units"
)

// FaultKind discriminates fault-plane events on a leaf-spine link.
type FaultKind uint8

const (
	// LinkDown cuts the link in both directions: egress queues on both ends
	// stop draining (PFC backpressure takes over upstream) and frames on the
	// wire are lost.
	LinkDown FaultKind = iota
	// LinkUp restores a failed link; stranded queues resume draining.
	LinkUp
	// LinkRate changes the link to Rate in both directions (degradation or
	// repair), the dynamic version of Params.AsymFraction.
	LinkRate
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case LinkRate:
		return "link-rate"
	default:
		return fmt.Sprintf("FaultKind(%d)", uint8(k))
	}
}

// Fault is one scheduled fault-plane event on the leaf-spine link
// (Leaf, Spine). The harness schedules RunConfig.Faults right after the
// network is built, so scenarios like "kill 2 of 8 spine uplinks at t=10ms"
// are data, not code.
type Fault struct {
	At   sim.Time
	Kind FaultKind
	// Leaf and Spine address the link.
	Leaf  int
	Spine int
	// Rate is the new bandwidth for LinkRate faults.
	Rate units.Bandwidth
}

// ScheduleFaults arms every fault on the simulation clock. Call once, before
// running the engine.
func (n *Network) ScheduleFaults(faults []Fault) {
	for _, f := range faults {
		f := f
		n.checkLink(f.Leaf, f.Spine)
		n.Eng.At(f.At, func() { n.ApplyFault(f) })
	}
}

// ApplyFault executes one fault right now.
func (n *Network) ApplyFault(f Fault) {
	switch f.Kind {
	case LinkDown:
		n.FailLink(f.Leaf, f.Spine)
	case LinkUp:
		n.RestoreLink(f.Leaf, f.Spine)
	case LinkRate:
		n.SetLinkRate(f.Leaf, f.Spine, f.Rate)
	default:
		panic(fmt.Sprintf("topo: unknown fault kind %v", f.Kind))
	}
}

func (n *Network) checkLink(l, s int) {
	if l < 0 || l >= n.P.Leaves || s < 0 || s >= n.P.Spines {
		panic(fmt.Sprintf("topo: fault addresses nonexistent link leaf %d / spine %d", l, s))
	}
}

// LinkIsUp reports whether the leaf-spine link (l, s) is currently up.
func (n *Network) LinkIsUp(l, s int) bool { return n.linkUp[l*n.P.Spines+s] }

// uplinkPort returns the leaf-side port of link (l, s).
func (n *Network) uplinkPort(l, s int) *fabric.Port {
	return n.Leaves[l].Port(n.P.HostsPerLeaf + s)
}

// FailLink cuts the leaf-spine link (l, s) in both directions and tells the
// RLB control plane: the local agent marks uplink s dead outright, and every
// other leaf's agent marks spine s dead toward leaf l (the spine can no
// longer deliver there). Link-state detection is local and fast on real
// switches, so this models an idealized immediate notification; schemes
// without RLB get no signal and must cope through their own telemetry (or
// blackhole, which the invariant checker flags).
func (n *Network) FailLink(l, s int) {
	n.checkLink(l, s)
	idx := l*n.P.Spines + s
	if !n.linkUp[idx] {
		return
	}
	n.linkUp[idx] = false
	fabric.SetLinkDown(n.uplinkPort(l, s), true)
	n.notifyAgents(l, s, true)
}

// RestoreLink brings the leaf-spine link (l, s) back up; stranded egress
// queues resume draining immediately.
func (n *Network) RestoreLink(l, s int) {
	n.checkLink(l, s)
	idx := l*n.P.Spines + s
	if n.linkUp[idx] {
		return
	}
	n.linkUp[idx] = true
	fabric.SetLinkDown(n.uplinkPort(l, s), false)
	n.notifyAgents(l, s, false)
}

// SetLinkRate changes the leaf-spine link (l, s) to rate in both directions.
func (n *Network) SetLinkRate(l, s int, rate units.Bandwidth) {
	n.checkLink(l, s)
	if rate <= 0 {
		panic("topo: non-positive link rate")
	}
	fabric.SetLinkRate(n.uplinkPort(l, s), rate)
}

func (n *Network) notifyAgents(l, s int, down bool) {
	for l2, a := range n.Agents {
		if a == nil {
			continue
		}
		if l2 == l {
			a.SetLinkFault(s, -1, down)
		} else {
			a.SetLinkFault(s, l, down)
		}
	}
}

// DownLinks returns the currently failed (leaf, spine) pairs in order.
func (n *Network) DownLinks() [][2]int {
	var out [][2]int
	for l := 0; l < n.P.Leaves; l++ {
		for s := 0; s < n.P.Spines; s++ {
			if !n.LinkIsUp(l, s) {
				out = append(out, [2]int{l, s})
			}
		}
	}
	return out
}

// WireLost totals frames lost on cut links across the fabric (switch ports
// and host NICs).
func (n *Network) WireLost() uint64 {
	var total uint64
	for _, sw := range n.Leaves {
		for i := 0; i < sw.NumPorts(); i++ {
			total += sw.Port(i).Stats.WireLost
		}
	}
	for _, sw := range n.Spines {
		for i := 0; i < sw.NumPorts(); i++ {
			total += sw.Port(i).Stats.WireLost
		}
	}
	for _, h := range n.Hosts {
		total += h.NIC().Stats.WireLost
	}
	return total
}

// AuditInvariants runs the end-of-run checks on every switch: shared-pool
// conservation and blackholed bytes stranded behind failed links, plus (in
// strict mode) packet-pool and event-pool conservation across the whole
// fabric. A no-op when no checker is attached.
func (n *Network) AuditInvariants() {
	for _, sw := range n.Leaves {
		sw.AuditInvariants()
	}
	for _, sw := range n.Spines {
		sw.AuditInvariants()
	}
	n.auditPacketPool()
	n.auditEventPool()
}

// auditEventPool verifies engine event free-list conservation: every pooled
// event struct handed out was returned — after firing, or at skip time for
// lazily cancelled dead events — or is still queued in the scheduler.
func (n *Network) auditEventPool() {
	if n.P.Checker == nil || !n.P.Checker.Strict {
		return
	}
	gets, puts, queued := n.Eng.EventPoolStats()
	n.P.Checker.EventPool(n.Eng.Now(), gets, puts, queued)
}

// auditPacketPool verifies packet free-list conservation: every frame taken
// from the pool is either back in it or still live — queued at a port, in
// flight on a wire, or held by a recirculation loop. Frames lost to cut links
// and drops are returned at the loss point, so they need no term here.
func (n *Network) auditPacketPool() {
	if n.P.Checker == nil || !n.P.Checker.Strict {
		return
	}
	live := 0
	portLive := func(p *fabric.Port) int { return p.QueuedPooledFrames() + p.WirePooled() }
	for _, sw := range n.Leaves {
		for i := 0; i < sw.NumPorts(); i++ {
			live += portLive(sw.Port(i))
		}
		live += sw.RecircPooled()
	}
	for _, sw := range n.Spines {
		for i := 0; i < sw.NumPorts(); i++ {
			live += portLive(sw.Port(i))
		}
		live += sw.RecircPooled()
	}
	for _, h := range n.Hosts {
		live += portLive(h.NIC())
	}
	st := n.pool.Stats()
	n.P.Checker.PacketPool(n.Eng.Now(), st.Gets, st.Puts, st.DoublePuts, live)
}
