package topo

import (
	"fmt"

	"github.com/rlb-project/rlb/internal/fabric"
	"github.com/rlb-project/rlb/internal/switchsim"
	"github.com/rlb-project/rlb/internal/telemetry"
)

// AttachTelemetry registers the network's standard probe set on reg: the
// per-switch and per-port congestion signals the paper's timeline figures
// are drawn from, plus host transport and RLB agent state. Registration is
// cold-path (construction time); every probe body is a read-only fold over
// existing counters, so sampling can never perturb the run.
//
// Probe naming: `leaf<i>/...` and `spine<i>/...` for switches, with
// per-port series under `/p<j>/`; `host<i>/...` for transports;
// `rlb/leaf<i>/...` for agent counters. Counters (pauses, recircs, drops,
// warnings) are cumulative; gauges (shared, q, paused, inflight, ratebps)
// are instantaneous.
func (n *Network) AttachTelemetry(reg *telemetry.Registry) {
	for i, sw := range n.Leaves {
		attachSwitch(reg, fmt.Sprintf("leaf%d", i), sw)
	}
	for i, sw := range n.Spines {
		attachSwitch(reg, fmt.Sprintf("spine%d", i), sw)
	}
	for _, h := range n.Hosts {
		h := h
		name := fmt.Sprintf("host%d", h.ID)
		reg.Register(name+"/active", func() int64 { return h.TelemetrySnapshot().ActiveSenders })
		reg.Register(name+"/inflight", func() int64 { return h.TelemetrySnapshot().Inflight })
		reg.Register(name+"/una", func() int64 { return h.TelemetrySnapshot().Una })
		reg.Register(name+"/next", func() int64 { return h.TelemetrySnapshot().Next })
		reg.Register(name+"/ratebps", func() int64 { return h.TelemetrySnapshot().RateBps })
	}
	for l, a := range n.Agents {
		if a == nil {
			continue
		}
		a := a
		name := fmt.Sprintf("rlb/leaf%d", l)
		reg.Register(name+"/warnings", func() int64 { return int64(a.Stats.WarningsRcvd) })
		reg.Register(name+"/recircs", func() int64 { return int64(a.Stats.Recircs) })
		reg.Register(name+"/reroutes", func() int64 { return int64(a.Stats.Reroutes) })
	}
}

// attachSwitch registers one switch's shared-pool, PFC, and per-port series.
func attachSwitch(reg *telemetry.Registry, name string, sw *switchsim.Switch) {
	reg.Register(name+"/shared", func() int64 { return int64(sw.SharedUsed()) })
	reg.Register(name+"/pauses", func() int64 { return int64(sw.Stats.PauseSent) })
	reg.Register(name+"/recirced", func() int64 { return int64(sw.Stats.Recirced) })
	reg.Register(name+"/dropped", func() int64 { return int64(sw.Stats.Dropped) })
	for j := 0; j < sw.NumPorts(); j++ {
		p := sw.Port(j)
		pname := fmt.Sprintf("%s/p%d", name, j)
		reg.Register(pname+"/q", func() int64 { return int64(p.QueuedBytes(fabric.PrioData)) })
		reg.Register(pname+"/paused", func() int64 {
			if p.Paused(fabric.PrioData) {
				return 1
			}
			return 0
		})
	}
}
