// Package topo builds the simulated fabrics of the paper's evaluation:
// symmetric leaf-spine networks (§4, 12x12 with 24 hosts per leaf at
// 40 Gb/s), the asymmetric variant with a fraction of leaf-spine links
// downgraded (§4.2), and the two-leaf motivation topology of Fig. 2. It wires
// hosts, switches, routing, the chosen load-balancing policy, and optionally
// RLB's predictor/relay/agent deployment.
package topo

import (
	"fmt"

	"github.com/rlb-project/rlb/internal/core"
	"github.com/rlb-project/rlb/internal/fabric"
	"github.com/rlb-project/rlb/internal/invariant"
	"github.com/rlb-project/rlb/internal/lb"
	"github.com/rlb-project/rlb/internal/rng"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/switchsim"
	"github.com/rlb-project/rlb/internal/trace"
	"github.com/rlb-project/rlb/internal/transport"
	"github.com/rlb-project/rlb/internal/units"
)

// Params describes a leaf-spine fabric.
type Params struct {
	Leaves       int
	Spines       int
	HostsPerLeaf int

	LinkRate  units.Bandwidth
	LinkDelay sim.Time

	Switch switchsim.Config
	Host   transport.HostConfig

	// LB constructs the base load balancer, one instance per leaf.
	LB lb.Factory

	// RLB, when non-nil, deploys RLB on top of the base LB: agents on
	// leaves, predictors on every switch, CNM relays on spines.
	RLB *core.Params

	// AsymFraction downgrades that fraction of leaf-spine links to AsymRate
	// (both directions), reproducing §4.2's asymmetric topology.
	AsymFraction float64
	AsymRate     units.Bandwidth

	// Trace, when non-nil, is attached to every switch so the simulation
	// records data-plane and RLB events (see internal/trace).
	Trace *trace.Buffer

	// ProbeInterval, when non-zero, replaces the oracle path telemetry with
	// real probe frames: each leaf measures per-uplink RTTs in band and the
	// load balancers see EWMA'd estimates instead of instantaneous queue
	// state (see internal/topo/probes.go and DESIGN.md substitution 2).
	ProbeInterval sim.Time

	// Checker, when non-nil, is threaded through every switch and host so
	// the data plane self-checks the lossless invariants as it runs (see
	// internal/invariant). The harness attaches one per simulation.
	Checker *invariant.Checker

	// Scheduler selects the engine's event-queue implementation; the zero
	// value is the default calendar queue. SchedHeap keeps the reference
	// binary heap for A/B debugging (rlbsim -sched).
	Scheduler sim.SchedulerKind

	Seed uint64
}

// Default returns the paper's symmetric fabric scaled by the given factors;
// Default(12, 12, 24) is the full evaluation topology.
func Default(leaves, spines, hostsPerLeaf int) Params {
	return Params{
		Leaves:       leaves,
		Spines:       spines,
		HostsPerLeaf: hostsPerLeaf,
		LinkRate:     40 * units.Gbps,
		LinkDelay:    2 * sim.Microsecond,
		Switch:       switchsim.DefaultConfig(),
		Host:         transport.DefaultHostConfig(),
		Seed:         1,
	}
}

// Network is a built fabric ready to carry flows.
type Network struct {
	Eng *sim.Engine
	P   Params

	Hosts  []*transport.Host
	Leaves []*switchsim.Switch
	Spines []*switchsim.Switch

	// RLB deployment (nil entries when RLB is off).
	Agents     []*core.Agent
	Predictors []*core.Predictor
	Relays     []*core.Relay

	// Flows lists every flow started through StartFlow.
	Flows []*transport.Flow

	views    []*leafView
	routers  []*leafRouter
	probes   []*probeMonitor
	nextFlow uint32
	rng      *rng.Source
	pool     *fabric.Pool

	// linkUp[l*Spines+s] tracks the fault-plane state of leaf-spine link
	// (l, s); see fault.go.
	linkUp []bool
}

// HostsOfLeaf returns the host ids attached to leaf l.
func (n *Network) HostsOfLeaf(l int) []int {
	ids := make([]int, n.P.HostsPerLeaf)
	for i := range ids {
		ids[i] = l*n.P.HostsPerLeaf + i
	}
	return ids
}

// LeafOf returns the leaf index of a host id.
func (n *Network) LeafOf(host int) int { return host / n.P.HostsPerLeaf }

// Build constructs the fabric.
func Build(p Params) *Network {
	if p.Leaves < 1 || p.Spines < 1 || p.Spines > 64 || p.HostsPerLeaf < 1 {
		panic(fmt.Sprintf("topo: invalid dimensions %dx%d/%d", p.Leaves, p.Spines, p.HostsPerLeaf))
	}
	if p.LB == nil {
		p.LB = lb.NewECMP()
	}
	eng := sim.NewEngineWith(p.Scheduler)
	n := &Network{Eng: eng, P: p, rng: rng.New(p.Seed ^ 0xA5A5), pool: fabric.NewPool()}
	n.linkUp = make([]bool, p.Leaves*p.Spines)
	for i := range n.linkUp {
		n.linkUp[i] = true
	}
	p.Host.Checker = p.Checker
	// One packet free list per simulation: the engine is single-threaded, so
	// every device shares it without synchronization.
	p.Host.Pool = n.pool

	numHosts := p.Leaves * p.HostsPerLeaf
	// Device id space: hosts [0, numHosts), leaves, then spines.
	leafID := func(l int) int { return numHosts + l }
	spineID := func(s int) int { return numHosts + p.Leaves + s }

	// Hosts.
	for h := 0; h < numHosts; h++ {
		n.Hosts = append(n.Hosts, transport.NewHost(eng, h, p.Host))
	}

	// Switches. Leaf ports: [0, HostsPerLeaf) face hosts, then Spines
	// uplinks. Spine ports: one per leaf.
	for l := 0; l < p.Leaves; l++ {
		sw := switchsim.New(eng, leafID(l), p.HostsPerLeaf+p.Spines, p.Switch, n.rng.Fork())
		sw.Trace = p.Trace
		sw.Checker = p.Checker
		sw.Pool = n.pool
		n.Leaves = append(n.Leaves, sw)
	}
	for s := 0; s < p.Spines; s++ {
		sw := switchsim.New(eng, spineID(s), p.Leaves, p.Switch, n.rng.Fork())
		sw.Trace = p.Trace
		sw.Checker = p.Checker
		sw.Pool = n.pool
		n.Spines = append(n.Spines, sw)
	}

	// Host links.
	for l := 0; l < p.Leaves; l++ {
		for i := 0; i < p.HostsPerLeaf; i++ {
			h := n.Hosts[l*p.HostsPerLeaf+i]
			fabric.Connect(h.NIC(), n.Leaves[l].Port(i), p.LinkRate, p.LinkDelay)
		}
	}

	// Leaf-spine links, with optional asymmetry.
	asym := n.pickAsymLinks(p)
	for l := 0; l < p.Leaves; l++ {
		for s := 0; s < p.Spines; s++ {
			rate := p.LinkRate
			if asym[l*p.Spines+s] {
				rate = p.AsymRate
			}
			fabric.Connect(n.Leaves[l].Port(p.HostsPerLeaf+s), n.Spines[s].Port(l), rate, p.LinkDelay)
		}
	}

	// Routing and policies.
	n.Agents = make([]*core.Agent, p.Leaves)
	n.views = make([]*leafView, p.Leaves)
	n.routers = make([]*leafRouter, p.Leaves)
	for l := 0; l < p.Leaves; l++ {
		view := &leafView{net: n, leaf: l}
		n.views[l] = view
		base := p.LB()
		var policy lb.Policy
		var trc sim.Time
		if p.RLB != nil {
			params := p.RLB.Normalize(p.LinkDelay)
			agent := core.NewAgent(base, params, p.HostsPerLeaf, p.Spines, n.LeafOf, p.LinkDelay)
			n.Agents[l] = agent
			policy = agent
			trc = params.Trc
			sw := n.Leaves[l]
			sw.OnControl = func(pkt *fabric.Packet, in int) bool {
				return agent.OnControl(sw, pkt, in)
			}
		} else {
			policy = lb.PlainPolicy{Chooser: base}
		}
		router := &leafRouter{net: n, leaf: l, view: view, policy: policy, trc: trc}
		n.routers[l] = router
		n.Leaves[l].SetRouter(router)
	}
	for s := 0; s < p.Spines; s++ {
		n.Spines[s].SetRouter(spineRouter{net: n})
	}

	// Probe-based telemetry (optional).
	if p.ProbeInterval > 0 {
		n.probes = make([]*probeMonitor, p.Leaves)
		for l := 0; l < p.Leaves; l++ {
			n.probes[l] = newProbeMonitor(n, l, p.ProbeInterval)
		}
	}

	// RLB predictors and relays.
	if p.RLB != nil {
		params := p.RLB.Normalize(p.LinkDelay)
		for l := 0; l < p.Leaves; l++ {
			// Leaves watch their fabric-facing ingress ports: congestion
			// there means this leaf is about to pause the spines.
			monitor := make([]int, p.Spines)
			for s := range monitor {
				monitor[s] = p.HostsPerLeaf + s
			}
			n.Predictors = append(n.Predictors, core.NewPredictor(n.Leaves[l], params, monitor, l, p.LinkDelay))
		}
		for s := 0; s < p.Spines; s++ {
			monitor := make([]int, p.Leaves)
			for l := range monitor {
				monitor[l] = l
			}
			n.Predictors = append(n.Predictors, core.NewPredictor(n.Spines[s], params, monitor, -1, p.LinkDelay))
			relay := core.NewRelay(n.Spines[s], params)
			n.Relays = append(n.Relays, relay)
			n.Spines[s].OnControl = relay.OnControl
		}
	}
	return n
}

func (n *Network) pickAsymLinks(p Params) []bool {
	asym := make([]bool, p.Leaves*p.Spines)
	if p.AsymFraction <= 0 || p.AsymRate <= 0 {
		return asym
	}
	count := int(p.AsymFraction * float64(len(asym)))
	r := rng.New(p.Seed ^ 0x517E)
	for _, idx := range r.Perm(len(asym))[:count] {
		asym[idx] = true
	}
	return asym
}

// StartFlow injects one flow and records it.
func (n *Network) StartFlow(src, dst, size int) *transport.Flow {
	n.nextFlow++
	f := n.Hosts[src].StartFlow(n.nextFlow, n.Hosts[dst], size)
	n.Flows = append(n.Flows, f)
	return f
}

// Starter returns a workload.StartFunc bound to this network.
func (n *Network) Starter() func(src, dst, size int) {
	return func(src, dst, size int) { n.StartFlow(src, dst, size) }
}

// PacketPool exposes the simulation's packet free list, primarily so test
// harnesses can reach its fault-injection knobs (fabric.Pool.LeakEvery) from
// a RunConfig.Inject hook; see the scenario fuzzer's seeded-breach meta-test.
func (n *Network) PacketPool() *fabric.Pool { return n.pool }

// SprayFlow forces a flow to be packet-sprayed round-robin over the first k
// uplinks at its source leaf, bypassing the LB policy — used to reproduce the
// paper's "congested flow transmitted over k parallel paths" control knob
// (Fig. 2 / Fig. 4(a)).
func (n *Network) SprayFlow(f *transport.Flow, k int) {
	leaf := n.LeafOf(f.Src)
	n.routers[leaf].spray.Put(f.ID, k)
}

// StopRLB halts all periodic machinery (RLB predictors and probe monitors)
// so the event queue can drain.
func (n *Network) StopRLB() {
	for _, p := range n.Predictors {
		p.Stop()
	}
	for _, m := range n.probes {
		m.stop()
	}
}

// ProbeStats returns (sent, received) probe counts across leaves (zero when
// probe telemetry is off).
func (n *Network) ProbeStats() (sent, rcvd uint64) {
	for _, m := range n.probes {
		sent += m.ProbesSent
		rcvd += m.ProbesRcvd
	}
	return
}

// Run advances the simulation by d and then stops RLB sampling.
func (n *Network) Run(d sim.Time) {
	n.Eng.RunUntil(n.Eng.Now() + d)
}

// PauseFramesSent totals PFC PAUSE frames generated by all switches.
func (n *Network) PauseFramesSent() uint64 {
	var total uint64
	for _, sw := range n.Leaves {
		total += sw.Stats.PauseSent
	}
	for _, sw := range n.Spines {
		total += sw.Stats.PauseSent
	}
	return total
}

// Drops totals shared-pool drops across all switches.
func (n *Network) Drops() uint64 {
	var total uint64
	for _, sw := range n.Leaves {
		total += sw.Stats.Dropped
	}
	for _, sw := range n.Spines {
		total += sw.Stats.Dropped
	}
	return total
}

// Recirculations totals recirculated frames across leaves.
func (n *Network) Recirculations() uint64 {
	var total uint64
	for _, sw := range n.Leaves {
		total += sw.Stats.Recirced
	}
	return total
}
