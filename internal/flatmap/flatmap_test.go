package flatmap

import (
	"math/rand"
	"sort"
	"testing"
)

// TestDifferentialVsBuiltinMap drives a U32 and a shadow built-in map
// through seeded random operation sequences — insert, overwrite, delete,
// lookup, growth across several capacity doublings, and full iteration —
// and requires identical contents after every operation. Keys are drawn
// from a small universe so probe chains collide and deletes regularly land
// mid-chain, exercising backward-shift restoration.
func TestDifferentialVsBuiltinMap(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var m U32[int]
		shadow := map[uint32]int{}
		// A small key universe forces collisions; a larger one forces growth.
		universe := uint32(16 + rng.Intn(4096))
		for op := 0; op < 5000; op++ {
			k := uint32(rng.Intn(int(universe)))
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // insert / overwrite
				v := rng.Int()
				m.Put(k, v)
				shadow[k] = v
			case 4, 5: // delete (often absent)
				got := m.Delete(k)
				_, want := shadow[k]
				if got != want {
					t.Fatalf("seed %d op %d: Delete(%d) = %v, shadow says %v", seed, op, k, got, want)
				}
				delete(shadow, k)
			case 6: // upsert + in-place mutation
				*m.Upsert(k) += 7
				shadow[k] += 7
			case 7, 8: // lookup
				gv, gok := m.Get(k)
				wv, wok := shadow[k]
				if gok != wok || gv != wv {
					t.Fatalf("seed %d op %d: Get(%d) = %v,%v want %v,%v", seed, op, k, gv, gok, wv, wok)
				}
			case 9: // periodic full-content comparison
				requireEqual(t, &m, shadow)
			}
			if m.Len() != len(shadow) {
				t.Fatalf("seed %d op %d: Len %d != shadow %d", seed, op, m.Len(), len(shadow))
			}
		}
		requireEqual(t, &m, shadow)
	}
}

// TestDeleteDuringProbeChain constructs keys that all hash to nearby slots
// (by brute-force searching the key space) and deletes them front, middle,
// and back, checking that every survivor stays reachable — the exact
// backward-shift cases a tombstone-free table must get right.
func TestDeleteDuringProbeChain(t *testing.T) {
	var probe U32[int]
	probe.Reserve(64)
	capN := probe.Cap()
	// Gather keys sharing one home bucket in a table of this capacity.
	home := func(k uint32) int { return int(hash(k) & uint64(capN-1)) }
	var cluster []uint32
	for k := uint32(0); len(cluster) < 9 && k < 1<<20; k++ {
		if home(k) == 5 {
			cluster = append(cluster, k)
		}
	}
	if len(cluster) < 9 {
		t.Fatal("could not find colliding keys")
	}
	for _, order := range [][]int{{0, 1, 2}, {2, 1, 0}, {1, 0, 2}, {1, 2, 0}} {
		var m U32[int]
		m.Reserve(64)
		if m.Cap() != capN {
			t.Fatalf("capacity drifted: %d != %d", m.Cap(), capN)
		}
		shadow := map[uint32]int{}
		for i, k := range cluster {
			m.Put(k, i)
			shadow[k] = i
		}
		for _, idx := range order {
			k := cluster[idx*3] // front, middle, back of the chain
			if !m.Delete(k) {
				t.Fatalf("order %v: Delete(%d) missed", order, k)
			}
			delete(shadow, k)
			requireEqual(t, &m, shadow)
		}
	}
}

func requireEqual(t *testing.T, m *U32[int], shadow map[uint32]int) {
	t.Helper()
	if m.Len() != len(shadow) {
		t.Fatalf("Len %d != shadow %d", m.Len(), len(shadow))
	}
	seen := 0
	m.Range(func(k uint32, v int) {
		wv, ok := shadow[k]
		if !ok || wv != v {
			t.Fatalf("Range yielded %d=%d; shadow has %v,%v", k, v, wv, ok)
		}
		seen++
	})
	if seen != len(shadow) {
		t.Fatalf("Range yielded %d entries, want %d", seen, len(shadow))
	}
	for k, v := range shadow {
		if gv, ok := m.Get(k); !ok || gv != v {
			t.Fatalf("Get(%d) = %v,%v want %v,true", k, gv, ok, v)
		}
	}
}

// TestKeysSortedRegardlessOfHistory inserts the same contents via two
// different insertion/deletion histories and requires identical, sorted
// Keys output — the determinism argument for cold-path scans.
func TestKeysSortedRegardlessOfHistory(t *testing.T) {
	var a, b U32[int]
	for k := uint32(0); k < 100; k++ {
		a.Put(k, int(k))
	}
	for k := uint32(0); k < 150; k++ {
		b.Put(150-1-k, int(150 - 1 - k))
	}
	for k := uint32(100); k < 150; k++ {
		b.Delete(k)
	}
	ka, kb := a.Keys(nil), b.Keys(nil)
	if !sort.SliceIsSorted(ka, func(i, j int) bool { return ka[i] < ka[j] }) {
		t.Fatal("Keys not sorted")
	}
	if len(ka) != len(kb) {
		t.Fatalf("key counts differ: %d vs %d", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("key order diverged at %d: %d vs %d", i, ka[i], kb[i])
		}
	}
}

func TestScanVisitsAllWithoutAllocating(t *testing.T) {
	var m U32[int64]
	var wantSum int64
	for k := uint32(0); k < 500; k++ {
		m.Put(k, int64(k))
		wantSum += int64(k)
	}
	for k := uint32(400); k < 500; k++ {
		m.Delete(k)
		wantSum -= int64(k)
	}
	var sum int64
	n := 0
	scan := func() {
		sum, n = 0, 0
		m.Scan(func(k uint32, v int64) {
			if int64(k) != v {
				t.Fatalf("Scan entry %d carries value %d", k, v)
			}
			sum += v
			n++
		})
	}
	if avg := testing.AllocsPerRun(100, scan); avg != 0 {
		t.Fatalf("Scan allocates %.2f allocs/op, want 0", avg)
	}
	if n != 400 || sum != wantSum {
		t.Fatalf("Scan visited %d entries summing %d, want 400 summing %d", n, sum, wantSum)
	}
	var empty U32[int64]
	empty.Scan(func(uint32, int64) { t.Fatal("Scan on empty table called fn") })
}

func TestZeroValueReady(t *testing.T) {
	var m U32[int]
	if _, ok := m.Get(42); ok {
		t.Fatal("empty table claims membership")
	}
	if m.Delete(42) {
		t.Fatal("empty table deleted something")
	}
	if m.Ptr(42) != nil {
		t.Fatal("empty table returned a value pointer")
	}
	m.Put(42, 1)
	if v, ok := m.Get(42); !ok || v != 1 {
		t.Fatalf("Get after first Put = %v,%v", v, ok)
	}
	var u U64[string]
	u.Put(1<<40, "x")
	if v, _ := u.Get(1 << 40); v != "x" {
		t.Fatal("U64 round trip failed")
	}
}

func TestResetKeepsCapacity(t *testing.T) {
	var m U32[int]
	for k := uint32(0); k < 1000; k++ {
		m.Put(k, 1)
	}
	c := m.Cap()
	m.Reset()
	if m.Len() != 0 || m.Cap() != c {
		t.Fatalf("Reset: len=%d cap=%d want 0,%d", m.Len(), m.Cap(), c)
	}
	if _, ok := m.Get(1); ok {
		t.Fatal("Reset table still has entries")
	}
	m.Put(7, 7)
	if v, _ := m.Get(7); v != 7 {
		t.Fatal("table unusable after Reset")
	}
}

func TestStamps(t *testing.T) {
	st := NewStamps[int64](4)
	if st.AtLeast(0, -1<<40) {
		t.Fatal("unset slot passed a low cutoff")
	}
	if st.Get(2) != Never || st.Get(99) != Never {
		t.Fatal("unset/out-of-range slots must read Never")
	}
	st.Set(2, 100)
	if !st.AtLeast(2, 100) || !st.AtLeast(2, 50) || st.AtLeast(2, 101) {
		t.Fatal("membership comparison wrong")
	}
	if st.AtLeast(99, 0) {
		t.Fatal("out-of-range key is a member")
	}
	st.Clear(2)
	if st.AtLeast(2, 0) || st.Get(2) != Never {
		t.Fatal("Clear did not expire the slot")
	}
	var z Stamps[int64]
	if z.AtLeast(0, 0) {
		t.Fatal("zero-value Stamps claims membership")
	}
	z.SetGrow(10, 5)
	if !z.AtLeast(10, 5) || z.AtLeast(3, Never+1) {
		t.Fatal("SetGrow semantics wrong")
	}
	z.Reset()
	if z.AtLeast(10, Never+1) || z.Len() != 11 {
		t.Fatal("Reset semantics wrong")
	}
}

// TestFlatmapZeroAlloc is the static 0-allocs assertion behind the
// micro-benchmarks: steady-state get/put/delete on warmed tables must not
// touch the heap.
func TestFlatmapZeroAlloc(t *testing.T) {
	var m U32[int]
	m.Reserve(1024)
	for k := uint32(0); k < 512; k++ {
		m.Put(k, int(k))
	}
	st := NewStamps[int64](64)
	allocs := testing.AllocsPerRun(1000, func() {
		m.Put(600, 1) // overwrite after first run; no growth (cap reserved)
		if _, ok := m.Get(77); !ok {
			t.Fatal("lost a key")
		}
		m.Delete(601)
		m.Put(601, 2)
		st.Set(5, 42)
		if !st.AtLeast(5, 42) {
			t.Fatal("stamp lost")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state ops allocated %v times per run", allocs)
	}
}

func BenchmarkFlatmapGet(b *testing.B) {
	var m U32[int]
	for k := uint32(0); k < 4096; k++ {
		m.Put(k, int(k))
	}
	b.ReportAllocs()
	b.ResetTimer()
	s := 0
	for i := 0; i < b.N; i++ {
		v, _ := m.Get(uint32(i) & 4095)
		s += v
	}
	sinkInt = s
}

func BenchmarkFlatmapPutDelete(b *testing.B) {
	var m U32[int]
	m.Reserve(4096)
	for k := uint32(0); k < 2048; k++ {
		m.Put(k, int(k))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := 2048 + uint32(i)&1023
		m.Put(k, i)
		m.Delete(k)
	}
}

func BenchmarkFlatmapStamps(b *testing.B) {
	st := NewStamps[int64](64)
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		st.Set(i&63, int64(i))
		if st.AtLeast((i+1)&63, int64(i-64)) {
			n++
		}
	}
	sinkInt = n
}

// Reference points: the same access patterns through a built-in map.
func BenchmarkBuiltinMapGet(b *testing.B) {
	m := map[uint32]int{}
	for k := uint32(0); k < 4096; k++ {
		m[k] = int(k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	s := 0
	for i := 0; i < b.N; i++ {
		s += m[uint32(i)&4095]
	}
	sinkInt = s
}

func BenchmarkBuiltinMapPutDelete(b *testing.B) {
	m := map[uint32]int{}
	for k := uint32(0); k < 2048; k++ {
		m[k] = int(k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := 2048 + uint32(i)&1023
		m[k] = i
		delete(m, k)
	}
}

var sinkInt int
