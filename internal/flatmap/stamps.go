package flatmap

// Epoch is the stamp domain: any int64-backed ordered scalar. sim.Time
// satisfies it directly, so stamp comparisons stay in the simulator's unit
// system with no conversions.
type Epoch interface{ ~int64 }

// Never is the stamp of a slot that was never set (or was cleared). It is
// far below any reachable cutoff — simulated time starts at zero and
// horizons are bounded — while leaving headroom so `cutoff' arithmetic
// like now-horizon can never underflow past it.
const Never = int64(-1) << 62

// Stamps is a dense stamp table over small integer keys (port indices,
// leaf indices): slot i holds the last stamp recorded for key i, and
// membership is the comparison stamp >= cutoff. Aging therefore needs no
// delete — an entry expires by the cutoff moving past it — and iteration
// is the slice order, deterministic and already sorted by key.
//
// The zero value is empty; Grow (or the NewStamps size hint) allocates the
// slots. Out-of-range keys read as Never and must be Grown before Set.
type Stamps[T Epoch] struct {
	s []T
}

// NewStamps returns a table with n slots, all Never.
func NewStamps[T Epoch](n int) Stamps[T] {
	st := Stamps[T]{}
	st.Grow(n)
	return st
}

// Len returns the slot count.
func (st *Stamps[T]) Len() int { return len(st.s) }

// Grow ensures at least n slots exist, initializing new ones to Never.
func (st *Stamps[T]) Grow(n int) {
	if n <= len(st.s) {
		return
	}
	//simlint:allow(hotpath) amortized slot growth sized by fabric shape; steady state never grows (0 allocs/op, bench-gated)
	grown := make([]T, n)
	copy(grown, st.s)
	for i := len(st.s); i < n; i++ {
		grown[i] = T(Never)
	}
	st.s = grown
}

// Set records stamp v for key i (i must be < Len; size the table with Grow
// or NewStamps on the cold path).
func (st *Stamps[T]) Set(i int, v T) { st.s[i] = v }

// SetGrow records stamp v for key i, growing the table as needed — for
// callers whose key range is discovered at run time (amortized; the table
// stops growing once the range is seen).
func (st *Stamps[T]) SetGrow(i int, v T) {
	if i >= len(st.s) {
		st.Grow(i + 1)
	}
	st.s[i] = v
}

// Get returns key i's stamp, or Never when i was never set (including
// i >= Len).
func (st *Stamps[T]) Get(i int) T {
	if i >= len(st.s) {
		return T(Never)
	}
	return st.s[i]
}

// AtLeast reports whether key i's stamp is >= cutoff — the membership
// test. Entries age out by comparison: no delete, no compaction.
func (st *Stamps[T]) AtLeast(i int, cutoff T) bool {
	return i < len(st.s) && st.s[i] >= cutoff
}

// Clear forgets key i (its stamp returns to Never).
func (st *Stamps[T]) Clear(i int) {
	if i < len(st.s) {
		st.s[i] = T(Never)
	}
}

// Reset forgets every key, keeping capacity.
func (st *Stamps[T]) Reset() {
	for i := range st.s {
		st.s[i] = T(Never)
	}
}
