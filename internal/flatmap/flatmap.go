// Package flatmap provides the flat, allocation-free-at-steady-state
// containers backing the simulator's per-packet state: an open-addressed
// hash table for integer keys (flow ids, sequence numbers) and a dense
// stamp table for small integer keys (port indices).
//
// Both containers exist because Go's built-in map pays hashing, bucket
// chasing, and write-barrier costs on every operation — costs that DRILL's
// per-packet O(1) micro-work premise, and CONGA/Hermes' purpose-built
// flowlet tables, explicitly avoid in real switch hardware. After the event
// free list (PR 2) and the calendar-queue scheduler (PR 4), those map
// operations were the dominant remaining per-packet cost in profile.
//
// Design points shared by the containers:
//
//   - The zero value is ready to use: lookups on an empty container miss
//     without allocating, and the first insert sizes the backing array.
//   - Steady-state Get/Put/Delete perform zero heap allocations; only
//     capacity growth allocates, and growth is amortized (benchmarks and
//     TestFlatmapZeroAlloc pin this at 0 allocs/op).
//   - Iteration order is deterministic: tables iterate in ascending key
//     order regardless of insertion/deletion history, so no cold-path scan
//     can leak probe-layout order into an event schedule. (The hot paths
//     never iterate; the determinism analyzer enforces that separately.)
//
// The hash table (Map, with the U32/U64 shorthands) uses power-of-two
// capacity, multiplicative hashing, linear probing, and backward-shift
// deletion — no tombstones, so probe chains never degrade and a
// delete-heavy workload (per-sequence retransmit marks) keeps its lookup
// cost flat.
package flatmap

import "sort"

// Key is the supported key domain: the simulator's flow ids and sequence
// numbers are uint32, and uint64 covers composite keys.
type Key interface{ ~uint32 | ~uint64 }

// minCap is the initial bucket count of a table's first insert.
const minCap = 8

// Map is an open-addressed hash table from K to V with power-of-two
// capacity, linear probing, and backward-shift deletion. The zero value is
// an empty, usable table. Use the U32/U64 shorthands unless a distinct key
// type is needed.
//
// Pointers returned by Ptr/Upsert are valid only until the next Put,
// Upsert, or Delete: growth rehashes into a new backing array and
// backward-shift deletion slides entries across slots.
type Map[K Key, V any] struct {
	keys []K
	vals []V
	used []bool
	n    int
}

// U32 is the uint32-keyed table used for per-flow and per-sequence state.
type U32[V any] struct{ Map[uint32, V] }

// U64 is the uint64-keyed variant for composite keys.
type U64[V any] struct{ Map[uint64, V] }

// hash mixes k over the full 64-bit space (splitmix64 finalizer); the
// bucket index takes the low bits after mixing, so sequential keys (flow
// ids, sequence numbers) spread instead of clustering into one probe chain.
func hash[K Key](k K) uint64 {
	z := uint64(k) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Len returns the number of entries.
func (m *Map[K, V]) Len() int { return m.n }

// Cap returns the current bucket count (0 before the first insert).
func (m *Map[K, V]) Cap() int { return len(m.keys) }

// home returns k's preferred slot in the current backing array.
func (m *Map[K, V]) home(k K) int {
	return int(hash(k) & uint64(len(m.keys)-1))
}

// find returns the slot holding k, or -1 when absent.
func (m *Map[K, V]) find(k K) int {
	if m.n == 0 {
		return -1
	}
	mask := len(m.keys) - 1
	for i := m.home(k); m.used[i]; i = (i + 1) & mask {
		if m.keys[i] == k {
			return i
		}
	}
	return -1
}

// Get returns the value stored under k.
func (m *Map[K, V]) Get(k K) (V, bool) {
	if i := m.find(k); i >= 0 {
		return m.vals[i], true
	}
	var zero V
	return zero, false
}

// Has reports whether k is present.
func (m *Map[K, V]) Has(k K) bool { return m.find(k) >= 0 }

// Ptr returns a pointer to k's value for in-place mutation, or nil when k
// is absent. The pointer is invalidated by the next table mutation.
func (m *Map[K, V]) Ptr(k K) *V {
	if i := m.find(k); i >= 0 {
		return &m.vals[i]
	}
	return nil
}

// Put stores v under k, inserting or overwriting.
func (m *Map[K, V]) Put(k K, v V) { *m.Upsert(k) = v }

// Upsert returns a pointer to k's value, inserting a zero value first when
// k is absent. The pointer is invalidated by the next table mutation.
func (m *Map[K, V]) Upsert(k K) *V {
	if len(m.keys) == 0 || (m.n+1)*4 > len(m.keys)*3 {
		m.grow()
	}
	mask := len(m.keys) - 1
	i := m.home(k)
	for m.used[i] {
		if m.keys[i] == k {
			return &m.vals[i]
		}
		i = (i + 1) & mask
	}
	m.used[i] = true
	m.keys[i] = k
	var zero V
	m.vals[i] = zero
	m.n++
	return &m.vals[i]
}

// Delete removes k, reporting whether it was present. Removal backward-
// shifts the probe chain into the vacated slot instead of leaving a
// tombstone, so table layout stays a pure function of the live contents'
// probe order and lookup cost never degrades with delete traffic.
func (m *Map[K, V]) Delete(k K) bool {
	i := m.find(k)
	if i < 0 {
		return false
	}
	m.n--
	mask := len(m.keys) - 1
	var zero V
	for {
		m.used[i] = false
		m.vals[i] = zero // drop pointer payloads for the GC
		// Scan the chain after the hole: the first entry whose home lies at
		// or cyclically before the hole slides back into it (it was only
		// pushed past the hole by the entry just removed).
		j := i
		for {
			j = (j + 1) & mask
			if !m.used[j] {
				return true
			}
			h := m.home(m.keys[j])
			// Entry j may move to i iff i lies on j's probe path, i.e. the
			// cyclic distance home->i is shorter than home->j.
			if (i-h)&mask < (j-h)&mask {
				break
			}
		}
		m.keys[i], m.vals[i] = m.keys[j], m.vals[j]
		m.used[i] = true
		i = j
	}
}

// grow doubles the bucket count (or creates the initial array) and
// rehashes every live entry.
func (m *Map[K, V]) grow() {
	newCap := minCap
	if len(m.keys) > 0 {
		newCap = len(m.keys) * 2
	}
	oldKeys, oldVals, oldUsed := m.keys, m.vals, m.used
	//simlint:allow(hotpath) amortized table growth: steady state reuses capacity (0 allocs/op, bench-gated)
	m.keys = make([]K, newCap)
	//simlint:allow(hotpath) amortized table growth: steady state reuses capacity (0 allocs/op, bench-gated)
	m.vals = make([]V, newCap)
	//simlint:allow(hotpath) amortized table growth: steady state reuses capacity (0 allocs/op, bench-gated)
	m.used = make([]bool, newCap)
	mask := newCap - 1
	for i, u := range oldUsed {
		if !u {
			continue
		}
		j := m.home(oldKeys[i])
		for m.used[j] {
			j = (j + 1) & mask
		}
		m.used[j] = true
		m.keys[j] = oldKeys[i]
		m.vals[j] = oldVals[i]
	}
}

// Reserve grows the table until it can hold at least n entries without
// further allocation (a cold-path construction hint).
func (m *Map[K, V]) Reserve(n int) {
	for len(m.keys)*3 < (n+1)*4 {
		m.grow()
	}
}

// Reset empties the table, keeping capacity for reuse.
func (m *Map[K, V]) Reset() {
	var zeroV V
	for i := range m.used {
		if m.used[i] {
			m.used[i] = false
			m.vals[i] = zeroV
		}
	}
	m.n = 0
}

// Keys appends every key to buf in ascending order and returns it. Sorted
// order makes cold-path scans deterministic regardless of the table's
// insertion/deletion history; hot paths must not iterate at all.
func (m *Map[K, V]) Keys(buf []K) []K {
	for i, u := range m.used {
		if u {
			buf = append(buf, m.keys[i])
		}
	}
	sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
	return buf
}

// Range calls fn for every entry in ascending key order (cold path: it
// allocates the sorted key scratch).
func (m *Map[K, V]) Range(fn func(k K, v V)) {
	for _, k := range m.Keys(nil) {
		i := m.find(k)
		fn(k, m.vals[i])
	}
}

// Scan calls fn for every entry in slot order without allocating. Slot order
// depends on the table's probe layout, so Scan is only for order-insensitive
// consumers — commutative folds like telemetry sums and invariant totals.
// Anything whose result feeds back into an event schedule must use Range or
// Keys instead.
func (m *Map[K, V]) Scan(fn func(k K, v V)) {
	for i, u := range m.used {
		if u {
			fn(m.keys[i], m.vals[i])
		}
	}
}
