package spec

import "fmt"

// Axis is one named sweep dimension of a Grid: the JSON field name of a Spec
// knob plus the values it takes. Exactly one of Ints/Strs must be set;
// boolean fields sweep as Ints (0/1).
type Axis struct {
	Field string   `json:"field"`
	Ints  []int    `json:"ints,omitempty"`
	Strs  []string `json:"strs,omitempty"`
}

// Len returns the number of values on the axis.
func (a Axis) Len() int {
	if len(a.Strs) > 0 {
		return len(a.Strs)
	}
	return len(a.Ints)
}

// apply writes the axis's i-th value into s.
func (a Axis) apply(s *Spec, i int) error {
	if len(a.Strs) > 0 {
		if len(a.Ints) > 0 {
			return fmt.Errorf("spec: axis %q sets both ints and strs", a.Field)
		}
		return s.SetStr(a.Field, a.Strs[i])
	}
	return s.SetInt(a.Field, a.Ints[i])
}

// Grid is a declarative sweep: a base Spec plus named axes, expanded by
// Cells into the row-major outer product (the last axis varies fastest —
// the iteration order of the nested loops the figure builders used to
// hand-roll). Every paper figure is expressed as one or more Grids; the
// generic engine harness.RunGrid compiles and runs the cells.
type Grid struct {
	Name string `json:"name"`
	// Seeds is how many seeds the sweep engine averages each cell over
	// (cell k uses SimSeed, SimSeed+stride, ...; 0 = 1).
	Seeds int    `json:"seeds,omitempty"`
	Base  Spec   `json:"base"`
	Axes  []Axis `json:"axes,omitempty"`
}

// Size returns the number of cells the grid expands to.
func (g Grid) Size() int {
	n := 1
	for _, a := range g.Axes {
		n *= a.Len()
	}
	return n
}

// Cells expands the grid into its cell specs in row-major order. Each cell
// is a deep copy of Base with every axis's value applied, so cells never
// alias each other's Faults or Motiv.
func (g Grid) Cells() ([]Spec, error) {
	for _, a := range g.Axes {
		if a.Len() == 0 {
			return nil, fmt.Errorf("spec: grid %q axis %q has no values", g.Name, a.Field)
		}
	}
	n := g.Size()
	out := make([]Spec, 0, n)
	idx := make([]int, len(g.Axes))
	for c := 0; c < n; c++ {
		cell := g.Base.Clone()
		rem := c
		for ai := len(g.Axes) - 1; ai >= 0; ai-- {
			idx[ai] = rem % g.Axes[ai].Len()
			rem /= g.Axes[ai].Len()
		}
		for ai, a := range g.Axes {
			if err := a.apply(&cell, idx[ai]); err != nil {
				return nil, fmt.Errorf("spec: grid %q: %w", g.Name, err)
			}
		}
		out = append(out, cell)
	}
	return out, nil
}

// motiv resolves the Motiv block for a motivation-axis field; sweeping one
// on a fabric base (no motiv block) is a grid-authoring error.
func (s *Spec) motiv(field string) (*MotivSpec, error) {
	if s.Motiv == nil {
		return nil, fmt.Errorf("field %q requires a motivation base (motiv block)", field)
	}
	return s.Motiv, nil
}

// SetInt writes an integer-valued field by its JSON name. Boolean fields
// accept 0/1. Unknown fields error — the sweep layer shares the
// fail-loudly contract of Decode.
func (s *Spec) SetInt(field string, v int) error {
	switch field {
	case "genSeed":
		s.GenSeed = uint64(v)
	case "simSeed":
		s.SimSeed = uint64(v)
	case "leaves":
		s.Leaves = v
	case "spines":
		s.Spines = v
	case "hostsPerLeaf":
		s.HostsPerLeaf = v
	case "linkGbps":
		s.LinkGbps = v
	case "linkDelayNs":
		s.LinkDelayNs = v
	case "asymPct":
		s.AsymPct = v
	case "loadPct":
		s.LoadPct = v
	case "maxFlowKB":
		s.MaxFlowKB = v
	case "durationUs":
		s.DurationUs = v
	case "drainUs":
		s.DrainUs = v
	case "incastDegree":
		s.IncastDegree = v
	case "incastKB":
		s.IncastKB = v
	case "incastAtUs":
		s.IncastAtUs = v
	case "incastClient":
		s.IncastClient = v
	case "incastReps":
		s.IncastReps = v
	case "noRecirc":
		s.NoRecirc = v != 0
	case "noOrderGuard":
		s.NoOrderGuard = v != 0
	case "qthFracPct":
		s.QthFracPct = v
	case "deltaTNs":
		s.DeltaTNs = v
	case "pfcOff":
		s.PFCOff = v != 0
	case "selectiveRepeat":
		s.SelectiveRepeat = v != 0
	case "probeUs":
		s.ProbeUs = v
	case "strict":
		s.Strict = v != 0
	case "seeds":
		s.Seeds = v
	case "leakPutEvery":
		s.LeakPutEvery = v
	case "sprayPaths":
		m, err := s.motiv(field)
		if err != nil {
			return err
		}
		m.SprayPaths = v
	case "bursts":
		m, err := s.motiv(field)
		if err != nil {
			return err
		}
		m.Bursts = v
	case "motivSpines":
		m, err := s.motiv(field)
		if err != nil {
			return err
		}
		m.Spines = v
	case "motivHosts":
		m, err := s.motiv(field)
		if err != nil {
			return err
		}
		m.Hosts = v
	case "bgLoadPct":
		m, err := s.motiv(field)
		if err != nil {
			return err
		}
		m.BgLoadPct = v
	default:
		return fmt.Errorf("unknown int field %q", field)
	}
	return nil
}

// SetStr writes a string-valued field by its JSON name.
func (s *Spec) SetStr(field, v string) error {
	switch field {
	case "scheme":
		s.Scheme = v
	case "workload":
		s.Workload = v
	case "scheduler":
		s.Scheduler = v
	default:
		return fmt.Errorf("unknown string field %q", field)
	}
	return nil
}
