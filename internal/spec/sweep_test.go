package spec

import (
	"strings"
	"testing"
)

func TestCellsRowMajorLastAxisFastest(t *testing.T) {
	g := Grid{
		Name: "order",
		Base: Spec{Scheme: "ecmp"},
		Axes: []Axis{
			{Field: "scheme", Strs: []string{"ecmp", "drill"}},
			{Field: "loadPct", Ints: []int{10, 20, 30}},
		},
	}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != g.Size() || g.Size() != 6 {
		t.Fatalf("expected 6 cells, got %d (Size=%d)", len(cells), g.Size())
	}
	want := []struct {
		scheme string
		load   int
	}{
		{"ecmp", 10}, {"ecmp", 20}, {"ecmp", 30},
		{"drill", 10}, {"drill", 20}, {"drill", 30},
	}
	for i, w := range want {
		if cells[i].Scheme != w.scheme || cells[i].LoadPct != w.load {
			t.Fatalf("cell %d = (%s, %d), want (%s, %d) — row-major order broken",
				i, cells[i].Scheme, cells[i].LoadPct, w.scheme, w.load)
		}
	}
}

func TestCellsDeepCopyBase(t *testing.T) {
	g := Grid{
		Name: "alias",
		Base: Spec{
			Faults: []FaultSpec{{Leaf: 0, Spine: 0, DownAtUs: 10, UpAtUs: 20}},
			Motiv:  &MotivSpec{Spines: 5, Hosts: 2, SprayPaths: 1, Bursts: 1},
		},
		Axes: []Axis{{Field: "sprayPaths", Ints: []int{1, 2, 3}}},
	}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	cells[0].Faults[0].Spine = 99
	if g.Base.Faults[0].Spine == 99 || cells[1].Faults[0].Spine == 99 {
		t.Fatal("cells alias the base's fault slice")
	}
	if cells[0].Motiv.SprayPaths != 1 || cells[2].Motiv.SprayPaths != 3 {
		t.Fatalf("motiv axis written through a shared pointer: %d/%d",
			cells[0].Motiv.SprayPaths, cells[2].Motiv.SprayPaths)
	}
}

func TestCellsNoAxes(t *testing.T) {
	g := Grid{Name: "point", Base: Spec{Scheme: "ecmp"}}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Scheme != "ecmp" {
		t.Fatalf("axis-free grid must expand to exactly its base, got %d cells", len(cells))
	}
}

func TestCellsErrors(t *testing.T) {
	empty := Grid{Name: "g", Axes: []Axis{{Field: "loadPct"}}}
	if _, err := empty.Cells(); err == nil || !strings.Contains(err.Error(), "no values") {
		t.Fatalf("empty axis not rejected: %v", err)
	}
	unknown := Grid{Name: "g", Axes: []Axis{{Field: "bogus", Ints: []int{1}}}}
	if _, err := unknown.Cells(); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown axis field not rejected: %v", err)
	}
	both := Grid{Name: "g", Axes: []Axis{{Field: "scheme", Ints: []int{1}, Strs: []string{"ecmp"}}}}
	if _, err := both.Cells(); err == nil || !strings.Contains(err.Error(), "both") {
		t.Fatalf("ints+strs axis not rejected: %v", err)
	}
	motivless := Grid{Name: "g", Axes: []Axis{{Field: "sprayPaths", Ints: []int{1}}}}
	if _, err := motivless.Cells(); err == nil || !strings.Contains(err.Error(), "motiv") {
		t.Fatalf("motiv axis on fabric base not rejected: %v", err)
	}
}

// TestSetIntCoversEveryIntField drives SetInt for each supported field and
// asserts the write landed, so a field added to Spec without a SetInt case
// (or vice versa) fails here instead of silently not sweeping.
func TestSetIntCoversEveryIntField(t *testing.T) {
	intFields := map[string]func(Spec) int{
		"genSeed":         func(s Spec) int { return int(s.GenSeed) },
		"simSeed":         func(s Spec) int { return int(s.SimSeed) },
		"leaves":          func(s Spec) int { return s.Leaves },
		"spines":          func(s Spec) int { return s.Spines },
		"hostsPerLeaf":    func(s Spec) int { return s.HostsPerLeaf },
		"linkGbps":        func(s Spec) int { return s.LinkGbps },
		"linkDelayNs":     func(s Spec) int { return s.LinkDelayNs },
		"asymPct":         func(s Spec) int { return s.AsymPct },
		"loadPct":         func(s Spec) int { return s.LoadPct },
		"maxFlowKB":       func(s Spec) int { return s.MaxFlowKB },
		"durationUs":      func(s Spec) int { return s.DurationUs },
		"drainUs":         func(s Spec) int { return s.DrainUs },
		"incastDegree":    func(s Spec) int { return s.IncastDegree },
		"incastKB":        func(s Spec) int { return s.IncastKB },
		"incastAtUs":      func(s Spec) int { return s.IncastAtUs },
		"incastClient":    func(s Spec) int { return s.IncastClient },
		"incastReps":      func(s Spec) int { return s.IncastReps },
		"qthFracPct":      func(s Spec) int { return s.QthFracPct },
		"deltaTNs":        func(s Spec) int { return s.DeltaTNs },
		"probeUs":         func(s Spec) int { return s.ProbeUs },
		"seeds":           func(s Spec) int { return s.Seeds },
		"leakPutEvery":    func(s Spec) int { return s.LeakPutEvery },
		"noRecirc":        func(s Spec) int { return boolToInt(s.NoRecirc) },
		"noOrderGuard":    func(s Spec) int { return boolToInt(s.NoOrderGuard) },
		"pfcOff":          func(s Spec) int { return boolToInt(s.PFCOff) },
		"selectiveRepeat": func(s Spec) int { return boolToInt(s.SelectiveRepeat) },
		"strict":          func(s Spec) int { return boolToInt(s.Strict) },
	}
	for field, read := range intFields {
		var s Spec
		if err := s.SetInt(field, 1); err != nil {
			t.Fatalf("SetInt(%q): %v", field, err)
		}
		if read(s) != 1 {
			t.Fatalf("SetInt(%q, 1) did not land", field)
		}
	}
	motivFields := map[string]func(Spec) int{
		"sprayPaths":  func(s Spec) int { return s.Motiv.SprayPaths },
		"bursts":      func(s Spec) int { return s.Motiv.Bursts },
		"motivSpines": func(s Spec) int { return s.Motiv.Spines },
		"motivHosts":  func(s Spec) int { return s.Motiv.Hosts },
		"bgLoadPct":   func(s Spec) int { return s.Motiv.BgLoadPct },
	}
	for field, read := range motivFields {
		s := Spec{Motiv: &MotivSpec{}}
		if err := s.SetInt(field, 7); err != nil {
			t.Fatalf("SetInt(%q): %v", field, err)
		}
		if read(s) != 7 {
			t.Fatalf("SetInt(%q, 7) did not land", field)
		}
		var fabric Spec
		if err := fabric.SetInt(field, 7); err == nil {
			t.Fatalf("SetInt(%q) on a fabric spec must error (no motiv block)", field)
		}
	}
	var s Spec
	if err := s.SetInt("bogus", 1); err == nil {
		t.Fatal("unknown int field accepted")
	}
}

func TestSetStr(t *testing.T) {
	var s Spec
	for field, read := range map[string]func() string{
		"scheme":    func() string { return s.Scheme },
		"workload":  func() string { return s.Workload },
		"scheduler": func() string { return s.Scheduler },
	} {
		if err := s.SetStr(field, "x"); err != nil {
			t.Fatalf("SetStr(%q): %v", field, err)
		}
		if read() != "x" {
			t.Fatalf("SetStr(%q) did not land", field)
		}
	}
	if err := s.SetStr("loadPct", "50"); err == nil {
		t.Fatal("int field accepted through SetStr")
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
