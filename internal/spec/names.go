package spec

import (
	"strings"

	"github.com/rlb-project/rlb/internal/workload"
)

// BaseSchemes are the paper's six base load balancers, in the canonical
// order shared by the scheme registry, the scenario generator's draw table,
// and every valid-name error message. Each combines with the "+rlb" suffix.
// Order is part of the fuzz-corpus format: the generator indexes into
// SchemeNames, so reordering would silently re-interpret committed corpus
// entries.
var BaseSchemes = []string{"ecmp", "presto", "letflow", "hermes", "drill", "conga"}

// SchemeNames returns every valid scheme name: the base schemes followed by
// their "+rlb" variants, in BaseSchemes order.
func SchemeNames() []string {
	out := make([]string, 0, 2*len(BaseSchemes))
	out = append(out, BaseSchemes...)
	for _, b := range BaseSchemes {
		out = append(out, b+RLBSuffix)
	}
	return out
}

// RLBSuffix marks a scheme name as the base load balancer with RLB layered
// on top ("drill+rlb").
const RLBSuffix = "+rlb"

// ValidScheme reports whether name parses as a known scheme: a base name,
// optionally suffixed with "+rlb". It is the name grammar harness.SchemeByName
// implements; a harness test pins the two registries in agreement.
func ValidScheme(name string) bool {
	base := strings.TrimSuffix(name, RLBSuffix)
	for _, b := range BaseSchemes {
		if base == b {
			return true
		}
	}
	return false
}

// WorkloadNames returns the valid workload distribution names in
// presentation order.
func WorkloadNames() []string { return workload.Names() }

// ValidWorkload reports whether name resolves in the workload registry.
func ValidWorkload(name string) bool {
	_, err := workload.ByName(name)
	return err == nil
}
