// Package spec defines the one canonical, serializable description of a
// simulation experiment. Every entry point speaks it natively: the figure
// builders declare sweep grids of specs (internal/harness compiles each cell
// with harness.Compile), cmd/rlbsim assembles a spec from flags (or loads one
// with -spec and overlays flags on top), cmd/figures dumps the exact grid
// behind every paper figure, and the scenario fuzzer generates, mutates,
// shrinks, and replays specs (internal/scenario).
//
// A Spec is plain data — integers and strings only, no simulator types — so
// it round-trips through JSON byte-stably, diffs cleanly in a shrink log,
// and replays bit-identically from a file. Durations are microseconds (or
// nanoseconds where the paper sweeps sub-microsecond values), sizes are
// kilobytes, and rates/loads are percent: integral units shrink and clamp
// without float drift. All unit conversion to sim.Time / units.Bandwidth
// happens in exactly one place, the harness compiler.
package spec

import "fmt"

// Spec fully describes one experiment. The zero value is not runnable; use
// the harness Scale helpers or the scenario generator to build one, or start
// from `rlbsim -dump-spec`.
//
// A spec describes one of three experiment kinds:
//
//   - fabric (the default): a leaf-spine fabric with Poisson workload
//     traffic, optionally a one-shot incast and a fault schedule;
//   - repeated incast (IncastReps > 0): the Fig. 8 experiment — IncastReps
//     synchronized fan-ins, each of IncastDegree senders, spaced so every
//     initiation can complete; no background workload;
//   - motivation (Motiv != nil): the Fig. 2 two-leaf scenario — parallel
//     spine paths, background pairs, bursts, and one sprayed elephant flow.
type Spec struct {
	// GenSeed is the generator seed that produced this spec (0 when the
	// spec was decoded from fuzz corpus bytes or written by hand).
	// Informational: replay uses the spec fields themselves, never the seed.
	GenSeed uint64 `json:"genSeed"`
	// SimSeed seeds the simulation (harness.RunConfig.Seed).
	SimSeed uint64 `json:"simSeed"`

	Leaves       int `json:"leaves"`
	Spines       int `json:"spines"`
	HostsPerLeaf int `json:"hostsPerLeaf"`
	// LinkGbps is the symmetric link rate; switch thresholds are rescaled
	// from the paper's 40 Gb/s settings exactly as harness.Scale does.
	LinkGbps int `json:"linkGbps"`
	// LinkDelayNs is the per-hop propagation delay (0 = the 2 µs default
	// every scale in the repo uses).
	LinkDelayNs int `json:"linkDelayNs,omitempty"`
	// AsymPct downgrades that percentage of leaf-spine links to quarter
	// rate (§4.2's static asymmetry). 0 = symmetric.
	AsymPct int `json:"asymPct,omitempty"`

	// Scheme is a load-balancer scheme name; see SchemeNames.
	Scheme string `json:"scheme"`
	// Workload is a workload.ByName distribution name ("" = no Poisson
	// traffic; required to be empty for the repeated-incast kind).
	Workload string `json:"workload"`
	// LoadPct is the offered load as a percent of host line rate.
	LoadPct int `json:"loadPct"`
	// MaxFlowKB truncates sampled flow sizes (kB) so elephants finish
	// within the window (0 = no cap).
	MaxFlowKB int `json:"maxFlowKB"`

	// DurationUs is the traffic window; DrainUs the extra time for
	// in-flight flows (and post-fault retransmissions) to finish. Normalize
	// keeps DrainUs above a floor derived from DurationUs so the
	// completion property stays meaningful.
	DurationUs int `json:"durationUs"`
	DrainUs    int `json:"drainUs"`

	// Incast fields describe synchronized fan-ins (§4.3). With IncastReps
	// == 0 they are the fabric kind's one-shot incast injected at
	// IncastAtUs: IncastDegree servers each send IncastKB/degree to
	// IncastClient. IncastDegree < 2 means no incast. With IncastReps > 0
	// the spec is the dedicated Fig. 8 experiment instead: IncastReps
	// initiations of degree IncastDegree and total response IncastKB to a
	// seed-drawn client, spaced by the compiler; IncastAtUs/IncastClient
	// are unused there.
	IncastDegree int `json:"incastDegree,omitempty"`
	IncastKB     int `json:"incastKB,omitempty"`
	IncastAtUs   int `json:"incastAtUs,omitempty"`
	IncastClient int `json:"incastClient,omitempty"`
	IncastReps   int `json:"incastReps,omitempty"`

	// Faults is the fault schedule. A window with UpAtUs > DownAtUs
	// restores what it broke; UpAtUs <= DownAtUs means "never restore"
	// (the generator never emits that — Normalize forces restoration — but
	// `rlbsim -kill` without -restore-at does).
	Faults []FaultSpec `json:"faults,omitempty"`

	// RLB ablation and sensitivity knobs (Figs. 9 and 10). All-zero means
	// core.DefaultParams verbatim. QthFracPct is the PFC warning threshold
	// as a percent of the PFC threshold; DeltaTNs the derivative sampling
	// interval in nanoseconds (the paper sweeps 2–5 µs in 0.5 µs steps).
	NoRecirc     bool `json:"noRecirc,omitempty"`
	NoOrderGuard bool `json:"noOrderGuard,omitempty"`
	QthFracPct   int  `json:"qthFracPct,omitempty"`
	DeltaTNs     int  `json:"deltaTNs,omitempty"`

	// PFCOff disables lossless mode (the Fig. 3 comparison axis and the
	// IRN extension's lossy fabric); SelectiveRepeat switches hosts from
	// go-back-N to IRN-style selective repeat.
	PFCOff          bool `json:"pfcOff,omitempty"`
	SelectiveRepeat bool `json:"selectiveRepeat,omitempty"`

	// ProbeUs, when nonzero, replaces oracle path telemetry with in-band
	// probes at this interval (microseconds).
	ProbeUs int `json:"probeUs,omitempty"`
	// Scheduler names the event-queue implementation ("" or "calendar" =
	// the calendar queue, "heap" = the reference binary heap).
	Scheduler string `json:"scheduler,omitempty"`
	// Strict enables the invariant checker's expensive tier.
	Strict bool `json:"strict,omitempty"`
	// Seeds is how many seeds an averaging runner should use (0 = 1). The
	// compiler ignores it — one spec compiles to one run — but it rides in
	// the artifact so a `rlbsim -seeds` invocation round-trips.
	Seeds int `json:"seeds,omitempty"`

	// Motiv, when non-nil, switches the spec to the Fig. 2 motivation
	// scenario; the fabric shape fields above are ignored (the topology is
	// 2 leaves x Motiv.Spines, host count derived from Motiv.Hosts).
	Motiv *MotivSpec `json:"motiv,omitempty"`

	// Telemetry, when non-nil, samples the run's probe set (switch queues,
	// PFC pause state, DCQCN rates, host transport state, RLB counters)
	// every SampleUs microseconds and attaches the series to the result.
	// Sampling is observation-only: results are bit-identical with the
	// block present or absent.
	Telemetry *TelemetrySpec `json:"telemetry,omitempty"`

	// LeakPutEvery is deliberate fault injection for the seeded-breach
	// meta-test: every Nth packet returned to the pool is silently leaked
	// (fabric.Pool.LeakEvery), which the strict packet-pool conservation
	// invariant must catch. The generator never sets it; it serializes so
	// a breach repro file replays the breach.
	LeakPutEvery int `json:"leakPutEvery,omitempty"`
}

// MotivSpec parameterizes the Fig. 2 scenario (see harness.RunMotivation):
// two leaf switches joined by Spines equal-cost paths, Hosts background
// sender/receiver pairs, line-rate bursts, and one long flow sprayed over
// SprayPaths parallel paths.
type MotivSpec struct {
	Spines int `json:"spines"`
	Hosts  int `json:"hosts"`
	// SprayPaths is how many parallel paths the congested flow uses
	// (Fig. 4(a) sweeps this); Bursts the number of continuous burst waves
	// (Fig. 4(b) sweeps it).
	SprayPaths int `json:"sprayPaths"`
	Bursts     int `json:"bursts"`
	// BgLoadPct is the background senders' offered load percent (0 = the
	// scenario default, 55%).
	BgLoadPct int `json:"bgLoadPct,omitempty"`
}

// TelemetrySpec configures run-time telemetry sampling.
type TelemetrySpec struct {
	// SampleUs is the sampling interval in microseconds (>= 1).
	SampleUs int `json:"sampleUs"`
}

// FaultSpec is one fault window on leaf-spine link (Leaf, Spine): a kill
// window (RateDiv <= 1) cutting the link from DownAtUs to UpAtUs, or a
// degrade window (RateDiv > 1) running it at LinkRate/RateDiv over the same
// span. UpAtUs <= DownAtUs schedules the break only, never the repair.
type FaultSpec struct {
	Leaf     int `json:"leaf"`
	Spine    int `json:"spine"`
	DownAtUs int `json:"downAtUs"`
	UpAtUs   int `json:"upAtUs"`
	RateDiv  int `json:"rateDiv,omitempty"`
}

// Kill reports whether the window cuts the link (vs. degrading it).
func (f FaultSpec) Kill() bool { return f.RateDiv <= 1 }

// Restores reports whether the window schedules its own repair.
func (f FaultSpec) Restores() bool { return f.UpAtUs > f.DownAtUs }

// Clone deep-copies the spec so mutating the copy (sweep axes, shrink
// candidates) never aliases the original's Faults or Motiv.
func (s Spec) Clone() Spec {
	c := s
	if len(s.Faults) > 0 {
		c.Faults = make([]FaultSpec, len(s.Faults))
		copy(c.Faults, s.Faults)
	}
	if s.Motiv != nil {
		m := *s.Motiv
		c.Motiv = &m
	}
	if s.Telemetry != nil {
		t := *s.Telemetry
		c.Telemetry = &t
	}
	return c
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// DrainFloorUs is the minimum drain that makes the flows-complete property
// sound rather than a tuning assumption: a flow that has not finished by
// then is stuck, not slow. Two parts:
//
//   - a time base: three more traffic windows plus 2 ms, covering PFC
//     backlog draining and several go-back-N RTO cycles (the transport
//     default is 400 µs) after a restored kill window;
//   - a capacity term: the worst case is every byte crossing one
//     quarter-rate link (static asymmetry and degrade windows both floor at
//     LinkRate/4, and hashing can pile all flows onto it), so budget the
//     per-flow cap, the window's offered bytes, and the incast — each with
//     margin for Poisson overshoot, DCQCN ramp-up, and retransmissions —
//     across a LinkGbps/4 bottleneck. Long drains are nearly free: once
//     flows finish, only periodic timers tick.
//
// Fields are read post-clamp, so LinkGbps >= 5.
func (s Spec) DrainFloorUs() int {
	hosts := s.Leaves * s.HostsPerLeaf
	// Offered bytes over the window, in KB: LoadPct% of line rate per host.
	genKB := s.LoadPct * hosts * s.LinkGbps * s.DurationUs / 800
	slowKB := 4*s.MaxFlowKB + 3*genKB + 2*s.IncastKB
	// A quarter-rate link moves LinkGbps/32 KB per microsecond.
	return 3*s.DurationUs + 2000 + 32*slowKB/s.LinkGbps
}

// Normalize clamps every field into the envelope the fuzz property suite is
// calibrated for and repairs inconsistencies (fault addresses outside the
// fabric, unordered windows, duplicate links, impossible incasts). Both the
// generator and the byte decoder emit normalized specs, and the shrinker
// re-normalizes every candidate, so all specs that reach the runner satisfy
// the same invariants: PFC on, every fault restored before the window ends,
// drain above the completion floor.
//
// Fields outside the generator's sampled surface — the figure-only knobs
// (Motiv, IncastReps, PFCOff, SelectiveRepeat, probes, telemetry, RLB
// ablations, scheduler/strict/seeds overrides) — are cleared: the envelope's theorems
// (losslessness, completion) are calibrated without them, and the property
// runner supplies its own strictness and scheduler choices. Figure grids
// deliberately live outside this envelope and are never normalized.
func (s Spec) Normalize() Spec {
	s.Motiv = nil
	s.IncastReps = 0
	s.PFCOff = false
	s.SelectiveRepeat = false
	s.ProbeUs = 0
	s.NoRecirc, s.NoOrderGuard = false, false
	s.QthFracPct, s.DeltaTNs = 0, 0
	s.LinkDelayNs = 0
	s.Scheduler = ""
	s.Strict = false
	s.Seeds = 0
	s.Telemetry = nil

	s.Leaves = clampInt(s.Leaves, 2, 4)
	s.Spines = clampInt(s.Spines, 2, 6)
	s.HostsPerLeaf = clampInt(s.HostsPerLeaf, 1, 4)
	s.LinkGbps = clampInt(s.LinkGbps, 5, 40)
	s.AsymPct = clampInt(s.AsymPct, 0, 50)
	if !ValidScheme(s.Scheme) {
		s.Scheme = "ecmp"
	}
	if !ValidWorkload(s.Workload) {
		s.Workload = "webserver"
	}
	s.LoadPct = clampInt(s.LoadPct, 5, 50)
	s.MaxFlowKB = clampInt(s.MaxFlowKB, 10, 1000)
	s.DurationUs = clampInt(s.DurationUs, 50, 800)

	hosts := s.Leaves * s.HostsPerLeaf
	if s.IncastDegree < 2 || hosts-1 < 2 {
		s.IncastDegree, s.IncastKB, s.IncastAtUs, s.IncastClient = 0, 0, 0, 0
	} else {
		s.IncastDegree = clampInt(s.IncastDegree, 2, minInt(6, hosts-1))
		s.IncastKB = clampInt(s.IncastKB, 4, 64)
		s.IncastAtUs = clampInt(s.IncastAtUs, 0, s.DurationUs)
		s.IncastClient = clampInt(s.IncastClient, 0, hosts-1)
	}

	// The drain floor reads the clamped dims/load/caps above, so it comes last.
	if floor := s.DrainFloorUs(); s.DrainUs < floor {
		s.DrainUs = floor
	}

	// Faults: clamp addresses, keep at most one window per link (overlapping
	// windows on one link could re-kill it after its restore and leave it
	// down at end of run), and force DownAt < UpAt <= Duration so every
	// break is repaired inside the traffic window.
	var faults []FaultSpec
	seen := make(map[[2]int]bool)
	for _, f := range s.Faults {
		if len(faults) == 3 {
			break
		}
		f.Leaf = clampInt(f.Leaf, 0, s.Leaves-1)
		f.Spine = clampInt(f.Spine, 0, s.Spines-1)
		key := [2]int{f.Leaf, f.Spine}
		if seen[key] {
			continue
		}
		seen[key] = true
		f.DownAtUs = clampInt(f.DownAtUs, s.DurationUs/8, s.DurationUs-s.DurationUs/8)
		f.UpAtUs = clampInt(f.UpAtUs, f.DownAtUs+1, s.DurationUs)
		if f.RateDiv != 0 {
			f.RateDiv = clampInt(f.RateDiv, 1, 8)
		}
		faults = append(faults, f)
	}
	s.Faults = faults

	if s.LeakPutEvery < 0 {
		s.LeakPutEvery = 0
	}
	return s
}

// Params renders the spec as the one-line parameter summary the compiler
// attaches to every invariant violation (RunConfig.Context), so any failure
// in a log is reproducible without the spec file. There is exactly one
// composer of this string — harness.Compile always installs it — so
// harness-run and scenario-run violation labels cannot drift in format.
func (s Spec) Params() string {
	out := fmt.Sprintf("spec gen-seed=%d sim-seed=%d fabric=%dx%d/%d@%dG scheme=%s wl=%s load=%d%% cap=%dKB dur=%dus drain=%dus",
		s.GenSeed, s.SimSeed, s.Leaves, s.Spines, s.HostsPerLeaf, s.LinkGbps,
		s.Scheme, s.Workload, s.LoadPct, s.MaxFlowKB, s.DurationUs, s.DrainUs)
	if s.Motiv != nil {
		m := s.Motiv
		out += fmt.Sprintf(" motiv=%dpaths/%dpairs spray=%d bursts=%d", m.Spines, m.Hosts, m.SprayPaths, m.Bursts)
		if m.BgLoadPct > 0 {
			out += fmt.Sprintf(" bg=%d%%", m.BgLoadPct)
		}
	}
	if s.AsymPct > 0 {
		out += fmt.Sprintf(" asym=%d%%", s.AsymPct)
	}
	if s.IncastDegree >= 2 {
		if s.IncastReps > 0 {
			out += fmt.Sprintf(" incast=%dx%dKB reps=%d", s.IncastDegree, s.IncastKB, s.IncastReps)
		} else {
			out += fmt.Sprintf(" incast=%dx%dKB@%dus->h%d", s.IncastDegree, s.IncastKB, s.IncastAtUs, s.IncastClient)
		}
	}
	for _, f := range s.Faults {
		kind := "kill"
		if !f.Kill() {
			kind = fmt.Sprintf("rate/%d", f.RateDiv)
		}
		out += fmt.Sprintf(" fault=%s(l%d,s%d,%d-%dus)", kind, f.Leaf, f.Spine, f.DownAtUs, f.UpAtUs)
	}
	if s.PFCOff {
		out += " pfc=off"
	}
	if s.SelectiveRepeat {
		out += " irn"
	}
	if s.NoRecirc {
		out += " norecirc"
	}
	if s.NoOrderGuard {
		out += " noguard"
	}
	if s.QthFracPct > 0 {
		out += fmt.Sprintf(" qth=%d%%", s.QthFracPct)
	}
	if s.DeltaTNs > 0 {
		out += fmt.Sprintf(" dt=%dns", s.DeltaTNs)
	}
	if s.ProbeUs > 0 {
		out += fmt.Sprintf(" probe=%dus", s.ProbeUs)
	}
	if s.Scheduler != "" {
		out += " sched=" + s.Scheduler
	}
	if s.Telemetry != nil {
		out += fmt.Sprintf(" telem=%dus", s.Telemetry.SampleUs)
	}
	if s.LeakPutEvery > 0 {
		out += fmt.Sprintf(" leak-every=%d", s.LeakPutEvery)
	}
	return out
}
