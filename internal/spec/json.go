package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Encode renders the spec in the canonical on-disk form: two-space indented
// JSON with a trailing newline. Encode(Decode(Encode(s))) is byte-identical
// to Encode(s) — the round-trip tests pin it — so specs diff cleanly under
// version control and a re-saved artifact never churns.
func Encode(s Spec) ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("spec: encode: %w", err)
	}
	return append(data, '\n'), nil
}

// Decode parses a canonical spec document. Unknown fields are rejected: a
// typo'd knob in a hand-edited spec must fail loudly, not silently fall back
// to a default and run a different experiment than the author intended.
func Decode(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("spec: decode: %w", err)
	}
	// Reject trailing garbage (a second JSON document, say) for the same
	// fail-loudly reason as unknown fields.
	if dec.More() {
		return Spec{}, fmt.Errorf("spec: decode: trailing data after spec document")
	}
	return s, nil
}

// EncodeGrids renders a grid list in the same canonical form as Encode.
func EncodeGrids(gs []Grid) ([]byte, error) {
	data, err := json.MarshalIndent(gs, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("spec: encode grids: %w", err)
	}
	return append(data, '\n'), nil
}

// DecodeGrids parses a grid list with the same strictness as Decode.
func DecodeGrids(data []byte) ([]Grid, error) {
	var gs []Grid
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&gs); err != nil {
		return nil, fmt.Errorf("spec: decode grids: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("spec: decode grids: trailing data after grid document")
	}
	return gs, nil
}
