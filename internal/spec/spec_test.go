package spec

import (
	"bytes"
	"strings"
	"testing"
)

// fullSpec exercises every serialized field at a nonzero value, so the
// round-trip tests cover the omitempty knobs too.
func fullSpec() Spec {
	return Spec{
		GenSeed: 7, SimSeed: 42,
		Leaves: 4, Spines: 6, HostsPerLeaf: 6, LinkGbps: 25,
		LinkDelayNs: 1500, AsymPct: 20,
		Scheme: "drill+rlb", Workload: "websearch",
		LoadPct: 60, MaxFlowKB: 5000,
		DurationUs: 5000, DrainUs: 15000,
		IncastDegree: 8, IncastKB: 64, IncastAtUs: 1200, IncastClient: 3, IncastReps: 5,
		Faults: []FaultSpec{
			{Leaf: 0, Spine: 1, DownAtUs: 1000, UpAtUs: 3000},
			{Leaf: 1, Spine: 2, DownAtUs: 500, UpAtUs: 900, RateDiv: 4},
		},
		NoRecirc: true, NoOrderGuard: true, QthFracPct: 40, DeltaTNs: 2500,
		PFCOff: true, SelectiveRepeat: true,
		ProbeUs: 100, Scheduler: "heap", Strict: true, Seeds: 3,
		Motiv:        &MotivSpec{Spines: 5, Hosts: 2, SprayPaths: 3, Bursts: 4, BgLoadPct: 55},
		LeakPutEvery: 9,
	}
}

func TestEncodeDecodeRoundTripByteStable(t *testing.T) {
	for name, s := range map[string]Spec{
		"full":    fullSpec(),
		"minimal": {SimSeed: 1, Leaves: 2, Spines: 2, HostsPerLeaf: 1, LinkGbps: 10, Scheme: "ecmp", Workload: "webserver", LoadPct: 10, DurationUs: 100, DrainUs: 3000},
		"zero":    {},
	} {
		first, err := Encode(s)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		if !bytes.HasSuffix(first, []byte("\n")) {
			t.Fatalf("%s: canonical form must end with a newline", name)
		}
		decoded, err := Decode(first)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		second, err := Encode(decoded)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", name, err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("%s: round trip not byte-stable:\n%s\nvs\n%s", name, first, second)
		}
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	_, err := Decode([]byte(`{"simSeed": 1, "linkGpbs": 10}`))
	if err == nil {
		t.Fatal("typo'd field decoded silently; DisallowUnknownFields is the contract")
	}
	if !strings.Contains(err.Error(), "linkGpbs") {
		t.Fatalf("error does not name the offending field: %v", err)
	}
}

func TestDecodeRejectsTrailingData(t *testing.T) {
	if _, err := Decode([]byte("{\"simSeed\": 1}\n{\"simSeed\": 2}\n")); err == nil {
		t.Fatal("two concatenated documents decoded silently")
	}
	if _, err := Decode([]byte(`{"simSeed": 1} garbage`)); err == nil {
		t.Fatal("trailing garbage decoded silently")
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	for _, in := range []string{"", "{", `{"simSeed": "notanumber"}`, "[]"} {
		if _, err := Decode([]byte(in)); err == nil {
			t.Fatalf("malformed input %q decoded without error", in)
		}
	}
}

func TestGridsRoundTripByteStable(t *testing.T) {
	gs := []Grid{
		{
			Name: "demo", Seeds: 3,
			Base: fullSpec(),
			Axes: []Axis{
				{Field: "scheme", Strs: []string{"ecmp", "drill+rlb"}},
				{Field: "loadPct", Ints: []int{20, 40, 60}},
			},
		},
	}
	first, err := EncodeGrids(gs)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeGrids(first)
	if err != nil {
		t.Fatal(err)
	}
	second, err := EncodeGrids(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("grid round trip not byte-stable:\n%s\nvs\n%s", first, second)
	}
	if _, err := DecodeGrids([]byte(`[{"name": "x", "bsae": {}}]`)); err == nil {
		t.Fatal("typo'd grid field decoded silently")
	}
}

func TestNormalizeIsFixpoint(t *testing.T) {
	// Normalize of anything — including a wildly out-of-envelope spec — must
	// be a fixpoint, or shrinking would oscillate.
	inputs := []Spec{
		{},
		fullSpec(),
		{Leaves: 100, Spines: -3, HostsPerLeaf: 9, LinkGbps: 1000, LoadPct: 99,
			DurationUs: 1 << 20, IncastDegree: 50, IncastKB: 1 << 12,
			Faults: []FaultSpec{{Leaf: -4, Spine: 99, DownAtUs: -7, UpAtUs: 1 << 30, RateDiv: 77},
				{Leaf: -4, Spine: 99}, {Leaf: 1, Spine: 1}, {Leaf: 0, Spine: 1}, {Leaf: 0, Spine: 0}}},
	}
	for i, in := range inputs {
		once := in.Normalize()
		twice := once.Normalize()
		a, _ := Encode(once)
		b, _ := Encode(twice)
		if !bytes.Equal(a, b) {
			t.Fatalf("input %d: Normalize not a fixpoint:\n%s\nvs\n%s", i, a, b)
		}
	}
}

func TestNormalizeClearsFigureOnlyKnobs(t *testing.T) {
	n := fullSpec().Normalize()
	if n.Motiv != nil || n.IncastReps != 0 || n.PFCOff || n.SelectiveRepeat ||
		n.ProbeUs != 0 || n.NoRecirc || n.NoOrderGuard || n.QthFracPct != 0 ||
		n.DeltaTNs != 0 || n.LinkDelayNs != 0 || n.Scheduler != "" || n.Strict || n.Seeds != 0 {
		t.Fatalf("figure-only knobs survived Normalize: %+v", n)
	}
	if n.DrainUs < n.DrainFloorUs() {
		t.Fatalf("normalized drain %dus below floor %dus", n.DrainUs, n.DrainFloorUs())
	}
}

func TestCloneDoesNotAlias(t *testing.T) {
	s := fullSpec()
	c := s.Clone()
	c.Faults[0].Spine = 99
	c.Motiv.SprayPaths = 99
	if s.Faults[0].Spine == 99 {
		t.Fatal("Clone aliased the fault slice")
	}
	if s.Motiv.SprayPaths == 99 {
		t.Fatal("Clone aliased the motiv block")
	}
}

func TestSchemeAndWorkloadNames(t *testing.T) {
	names := SchemeNames()
	if len(names) != 2*len(BaseSchemes) {
		t.Fatalf("SchemeNames returned %d names for %d bases", len(names), len(BaseSchemes))
	}
	for _, n := range names {
		if !ValidScheme(n) {
			t.Fatalf("SchemeNames entry %q not ValidScheme", n)
		}
	}
	for _, bad := range []string{"", "rlb", "+rlb", "drill+", "drill+rlb+rlb", "ECMP"} {
		if ValidScheme(bad) {
			t.Fatalf("ValidScheme accepted %q", bad)
		}
	}
	for _, w := range WorkloadNames() {
		if !ValidWorkload(w) {
			t.Fatalf("WorkloadNames entry %q not ValidWorkload", w)
		}
	}
	if ValidWorkload("bogus") {
		t.Fatal("ValidWorkload accepted a bogus name")
	}
}

func TestFaultSpecPredicates(t *testing.T) {
	if !(FaultSpec{DownAtUs: 10, UpAtUs: 20}).Kill() {
		t.Fatal("RateDiv 0 must be a kill window")
	}
	if (FaultSpec{RateDiv: 4}).Kill() {
		t.Fatal("RateDiv 4 is a degrade window, not a kill")
	}
	if !(FaultSpec{DownAtUs: 10, UpAtUs: 20}).Restores() {
		t.Fatal("UpAt > DownAt must restore")
	}
	if (FaultSpec{DownAtUs: 10, UpAtUs: 0}).Restores() {
		t.Fatal("UpAt 0 means never restore")
	}
}
