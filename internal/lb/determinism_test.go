package lb

import (
	"testing"

	"github.com/rlb-project/rlb/internal/rng"
	"github.com/rlb-project/rlb/internal/sim"
)

// pickSequence drives a fresh chooser through a scripted, seeded workload and
// returns every pick it makes. Two calls with the same seed must agree
// exactly: the figures are replayed bit-for-bit by seed, so no scheme may
// consult anything but its own state, the view, and the view's seeded RNG.
func pickSequence(mk Factory, seed uint64, n int) []int {
	c := mk()
	v := newFakeView(6)
	v.rng = rng.New(seed)
	script := rng.New(seed + 1) // same stimulus for both replays
	picks := make([]int, 0, n)
	for i := 0; i < n; i++ {
		flow := uint32(script.Intn(8))
		seq := uint32(i)
		for q := range v.queues {
			v.queues[q] = script.Intn(100_000)
			v.delays[q] = sim.Time(script.Intn(200)) * sim.Microsecond
		}
		v.now += sim.Time(script.Intn(120)) * sim.Microsecond
		var ex PathSet
		if script.Intn(4) == 0 {
			ex = ex.With(script.Intn(6))
		}
		got := c.Choose(v, dataPkt(flow, seq), ex)
		if cm, ok := c.(Committer); ok && script.Intn(8) == 0 {
			cm.Commit(dataPkt(flow, seq), got)
		}
		picks = append(picks, got)
	}
	return picks
}

func TestPickSequencesDeterministic(t *testing.T) {
	factories := map[string]Factory{
		"ecmp":    NewECMP(),
		"presto":  NewPresto(64*1000, 1000),
		"letflow": NewLetFlow(100 * sim.Microsecond),
		"drill":   NewDRILL(2, 1),
		"hermes":  NewHermes(1000, 0),
		"conga":   NewCONGA(50 * sim.Microsecond),
	}
	for name, mk := range factories {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				a := pickSequence(mk, seed, 2000)
				b := pickSequence(mk, seed, 2000)
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("seed %d: pick %d diverged (%d vs %d)", seed, i, a[i], b[i])
					}
				}
			}
			// And different seeds should not replay the same sequence for the
			// randomized schemes (a frozen RNG would silently void averaging).
			if name == "ecmp" || name == "presto" {
				return // hash/round-robin: legitimately seed-independent
			}
			a, b := pickSequence(mk, 1, 2000), pickSequence(mk, 2, 2000)
			same := 0
			for i := range a {
				if a[i] == b[i] {
					same++
				}
			}
			if same == len(a) {
				t.Fatalf("%s: seeds 1 and 2 produced identical sequences", name)
			}
		})
	}
}
