package lb

import (
	"testing"
	"testing/quick"

	"github.com/rlb-project/rlb/internal/rng"
	"github.com/rlb-project/rlb/internal/sim"
)

// TestChoosersAlwaysInRange drives every scheme with randomized packets,
// queue states and exclusion masks; the chosen path must always be valid.
func TestChoosersAlwaysInRange(t *testing.T) {
	factories := map[string]Factory{
		"ecmp":    NewECMP(),
		"presto":  NewPresto(64*1000, 1000),
		"letflow": NewLetFlow(100 * sim.Microsecond),
		"drill":   NewDRILL(2, 1),
		"hermes":  NewHermes(1000, 0),
	}
	for name, mk := range factories {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			c := mk()
			v := newFakeView(6)
			v.rng = rng.New(99)
			prop := func(flow uint32, seq uint16, excl uint8, q0, q1 uint16, adv uint8) bool {
				v.now += sim.Time(adv) * sim.Microsecond
				v.queues[flow%6] = int(q0)
				v.queues[(flow+3)%6] = int(q1)
				v.delays[flow%6] = sim.Time(q0) * sim.Microsecond
				exclude := PathSet(excl) & 0x3f
				got := c.Choose(v, dataPkt(flow%16, uint32(seq)), exclude)
				if got < 0 || got >= 6 {
					return false
				}
				// When not everything is excluded, the choice must respect it.
				if exclude.Count() < 6 && exclude.Has(got) {
					return false
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCommitIdempotent checks Commit with the current path is a no-op and
// with a new path moves exactly once.
func TestCommitIdempotent(t *testing.T) {
	v := newFakeView(4)
	h := NewHermes(1000, 0)().(*Hermes)
	p0 := h.Choose(v, dataPkt(1, 0), 0)
	h.Commit(dataPkt(1, 1), p0) // same path: no-op
	if st, _ := h.flows.Get(1); st.lastMoveSeq != 0 {
		t.Fatal("no-op commit reset hysteresis")
	}
	h.Commit(dataPkt(1, 5), (p0+1)%4)
	if st, _ := h.flows.Get(1); st.path != (p0+1)%4 || st.lastMoveSeq != 5 {
		t.Fatal("commit did not move flow state")
	}
	// Commit for an unknown flow must not panic or create state.
	h.Commit(dataPkt(42, 0), 2)
	if h.flows.Has(42) {
		t.Fatal("commit created state for unknown flow")
	}
}

func TestLetFlowCommit(t *testing.T) {
	v := newFakeView(4)
	l := NewLetFlow(100 * sim.Microsecond)().(*LetFlow)
	p0 := l.Choose(v, dataPkt(1, 0), 0)
	np := (p0 + 1) % 4
	l.Commit(dataPkt(1, 1), np)
	if got := l.Choose(v, dataPkt(1, 2), 0); got != np {
		t.Fatalf("flowlet did not follow commit: %d want %d", got, np)
	}
	l.Commit(dataPkt(9, 0), 1) // unknown flow: no-op, no panic
}

func TestPrestoSpreadUnderExclusion(t *testing.T) {
	// With one path excluded, consecutive cells must still spread over the
	// remaining paths rather than herd onto one.
	v := newFakeView(4)
	p := NewPresto(64*1000, 1000)()
	ex := PathSet(0).With(2)
	used := map[int]bool{}
	for f := uint32(0); f < 16; f++ {
		used[p.Choose(v, dataPkt(f, 0), ex)] = true
	}
	if len(used) != 3 {
		t.Fatalf("excluded spread covers %d paths, want 3", len(used))
	}
	if used[2] {
		t.Fatal("excluded path used")
	}
}
