package lb

import (
	"github.com/rlb-project/rlb/internal/fabric"
	"github.com/rlb-project/rlb/internal/flatmap"
	"github.com/rlb-project/rlb/internal/sim"
)

// CONGA (Alizadeh et al., SIGCOMM 2014) balances flowlets onto the least
// congested path: at each flowlet boundary it consults per-path congestion
// state and picks the minimum. The original gathers that state with
// in-network feedback; here the View's path monitor plays that role (the
// same idealized-freshness substitution used for Hermes — see DESIGN.md).
// Within a flowlet the path is pinned, so reordering only occurs when path
// conditions invert mid-flowlet (or PFC pauses the chosen path, which is the
// paper's point).
type CONGA struct {
	// Gap is the flowlet inactivity timeout.
	Gap sim.Time

	// table stores flowlet state inline in a flat open-addressed table
	// (see internal/flatmap), like CONGA's fixed-size flowlet table.
	table flatmap.U32[flowlet]
}

// NewCONGA returns a CONGA factory with the given flowlet gap.
func NewCONGA(gap sim.Time) Factory {
	return func() Chooser { return &CONGA{Gap: gap} }
}

// Name implements Chooser.
func (c *CONGA) Name() string { return "conga" }

// Choose implements Chooser.
func (c *CONGA) Choose(v View, pkt *fabric.Packet, exclude PathSet) int {
	now := v.Now()
	fl := c.table.Ptr(pkt.FlowID)
	if fl == nil {
		path := c.leastCongested(v, pkt, exclude)
		fl = c.table.Upsert(pkt.FlowID)
		fl.path = path
	} else if now-fl.lastSeen > c.Gap {
		// New flowlet: re-balance onto the currently best path.
		fl.path = c.leastCongested(v, pkt, exclude)
	}
	fl.lastSeen = now
	if exclude.Has(fl.path) {
		// Hypothetical probe (RLB): answer without moving the flowlet.
		return c.leastCongested(v, pkt, exclude)
	}
	return fl.path
}

// Commit implements Committer: an override moves the flowlet with it.
func (c *CONGA) Commit(pkt *fabric.Packet, path int) {
	if fl := c.table.Ptr(pkt.FlowID); fl != nil {
		fl.path = path
	}
}

// leastCongested returns the allowed path with the smallest estimated delay,
// breaking ties randomly to avoid synchronized herding.
func (c *CONGA) leastCongested(v View, pkt *fabric.Packet, exclude PathSet) int {
	n := v.NumPaths()
	best, bestD, ties := -1, sim.Time(0), 1
	for i := 0; i < n; i++ {
		if exclude.Has(i) {
			continue
		}
		d := v.PathDelay(i, pkt)
		switch {
		case best == -1 || d < bestD:
			best, bestD, ties = i, d, 1
		case d == bestD:
			// Reservoir-sample among equals.
			ties++
			if v.Rng().Intn(ties) == 0 {
				best = i
			}
		}
	}
	if best == -1 {
		return v.Rng().Intn(n)
	}
	return best
}
