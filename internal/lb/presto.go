package lb

import (
	"github.com/rlb-project/rlb/internal/fabric"
	"github.com/rlb-project/rlb/internal/flatmap"
)

// Presto (He et al., SIGCOMM 2015) sprays fixed-size flowcells over the
// parallel paths in round-robin order: every flow is chopped into
// CellBytes-sized cells and consecutive cells take consecutive paths.
type Presto struct {
	// CellBytes is the flowcell size (64 KB in the paper).
	CellBytes int
	// MTU converts a packet sequence number into a byte offset.
	MTU int

	// next is the global round-robin pointer assigning a start path to each
	// new flow, as Presto's edge vSwitch does.
	next int
	// start remembers each flow's first path in a flat open-addressed
	// table: one probe per packet instead of a built-in map's hash/bucket
	// walk (see internal/flatmap).
	start flatmap.U32[int]
}

// NewPresto returns a Presto factory with the given flowcell size and MTU.
func NewPresto(cellBytes, mtu int) Factory {
	return func() Chooser {
		return &Presto{CellBytes: cellBytes, MTU: mtu}
	}
}

// Name implements Chooser.
func (p *Presto) Name() string { return "presto" }

// Choose implements Chooser: path = (flow start + cell index) mod paths.
func (p *Presto) Choose(v View, pkt *fabric.Packet, exclude PathSet) int {
	n := v.NumPaths()
	s, ok := p.start.Get(pkt.FlowID)
	if !ok {
		s = p.next % n
		p.next++
		p.start.Put(pkt.FlowID, s)
	}
	cell := int(pkt.Seq) * p.MTU / p.CellBytes
	if exclude == 0 {
		return (s + cell) % n
	}
	// With exclusions, keep round-robin spreading over the allowed subset
	// instead of collapsing onto the first allowed neighbor — otherwise
	// every diverted cell herds onto the same path. Counting and walking
	// the bitmask picks the k-th allowed path without building a slice:
	// Choose runs per packet on the event hot path.
	allowed := 0
	for i := 0; i < n; i++ {
		if !exclude.Has(i) {
			allowed++
		}
	}
	if allowed == 0 {
		return (s + cell) % n
	}
	k := (s + cell) % allowed
	for i := 0; i < n; i++ {
		if exclude.Has(i) {
			continue
		}
		if k == 0 {
			return i
		}
		k--
	}
	return (s + cell) % n
}
