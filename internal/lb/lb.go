// Package lb defines the load-balancing interface used by leaf switches to
// pick uplinks, and implements the four schemes the paper builds RLB on:
// Presto (flowcell round-robin), LetFlow (flowlet switching), Hermes
// (condition-aware deliberate rerouting) and DRILL (per-packet
// power-of-two-choices), plus an ECMP baseline.
//
// A Chooser ranks paths; the exclude mask lets a caller (RLB's rerouting
// module) ask for the scheme's *suboptimal* choice when the optimal path has
// a PFC warning, which is exactly the "select the suboptimal path ps" step of
// the paper's Algorithm 1.
package lb

import (
	"github.com/rlb-project/rlb/internal/fabric"
	"github.com/rlb-project/rlb/internal/rng"
	"github.com/rlb-project/rlb/internal/sim"
)

// PathSet is a bitmask of path indices (bit i set = path i excluded).
// Topologies are limited to 64 equal-cost uplinks, which covers the paper's
// fabrics (12 and 40 parallel paths).
type PathSet uint64

// With returns the set with path i added.
func (s PathSet) With(i int) PathSet { return s | 1<<uint(i) }

// Has reports whether path i is in the set.
func (s PathSet) Has(i int) bool { return s&(1<<uint(i)) != 0 }

// Count returns the number of paths in the set.
func (s PathSet) Count() int {
	n := 0
	for ; s != 0; s &= s - 1 {
		n++
	}
	return n
}

// View is the per-leaf-switch state a Chooser may consult. It is implemented
// by the topology layer.
type View interface {
	// NumPaths returns the number of equal-cost uplinks.
	NumPaths() int
	// QueueBytes returns the local data-class egress backlog of uplink i.
	QueueBytes(i int) int
	// PathDelay estimates the current one-way delay to pkt's destination
	// leaf via uplink i (queueing + propagation along the uplink and the
	// spine hop).
	PathDelay(i int, pkt *fabric.Packet) sim.Time
	// Now returns the current virtual time.
	Now() sim.Time
	// Rng returns this switch's random stream.
	Rng() *rng.Source
}

// Chooser selects an uplink for each data frame. Implementations must honor
// exclude when at least one path remains outside it; with all paths excluded
// they may return any path.
type Chooser interface {
	// Name identifies the scheme ("presto", "letflow", ...).
	Name() string
	// Choose returns the scheme's preferred uplink outside exclude.
	Choose(v View, pkt *fabric.Packet, exclude PathSet) int
}

// Decision is a Policy verdict: either forward on Uplink or recirculate the
// frame through the switch pipeline and decide again later.
type Decision struct {
	Uplink      int
	Recirculate bool
}

// Policy is the full uplink-selection policy installed on a leaf switch.
// Plain schemes never recirculate; RLB (internal/core) wraps a Chooser and
// may.
type Policy interface {
	Pick(v View, pkt *fabric.Packet) Decision
}

// PlainPolicy adapts a bare Chooser into a Policy.
type PlainPolicy struct{ Chooser Chooser }

// Pick implements Policy.
func (p PlainPolicy) Pick(v View, pkt *fabric.Packet) Decision {
	return Decision{Uplink: p.Chooser.Choose(v, pkt, 0)}
}

// Committer is an optional Chooser extension: stateful schemes implement it
// to learn where a packet was actually forwarded when a policy (RLB)
// overrides their choice, keeping their flow state in sync with reality.
type Committer interface {
	Commit(pkt *fabric.Packet, path int)
}

// Factory builds one Chooser instance per leaf switch (schemes keep
// per-switch state).
type Factory func() Chooser

// firstOutside returns start if allowed, else the next index (mod n) outside
// exclude; if everything is excluded it returns start.
func firstOutside(start, n int, exclude PathSet) int {
	for k := 0; k < n; k++ {
		i := (start + k) % n
		if !exclude.Has(i) {
			return i
		}
	}
	return start
}

// hashFlow mixes a flow id into a well-distributed 64-bit value.
func hashFlow(id uint32) uint64 {
	z := uint64(id) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
