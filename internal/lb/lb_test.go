package lb

import (
	"testing"
	"testing/quick"

	"github.com/rlb-project/rlb/internal/fabric"
	"github.com/rlb-project/rlb/internal/rng"
	"github.com/rlb-project/rlb/internal/sim"
)

// fakeView is a scriptable View for unit tests.
type fakeView struct {
	n      int
	queues []int
	delays []sim.Time
	now    sim.Time
	rng    *rng.Source
}

func newFakeView(n int) *fakeView {
	return &fakeView{n: n, queues: make([]int, n), delays: make([]sim.Time, n), rng: rng.New(42)}
}

func (f *fakeView) NumPaths() int                                { return f.n }
func (f *fakeView) QueueBytes(i int) int                         { return f.queues[i] }
func (f *fakeView) PathDelay(i int, pkt *fabric.Packet) sim.Time { return f.delays[i] }
func (f *fakeView) Now() sim.Time                                { return f.now }
func (f *fakeView) Rng() *rng.Source                             { return f.rng }

func dataPkt(flow uint32, seq uint32) *fabric.Packet {
	return fabric.NewData(flow, seq, fabric.DefaultMTU, 0, 1)
}

func TestPathSet(t *testing.T) {
	var s PathSet
	s = s.With(3).With(7)
	if !s.Has(3) || !s.Has(7) || s.Has(0) {
		t.Fatalf("set membership wrong: %b", s)
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d", s.Count())
	}
}

func TestPathSetProperty(t *testing.T) {
	prop := func(idx []uint8) bool {
		var s PathSet
		uniq := map[int]bool{}
		for _, i := range idx {
			p := int(i % 64)
			s = s.With(p)
			uniq[p] = true
		}
		if s.Count() != len(uniq) {
			return false
		}
		for p := range uniq {
			if !s.Has(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestECMPStableAndSpread(t *testing.T) {
	v := newFakeView(8)
	e := NewECMP()()
	if e.Name() != "ecmp" {
		t.Fatal("name")
	}
	// Same flow always maps to the same path.
	p0 := e.Choose(v, dataPkt(1, 0), 0)
	for seq := uint32(1); seq < 100; seq++ {
		if e.Choose(v, dataPkt(1, seq), 0) != p0 {
			t.Fatal("ECMP moved a flow")
		}
	}
	// Many flows spread across paths.
	used := map[int]bool{}
	for f := uint32(0); f < 200; f++ {
		used[e.Choose(v, dataPkt(f, 0), 0)] = true
	}
	if len(used) < 6 {
		t.Fatalf("ECMP spread too narrow: %d/8 paths", len(used))
	}
}

func TestECMPHonorsExclude(t *testing.T) {
	v := newFakeView(4)
	e := NewECMP()()
	for f := uint32(0); f < 50; f++ {
		got := e.Choose(v, dataPkt(f, 0), PathSet(0).With(2))
		if got == 2 {
			t.Fatal("excluded path chosen")
		}
	}
}

func TestPrestoRoundRobinAcrossCells(t *testing.T) {
	v := newFakeView(4)
	p := NewPresto(64*1000, 1000)() // 64 packets per cell
	first := p.Choose(v, dataPkt(1, 0), 0)
	// All packets within the first cell stay put.
	for seq := uint32(1); seq < 64; seq++ {
		if got := p.Choose(v, dataPkt(1, seq), 0); got != first {
			t.Fatalf("cell split at seq %d: %d != %d", seq, got, first)
		}
	}
	// The next cell advances exactly one path.
	if got := p.Choose(v, dataPkt(1, 64), 0); got != (first+1)%4 {
		t.Fatalf("cell 1 on path %d, want %d", got, (first+1)%4)
	}
	if got := p.Choose(v, dataPkt(1, 200), 0); got != (first+3)%4 {
		t.Fatalf("cell 3 on path %d, want %d", got, (first+3)%4)
	}
}

func TestPrestoNewFlowsRotate(t *testing.T) {
	v := newFakeView(4)
	p := NewPresto(64*1000, 1000)()
	a := p.Choose(v, dataPkt(1, 0), 0)
	b := p.Choose(v, dataPkt(2, 0), 0)
	c := p.Choose(v, dataPkt(3, 0), 0)
	if b != (a+1)%4 || c != (a+2)%4 {
		t.Fatalf("flow starts not round-robin: %d %d %d", a, b, c)
	}
}

func TestPrestoExclude(t *testing.T) {
	v := newFakeView(2)
	p := NewPresto(64*1000, 1000)()
	got := p.Choose(v, dataPkt(1, 0), PathSet(0).With(0))
	if got != 1 {
		t.Fatalf("exclude ignored: %d", got)
	}
}

func TestLetFlowKeepsFlowletTogether(t *testing.T) {
	v := newFakeView(8)
	l := NewLetFlow(100 * sim.Microsecond)()
	p0 := l.Choose(v, dataPkt(1, 0), 0)
	for i := 1; i < 50; i++ {
		v.now += sim.Microsecond // gaps well below timeout
		if got := l.Choose(v, dataPkt(1, uint32(i)), 0); got != p0 {
			t.Fatal("flowlet split without gap")
		}
	}
}

func TestLetFlowReroutesAfterGap(t *testing.T) {
	moved := 0
	for trial := 0; trial < 50; trial++ {
		v := newFakeView(8)
		v.rng = rng.New(uint64(trial))
		l := NewLetFlow(100 * sim.Microsecond)()
		p0 := l.Choose(v, dataPkt(1, 0), 0)
		v.now += 200 * sim.Microsecond
		if l.Choose(v, dataPkt(1, 1), 0) != p0 {
			moved++
		}
	}
	// New flowlets pick uniformly at random: ~7/8 of trials move.
	if moved < 25 {
		t.Fatalf("flowlets almost never moved after gap: %d/50", moved)
	}
}

func TestLetFlowExcludeIsHypothetical(t *testing.T) {
	v := newFakeView(2)
	l := NewLetFlow(100 * sim.Microsecond)()
	var ex PathSet
	p0 := l.Choose(v, dataPkt(1, 0), 0)
	ex = ex.With(p0)
	got := l.Choose(v, dataPkt(1, 1), ex)
	if got == p0 {
		t.Fatal("excluded flowlet path returned")
	}
	// The probe must not move the flowlet: the caller (RLB) owns
	// consistency for diverted packets.
	if l.Choose(v, dataPkt(1, 2), 0) != p0 {
		t.Fatal("hypothetical exclusion moved the flowlet")
	}
}

func TestDRILLPrefersShortQueue(t *testing.T) {
	v := newFakeView(8)
	for i := range v.queues {
		v.queues[i] = 100000
	}
	v.queues[5] = 0
	d := NewDRILL(2, 1)()
	counts := map[int]int{}
	for i := 0; i < 500; i++ {
		counts[d.Choose(v, dataPkt(uint32(i), 0), 0)]++
	}
	if counts[5] < 300 {
		t.Fatalf("DRILL rarely found the empty queue: %v", counts)
	}
}

func TestDRILLMemoryConverges(t *testing.T) {
	v := newFakeView(16)
	for i := range v.queues {
		v.queues[i] = 50000
	}
	v.queues[3] = 0
	d := NewDRILL(1, 1)() // with d=1, memory is what finds/keeps the best
	found := 0
	for i := 0; i < 200; i++ {
		if d.Choose(v, dataPkt(uint32(i), 0), 0) == 3 {
			found++
		}
	}
	if found < 50 {
		t.Fatalf("DRILL memory ineffective: %d/200 on best port", found)
	}
}

func TestDRILLExclude(t *testing.T) {
	v := newFakeView(4)
	v.queues[0] = 0
	v.queues[1], v.queues[2], v.queues[3] = 10, 10, 10
	d := NewDRILL(2, 1)()
	ex := PathSet(0).With(0)
	for i := 0; i < 100; i++ {
		if d.Choose(v, dataPkt(uint32(i), 0), ex) == 0 {
			t.Fatal("DRILL chose excluded path")
		}
	}
}

func TestHermesPicksBestInitially(t *testing.T) {
	v := newFakeView(4)
	v.delays = []sim.Time{90 * sim.Microsecond, 5 * sim.Microsecond, 70 * sim.Microsecond, 80 * sim.Microsecond}
	h := NewHermes(1000, 0)()
	if got := h.Choose(v, dataPkt(1, 0), 0); got != 1 {
		t.Fatalf("initial path %d, want 1", got)
	}
}

func TestHermesNoGratuitousRerouting(t *testing.T) {
	v := newFakeView(4)
	v.delays = []sim.Time{5 * sim.Microsecond, 4 * sim.Microsecond, 5 * sim.Microsecond, 5 * sim.Microsecond}
	h := NewHermes(1000, 0)()
	p0 := h.Choose(v, dataPkt(1, 0), 0)
	// All paths healthy: flow must not move even if slightly better exists.
	v.delays[(p0+1)%4] = sim.Microsecond
	for seq := uint32(1); seq < 500; seq++ {
		if h.Choose(v, dataPkt(1, seq), 0) != p0 {
			t.Fatal("Hermes rerouted a healthy flow")
		}
	}
}

func TestHermesDeliberateReroute(t *testing.T) {
	v := newFakeView(4)
	h := NewHermes(1000, 0)()
	p0 := h.Choose(v, dataPkt(1, 0), 0)
	// Current path turns bad; a clearly good alternative exists. The flow
	// must have sent MinBytes (64 KB = 64 packets) first.
	for i := range v.delays {
		v.delays[i] = 200 * sim.Microsecond
	}
	alt := (p0 + 1) % 4
	v.delays[alt] = sim.Microsecond
	early := h.Choose(v, dataPkt(1, 10), 0)
	if early != p0 {
		t.Fatal("Hermes moved before MinBytes progressed")
	}
	late := h.Choose(v, dataPkt(1, 100), 0)
	if late != alt {
		t.Fatalf("Hermes did not take the deliberate reroute: %d want %d", late, alt)
	}
	// And it sticks afterwards.
	if h.Choose(v, dataPkt(1, 101), 0) != alt {
		t.Fatal("Hermes did not stick after moving")
	}
}

func TestHermesNoRerouteWithoutGoodCandidate(t *testing.T) {
	v := newFakeView(4)
	h := NewHermes(1000, 0)()
	p0 := h.Choose(v, dataPkt(1, 0), 0)
	for i := range v.delays {
		v.delays[i] = 200 * sim.Microsecond // everything bad
	}
	if h.Choose(v, dataPkt(1, 100), 0) != p0 {
		t.Fatal("Hermes moved to an equally bad path")
	}
}

func TestHermesExcludeIsHypothetical(t *testing.T) {
	v := newFakeView(4)
	h := NewHermes(1000, 0)()
	p0 := h.Choose(v, dataPkt(1, 0), 0)
	got := h.Choose(v, dataPkt(1, 1), PathSet(0).With(p0))
	if got == p0 {
		t.Fatal("exclusion ignored")
	}
	// Probing must not move the flow.
	if h.Choose(v, dataPkt(1, 2), 0) != p0 {
		t.Fatal("hypothetical exclusion moved the flow")
	}
}

func TestAllChoosersRespectExhaustiveExclusion(t *testing.T) {
	// With every path excluded, choosers must still return a valid index.
	factories := map[string]Factory{
		"ecmp":    NewECMP(),
		"presto":  NewPresto(64*1000, 1000),
		"letflow": NewLetFlow(100 * sim.Microsecond),
		"drill":   NewDRILL(2, 1),
		"hermes":  NewHermes(1000, 0),
	}
	all := PathSet(0)
	for i := 0; i < 4; i++ {
		all = all.With(i)
	}
	for name, f := range factories {
		c := f()
		v := newFakeView(4)
		got := c.Choose(v, dataPkt(1, 0), all)
		if got < 0 || got >= 4 {
			t.Errorf("%s returned invalid path %d under full exclusion", name, got)
		}
	}
}

func TestPlainPolicyNeverRecirculates(t *testing.T) {
	v := newFakeView(4)
	p := PlainPolicy{Chooser: NewECMP()()}
	for f := uint32(0); f < 50; f++ {
		d := p.Pick(v, dataPkt(f, 0))
		if d.Recirculate {
			t.Fatal("plain policy recirculated")
		}
		if d.Uplink < 0 || d.Uplink >= 4 {
			t.Fatalf("invalid uplink %d", d.Uplink)
		}
	}
}

func TestFirstOutside(t *testing.T) {
	if got := firstOutside(2, 4, 0); got != 2 {
		t.Fatalf("no exclusion: %d", got)
	}
	if got := firstOutside(2, 4, PathSet(0).With(2).With(3)); got != 0 {
		t.Fatalf("wraparound: %d", got)
	}
	full := PathSet(0).With(0).With(1).With(2).With(3)
	if got := firstOutside(1, 4, full); got != 1 {
		t.Fatalf("full exclusion should return start: %d", got)
	}
}
