package lb

import "github.com/rlb-project/rlb/internal/fabric"

// ECMP hashes each flow onto one path for its lifetime — the classic
// flow-level baseline that never reorders but cannot react to congestion.
type ECMP struct{}

// NewECMP returns the ECMP chooser factory.
func NewECMP() Factory { return func() Chooser { return ECMP{} } }

// Name implements Chooser.
func (ECMP) Name() string { return "ecmp" }

// Choose implements Chooser.
func (ECMP) Choose(v View, pkt *fabric.Packet, exclude PathSet) int {
	n := v.NumPaths()
	return firstOutside(int(hashFlow(pkt.FlowID)%uint64(n)), n, exclude)
}
