package lb

import "github.com/rlb-project/rlb/internal/fabric"

// DRILL (Ghorbani et al., SIGCOMM 2017) does per-packet micro load
// balancing: each packet samples D random uplinks plus the M best uplinks
// remembered from previous decisions and takes the one with the shortest
// local egress queue. DRILL(2,1) is the paper's configuration.
type DRILL struct {
	// D is the number of random samples per packet.
	D int
	// M is the number of remembered best ports (this implementation keeps 1).
	M int

	lastBest int
	hasBest  bool
}

// NewDRILL returns a DRILL(d, m) factory.
func NewDRILL(d, m int) Factory {
	return func() Chooser { return &DRILL{D: d, M: m} }
}

// Name implements Chooser.
func (d *DRILL) Name() string { return "drill" }

// Choose implements Chooser.
func (d *DRILL) Choose(v View, pkt *fabric.Packet, exclude PathSet) int {
	n := v.NumPaths()
	best, bestQ := -1, 0
	consider := func(i int) {
		if i < 0 || exclude.Has(i) {
			return
		}
		q := v.QueueBytes(i)
		if best == -1 || q < bestQ {
			best, bestQ = i, q
		}
	}
	for k := 0; k < d.D; k++ {
		consider(v.Rng().Intn(n))
	}
	if d.M > 0 && d.hasBest {
		consider(d.lastBest)
	}
	if best == -1 {
		// Every sampled path excluded: scan for any allowed one.
		best = firstOutside(v.Rng().Intn(n), n, exclude)
	}
	d.lastBest, d.hasBest = best, true
	return best
}
