package lb

import (
	"github.com/rlb-project/rlb/internal/fabric"
	"github.com/rlb-project/rlb/internal/flatmap"
	"github.com/rlb-project/rlb/internal/sim"
)

// Hermes (Zhang et al., SIGCOMM 2017) is congestion-aware and cautious: it
// senses path conditions and reroutes a flow only when the move is
// "deliberate" — the current path is sensed congested, a clearly better path
// exists, and the flow has sent enough since its last move that reordering
// risk is low. This implementation senses paths through View.PathDelay (an
// idealized-freshness stand-in for Hermes' end-to-end ECN/RTT telemetry; see
// DESIGN.md), which the paper argues still cannot expose hop-by-hop PFC
// pausing in time.
type Hermes struct {
	// DelayGood and DelayBad classify a path by queueing delay above the
	// base propagation floor.
	DelayGood sim.Time
	DelayBad  sim.Time
	// Gain is the minimum delay improvement that justifies a reroute.
	Gain sim.Time
	// MinBytes is the minimum bytes a flow sends between reroutes.
	MinBytes int
	// MTU converts sequence numbers to byte offsets.
	MTU int

	// flows stores per-flow path state inline in a flat open-addressed
	// table (see internal/flatmap): no per-flow heap entry, one probe per
	// packet.
	flows flatmap.U32[hermesFlow]
}

type hermesFlow struct {
	path        int
	lastMoveSeq uint32
	started     bool
}

// HermesDefaults returns thresholds scaled to the given base one-way delay.
func HermesDefaults(mtu int) Factory { return NewHermes(mtu, 0) }

// NewHermes returns a Hermes factory. base is the no-load PathDelay floor
// used to scale the good/bad thresholds; pass 0 to use absolute defaults.
func NewHermes(mtu int, base sim.Time) Factory {
	return func() Chooser {
		return &Hermes{
			DelayGood: base + 10*sim.Microsecond,
			DelayBad:  base + 40*sim.Microsecond,
			Gain:      8 * sim.Microsecond,
			MinBytes:  64 * 1000,
			MTU:       mtu,
		}
	}
}

// Name implements Chooser.
func (h *Hermes) Name() string { return "hermes" }

// Choose implements Chooser.
func (h *Hermes) Choose(v View, pkt *fabric.Packet, exclude PathSet) int {
	st := h.flows.Ptr(pkt.FlowID)
	if st == nil {
		st = h.flows.Upsert(pkt.FlowID)
	}
	if !st.started {
		st.started = true
		st.path = h.bestPath(v, pkt, exclude)
		st.lastMoveSeq = pkt.Seq
		return st.path
	}
	cur := st.path
	if exclude.Has(cur) {
		// Caller veto (RLB probing for the suboptimal path): answer with the
		// best allowed path but do not move the flow — the caller's sticky
		// diversion owns consistency if it forwards there (see
		// core.Agent.Pick). Mutating here would desynchronize the flow state
		// from where packets actually went.
		return h.bestPath(v, pkt, exclude)
	}
	curDelay := v.PathDelay(cur, pkt)
	if curDelay < h.DelayBad {
		return cur // path still acceptable: no gratuitous rerouting
	}
	// Flow must have progressed enough since the last move.
	if int(pkt.Seq-st.lastMoveSeq)*h.MTU < h.MinBytes {
		return cur
	}
	cand := h.bestPath(v, pkt, exclude.With(cur))
	if cand == cur {
		return cur
	}
	candDelay := v.PathDelay(cand, pkt)
	// Deliberate rerouting: only move for a clear, sensed gain to a path
	// that is actually in good condition.
	if candDelay <= h.DelayGood && curDelay-candDelay > h.Gain {
		st.path = cand
		st.lastMoveSeq = pkt.Seq
	}
	return st.path
}

// Commit implements Committer: when RLB forwards a packet somewhere other
// than the flow's recorded path, move the flow state there so subsequent
// sensing and hysteresis operate on reality.
func (h *Hermes) Commit(pkt *fabric.Packet, path int) {
	st := h.flows.Ptr(pkt.FlowID)
	if st == nil || !st.started || st.path == path {
		return
	}
	st.path = path
	st.lastMoveSeq = pkt.Seq
}

func (h *Hermes) bestPath(v View, pkt *fabric.Packet, exclude PathSet) int {
	n := v.NumPaths()
	best, ok := 0, false
	var bestD sim.Time
	for i := 0; i < n; i++ {
		if exclude.Has(i) {
			continue
		}
		d := v.PathDelay(i, pkt)
		if !ok || d < bestD {
			best, bestD, ok = i, d, true
		}
	}
	if !ok {
		return v.Rng().Intn(n)
	}
	return best
}
