package lb

import (
	"github.com/rlb-project/rlb/internal/fabric"
	"github.com/rlb-project/rlb/internal/flatmap"
	"github.com/rlb-project/rlb/internal/sim"
)

// LetFlow (Vanini et al., NSDI 2017) switches paths at flowlet boundaries: a
// packet arriving more than Gap after its flow's previous packet starts a new
// flowlet, which picks a uniformly random path. Congested paths slow down and
// naturally shed flowlets — LetFlow needs no explicit congestion signal.
type LetFlow struct {
	// Gap is the flowlet inactivity timeout.
	Gap sim.Time

	// table stores flowlet state inline in a flat open-addressed table —
	// no per-flow heap entry and no pointer chase on the per-packet path,
	// the way a real switch's flowlet table is a fixed array of slots.
	table flatmap.U32[flowlet]
}

type flowlet struct {
	path     int
	lastSeen sim.Time
}

// Commit implements Committer: an override moves the flowlet with it.
func (l *LetFlow) Commit(pkt *fabric.Packet, path int) {
	if fl := l.table.Ptr(pkt.FlowID); fl != nil {
		fl.path = path
	}
}

// NewLetFlow returns a LetFlow factory with the given flowlet gap.
func NewLetFlow(gap sim.Time) Factory {
	return func() Chooser { return &LetFlow{Gap: gap} }
}

// Name implements Chooser.
func (l *LetFlow) Name() string { return "letflow" }

// Choose implements Chooser.
func (l *LetFlow) Choose(v View, pkt *fabric.Packet, exclude PathSet) int {
	now := v.Now()
	n := v.NumPaths()
	fl := l.table.Ptr(pkt.FlowID)
	if fl == nil {
		fl = l.table.Upsert(pkt.FlowID)
		fl.path = v.Rng().Intn(n)
	} else if now-fl.lastSeen > l.Gap {
		fl.path = v.Rng().Intn(n)
	}
	fl.lastSeen = now
	if exclude.Has(fl.path) {
		// Caller veto (RLB probing): answer with an allowed path without
		// committing the flowlet — the caller's sticky diversion keeps
		// subsequent packets consistent if it forwards there.
		return firstOutside(v.Rng().Intn(n), n, exclude)
	}
	return fl.path
}
