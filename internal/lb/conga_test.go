package lb

import (
	"testing"

	"github.com/rlb-project/rlb/internal/sim"
)

func TestCONGAPicksLeastCongested(t *testing.T) {
	v := newFakeView(4)
	v.delays = []sim.Time{50 * sim.Microsecond, 3 * sim.Microsecond, 60 * sim.Microsecond, 70 * sim.Microsecond}
	c := NewCONGA(100 * sim.Microsecond)()
	if got := c.Choose(v, dataPkt(1, 0), 0); got != 1 {
		t.Fatalf("picked %d, want least-congested 1", got)
	}
}

func TestCONGAFlowletPinned(t *testing.T) {
	v := newFakeView(4)
	c := NewCONGA(100 * sim.Microsecond)()
	p0 := c.Choose(v, dataPkt(1, 0), 0)
	// Conditions invert, but within the flowlet the path must not move.
	for i := range v.delays {
		v.delays[i] = 90 * sim.Microsecond
	}
	v.delays[(p0+1)%4] = sim.Microsecond
	v.now += 10 * sim.Microsecond
	if c.Choose(v, dataPkt(1, 1), 0) != p0 {
		t.Fatal("flowlet moved mid-stream")
	}
}

func TestCONGARebalancesAtFlowletBoundary(t *testing.T) {
	v := newFakeView(4)
	c := NewCONGA(100 * sim.Microsecond)()
	p0 := c.Choose(v, dataPkt(1, 0), 0)
	for i := range v.delays {
		v.delays[i] = 90 * sim.Microsecond
	}
	best := (p0 + 2) % 4
	v.delays[best] = sim.Microsecond
	v.now += 200 * sim.Microsecond // flowlet gap expired
	if got := c.Choose(v, dataPkt(1, 1), 0); got != best {
		t.Fatalf("flowlet boundary picked %d, want %d", got, best)
	}
}

func TestCONGATieBreakSpreads(t *testing.T) {
	v := newFakeView(8) // all delays equal
	c := NewCONGA(100 * sim.Microsecond)()
	used := map[int]bool{}
	for f := uint32(0); f < 200; f++ {
		used[c.Choose(v, dataPkt(f, 0), 0)] = true
	}
	if len(used) < 5 {
		t.Fatalf("ties collapse onto %d/8 paths", len(used))
	}
}

func TestCONGAExcludeHypothetical(t *testing.T) {
	v := newFakeView(4)
	c := NewCONGA(100 * sim.Microsecond)()
	p0 := c.Choose(v, dataPkt(1, 0), 0)
	got := c.Choose(v, dataPkt(1, 1), PathSet(0).With(p0))
	if got == p0 {
		t.Fatal("excluded path returned")
	}
	if c.Choose(v, dataPkt(1, 2), 0) != p0 {
		t.Fatal("probe moved the flowlet")
	}
}

func TestCONGACommit(t *testing.T) {
	v := newFakeView(4)
	c := NewCONGA(100 * sim.Microsecond)().(*CONGA)
	p0 := c.Choose(v, dataPkt(1, 0), 0)
	np := (p0 + 1) % 4
	c.Commit(dataPkt(1, 1), np)
	if c.Choose(v, dataPkt(1, 2), 0) != np {
		t.Fatal("commit ignored")
	}
	c.Commit(dataPkt(77, 0), 0) // unknown flow: no-op
}
