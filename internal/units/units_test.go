package units

import (
	"testing"
	"testing/quick"

	"github.com/rlb-project/rlb/internal/sim"
)

func TestTxTimeExact(t *testing.T) {
	// 1000 bytes at 40 Gb/s = 8000 bits / 40e9 bps = 200 ns exactly.
	if got := TxTime(1000, 40*Gbps); got != 200*sim.Nanosecond {
		t.Fatalf("TxTime(1000B, 40Gbps) = %v, want 200ns", got)
	}
	// 64 bytes at 10 Gb/s = 512 / 1e10 s = 51.2 ns.
	if got := TxTime(64, 10*Gbps); got != 51200*sim.Picosecond {
		t.Fatalf("TxTime(64B, 10Gbps) = %v, want 51.2ns", got)
	}
}

func TestTxTimeLargeNoOverflow(t *testing.T) {
	// 250 MB at 40 Gb/s = 2e9 bits / 4e10 = 50 ms.
	if got := TxTime(250*MB, 40*Gbps); got != 50*sim.Millisecond {
		t.Fatalf("TxTime(250MB, 40Gbps) = %v, want 50ms", got)
	}
}

func TestTxTimePanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero bandwidth")
		}
	}()
	TxTime(100, 0)
}

func TestBytesInRoundTrip(t *testing.T) {
	// BytesIn inverts TxTime for exact cases.
	prop := func(kb uint16, gb uint8) bool {
		bytes := int(kb)*KB + 1
		rate := Bandwidth(int(gb)%100+1) * Gbps
		d := TxTime(bytes, rate)
		got := BytesIn(rate, d)
		// Truncation may lose at most one byte.
		return got == bytes || got == bytes-1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesInNegative(t *testing.T) {
	if got := BytesIn(40*Gbps, -5); got != 0 {
		t.Fatalf("BytesIn negative duration = %d, want 0", got)
	}
}

func TestBandwidthString(t *testing.T) {
	cases := []struct {
		in   Bandwidth
		want string
	}{
		{40 * Gbps, "40Gbps"},
		{100 * Mbps, "100Mbps"},
		{5 * Kbps, "5Kbps"},
		{12 * BitPerSecond, "12bps"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTxTimeMonotonicInSize(t *testing.T) {
	prev := sim.Time(0)
	for size := 1; size < 100000; size += 97 {
		cur := TxTime(size, 25*Gbps)
		if cur < prev {
			t.Fatalf("TxTime not monotonic at %d bytes", size)
		}
		prev = cur
	}
}
