// Package units defines bandwidth and size types shared across the simulator,
// and the arithmetic between them (serialization time, bytes-per-interval).
package units

import (
	"fmt"
	"math/bits"

	"github.com/rlb-project/rlb/internal/sim"
)

// Bandwidth is a link or sending rate in bits per second.
type Bandwidth int64

// Common rates.
const (
	BitPerSecond Bandwidth = 1
	Kbps                   = 1000 * BitPerSecond
	Mbps                   = 1000 * Kbps
	Gbps                   = 1000 * Mbps
)

// String formats the bandwidth with an adaptive unit.
func (b Bandwidth) String() string {
	switch {
	case b >= Gbps:
		return fmt.Sprintf("%gGbps", float64(b)/float64(Gbps))
	case b >= Mbps:
		return fmt.Sprintf("%gMbps", float64(b)/float64(Mbps))
	case b >= Kbps:
		return fmt.Sprintf("%gKbps", float64(b)/float64(Kbps))
	default:
		return fmt.Sprintf("%dbps", int64(b))
	}
}

// Common byte sizes.
const (
	Byte = 1
	KB   = 1000 * Byte
	MB   = 1000 * KB
	KiB  = 1024 * Byte
	MiB  = 1024 * KiB
)

// TxTime returns the time to serialize bytes onto a link of rate b.
// Computed in picoseconds without floating point: ps = bytes*8*1e12/bps.
func TxTime(bytes int, b Bandwidth) sim.Time {
	if b <= 0 {
		panic("units: non-positive bandwidth")
	}
	// ps = bytes*8 * 1e12 / bps; the product exceeds 64 bits for large
	// transfers, so use a 128-bit intermediate.
	hi, lo := bits.Mul64(uint64(bytes)*8, 1e12)
	q, _ := bits.Div64(hi, lo, uint64(b))
	return sim.Time(q)
}

// BytesIn returns how many whole bytes rate b delivers in duration d.
func BytesIn(b Bandwidth, d sim.Time) int {
	if d < 0 || b <= 0 {
		return 0
	}
	// bytes = bps * ps / 8e12; the product can exceed 64 bits, so use a
	// 128-bit intermediate.
	hi, lo := bits.Mul64(uint64(b), uint64(d))
	q, _ := bits.Div64(hi, lo, 8e12)
	return int(q)
}
