package workload

import (
	"testing"

	"github.com/rlb-project/rlb/internal/rng"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/units"
)

func TestAllDistributionsValid(t *testing.T) {
	for _, d := range All() {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestValidateCatchesBadCDFs(t *testing.T) {
	bad := []*SizeDist{
		{Name: "short", Sizes: []int{10}, Probs: []float64{1}},
		{Name: "mismatch", Sizes: []int{10, 20}, Probs: []float64{1}},
		{Name: "nonmono-size", Sizes: []int{20, 10}, Probs: []float64{0, 1}},
		{Name: "nonmono-prob", Sizes: []int{10, 20}, Probs: []float64{0.5, 0.2}},
		{Name: "no-one", Sizes: []int{10, 20}, Probs: []float64{0, 0.9}},
	}
	for _, d := range bad {
		if d.Validate() == nil {
			t.Errorf("%s: invalid CDF accepted", d.Name)
		}
	}
}

func TestSampleWithinSupport(t *testing.T) {
	r := rng.New(1)
	for _, d := range All() {
		lo, hi := d.Sizes[0], d.MaxSize()
		for i := 0; i < 10000; i++ {
			s := d.Sample(r)
			if s < lo || s > hi {
				t.Fatalf("%s: sample %d outside [%d, %d]", d.Name, s, lo, hi)
			}
		}
	}
}

// The coarse sampler-mean check formerly here grew into the statistical
// suite in stats_test.go (mean, percentiles, FracBelow, MeanCapped).

func TestPaperHeadlineStatistics(t *testing.T) {
	// Web Search mean ~1.6 MB (paper §2.2.1 uses "average flow size 1.6MB").
	ws := WebSearch()
	if m := ws.Mean(); m < 1.0e6 || m > 2.5e6 {
		t.Errorf("websearch mean %.0f outside [1MB, 2.5MB]", m)
	}
	// Data Mining: 83%% of flows smaller than 100 KB, heavy tail to ~1 GB.
	dm := DataMining()
	if f := dm.FracBelow(100 * 1000); f < 0.80 || f > 0.90 {
		t.Errorf("datamining P(<100KB) = %.2f, want ~0.83", f)
	}
	if dm.MaxSize() < 100e6 {
		t.Error("datamining tail too short")
	}
	// Web Server: all flows < 1 MB.
	wsrv := WebServer()
	if wsrv.MaxSize() > 1000*1000 {
		t.Errorf("webserver max %d > 1MB", wsrv.MaxSize())
	}
	// Paper: average flow sizes across workloads range 64 KB ... 7.41 MB.
	for _, d := range All() {
		if m := d.Mean(); m < 30e3 || m > 10e6 {
			t.Errorf("%s mean %.0f outside plausible range", d.Name, m)
		}
	}
}

func TestFracBelowEdges(t *testing.T) {
	d := WebSearch()
	if d.FracBelow(0) != 0 {
		t.Fatal("FracBelow(0) != 0")
	}
	if d.FracBelow(d.MaxSize()+1) != 1 {
		t.Fatal("FracBelow(max+1) != 1")
	}
	mid := d.FracBelow(133000)
	if mid < 0.59 || mid > 0.61 {
		t.Fatalf("FracBelow(133KB) = %v, want 0.6", mid)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"websearch", "datamining", "webserver", "cachefollower"} {
		d, err := ByName(name)
		if err != nil || d.Name != name {
			t.Errorf("ByName(%s) = %v, %v", name, d, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestPoissonLoadCalibration(t *testing.T) {
	eng := sim.NewEngine()
	var flows []int
	bytes := 0
	p := &Poisson{
		Eng:      eng,
		Rng:      rng.New(7),
		Dist:     WebServer(),
		Hosts:    []int{0, 1, 2, 3, 4, 5, 6, 7},
		Load:     0.5,
		LineRate: 10 * units.Gbps,
		Start: func(src, dst, size int) {
			flows = append(flows, size)
			bytes += size
		},
	}
	dur := 100 * sim.Millisecond
	p.Run(dur)
	eng.Run()
	if p.Generated == 0 {
		t.Fatal("no flows generated")
	}
	// Offered bits should be ~ load * rate * hosts * time.
	want := 0.5 * 10e9 * 8 * 0.1 / 8 // bytes
	got := float64(bytes)
	if got < 0.7*want || got > 1.3*want {
		t.Fatalf("offered bytes %.3g, want ~%.3g", got, want)
	}
}

func TestPoissonInterLeafOnly(t *testing.T) {
	eng := sim.NewEngine()
	p := &Poisson{
		Eng:           eng,
		Rng:           rng.New(9),
		Dist:          WebServer(),
		Hosts:         []int{0, 1, 2, 3, 4, 5, 6, 7},
		HostsPerLeaf:  4,
		InterLeafOnly: true,
		Load:          0.3,
		LineRate:      10 * units.Gbps,
		Start: func(src, dst, size int) {
			if src/4 == dst/4 {
				t.Errorf("intra-leaf pair %d->%d generated", src, dst)
			}
		},
	}
	p.Run(20 * sim.Millisecond)
	eng.Run()
}

func TestPoissonRespectsDuration(t *testing.T) {
	eng := sim.NewEngine()
	var last sim.Time
	p := &Poisson{
		Eng: eng, Rng: rng.New(3), Dist: WebServer(),
		Hosts: []int{0, 1}, Load: 0.4, LineRate: 10 * units.Gbps,
		Start: func(_, _, _ int) { last = eng.Now() },
	}
	p.Run(5 * sim.Millisecond)
	eng.Run()
	if last > 5*sim.Millisecond {
		t.Fatalf("flow generated at %v, past duration", last)
	}
}

func TestIncastSplitsResponse(t *testing.T) {
	var starts [][3]int
	start := func(src, dst, size int) { starts = append(starts, [3]int{src, dst, size}) }
	Incast(start, 0, []int{1, 2, 3, 4}, 4_000_000)
	if len(starts) != 4 {
		t.Fatalf("%d flows, want 4", len(starts))
	}
	for _, s := range starts {
		if s[1] != 0 || s[2] != 1_000_000 {
			t.Fatalf("bad incast flow %v", s)
		}
	}
}

func TestIncastSkipsClientAsServer(t *testing.T) {
	var n int
	Incast(func(_, _, _ int) { n++ }, 3, []int{1, 2, 3}, 300)
	if n != 2 {
		t.Fatalf("client acted as server: %d flows", n)
	}
}

func TestBurstsSchedule(t *testing.T) {
	eng := sim.NewEngine()
	type ev struct {
		at   sim.Time
		src  int
		size int
	}
	var evs []ev
	start := func(src, dst, size int) { evs = append(evs, ev{eng.Now(), src, size}) }
	Bursts(eng, start, []int{5, 6}, 0, 3, 64*1000, 2, sim.Millisecond)
	eng.Run()
	if len(evs) != 12 { // 2 bursts x 2 hosts x 3 flows
		t.Fatalf("%d flows, want 12", len(evs))
	}
	if evs[0].at != 0 || evs[11].at != sim.Millisecond {
		t.Fatalf("burst times wrong: first %v last %v", evs[0].at, evs[11].at)
	}
	for _, e := range evs {
		if e.size != 64*1000 {
			t.Fatal("burst size wrong")
		}
	}
}

func TestMeanCapped(t *testing.T) {
	d := DataMining()
	full := d.Mean()
	if got := d.MeanCapped(0); got != full {
		t.Fatalf("cap 0 should mean uncapped: %v vs %v", got, full)
	}
	if got := d.MeanCapped(d.MaxSize() + 1); got != full {
		t.Fatal("cap beyond max should equal full mean")
	}
	capped := d.MeanCapped(2_000_000)
	if capped >= full {
		t.Fatalf("capped mean %v not below full %v", capped, full)
	}
	// Monotone in the cap.
	prev := 0.0
	for _, c := range []int{1000, 10_000, 100_000, 1_000_000, 100_000_000} {
		m := d.MeanCapped(c)
		if m < prev {
			t.Fatalf("MeanCapped not monotone at %d", c)
		}
		prev = m
	}
	// Agreement with Monte Carlo.
	r := rng.New(5)
	const n = 300000
	sum := 0.0
	for i := 0; i < n; i++ {
		s := d.Sample(r)
		if s > 2_000_000 {
			s = 2_000_000
		}
		sum += float64(s)
	}
	mc := sum / n
	if capped < 0.9*mc || capped > 1.1*mc {
		t.Fatalf("MeanCapped %v vs Monte Carlo %v", capped, mc)
	}
}

func TestPoissonCapCalibration(t *testing.T) {
	eng := sim.NewEngine()
	bytes := 0
	p := &Poisson{
		Eng: eng, Rng: rng.New(12), Dist: DataMining(),
		Hosts: []int{0, 1, 2, 3}, Load: 0.5, LineRate: 10 * units.Gbps,
		CapBytes: 2_000_000,
		Start:    func(_, _, size int) { bytes += size },
	}
	dur := 200 * sim.Millisecond
	p.Run(dur)
	eng.Run()
	want := 0.5 * 10e9 * 4 * 0.2 / 8 // offered bytes at nominal load
	got := float64(bytes)
	if got < 0.7*want || got > 1.3*want {
		t.Fatalf("capped datamining offered %.3g bytes, want ~%.3g", got, want)
	}
}
