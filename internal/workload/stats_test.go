package workload

import (
	"math"
	"sort"
	"testing"

	"github.com/rlb-project/rlb/internal/rng"
)

// analyticQuantile inverts the piecewise-linear CDF with the same
// interpolation Sample uses, so the statistical tests compare the sampler
// against the distribution it claims to draw from, not a re-derivation.
func analyticQuantile(d *SizeDist, u float64) float64 {
	i := sort.SearchFloat64s(d.Probs, u)
	if i == 0 {
		return float64(d.Sizes[0])
	}
	if i >= len(d.Probs) {
		return float64(d.Sizes[len(d.Sizes)-1])
	}
	p0, p1 := d.Probs[i-1], d.Probs[i]
	s0, s1 := d.Sizes[i-1], d.Sizes[i]
	if p1 == p0 {
		return float64(s1)
	}
	frac := (u - p0) / (p1 - p0)
	return float64(s0) + frac*float64(s1-s0)
}

// drawSorted draws n samples from d and returns them sorted ascending.
func drawSorted(d *SizeDist, seed uint64, n int) []int {
	r := rng.New(seed)
	samples := make([]int, n)
	for i := range samples {
		samples[i] = d.Sample(r)
	}
	sort.Ints(samples)
	return samples
}

// TestSampleMeanMatchesAnalytic draws 200k flows from each of the four
// workloads with a fixed seed and requires the empirical mean within 5% of
// the analytic Mean(). The tolerance is sized for the heaviest tail (Data
// Mining puts 0.5% of flows between 150 MB and 1 GB, so its sample mean is
// by far the noisiest); the run is deterministic, the margin exists so the
// assertion survives RNG algorithm changes, not re-runs.
func TestSampleMeanMatchesAnalytic(t *testing.T) {
	const n = 200_000
	for i, d := range All() {
		d := d
		seed := uint64(7 + i)
		t.Run(d.Name, func(t *testing.T) {
			r := rng.New(seed)
			var sum float64
			for j := 0; j < n; j++ {
				sum += float64(d.Sample(r))
			}
			got, want := sum/n, d.Mean()
			if rel := math.Abs(got-want) / want; rel > 0.05 {
				t.Fatalf("sample mean %.0f vs analytic %.0f: %.1f%% off", got, want, 100*rel)
			}
		})
	}
}

// TestSamplePercentilesMatchAnalytic checks the empirical p10/p25/p50/p75/
// p90/p99 of 200k draws against the analytic quantiles for all four
// workloads. Tolerance is 5% relative plus a small absolute slack for the
// sub-kilobyte quantiles, where one CDF segment spans only a few hundred
// bytes.
func TestSamplePercentilesMatchAnalytic(t *testing.T) {
	const n = 200_000
	percentiles := []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.99}
	for i, d := range All() {
		d := d
		seed := uint64(70 + i)
		t.Run(d.Name, func(t *testing.T) {
			samples := drawSorted(d, seed, n)
			for _, p := range percentiles {
				idx := int(p * float64(n))
				if idx >= n {
					idx = n - 1
				}
				got := float64(samples[idx])
				want := analyticQuantile(d, p)
				slack := 0.05*want + 50
				if math.Abs(got-want) > slack {
					t.Errorf("p%.0f = %.0f, analytic %.0f (slack %.0f)", 100*p, got, want, slack)
				}
			}
		})
	}
}

// TestSampleAgreesWithFracBelow cross-checks the sampler against the
// forward CDF: the fraction of draws at or below s must match FracBelow(s)
// within one percentage point, at every CDF knot and at segment midpoints.
func TestSampleAgreesWithFracBelow(t *testing.T) {
	const n = 200_000
	for i, d := range All() {
		d := d
		seed := uint64(700 + i)
		t.Run(d.Name, func(t *testing.T) {
			samples := drawSorted(d, seed, n)
			var probes []int
			for j, s := range d.Sizes {
				probes = append(probes, s)
				if j+1 < len(d.Sizes) {
					probes = append(probes, (s+d.Sizes[j+1])/2)
				}
			}
			for _, s := range probes {
				got := float64(sort.SearchInts(samples, s+1)) / n
				want := d.FracBelow(s)
				if math.Abs(got-want) > 0.01 {
					t.Errorf("P(size <= %d) = %.4f, analytic %.4f", s, got, want)
				}
			}
		})
	}
}

// TestSampleMeanCapped cross-checks MeanCapped — the quantity load
// calibration actually uses — against capped draws, at a cap that truncates
// each workload's tail (a quarter of its max size).
func TestSampleMeanCapped(t *testing.T) {
	const n = 200_000
	for i, d := range All() {
		d := d
		seed := uint64(7000 + i)
		t.Run(d.Name, func(t *testing.T) {
			cap := d.MaxSize() / 4
			r := rng.New(seed)
			var sum float64
			for j := 0; j < n; j++ {
				sum += float64(min(d.Sample(r), cap))
			}
			got, want := sum/n, d.MeanCapped(cap)
			if rel := math.Abs(got-want) / want; rel > 0.03 {
				t.Fatalf("capped sample mean %.0f vs analytic %.0f: %.1f%% off", got, want, 100*rel)
			}
		})
	}
}
