package workload

import (
	"github.com/rlb-project/rlb/internal/rng"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/units"
)

// StartFunc is how generators inject flows into a network.
type StartFunc func(src, dst, size int)

// Poisson generates flows between random host pairs with exponential
// inter-arrival times calibrated so the aggregate offered traffic equals
// Load x LineRate x |Hosts| (the paper's load definition, varied 0.2-0.7).
type Poisson struct {
	Eng  *sim.Engine
	Rng  *rng.Source
	Dist *SizeDist
	// Hosts are the candidate endpoints.
	Hosts []int
	// HostsPerLeaf, with InterLeafOnly, restricts pairs to distinct leaves
	// so all generated traffic crosses the network core.
	HostsPerLeaf  int
	InterLeafOnly bool
	Load          float64
	LineRate      units.Bandwidth
	Start         StartFunc
	// CapBytes truncates sampled sizes and recalibrates the arrival rate to
	// the truncated mean, keeping the offered load at its nominal value.
	CapBytes int

	// Generated counts flows injected.
	Generated int

	stopAt sim.Time
}

// Run schedules arrivals from now until now+duration.
func (p *Poisson) Run(duration sim.Time) {
	if p.Load <= 0 || len(p.Hosts) < 2 {
		return
	}
	p.stopAt = p.Eng.Now() + duration
	p.scheduleNext()
}

// lambda returns arrivals per second.
func (p *Poisson) lambda() float64 {
	bitsPerSec := p.Load * float64(p.LineRate) * float64(len(p.Hosts))
	return bitsPerSec / (8 * p.Dist.MeanCapped(p.CapBytes))
}

func (p *Poisson) scheduleNext() {
	gapSec := p.Rng.ExpFloat64() / p.lambda()
	gap := sim.Time(gapSec * float64(sim.Second))
	if gap < sim.Nanosecond {
		gap = sim.Nanosecond
	}
	at := p.Eng.Now() + gap
	if at >= p.stopAt {
		return
	}
	p.Eng.At(at, func() {
		src, dst := p.pickPair()
		p.Generated++
		size := p.Dist.Sample(p.Rng)
		if p.CapBytes > 0 && size > p.CapBytes {
			size = p.CapBytes
		}
		p.Start(src, dst, size)
		p.scheduleNext()
	})
}

func (p *Poisson) pickPair() (src, dst int) {
	for tries := 0; ; tries++ {
		src = p.Hosts[p.Rng.Intn(len(p.Hosts))]
		dst = p.Hosts[p.Rng.Intn(len(p.Hosts))]
		if src == dst {
			continue
		}
		if p.InterLeafOnly && p.HostsPerLeaf > 0 && src/p.HostsPerLeaf == dst/p.HostsPerLeaf && tries < 64 {
			continue
		}
		return src, dst
	}
}

// Incast makes every server send totalBytes/len(servers) to client
// simultaneously — one incast initiation of §4.3.
func Incast(start StartFunc, client int, servers []int, totalBytes int) {
	if len(servers) == 0 {
		return
	}
	per := totalBytes / len(servers)
	if per < 1 {
		per = 1
	}
	for _, s := range servers {
		if s == client {
			continue
		}
		start(s, client, per)
	}
}

// Bursts reproduces the Fig. 2 burst pattern: at times i*gap (i <
// numBursts), every host in hosts starts flowsPerBurst flows of flowSize
// bytes to target, at line rate.
func Bursts(eng *sim.Engine, start StartFunc, hosts []int, target int, flowsPerBurst, flowSize, numBursts int, gap sim.Time) {
	for i := 0; i < numBursts; i++ {
		at := eng.Now() + sim.Time(i)*gap
		eng.At(at, func() {
			for _, h := range hosts {
				for k := 0; k < flowsPerBurst; k++ {
					start(h, target, flowSize)
				}
			}
		})
	}
}
