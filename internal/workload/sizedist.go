// Package workload generates the paper's traffic: flows with empirical size
// distributions from four production workloads (Web Server, Cache Follower,
// Web Search, Data Mining), Poisson arrival processes at a target load,
// incast request/response patterns, and the burst scenario of Fig. 2.
package workload

import (
	"fmt"
	"sort"
	"strings"

	"github.com/rlb-project/rlb/internal/rng"
)

// SizeDist is a piecewise-linear empirical CDF over flow sizes in bytes,
// the standard encoding used by NS-3 evaluation scripts.
type SizeDist struct {
	// Name labels the workload.
	Name string
	// Sizes and Probs are the CDF knots: P(size <= Sizes[i]) = Probs[i].
	// Probs must be non-decreasing and end at 1.
	Sizes []int
	Probs []float64
}

// Validate checks the CDF invariants.
func (d *SizeDist) Validate() error {
	if len(d.Sizes) != len(d.Probs) || len(d.Sizes) < 2 {
		return fmt.Errorf("workload %s: need >= 2 matching knots", d.Name)
	}
	for i := 1; i < len(d.Sizes); i++ {
		if d.Sizes[i] <= d.Sizes[i-1] {
			return fmt.Errorf("workload %s: sizes not increasing at %d", d.Name, i)
		}
		if d.Probs[i] < d.Probs[i-1] {
			return fmt.Errorf("workload %s: probs decreasing at %d", d.Name, i)
		}
	}
	if d.Probs[len(d.Probs)-1] != 1 {
		return fmt.Errorf("workload %s: CDF does not end at 1", d.Name)
	}
	return nil
}

// Sample draws one flow size.
func (d *SizeDist) Sample(r *rng.Source) int {
	u := r.Float64()
	i := sort.SearchFloat64s(d.Probs, u)
	if i == 0 {
		return d.Sizes[0]
	}
	if i >= len(d.Probs) {
		return d.Sizes[len(d.Sizes)-1]
	}
	p0, p1 := d.Probs[i-1], d.Probs[i]
	s0, s1 := d.Sizes[i-1], d.Sizes[i]
	if p1 == p0 {
		return s1
	}
	frac := (u - p0) / (p1 - p0)
	return s0 + int(frac*float64(s1-s0))
}

// Mean returns the distribution's expected flow size in bytes.
func (d *SizeDist) Mean() float64 {
	mean := d.Probs[0] * float64(d.Sizes[0])
	for i := 1; i < len(d.Sizes); i++ {
		mean += (d.Probs[i] - d.Probs[i-1]) * float64(d.Sizes[i-1]+d.Sizes[i]) / 2
	}
	return mean
}

// MaxSize returns the largest possible flow.
func (d *SizeDist) MaxSize() int { return d.Sizes[len(d.Sizes)-1] }

// MeanCapped returns E[min(size, cap)] — the effective mean when flows are
// truncated at cap bytes (scaled-down runs cap elephants; load calibration
// must use this mean or heavy-tailed workloads run far below nominal load).
func (d *SizeDist) MeanCapped(cap int) float64 {
	if cap <= 0 || cap >= d.MaxSize() {
		return d.Mean()
	}
	mean := d.Probs[0] * float64(min(d.Sizes[0], cap))
	for i := 1; i < len(d.Sizes); i++ {
		dp := d.Probs[i] - d.Probs[i-1]
		lo, hi := d.Sizes[i-1], d.Sizes[i]
		switch {
		case hi <= cap:
			mean += dp * float64(lo+hi) / 2
		case lo >= cap:
			mean += dp * float64(cap)
		default:
			// The segment straddles the cap: below-cap part contributes its
			// own average, the rest contributes cap.
			fracBelow := float64(cap-lo) / float64(hi-lo)
			mean += dp * fracBelow * float64(lo+cap) / 2
			mean += dp * (1 - fracBelow) * float64(cap)
		}
	}
	return mean
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// FracBelow returns P(size <= s).
func (d *SizeDist) FracBelow(s int) float64 {
	if s <= d.Sizes[0] {
		return d.Probs[0]
	}
	for i := 1; i < len(d.Sizes); i++ {
		if s <= d.Sizes[i] {
			frac := float64(s-d.Sizes[i-1]) / float64(d.Sizes[i]-d.Sizes[i-1])
			return d.Probs[i-1] + frac*(d.Probs[i]-d.Probs[i-1])
		}
	}
	return 1
}

// The four realistic workloads of §4 ("Realistic workloads"). The knots
// follow the distributions the paper cites: Web Search from the DCTCP
// measurement (mean ≈ 1.6 MB, as the paper's motivation experiment states),
// Data Mining from VL2 (83% of flows under 100 KB with a very heavy tail),
// Web Server and Cache Follower from the Facebook traces used by Hermes
// (Web Server entirely under 1 MB).

// WebSearch returns the DCTCP web-search flow-size distribution.
func WebSearch() *SizeDist {
	return &SizeDist{
		Name:  "websearch",
		Sizes: []int{1000, 6000, 13000, 19000, 33000, 53000, 133000, 667000, 1467000, 3333000, 6667000, 20000000},
		Probs: []float64{0, 0.15, 0.2, 0.3, 0.4, 0.53, 0.6, 0.7, 0.8, 0.9, 0.97, 1},
	}
}

// DataMining returns the VL2 data-mining flow-size distribution.
func DataMining() *SizeDist {
	return &SizeDist{
		Name:  "datamining",
		Sizes: []int{100, 180, 250, 560, 900, 1100, 1870, 3160, 10000, 80000, 400000, 3160000, 35000000, 150000000, 1000000000},
		Probs: []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95, 0.98, 0.995, 1},
	}
}

// WebServer returns the Facebook web-server flow-size distribution (all
// flows below 1 MB).
func WebServer() *SizeDist {
	return &SizeDist{
		Name:  "webserver",
		Sizes: []int{100, 300, 1000, 2000, 10000, 40000, 100000, 300000, 600000, 1000000},
		Probs: []float64{0, 0.3, 0.5, 0.6, 0.7, 0.8, 0.88, 0.95, 0.98, 1},
	}
}

// CacheFollower returns the Facebook cache-follower flow-size distribution.
func CacheFollower() *SizeDist {
	return &SizeDist{
		Name:  "cachefollower",
		Sizes: []int{100, 400, 1000, 3000, 10000, 50000, 200000, 1000000, 5000000, 10000000},
		Probs: []float64{0, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.97, 1},
	}
}

// ByName returns a workload by its canonical name.
func ByName(name string) (*SizeDist, error) {
	switch name {
	case "websearch":
		return WebSearch(), nil
	case "datamining":
		return DataMining(), nil
	case "webserver":
		return WebServer(), nil
	case "cachefollower":
		return CacheFollower(), nil
	default:
		return nil, fmt.Errorf("workload: unknown distribution %q (valid: %s)",
			name, strings.Join(Names(), ", "))
	}
}

// All returns the four paper workloads in presentation order.
func All() []*SizeDist {
	return []*SizeDist{WebServer(), CacheFollower(), WebSearch(), DataMining()}
}

// Names returns the valid distribution names in presentation order (the same
// order as All). Order is part of the scenario fuzz-corpus format: the
// generator indexes into this list, so reordering would silently
// re-interpret committed corpus entries.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, d := range all {
		names[i] = d.Name
	}
	return names
}
