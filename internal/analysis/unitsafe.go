package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
)

// guardedUnits are the dimensioned types whose values must not absorb raw
// integer literals through additive arithmetic. (Byte sizes remain plain
// ints in this tree — there is no named byte-size type to guard yet; see
// TESTING.md.)
var guardedUnits = []struct{ pkg, name string }{
	{"internal/sim", "Time"},
	{"internal/units", "Bandwidth"},
}

// Unitsafe flags additive arithmetic and comparisons that mix a dimensioned
// value (sim.Time, units.Bandwidth) with a raw non-zero integer literal:
// "t + 500" silently means 500 picoseconds, which is almost never what was
// intended — write "t + 500*sim.Nanosecond" or use the units constructors.
// Multiplicative scaling ("4 * ideal", "t / 2") is dimensionally sound and
// stays legal, as does comparison against zero. internal/units itself is
// exempt: it implements the constructors.
var Unitsafe = &Analyzer{
	Name: "unitsafe",
	Doc: "no raw integer literals added to or compared against sim.Time / " +
		"units.Bandwidth values; scale with the unit constants instead",
	Run: runUnitsafe,
}

// unitAdditiveOps are the flagged binary operators: additive arithmetic and
// ordered/equality comparison. MUL/QUO/shifts scale a dimensioned value by a
// dimensionless factor, which is fine.
var unitAdditiveOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.REM: true,
	token.LSS: true, token.GTR: true, token.LEQ: true, token.GEQ: true,
	token.EQL: true, token.NEQ: true,
}

var unitAdditiveAssignOps = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.REM_ASSIGN: true,
}

func runUnitsafe(p *Pass) {
	if pathHasSuffix(p.Pkg.Path, "internal/units") {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if !unitAdditiveOps[n.Op] {
					return true
				}
				name := p.guardedUnit(n.X)
				lit := n.Y
				if name == "" {
					name, lit = p.guardedUnit(n.Y), n.X
				}
				if name != "" && p.rawNonZeroInt(lit) {
					p.Reportf(n.Pos(), "raw integer literal %s a %s value; scale with the unit constants (e.g. sim.Nanosecond, units.Gbps)", opVerb(n.Op), name)
				}
			case *ast.AssignStmt:
				if !unitAdditiveAssignOps[n.Tok] || len(n.Lhs) != 1 || len(n.Rhs) != 1 {
					return true
				}
				if name := p.guardedUnit(n.Lhs[0]); name != "" && p.rawNonZeroInt(n.Rhs[0]) {
					p.Reportf(n.Pos(), "raw integer literal folded into a %s value with %s; scale with the unit constants", name, n.Tok)
				}
			}
			return true
		})
	}
}

// guardedUnit returns the short name of the dimensioned type of e ("sim.Time"
// or "units.Bandwidth"), or "" when e is not a guarded unit. Raw literal
// expressions are never "guarded": go/types records untyped constants at
// their materialized contextual type, so a bare 5 in "t + 5" already reads
// as sim.Time — rawness must come from the syntax.
func (p *Pass) guardedUnit(e ast.Expr) string {
	if isRawLiteral(e) {
		return ""
	}
	t := p.TypeOf(e)
	if t == nil {
		return ""
	}
	for _, g := range guardedUnits {
		if isNamed(t, g.pkg, g.name) {
			return g.pkg[len("internal/"):] + "." + g.name
		}
	}
	return ""
}

// rawNonZeroInt reports whether e is a raw non-zero integer literal
// expression: built solely from integer literals (parentheses, unary +/-/^,
// and arithmetic over literals included), mentioning no named constant.
// Zero is allowed — comparing a duration to 0 carries no hidden unit.
func (p *Pass) rawNonZeroInt(e ast.Expr) bool {
	if !isRawLiteral(e) {
		return false
	}
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	if v, exact := constant.Int64Val(tv.Value); exact && v == 0 {
		return false
	}
	return true
}

// isRawLiteral reports whether e is composed only of basic literals and
// operators — no identifiers, so no named unit constant can be carrying the
// dimension.
func isRawLiteral(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.ParenExpr:
		return isRawLiteral(e.X)
	case *ast.UnaryExpr:
		return isRawLiteral(e.X)
	case *ast.BinaryExpr:
		return isRawLiteral(e.X) && isRawLiteral(e.Y)
	default:
		return false
	}
}

func opVerb(op token.Token) string {
	switch op {
	case token.ADD:
		return "added to"
	case token.SUB:
		return "subtracted from"
	case token.REM:
		return "taken modulo"
	default:
		return "compared against"
	}
}
