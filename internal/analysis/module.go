package analysis

import (
	"sort"
)

// Module is the interprocedural analysis scope: a set of loaded packages
// (typically the requested packages plus their transitive in-tree
// dependencies) over which module-wide facts — the call graph, per-function
// ownership summaries, and the scheme/workload name registries — are
// computed once and shared by every analyzer pass.
type Module struct {
	// Pkgs are the packages in scope, sorted by import path.
	Pkgs []*Package

	byPath map[string]*Package

	cg         *callGraph
	sums       *summaries
	registries []registry
	regBuilt   bool
}

// NewModule builds an analysis scope over pkgs. Interprocedural facts are
// computed lazily on first use and then shared.
func NewModule(pkgs []*Package) *Module {
	sorted := make([]*Package, len(pkgs))
	copy(sorted, pkgs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	m := &Module{Pkgs: sorted, byPath: map[string]*Package{}}
	for _, p := range sorted {
		m.byPath[p.Path] = p
	}
	return m
}

// CallGraph returns the module's call graph, building it on first use.
func (m *Module) CallGraph() *callGraph {
	if m.cg == nil {
		m.cg = buildCallGraph(m)
	}
	return m.cg
}

// Summaries returns the module's packet-ownership summaries, computing them
// on first use.
func (m *Module) Summaries() *summaries {
	if m.sums == nil {
		m.sums = computeSummaries(m)
	}
	return m.sums
}

// Analyze runs the analyzers over one in-scope package with the module's
// interprocedural facts available on the pass, returning the surviving
// findings sorted by position (see RunAnalyzers).
func (m *Module) Analyze(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg, Mod: m, diags: &raw}
		a.Run(pass)
	}
	out := applyAllows(pkg, analyzers, raw)
	sortDiagnostics(out)
	return out
}

// sortDiagnostics orders findings by file, line, column, then analyzer name,
// so lint output is diff-stable across runs and machines.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
}
