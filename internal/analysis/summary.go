package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// summaries hold the per-function packet-ownership facts poolcheck consumes:
// for every declared function with *fabric.Packet parameters, whether each
// packet parameter is *owned* (the function releases, stores, forwards, or
// returns it — it is responsible for the frame's fate) or merely *borrowed*
// (read-only: the function inspects the packet and hands the obligation
// back to its caller).
//
// Summaries are computed bottom-up over the call graph's strongly connected
// components as a monotone fixpoint (borrower is bottom; facts only ever
// strengthen to owner), so ownership flows through helpers of any depth:
// fabric.Release is an owner because Pool.put appends the frame to the free
// list, Port.Enqueue because the queue stores it, Switch.Receive because
// every path forwards into one of those — with no whitelist anywhere.
//
// The rules are deliberately asymmetric. Evidence that a function owns its
// parameter is conservative: only a direct store/return/send/composite
// capture, or passing the packet to a callee *known* to own it, counts —
// calls the graph cannot resolve contribute nothing, so read-only decision
// helpers (Chooser.Choose, Router.Route) stay borrowers. Discharge of a
// caller's obligation is optimistic: handing the packet to an unresolved
// call counts as consumption, so the checker under-reports instead of
// spamming. A resolved call to a borrower discharges nothing — that is the
// interprocedural teeth: leaking a frame through a logging helper is now a
// finding in the caller.
type summaries struct {
	mod *Module
	// owns[fn][i] reports that parameter i of fn is an owned *fabric.Packet.
	owns map[*types.Func][]bool
}

// computeSummaries runs the bottom-up fixpoint over mod's call graph.
func computeSummaries(mod *Module) *summaries {
	cg := mod.CallGraph()
	s := &summaries{mod: mod, owns: map[*types.Func][]bool{}}

	// Candidates: declared functions with at least one packet parameter.
	type cand struct {
		node   *cgNode
		params []*types.Var // all params; packet params checked by index
	}
	var cands []cand
	for _, node := range cg.sortedNodes() {
		if node.fn == nil {
			continue
		}
		sig := node.fn.Type().(*types.Signature)
		n := sig.Params().Len()
		hasPacket := false
		params := make([]*types.Var, n)
		for i := 0; i < n; i++ {
			params[i] = sig.Params().At(i)
			if isPacketPtr(params[i].Type()) {
				hasPacket = true
			}
		}
		if !hasPacket {
			continue
		}
		s.owns[node.fn] = make([]bool, n)
		cands = append(cands, cand{node: node, params: params})
	}

	// Bottom-up: SCC indices are assigned in reverse topological order, so
	// ascending order visits callees before callers; within a component the
	// inner loop iterates to a fixpoint (cycles are rare and tiny here).
	groups := map[int][]cand{}
	maxSCC := -1
	for _, c := range cands {
		groups[c.node.scc] = append(groups[c.node.scc], c)
		if c.node.scc > maxSCC {
			maxSCC = c.node.scc
		}
	}
	for sccIdx := 0; sccIdx <= maxSCC; sccIdx++ {
		group := groups[sccIdx]
		if len(group) == 0 {
			continue
		}
		for changed := true; changed; {
			changed = false
			for _, c := range group {
				row := s.owns[c.node.fn]
				for i, p := range c.params {
					if row[i] || !isPacketPtr(p.Type()) {
						continue
					}
					if s.ownershipEvidence(c.node, p) {
						row[i] = true
						changed = true
					}
				}
			}
		}
	}
	return s
}

// paramOwner reports whether parameter idx of fn is summarized as an owned
// packet. Functions outside the scope (standard library, function values)
// are unknown and return false.
func (s *summaries) paramOwner(fn *types.Func, idx int) bool {
	row, ok := s.owns[fn]
	return ok && idx >= 0 && idx < len(row) && row[idx]
}

// ownershipEvidence reports whether node's body shows it owns obj: a bare
// store, return, send, or composite capture of the packet, appending it to
// a slice, or passing it to a call that resolves entirely to owners.
func (s *summaries) ownershipEvidence(node *cgNode, obj types.Object) bool {
	found := false
	ast.Inspect(node.body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch m := n.(type) {
		case *ast.CallExpr:
			for i, arg := range m.Args {
				if mentionsObj(node.pkg, obj, arg) && s.callIsOwnerEvidence(node.pkg, m, i) {
					found = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range m.Results {
				if isBareObj(node.pkg, obj, r) {
					found = true
				}
			}
		case *ast.AssignStmt:
			for _, r := range m.Rhs {
				if isBareObj(node.pkg, obj, r) {
					found = true
				}
				if u, ok := ast.Unparen(r).(*ast.UnaryExpr); ok && u.Op == token.AND && isBareObj(node.pkg, obj, u.X) {
					found = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range m.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if isBareObj(node.pkg, obj, v) {
					found = true
				}
			}
		case *ast.SendStmt:
			if mentionsObj(node.pkg, obj, m.Value) {
				found = true
			}
		}
		return !found
	})
	return found
}

// callIsOwnerEvidence reports whether passing a packet as argument argIdx of
// call is conservative proof of ownership: the builtin append stores it; a
// call resolving to a non-empty set of callees, every one of which owns the
// corresponding parameter, forwards it. Unresolved calls prove nothing.
func (s *summaries) callIsOwnerEvidence(pkg *Package, call *ast.CallExpr, argIdx int) bool {
	if isBuiltinCall(pkg, call, "append") {
		return argIdx >= 1
	}
	fns, resolved := s.resolveCallees(pkg, call)
	if !resolved || len(fns) == 0 {
		return false
	}
	for _, fn := range fns {
		if !s.paramOwner(fn, paramIndex(fn, argIdx)) {
			return false
		}
	}
	return true
}

// callConsumes reports whether passing a packet as argument argIdx of call
// discharges the caller's obligation: optimistically yes, unless the call
// resolves cleanly and at least one callee merely borrows that parameter.
func (s *summaries) callConsumes(pkg *Package, call *ast.CallExpr, argIdx int) bool {
	if isBuiltinCall(pkg, call, "append") {
		return argIdx >= 1
	}
	fns, resolved := s.resolveCallees(pkg, call)
	if !resolved || len(fns) == 0 {
		return true
	}
	for _, fn := range fns {
		if !s.paramOwner(fn, paramIndex(fn, argIdx)) {
			return false
		}
	}
	return true
}

// resolveCallees maps a call to the declared functions it may invoke:
// direct calls, concrete method calls, qualified package functions, and
// interface calls devirtualized over in-scope implementations. resolved is
// false for anything else (builtins, function values, method expressions),
// and for callees outside the module scope.
func (s *summaries) resolveCallees(pkg *Package, call *ast.CallExpr) (fns []*types.Func, resolved bool) {
	cg := s.mod.CallGraph()
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.ObjectOf(fun).(*types.Func); ok {
			if _, inScope := cg.byFunc[fn]; inScope {
				return []*types.Func{fn}, true
			}
		}
		return nil, false
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv()) {
				impls := cg.implementers(sel.Recv(), fun.Sel.Name)
				for _, fn := range impls {
					if _, inScope := cg.byFunc[fn]; !inScope {
						return nil, false
					}
				}
				return impls, len(impls) > 0
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				if _, inScope := cg.byFunc[fn]; inScope {
					return []*types.Func{fn}, true
				}
			}
			return nil, false
		}
		if fn, ok := pkg.Info.ObjectOf(fun.Sel).(*types.Func); ok {
			if _, inScope := cg.byFunc[fn]; inScope {
				return []*types.Func{fn}, true
			}
		}
		return nil, false
	}
	return nil, false
}

// paramIndex maps an argument position to the callee's parameter index,
// folding variadic tails onto the last parameter; -1 when out of range.
func paramIndex(fn *types.Func, argIdx int) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	n := sig.Params().Len()
	if argIdx < n {
		return argIdx
	}
	if sig.Variadic() && n > 0 {
		return n - 1
	}
	return -1
}

// isBuiltinCall reports whether call invokes the named builtin.
func isBuiltinCall(pkg *Package, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := pkg.Info.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

// mentionsObj reports whether obj appears anywhere in e except as the
// receiver of a selector (pkt.Size reads, pkt.Foo() calls — those do not
// hand the reference off).
func mentionsObj(pkg *Package, obj types.Object, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pkg.Info.ObjectOf(id) == obj {
				return false // receiver position: a read, not a hand-off
			}
		}
		if id, ok := n.(*ast.Ident); ok && pkg.Info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// isBareObj reports whether e is exactly the tracked identifier.
func isBareObj(pkg *Package, obj types.Object, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && pkg.Info.ObjectOf(id) == obj
}
