package analysis

// White-box tests for the interprocedural layer: SCC condensation feeding
// the bottom-up ownership fixpoint, and sim.Handler devirtualization seeding
// the event hot set. Each test type-checks a tiny synthetic GOPATH tree so
// the facts under test (mutual recursion, interface dispatch) are isolated
// from the larger committed fixtures.

import (
	"os"
	"path/filepath"
	"testing"
)

// writeTree materializes a GOPATH-style source tree in a temp dir and
// returns a loader resolving against it.
func writeTree(t *testing.T, files map[string]string) (*Loader, string) {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return NewLoader(TreeResolver(root)), root
}

func loadModule(t *testing.T, ld *Loader, root string, paths ...string) *Module {
	t.Helper()
	for _, p := range paths {
		if _, err := ld.Load(p, filepath.Join(root, filepath.FromSlash(p))); err != nil {
			t.Fatalf("loading %s: %v", p, err)
		}
	}
	return NewModule(ld.Loaded())
}

// findFunc locates the call-graph node whose rendered name matches.
func findFunc(t *testing.T, cg *callGraph, name string) *cgNode {
	t.Helper()
	for _, n := range cg.sortedNodes() {
		if n.fn != nil && n.name() == name {
			return n
		}
	}
	t.Fatalf("no call-graph node named %s", name)
	return nil
}

// TestSCCSummarization: Ping and Pong forward a pooled packet to each other
// in a cycle; only Ping's base case releases it. The cycle must condense to
// one SCC and the inner fixpoint must mark BOTH parameters as owned — a
// single bottom-up visit without the fixpoint would leave Pong a borrower.
// The Peek/Poke cycle reads only, so both stay borrowers.
func TestSCCSummarization(t *testing.T) {
	ld, root := writeTree(t, map[string]string{
		"scc.example/internal/fabric/fabric.go": `package fabric

type Packet struct{ Size int }

var freed []*Packet

func Release(p *Packet) { freed = append(freed, p) }
`,
		"scc.example/internal/transport/ring.go": `package transport

import "scc.example/internal/fabric"

func Ping(p *fabric.Packet, depth int) {
	if depth == 0 {
		fabric.Release(p)
		return
	}
	Pong(p, depth-1)
}

func Pong(p *fabric.Packet, depth int) { Ping(p, depth) }

func Peek(p *fabric.Packet, depth int) int {
	if depth == 0 {
		return p.Size
	}
	return Poke(p, depth-1)
}

func Poke(p *fabric.Packet, depth int) int { return Peek(p, depth) }
`,
	})
	mod := loadModule(t, ld, root, "scc.example/internal/fabric", "scc.example/internal/transport")
	cg := mod.CallGraph()
	sums := mod.Summaries()

	ping := findFunc(t, cg, "Ping")
	pong := findFunc(t, cg, "Pong")
	release := findFunc(t, cg, "Release")
	peek := findFunc(t, cg, "Peek")
	poke := findFunc(t, cg, "Poke")

	if ping.scc != pong.scc {
		t.Errorf("Ping (scc %d) and Pong (scc %d) are mutually recursive, want one SCC", ping.scc, pong.scc)
	}
	if peek.scc != poke.scc {
		t.Errorf("Peek (scc %d) and Poke (scc %d) are mutually recursive, want one SCC", peek.scc, poke.scc)
	}
	if release.scc >= ping.scc {
		t.Errorf("Release (scc %d) is a callee of Ping's cycle (scc %d): want strictly lower reverse-topological index", release.scc, ping.scc)
	}

	for _, tc := range []struct {
		node *cgNode
		own  bool
	}{
		{release, true}, {ping, true}, {pong, true}, {peek, false}, {poke, false},
	} {
		if got := sums.paramOwner(tc.node.fn, 0); got != tc.own {
			t.Errorf("paramOwner(%s, 0) = %v, want %v", tc.node.name(), got, tc.own)
		}
	}
}

// TestHandlerDevirtualization: the only call to OnEvent is through the
// sim.Handler interface, and the only call to route is through a local
// router interface. Both edges must be devirtualized: OnEvent is a hot
// root, helpers reached through the interfaces are hot, and the
// never-called constructor is cold.
func TestHandlerDevirtualization(t *testing.T) {
	ld, root := writeTree(t, map[string]string{
		"dev.example/internal/sim/sim.go": `package sim

type EventArg struct{ U64 uint64 }

type Handler interface{ OnEvent(arg EventArg) }

type Engine struct{ hs []Handler }

func (e *Engine) Dispatch(arg EventArg) {
	for _, h := range e.hs {
		h.OnEvent(arg)
	}
}
`,
		"dev.example/internal/switchsim/node.go": `package switchsim

import "dev.example/internal/sim"

type router interface{ route(i int) int }

type leaf struct{ next int }

func (l *leaf) route(i int) int { l.next = i; return i }

type Node struct {
	r router
	n int
}

func NewNode() *Node { return &Node{r: &leaf{}} }

func (nd *Node) OnEvent(arg sim.EventArg) { nd.n = nd.r.route(int(arg.U64)) }
`,
	})
	mod := loadModule(t, ld, root, "dev.example/internal/sim", "dev.example/internal/switchsim")
	cg := mod.CallGraph()

	onEvent := findFunc(t, cg, "(*Node).OnEvent")
	route := findFunc(t, cg, "(*leaf).route")
	cold := findFunc(t, cg, "NewNode")
	dispatch := findFunc(t, cg, "(*Engine).Dispatch")

	roots := cg.handlerRoots()
	if len(roots) != 1 || roots[0] != onEvent {
		t.Fatalf("handlerRoots() = %v, want exactly [(*Node).OnEvent]", roots)
	}
	// Dispatch's h.OnEvent(arg) call must devirtualize to the concrete method.
	found := false
	for _, c := range dispatch.callees {
		if c == onEvent {
			found = true
		}
	}
	if !found {
		t.Errorf("Dispatch does not call (*Node).OnEvent through the Handler interface")
	}

	pred := cg.hotSet()
	if _, hot := pred[route]; !hot {
		t.Errorf("(*leaf).route is reachable from OnEvent through the router interface but is not in the hot set")
	}
	if _, hot := pred[cold]; hot {
		t.Errorf("NewNode is never called from OnEvent but landed in the hot set")
	}
	if got, want := trace(pred, route), "(*Node).OnEvent → (*leaf).route"; got != want {
		t.Errorf("trace = %q, want %q", got, want)
	}
}
