package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// poolOwnerPackages are the data-plane packages whose functions take
// ownership of pooled packets and are therefore subject to the leak check.
// Observer packages (invariant, trace, metrics) inspect packets they do not
// own and are exempt; internal/fabric implements the pool itself.
var poolOwnerPackages = []string{
	"internal/switchsim", "internal/transport", "internal/core",
	"internal/dcqcn", "internal/topo", "internal/lb",
}

// Poolcheck is the static twin of the runtime packet-pool conservation
// invariant (internal/invariant, strict tier). It flags (a) fabric.Packet
// composite literals and new(fabric.Packet) outside internal/fabric — frames
// must come from the per-simulation fabric.Pool so the conservation audit
// sees them — and (b) functions in data-plane packages that own a pooled
// *fabric.Packet yet have a terminating path on which the packet is neither
// released, forwarded, stored, nor returned: a leaked frame.
//
// Ownership and consumption are interprocedural, driven by the module's
// bottom-up summaries (see summary.go) instead of a name whitelist: a
// parameter is owned when this function's summary says so (it stores,
// returns, or sends the packet, or hands it to a callee chain ending in a
// real sink like Pool.put); a call discharges the obligation only when
// every resolved callee owns the corresponding parameter. Handing a frame
// to a read-only helper no longer counts as consuming it, so leaks through
// borrowing helpers are findings in the caller, while a leak inside a
// partially-consuming helper is reported once, in the helper itself.
var Poolcheck = &Analyzer{
	Name: "poolcheck",
	Doc: "fabric.Packet must be constructed inside internal/fabric and " +
		"consumed (forwarded, stored, returned, or released) on every path",
	Run: runPoolcheck,
}

func runPoolcheck(p *Pass) {
	if pathHasSuffix(p.Pkg.Path, "internal/fabric") {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if t := p.TypeOf(n); t != nil && isNamed(t, "internal/fabric", "Packet") {
					p.Reportf(n.Pos(), "fabric.Packet composite literal outside internal/fabric; frames must come from the simulation's fabric.Pool")
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "new" && len(n.Args) == 1 {
					if _, isBuiltin := p.ObjectOf(id).(*types.Builtin); isBuiltin {
						if t := p.TypeOf(n.Args[0]); t != nil && isNamed(t, "internal/fabric", "Packet") {
							p.Reportf(n.Pos(), "new(fabric.Packet) outside internal/fabric; frames must come from the simulation's fabric.Pool")
						}
					}
				}
			}
			return true
		})
	}

	owner := false
	for _, s := range poolOwnerPackages {
		if pathHasSuffix(p.Pkg.Path, s) {
			owner = true
		}
	}
	if !owner {
		return
	}
	sums := p.Mod.Summaries()
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPacketLeaks(p, sums, fd)
		}
	}
}

// isPacketPtr reports whether t is *fabric.Packet.
func isPacketPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	return ok && isNamed(ptr.Elem(), "internal/fabric", "Packet")
}

// checkPacketLeaks runs the per-function leak analysis: for every packet the
// function owns, walk the body tracking whether the packet has been consumed
// (released, forwarded to an owning callee, returned, stored, or sent) and
// report terminating paths that drop it. Loops and switches are treated
// optimistically (a consumption anywhere inside counts), so the check
// under-reports rather than spamming.
//
// Ownership is decided per candidate:
//   - a variable built from a call returning *fabric.Packet (pool.Data,
//     pool.Control, fabric.NewData, ...) is always owned from its
//     definition onward;
//   - a parameter is owned exactly when the module summary infers it — the
//     function stores, returns, or sends the packet somewhere, or hands it
//     to a callee chain that does. Pure decision functions
//     (lb.Chooser.Choose, Router.Route, Agent.Pick) borrow the packet and
//     are exempt.
func checkPacketLeaks(p *Pass, sums *summaries, fd *ast.FuncDecl) {
	type candidate struct {
		obj    types.Object
		defPos token.Pos
	}
	var cands []candidate
	fn, _ := p.Pkg.Info.Defs[fd.Name].(*types.Func)
	if fd.Type.Params != nil && fn != nil {
		idx := 0
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				obj := p.ObjectOf(name)
				if obj != nil && isPacketPtr(obj.Type()) && sums.paramOwner(fn, idx) {
					cands = append(cands, candidate{obj: obj, defPos: fd.Body.Pos()})
				}
				idx++
			}
			if len(field.Names) == 0 {
				idx++
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		if _, isCall := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); !isCall {
			return true
		}
		if obj := p.ObjectOf(id); obj != nil && isPacketPtr(obj.Type()) {
			cands = append(cands, candidate{obj: obj, defPos: as.Pos()})
		}
		return true
	})

	for _, cand := range cands {
		lc := &leakChecker{pass: p, sums: sums, obj: cand.obj, defPos: cand.defPos}
		end := lc.walk(fd.Body.List, false)
		if !end.terminated && !end.consumed {
			p.Reportf(fd.Body.Rbrace, "function %s can fall through without releasing or forwarding %s; call fabric.Release on every terminating path", fd.Name.Name, cand.obj.Name())
		}
	}
}

// leakChecker tracks one packet object through one function body.
type leakChecker struct {
	pass   *Pass
	sums   *summaries
	obj    types.Object
	defPos token.Pos
}

// flowState is the packet's state at a program point.
type flowState struct {
	consumed   bool // the packet has been consumed on every path reaching here
	terminated bool // control cannot fall through (return/panic on all paths)
}

// walk processes a statement list, reporting returns that drop the packet,
// and returns the state at the fall-through point.
func (lc *leakChecker) walk(stmts []ast.Stmt, consumed bool) flowState {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.ReturnStmt:
			// Returns before the packet exists cannot drop it.
			if s.Pos() >= lc.defPos && !consumed && !lc.stmtConsumes(s) {
				lc.pass.Reportf(s.Pos(), "return drops pooled packet %s without releasing or forwarding it; call fabric.Release or hand it off first", lc.obj.Name())
			}
			return flowState{consumed: true, terminated: true}
		case *ast.IfStmt:
			if s.Init != nil && lc.stmtConsumes(s.Init) {
				consumed = true
			}
			if lc.exprConsumes(s.Cond) {
				consumed = true
			}
			thenSt := lc.walk(s.Body.List, consumed)
			elseSt := flowState{consumed: consumed}
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseSt = lc.walk(e.List, consumed)
			case *ast.IfStmt:
				elseSt = lc.walk([]ast.Stmt{e}, consumed)
			}
			switch {
			case thenSt.terminated && elseSt.terminated:
				return flowState{consumed: true, terminated: true}
			case thenSt.terminated:
				consumed = elseSt.consumed
			case elseSt.terminated:
				consumed = thenSt.consumed
			default:
				consumed = thenSt.consumed && elseSt.consumed
			}
		case *ast.BlockStmt:
			st := lc.walk(s.List, consumed)
			if st.terminated {
				return st
			}
			consumed = st.consumed
		case *ast.ExprStmt:
			if isPanicCall(s.X) {
				return flowState{consumed: true, terminated: true}
			}
			if lc.stmtConsumes(s) {
				consumed = true
			}
		default:
			// Loops, switches, selects, assignments, defers: optimistic —
			// any consumption inside counts for the remainder of the path.
			if lc.stmtConsumes(s) {
				consumed = true
			}
		}
	}
	return flowState{consumed: consumed}
}

// stmtConsumes reports whether any consuming use of the packet occurs inside
// n. Consuming uses: appearing in an argument of a call that the module
// summaries say takes ownership (or that cannot be resolved), in a return,
// as an assignment's right-hand side (storing/aliasing), in a composite
// literal, or as a channel-send value. A bare method call on the packet, a
// field read, or handing the packet to a resolved borrower does not consume.
func (lc *leakChecker) stmtConsumes(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch m := m.(type) {
		case *ast.CallExpr:
			for i, arg := range m.Args {
				if lc.mentions(arg) && lc.sums.callConsumes(lc.pass.Pkg, m, i) {
					found = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range m.Results {
				if lc.mentions(r) {
					found = true
				}
			}
		case *ast.AssignStmt:
			for _, r := range m.Rhs {
				if lc.mentionsBare(r) {
					found = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range m.Elts {
				if lc.mentions(el) {
					found = true
				}
			}
		case *ast.SendStmt:
			if lc.mentions(m.Value) {
				found = true
			}
		}
		return !found
	})
	return found
}

func (lc *leakChecker) exprConsumes(e ast.Expr) bool {
	if e == nil {
		return false
	}
	return lc.stmtConsumes(e)
}

// mentions reports whether the packet identifier appears anywhere in e except
// as the receiver of a selector (pkt.Size reads, pkt.Foo() calls).
func (lc *leakChecker) mentions(e ast.Expr) bool {
	return mentionsObj(lc.pass.Pkg, lc.obj, e)
}

// mentionsBare is mentions restricted to the whole expression being the
// packet (possibly parenthesized): "x = pkt" stores it, "x = pkt.Seq" only
// reads it.
func (lc *leakChecker) mentionsBare(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return lc.pass.ObjectOf(x) == lc.obj
	case *ast.CompositeLit, *ast.CallExpr, *ast.UnaryExpr:
		// Wrapping the packet in a literal, call, or &expr still hands the
		// reference off.
		return lc.mentions(e)
	}
	return false
}

// isPanicCall reports whether e is a call to the builtin panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
