package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// poolOwnerPackages are the data-plane packages whose functions take
// ownership of pooled packets and are therefore subject to the leak check.
// Observer packages (invariant, trace, metrics) inspect packets they do not
// own and are exempt; internal/fabric implements the pool itself.
var poolOwnerPackages = []string{
	"internal/switchsim", "internal/transport", "internal/core",
	"internal/dcqcn", "internal/topo", "internal/lb",
}

// Poolcheck is the static twin of the runtime packet-pool conservation
// invariant (internal/invariant, strict tier). It flags (a) fabric.Packet
// composite literals and new(fabric.Packet) outside internal/fabric — frames
// must come from the per-simulation fabric.Pool so the conservation audit
// sees them — and (b) functions in data-plane packages that own a pooled
// *fabric.Packet (a parameter or a pool/constructor result that the function
// consumes on some path) yet have a terminating path on which the packet is
// neither released, forwarded, stored, nor returned: a leaked frame.
var Poolcheck = &Analyzer{
	Name: "poolcheck",
	Doc: "fabric.Packet must be constructed inside internal/fabric and " +
		"consumed (forwarded, stored, returned, or released) on every path",
	Run: runPoolcheck,
}

func runPoolcheck(p *Pass) {
	if pathHasSuffix(p.Pkg.Path, "internal/fabric") {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if t := p.TypeOf(n); t != nil && isNamed(t, "internal/fabric", "Packet") {
					p.Reportf(n.Pos(), "fabric.Packet composite literal outside internal/fabric; frames must come from the simulation's fabric.Pool")
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "new" && len(n.Args) == 1 {
					if _, isBuiltin := p.ObjectOf(id).(*types.Builtin); isBuiltin {
						if t := p.TypeOf(n.Args[0]); t != nil && isNamed(t, "internal/fabric", "Packet") {
							p.Reportf(n.Pos(), "new(fabric.Packet) outside internal/fabric; frames must come from the simulation's fabric.Pool")
						}
					}
				}
			}
			return true
		})
	}

	owner := false
	for _, s := range poolOwnerPackages {
		if pathHasSuffix(p.Pkg.Path, s) {
			owner = true
		}
	}
	if !owner {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPacketLeaks(p, fd)
		}
	}
}

// isPacketPtr reports whether t is *fabric.Packet.
func isPacketPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	return ok && isNamed(ptr.Elem(), "internal/fabric", "Packet")
}

// checkPacketLeaks runs the per-function leak analysis: for every packet the
// function owns, walk the body tracking whether the packet has been consumed
// (passed to a call, returned, stored, or sent) and report terminating paths
// that drop it. Loops and switches are treated optimistically (a consumption
// anywhere inside counts), so the check under-reports rather than spamming.
//
// Ownership is decided per candidate:
//   - a variable built from a call returning *fabric.Packet (pool.Data,
//     pool.Control, fabric.NewData, ...) is always owned from its
//     definition onward;
//   - a parameter is owned only when the function shows ownership evidence —
//     it stores, returns, or sends the packet somewhere, or hands it to a
//     consuming sink (Port.Enqueue, Device.Receive, SendControl,
//     fabric.Release). Pure decision functions (lb.Chooser.Choose,
//     Router.Route, Agent.Pick) lend the packet to helpers without owning
//     it and are exempt.
func checkPacketLeaks(p *Pass, fd *ast.FuncDecl) {
	type candidate struct {
		obj    types.Object
		defPos token.Pos
		param  bool
	}
	var cands []candidate
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				obj := p.ObjectOf(name)
				if obj != nil && isPacketPtr(obj.Type()) {
					cands = append(cands, candidate{obj: obj, defPos: fd.Body.Pos(), param: true})
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		if _, isCall := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); !isCall {
			return true
		}
		if obj := p.ObjectOf(id); obj != nil && isPacketPtr(obj.Type()) {
			cands = append(cands, candidate{obj: obj, defPos: as.Pos()})
		}
		return true
	})

	for _, cand := range cands {
		lc := &leakChecker{pass: p, obj: cand.obj, defPos: cand.defPos}
		if cand.param && !lc.ownershipEvidence(fd.Body) {
			continue
		}
		end := lc.walk(fd.Body.List, false)
		if !end.terminated && !end.consumed {
			p.Reportf(fd.Body.Rbrace, "function %s can fall through without releasing or forwarding %s; call fabric.Release on every terminating path", fd.Name.Name, cand.obj.Name())
		}
	}
}

// sinkNames are callee names that take ownership of a packet argument:
// enqueueing it on a port, delivering it to a device, or returning it to the
// pool. fabric.Release is matched by package as well.
var sinkNames = map[string]bool{
	"Enqueue": true, "Receive": true, "SendControl": true, "Release": true,
}

// leakChecker tracks one packet object through one function body.
type leakChecker struct {
	pass   *Pass
	obj    types.Object
	defPos token.Pos
}

// ownershipEvidence reports whether the function stores, returns, or sends
// the packet, or passes it to a consuming sink — the signals that it owns
// the frame rather than merely inspecting it.
func (lc *leakChecker) ownershipEvidence(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch m := n.(type) {
		case *ast.CallExpr:
			if !lc.isSinkCall(m) {
				return true
			}
			for _, arg := range m.Args {
				if lc.mentions(arg) {
					found = true
				}
			}
		case *ast.ReturnStmt:
			// Only returning the packet itself transfers ownership;
			// "return helper(pkt)" merely lends it for the call.
			for _, r := range m.Results {
				if lc.isBareObj(r) {
					found = true
				}
			}
		case *ast.AssignStmt:
			// "x = pkt" / "x = &pkt" alias the packet into other state;
			// "x = helper(pkt)" only lends it (composite literals holding
			// the bare packet are caught by the CompositeLit case below).
			for _, r := range m.Rhs {
				if lc.isBareObj(r) {
					found = true
				}
				if u, ok := ast.Unparen(r).(*ast.UnaryExpr); ok && u.Op == token.AND && lc.isBareObj(u.X) {
					found = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range m.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if lc.isBareObj(v) {
					found = true
				}
			}
		case *ast.SendStmt:
			if lc.mentions(m.Value) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isBareObj reports whether e is exactly the tracked packet identifier.
func (lc *leakChecker) isBareObj(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && lc.pass.ObjectOf(id) == lc.obj
}

// isSinkCall reports whether call invokes a packet-consuming sink.
func (lc *leakChecker) isSinkCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return sinkNames[fun.Sel.Name]
	case *ast.Ident:
		return sinkNames[fun.Name]
	}
	return false
}

// flowState is the packet's state at a program point.
type flowState struct {
	consumed   bool // the packet has been consumed on every path reaching here
	terminated bool // control cannot fall through (return/panic on all paths)
}

// walk processes a statement list, reporting returns that drop the packet,
// and returns the state at the fall-through point.
func (lc *leakChecker) walk(stmts []ast.Stmt, consumed bool) flowState {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.ReturnStmt:
			// Returns before the packet exists cannot drop it.
			if s.Pos() >= lc.defPos && !consumed && !lc.stmtConsumes(s) {
				lc.pass.Reportf(s.Pos(), "return drops pooled packet %s without releasing or forwarding it; call fabric.Release or hand it off first", lc.obj.Name())
			}
			return flowState{consumed: true, terminated: true}
		case *ast.IfStmt:
			if s.Init != nil && lc.stmtConsumes(s.Init) {
				consumed = true
			}
			if lc.exprConsumes(s.Cond) {
				consumed = true
			}
			thenSt := lc.walk(s.Body.List, consumed)
			elseSt := flowState{consumed: consumed}
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseSt = lc.walk(e.List, consumed)
			case *ast.IfStmt:
				elseSt = lc.walk([]ast.Stmt{e}, consumed)
			}
			switch {
			case thenSt.terminated && elseSt.terminated:
				return flowState{consumed: true, terminated: true}
			case thenSt.terminated:
				consumed = elseSt.consumed
			case elseSt.terminated:
				consumed = thenSt.consumed
			default:
				consumed = thenSt.consumed && elseSt.consumed
			}
		case *ast.BlockStmt:
			st := lc.walk(s.List, consumed)
			if st.terminated {
				return st
			}
			consumed = st.consumed
		case *ast.ExprStmt:
			if isPanicCall(s.X) {
				return flowState{consumed: true, terminated: true}
			}
			if lc.stmtConsumes(s) {
				consumed = true
			}
		default:
			// Loops, switches, selects, assignments, defers: optimistic —
			// any consumption inside counts for the remainder of the path.
			if lc.stmtConsumes(s) {
				consumed = true
			}
		}
	}
	return flowState{consumed: consumed}
}

// stmtConsumes reports whether any consuming use of the packet occurs inside
// n. Consuming uses: appearing in a call's arguments, in a return, as an
// assignment's right-hand side (storing/aliasing), in a composite literal, or
// as a channel-send value. A bare method call on the packet or a field read
// does not consume.
func (lc *leakChecker) stmtConsumes(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch m := m.(type) {
		case *ast.CallExpr:
			for _, arg := range m.Args {
				if lc.mentions(arg) {
					found = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range m.Results {
				if lc.mentions(r) {
					found = true
				}
			}
		case *ast.AssignStmt:
			for _, r := range m.Rhs {
				if lc.mentionsBare(r) {
					found = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range m.Elts {
				if lc.mentions(el) {
					found = true
				}
			}
		case *ast.SendStmt:
			if lc.mentions(m.Value) {
				found = true
			}
		}
		return !found
	})
	return found
}

func (lc *leakChecker) exprConsumes(e ast.Expr) bool {
	if e == nil {
		return false
	}
	return lc.stmtConsumes(e)
}

// mentions reports whether the packet identifier appears anywhere in e except
// as the receiver of a selector (pkt.Size reads, pkt.Foo() calls).
func (lc *leakChecker) mentions(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && lc.pass.ObjectOf(id) == lc.obj {
				return false // receiver position: a read, not a hand-off
			}
		}
		if id, ok := n.(*ast.Ident); ok && lc.pass.ObjectOf(id) == lc.obj {
			found = true
		}
		return !found
	})
	return found
}

// mentionsBare is mentions restricted to the whole expression being the
// packet (possibly parenthesized): "x = pkt" stores it, "x = pkt.Seq" only
// reads it.
func (lc *leakChecker) mentionsBare(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return lc.pass.ObjectOf(x) == lc.obj
	case *ast.CompositeLit, *ast.CallExpr, *ast.UnaryExpr:
		// Wrapping the packet in a literal, call, or &expr still hands the
		// reference off.
		return lc.mentions(e)
	}
	return false
}

// isPanicCall reports whether e is a call to the builtin panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
