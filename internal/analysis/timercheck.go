package analysis

import (
	"go/ast"
	"go/token"
)

// Timercheck enforces that sim.Timer handles stay values. The engine hands
// out generation-checked value handles precisely so a handle held across a
// slot reuse goes stale safely; taking a Timer's address, declaring
// *sim.Timer, or comparing Timer pointers reintroduces the aliasing the
// generation check exists to prevent (the stale-handle bug fixed in the
// event-pool refactor). internal/sim itself is exempt: the engine manages
// the underlying event slots.
var Timercheck = &Analyzer{
	Name: "timercheck",
	Doc:  "sim.Timer is a value handle: no *sim.Timer, no &timer, no pointer comparison",
	Run:  runTimercheck,
}

func runTimercheck(p *Pass) {
	if pathHasSuffix(p.Pkg.Path, "internal/sim") {
		return
	}
	isTimer := func(e ast.Expr) bool {
		t := p.TypeOf(e)
		return t != nil && isNamed(t, "internal/sim", "Timer")
	}
	isTimerPtr := func(e ast.Expr) bool {
		t := p.TypeOf(e)
		return t != nil && isPtrToNamed(t, "internal/sim", "Timer")
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op == token.AND && isTimer(n.X) {
					p.Reportf(n.Pos(), "taking the address of a sim.Timer; handles are values — store and pass them by value")
				}
			case *ast.StarExpr:
				// Covers the type form *sim.Timer in declarations, fields,
				// parameters, results, conversions, and composite types.
				if isTimerPtr(n) || isTimer(n.X) {
					p.Reportf(n.Pos(), "*sim.Timer pointer; handles are generation-checked values — pointer aliasing reintroduces stale-handle bugs")
				}
			case *ast.BinaryExpr:
				if (n.Op == token.EQL || n.Op == token.NEQ) && (isTimerPtr(n.X) || isTimerPtr(n.Y)) {
					p.Reportf(n.Pos(), "comparing *sim.Timer pointers; compare engine state via Pending/When instead")
				}
			}
			return true
		})
	}
}
