package analysis

import (
	"go/token"
	"regexp"
	"strings"
)

// allowRe matches "//simlint:allow(<analyzer>)" with an optional trailing
// reason. The reason is mandatory for the annotation to be valid; matching it
// separately lets us report its absence precisely.
var allowRe = regexp.MustCompile(`^//\s*simlint:allow\(([^)\s]*)\)\s*(.*)$`)

// allow is one parsed //simlint:allow annotation.
type allow struct {
	pos      token.Position
	analyzer string
	reason   string
}

// applyAllows filters raw findings through the //simlint:allow annotations in
// pkg. A valid annotation (known analyzer, non-empty reason) suppresses every
// finding of that analyzer on its own line and on the line directly below it,
// so both trailing and preceding-line comments work:
//
//	start := time.Now() //simlint:allow(determinism) wall-clock perf counter
//
//	//simlint:allow(determinism) wall-clock perf counter
//	start := time.Now()
//
// Malformed annotations become findings themselves: a missing reason or an
// unknown analyzer name must be fixed, never silently ignored.
func applyAllows(pkg *Package, analyzers []*Analyzer, raw []Diagnostic) []Diagnostic {
	// An annotation may name any suite analyzer, not just the ones in this
	// run: fixture tests run analyzers one at a time, and an annotation for a
	// sibling analyzer must not read as unknown there.
	known := map[string]bool{}
	for _, a := range Suite() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var allows []allow
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				m := allowRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				name, reason := m[1], strings.TrimSpace(m[2])
				// Cut an analysistest expectation off the reason, so
				// fixtures can assert findings on annotation lines.
				if i := strings.Index(reason, "// want"); i >= 0 {
					reason = strings.TrimSpace(reason[:i])
				}
				switch {
				case !known[name]:
					out = append(out, Diagnostic{
						Pos:      pos,
						Analyzer: "simlint",
						Message:  "simlint:allow names unknown analyzer " + quoteName(name),
					})
				case reason == "":
					out = append(out, Diagnostic{
						Pos:      pos,
						Analyzer: "simlint",
						Message:  "simlint:allow(" + name + ") needs a reason after the closing parenthesis",
					})
				default:
					allows = append(allows, allow{pos: pos, analyzer: name, reason: reason})
				}
			}
		}
	}

	suppressed := func(d Diagnostic) bool {
		for _, a := range allows {
			if a.analyzer == d.Analyzer && a.pos.Filename == d.Pos.Filename &&
				(a.pos.Line == d.Pos.Line || a.pos.Line+1 == d.Pos.Line) {
				return true
			}
		}
		return false
	}
	for _, d := range raw {
		if !suppressed(d) {
			out = append(out, d)
		}
	}
	return out
}

// quoteName quotes a possibly-empty analyzer name for a message.
func quoteName(s string) string {
	if s == "" {
		return `"" (empty)`
	}
	return `"` + s + `"`
}
