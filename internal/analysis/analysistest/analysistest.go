// Package analysistest runs analyzers over fixture packages and checks their
// findings against // want "regexp" comments, mirroring the x/tools package
// of the same name on top of the standard library only.
//
// A fixture line expecting one finding per analyzer looks like:
//
//	now := time.Now() // want "wall clock"
//
// Each quoted string is a regular expression that must match the message of
// exactly one finding reported on that line; findings with no matching want,
// and wants with no matching finding, fail the test. Findings suppressed by
// a valid //simlint:allow annotation never reach the matcher, so fixtures
// also prove the allowlist path end to end.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/rlb-project/rlb/internal/analysis"
)

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantRe captures each expectation regexp in a // want comment, written as a
// double-quoted or backquoted Go-style string.
var wantRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// Run loads pkgPath from the GOPATH-style tree rooted at srcRoot (fixture
// sources live in srcRoot/<pkgPath>) and checks the analyzers' findings
// against the fixture's want comments.
func Run(t *testing.T, srcRoot, pkgPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	RunMulti(t, srcRoot, []string{pkgPath}, analyzers...)
}

// RunMulti is Run over several fixture packages analyzed together: every
// listed package (plus any fixture packages they import) joins one
// interprocedural module, so cross-package facts — a sink helper in one
// package consuming packets for a caller in another, a handler in one
// package making a helper in another hot — hold exactly as they do in real
// module-wide runs. Findings are checked against the want comments of every
// listed package.
func RunMulti(t *testing.T, srcRoot string, pkgPaths []string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	ld := analysis.NewLoader(analysis.TreeResolver(srcRoot))
	pkgs := make([]*analysis.Package, 0, len(pkgPaths))
	for _, pkgPath := range pkgPaths {
		dir := filepath.Join(srcRoot, filepath.FromSlash(pkgPath))
		pkg, err := ld.Load(pkgPath, dir)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkgPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	mod := analysis.NewModule(ld.Loaded())

	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					// The marker may open the comment ("// want ...") or be
					// embedded after other directive text ("//simlint:allow(x)
					// want ..." — asserting on the annotation's own line).
					text := "// " + strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					i := strings.Index(text, "// want ")
					if i < 0 {
						continue
					}
					rest := text[i+len("// want "):]
					pos := pkg.Fset.Position(c.Pos())
					for _, m := range wantRe.FindAllStringSubmatch(rest, -1) {
						expr := m[1]
						if m[2] != "" {
							expr = m[2]
						}
						re, err := regexp.Compile(expr)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, expr, err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}

	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, mod.Analyze(pkg, analyzers)...)
	}
	for _, d := range diags {
		if !claim(wants, d.Pos, d.Analyzer+": "+d.Message) && !claim(wants, d.Pos, d.Message) {
			t.Errorf("unexpected finding at %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched %q", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unmatched want on the finding's line whose regexp
// matches msg.
func claim(wants []*want, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// Fixture returns the conventional fixture root: <dir>/testdata/src.
func Fixture(dir string) string { return filepath.Join(dir, "testdata", "src") }
