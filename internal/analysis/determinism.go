package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// simPackages are the import-path suffixes of packages whose code runs inside
// (or builds) a simulation and must therefore be bit-reproducible by seed.
var simPackages = []string{
	"internal/sim", "internal/fabric", "internal/switchsim", "internal/transport",
	"internal/dcqcn", "internal/core", "internal/lb", "internal/topo",
	"internal/workload", "internal/harness", "internal/scenario", "internal/spec",
	"internal/flatmap", "internal/telemetry",
}

// concurrencyAllowed are packages exempt from the goroutine/select rule:
// internal/harness fans independent simulations out to worker goroutines,
// and internal/scenario fans independent scenario checks out the same way.
// Each worker owns a disjoint engine, RNG stream, and network, so worker
// scheduling cannot reach any single simulation's event order (the
// worker-isolation contract documented at the `go func` sites in both).
var concurrencyAllowed = []string{"internal/harness", "internal/scenario"}

// wallClockFuncs are time-package functions that read or depend on the wall
// clock. Simulations must use sim.Time from the engine instead.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "Sleep": true,
}

func inSimPackage(path string) bool {
	for _, s := range simPackages {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

// Determinism forbids nondeterminism sources in simulation packages: wall
// -clock reads, math/rand (use internal/rng with an explicit seed), goroutine
// creation and select statements (except the harness worker fan-out), and
// range over a map whose body is order-dependent — the sanctioned idiom is
// extracting the keys, sorting, and iterating the sorted slice.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, math/rand, goroutines/select, and " +
		"order-dependent map iteration in simulation packages",
	Run: runDeterminism,
}

func runDeterminism(p *Pass) {
	if !inSimPackage(p.Pkg.Path) {
		return
	}
	goOK := false
	for _, s := range concurrencyAllowed {
		if pathHasSuffix(p.Pkg.Path, s) {
			goOK = true
		}
	}
	for _, f := range p.Pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp.Pos(), "import of %s in simulation package; use internal/rng with an explicit seed", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if !goOK {
					p.Reportf(n.Pos(), "go statement in simulation package; simulations are single-threaded, parallelism belongs in internal/harness")
				}
			case *ast.SelectStmt:
				if !goOK {
					p.Reportf(n.Pos(), "select statement in simulation package; channel scheduling is nondeterministic")
				}
			case *ast.CallExpr:
				if fn := calleeFunc(p, n); fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == "time" && wallClockFuncs[fn.Name()] {
					p.Reportf(n.Pos(), "time.%s reads the wall clock; simulations must use sim.Time from the engine", fn.Name())
				}
			case *ast.RangeStmt:
				checkMapRange(p, f, n)
			}
			return true
		})
	}
}

// calleeFunc resolves the called function object, or nil.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.ObjectOf(id).(*types.Func)
	return fn
}

// checkMapRange flags a range over a map whose body is order-dependent.
// Order-independent (allowed) bodies are built from: per-iteration locals,
// commutative compound assignments (x += v, n++, b |= v, ...), writes indexed
// by the iteration key (other[k] = v, delete(m, k)), continue, pure
// if/else over those, and the sorted-key idiom — appending to a slice that is
// sorted later in the same function.
func checkMapRange(p *Pass, file *ast.File, rng *ast.RangeStmt) {
	t := p.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	cls := &rangeClassifier{pass: p, file: file, rng: rng, locals: map[types.Object]bool{}}
	for _, id := range []ast.Expr{rng.Key, rng.Value} {
		if ident, ok := id.(*ast.Ident); ok && ident.Name != "_" {
			if obj := p.ObjectOf(ident); obj != nil {
				cls.locals[obj] = true
			}
		}
	}
	if bad := cls.firstUnsafe(rng.Body.List); bad != nil {
		p.Reportf(bad.Pos(), "order-dependent statement inside range over map %s; extract keys into a slice, sort, and iterate that", exprString(rng.X))
	}
}

// rangeClassifier walks a map-range body deciding order safety.
type rangeClassifier struct {
	pass   *Pass
	file   *ast.File
	rng    *ast.RangeStmt
	locals map[types.Object]bool // objects declared inside the loop body
}

// firstUnsafe returns the first order-dependent statement, or nil.
func (c *rangeClassifier) firstUnsafe(stmts []ast.Stmt) ast.Stmt {
	for _, s := range stmts {
		if bad := c.unsafeStmt(s); bad != nil {
			return bad
		}
	}
	return nil
}

func (c *rangeClassifier) unsafeStmt(s ast.Stmt) ast.Stmt {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if s.Tok == token.DEFINE {
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					if obj := c.pass.ObjectOf(id); obj != nil {
						c.locals[obj] = true
					}
				}
			}
			return nil
		}
		if s.Tok != token.ASSIGN {
			// Compound assignments: += -= *= /= %= |= &= ^= etc. All but /=
			// and %= commute across iterations; division by per-key values is
			// order-dependent in floating point but absent from this tree, so
			// treat any compound aggregation as safe. Shifts are not.
			if s.Tok == token.SHL_ASSIGN || s.Tok == token.SHR_ASSIGN {
				return s
			}
			return nil
		}
		for i, lhs := range s.Lhs {
			if !c.safePlainAssign(lhs, s.Rhs, i) {
				return s
			}
		}
		return nil
	case *ast.IncDecStmt:
		return nil
	case *ast.DeclStmt:
		return nil
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" {
				if _, isBuiltin := c.pass.ObjectOf(id).(*types.Builtin); isBuiltin {
					return nil
				}
			}
		}
		return s
	case *ast.IfStmt:
		if s.Init != nil {
			if bad := c.unsafeStmt(s.Init); bad != nil {
				return bad
			}
		}
		if containsCall(s.Cond) {
			return s
		}
		if bad := c.firstUnsafe(s.Body.List); bad != nil {
			return bad
		}
		if s.Else != nil {
			if bad := c.unsafeStmt(s.Else); bad != nil {
				return bad
			}
		}
		return nil
	case *ast.BlockStmt:
		return c.firstUnsafe(s.List)
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE {
			return nil
		}
		return s
	case nil:
		return nil
	default:
		return s
	}
}

// safePlainAssign decides whether a plain "=" assignment target is order
// independent: a local of this iteration, an index write into a map, or the
// sorted-append idiom.
func (c *rangeClassifier) safePlainAssign(lhs ast.Expr, rhs []ast.Expr, i int) bool {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return true
		}
		if obj := c.pass.ObjectOf(lhs); obj != nil && c.locals[obj] {
			return true
		}
		// s = append(s, ...) where s is sorted after the loop.
		if i < len(rhs) {
			if call, ok := ast.Unparen(rhs[i]).(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
					if _, isBuiltin := c.pass.ObjectOf(id).(*types.Builtin); isBuiltin {
						return c.sortedAfterLoop(lhs)
					}
				}
			}
		}
		return false
	case *ast.IndexExpr:
		t := c.pass.TypeOf(lhs.X)
		if t == nil {
			return false
		}
		_, isMap := t.Underlying().(*types.Map)
		return isMap
	case *ast.SelectorExpr:
		// field write on a per-iteration local (e.g. v := m[k]; v.f = ...)
		if id, ok := ast.Unparen(lhs.X).(*ast.Ident); ok {
			if obj := c.pass.ObjectOf(id); obj != nil && c.locals[obj] {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// sortedAfterLoop reports whether the slice object named by id is passed to a
// sort call somewhere after the range statement in the same function.
func (c *rangeClassifier) sortedAfterLoop(id *ast.Ident) bool {
	obj := c.pass.ObjectOf(id)
	if obj == nil {
		return false
	}
	fn := enclosingFunc(c.file, c.rng.Pos())
	if fn == nil {
		return false
	}
	sorted := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < c.rng.End() {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := c.pass.ObjectOf(pkgID).(*types.PkgName)
		if !ok {
			return true
		}
		ip := pn.Imported().Path()
		if ip != "sort" && ip != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if aid, ok := ast.Unparen(arg).(*ast.Ident); ok && c.pass.ObjectOf(aid) == obj {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

// containsCall reports whether expr contains any function call (len and cap
// are allowed: they are pure).
func containsCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
				return true
			}
			found = true
			return false
		}
		return true
	})
	return found
}

// enclosingFunc returns the innermost function declaration or literal whose
// body spans pos.
func enclosingFunc(f *ast.File, pos token.Pos) ast.Node {
	var best ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil && n.Body.Pos() <= pos && pos < n.Body.End() {
				best = n
			}
		case *ast.FuncLit:
			if n.Body.Pos() <= pos && pos < n.Body.End() {
				best = n
			}
		}
		return true
	})
	return best
}

// exprString renders a short source form of e for messages.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.ParenExpr:
		return exprString(e.X)
	default:
		return "expression"
	}
}
