package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// registry is one statically extracted name set a dispatch can drift from.
type registry struct {
	// kind labels the registry in messages: "scheme" or "workload".
	kind string
	// source describes where the names were extracted from.
	source string
	names  map[string]bool
	sorted []string
}

// Exhaustive is the registry-drift analyzer: it statically extracts the
// scheme and workload name registries — the BaseSchemes slice literal in
// internal/spec and the SizeDist{Name: ...} literals in internal/workload —
// and flags every switch statement or map literal that dispatches over one
// of those registries while missing an entry. A dispatch "over" a registry
// is one whose constant string labels overlap it in at least two names and
// at least half the labels; presentation slices (FourSchemes and friends)
// are not dispatches and are never matched. A default clause does not
// excuse a missing case: registry-validating error paths live in default,
// so a silently absorbed new scheme is exactly the drift this catches.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc: "switches and map literals dispatching over the scheme/workload " +
		"name registries must cover every registered name",
	Run: runExhaustive,
}

func runExhaustive(p *Pass) {
	regs := p.Mod.Registries()
	if len(regs) == 0 {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				labels, ok := switchLabels(p, n)
				if ok {
					checkDispatch(p, n.Pos(), "switch", labels, regs)
				}
			case *ast.CompositeLit:
				labels, ok := mapKeyLabels(p, n)
				if ok {
					checkDispatch(p, n.Pos(), "map literal", labels, regs)
				}
			}
			return true
		})
	}
}

// Registries extracts the module's name registries, memoized.
func (m *Module) Registries() []registry {
	if m.regBuilt {
		return m.registries
	}
	m.regBuilt = true
	if r, ok := extractSchemeRegistry(m); ok {
		m.registries = append(m.registries, r)
	}
	if r, ok := extractWorkloadRegistry(m); ok {
		m.registries = append(m.registries, r)
	}
	return m.registries
}

// extractSchemeRegistry finds the BaseSchemes = []string{...} declaration in
// a package whose import path ends in internal/spec.
func extractSchemeRegistry(m *Module) (registry, bool) {
	for _, pkg := range m.Pkgs {
		if !pathHasSuffix(pkg.Path, "internal/spec") {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if name.Name != "BaseSchemes" || i >= len(vs.Values) {
							continue
						}
						cl, ok := ast.Unparen(vs.Values[i]).(*ast.CompositeLit)
						if !ok {
							continue
						}
						r := registry{kind: "scheme", source: pkg.Path + ".BaseSchemes", names: map[string]bool{}}
						for _, el := range cl.Elts {
							if s, ok := constString(pkg, el); ok {
								r.names[s] = true
							}
						}
						if len(r.names) > 0 {
							r.finish()
							return r, true
						}
					}
				}
			}
		}
	}
	return registry{}, false
}

// extractWorkloadRegistry collects the Name: "..." fields of every SizeDist
// composite literal in a package whose import path ends in internal/workload.
func extractWorkloadRegistry(m *Module) (registry, bool) {
	r := registry{kind: "workload", names: map[string]bool{}}
	for _, pkg := range m.Pkgs {
		if !pathHasSuffix(pkg.Path, "internal/workload") {
			continue
		}
		if r.source == "" {
			r.source = pkg.Path + " SizeDist literals"
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				cl, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				t := pkg.Info.TypeOf(cl)
				if t == nil || !isNamed(t, "internal/workload", "SizeDist") {
					return true
				}
				for _, el := range cl.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok || key.Name != "Name" {
						continue
					}
					if s, ok := constString(pkg, kv.Value); ok {
						r.names[s] = true
					}
				}
				return true
			})
		}
	}
	if len(r.names) == 0 {
		return registry{}, false
	}
	r.finish()
	return r, true
}

func (r *registry) finish() {
	r.sorted = make([]string, 0, len(r.names))
	for n := range r.names {
		r.sorted = append(r.sorted, n)
	}
	sort.Strings(r.sorted)
}

// switchLabels collects the constant string case labels of a string switch.
// ok is false when the switch is not a plain string dispatch (no tag, or a
// non-constant case expression the analysis cannot enumerate).
func switchLabels(p *Pass, sw *ast.SwitchStmt) ([]string, bool) {
	if sw.Tag == nil {
		return nil, false
	}
	var labels []string
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			return nil, false
		}
		for _, e := range cc.List {
			s, ok := constString(p.Pkg, e)
			if !ok {
				return nil, false
			}
			labels = append(labels, s)
		}
	}
	return labels, len(labels) > 0
}

// mapKeyLabels collects the constant string keys of a map literal dispatch.
func mapKeyLabels(p *Pass, cl *ast.CompositeLit) ([]string, bool) {
	t := p.TypeOf(cl)
	if t == nil {
		return nil, false
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return nil, false
	}
	var labels []string
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			return nil, false
		}
		s, ok := constString(p.Pkg, kv.Key)
		if !ok {
			return nil, false
		}
		labels = append(labels, s)
	}
	return labels, len(labels) > 0
}

// constString evaluates e as a constant string.
func constString(pkg *Package, e ast.Expr) (string, bool) {
	tv, ok := pkg.Info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// checkDispatch matches one dispatch's labels against every registry and
// reports the missing names of any registry the dispatch is "over".
func checkDispatch(p *Pass, pos token.Pos, form string, labels []string, regs []registry) {
	for _, r := range regs {
		hits := 0
		have := map[string]bool{}
		for _, l := range labels {
			if r.names[l] {
				hits++
				have[l] = true
			}
		}
		// "Over" the registry: at least two registered names and at least
		// half the labels — a lone registered name in an unrelated switch
		// is coincidence, not dispatch.
		if hits < 2 || hits*2 < len(labels) {
			continue
		}
		var missing []string
		for _, name := range r.sorted {
			if !have[name] {
				missing = append(missing, name)
			}
		}
		if len(missing) == 0 {
			continue
		}
		p.Reportf(pos, "%s dispatches over %s names but misses registered %s %s (registry: %s); add the case or route it explicitly",
			form, r.kind, plural("name", len(missing)), quoteList(missing), r.source)
	}
}

func plural(s string, n int) string {
	if n == 1 {
		return s
	}
	return s + "s"
}

func quoteList(names []string) string {
	quoted := make([]string, len(names))
	for i, n := range names {
		quoted[i] = `"` + n + `"`
	}
	return strings.Join(quoted, ", ")
}
