package analysis_test

import (
	"strings"
	"testing"

	"github.com/rlb-project/rlb/internal/analysis"
	"github.com/rlb-project/rlb/internal/analysis/analysistest"
)

// TestAllowAnnotationFixture drives the annotation path end to end over a
// fixture: a reasonless annotation is a finding and suppresses nothing, an
// unknown analyzer name is a finding, an annotation for the wrong analyzer
// does not suppress, and a valid annotation does.
func TestAllowAnnotationFixture(t *testing.T) {
	src := analysistest.Fixture(".")
	analysistest.Run(t, src, "allowfix.example/internal/lb", analysis.Determinism)
}

// TestAllowDiagnosticsSurviveDriver checks the malformed-annotation findings
// as the driver reports them: attributed to the pseudo-analyzer "simlint"
// and counted as ordinary findings.
func TestAllowDiagnosticsSurviveDriver(t *testing.T) {
	src := analysistest.Fixture(".")
	ld := analysis.NewLoader(analysis.TreeResolver(src))
	diags, err := analysis.RunPackages(ld, []string{"allowfix.example/internal/lb"})
	if err != nil {
		t.Fatalf("RunPackages: %v", err)
	}
	var missingReason, unknownName int
	for _, d := range diags {
		if d.Analyzer != "simlint" {
			continue
		}
		switch {
		case strings.Contains(d.Message, "needs a reason"):
			missingReason++
		case strings.Contains(d.Message, "unknown analyzer"):
			unknownName++
		default:
			t.Errorf("unexpected simlint diagnostic: %s", d)
		}
	}
	if missingReason != 1 {
		t.Errorf("missing-reason findings = %d, want 1", missingReason)
	}
	if unknownName != 1 {
		t.Errorf("unknown-analyzer findings = %d, want 1", unknownName)
	}
}
