package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotpath is the static form of PR 2's 0-allocs/op benchmark assertion:
// every function reachable from a sim.Handler.OnEvent implementation — the
// per-event dispatch path the simulator executes millions of times per run —
// must not allocate. The call graph marks the reachable set (through
// concrete calls, devirtualized interface calls like Router.Route and the
// scheduler's push/popLE, and locally-called function literals), and this
// analyzer flags the allocation sites inside it:
//
//   - new(T) and make(...)
//   - map and slice composite literals
//   - &T{...} composite literals (heap-escaping in the general case)
//   - growing append — amortized free-list growth is the sanctioned
//     exception, annotated //simlint:allow(hotpath) at each site
//   - escaping function literals (closure capture allocates; a literal
//     bound to a local and only ever called runs inline and is exempt)
//   - fmt calls and non-constant string concatenation (boxing/building)
//
// It also enforces the data plane's map discipline: built-in map indexing,
// assignment, delete, and range in a hot function are flagged even though
// they may not allocate. A built-in map access hashes with runtime calls
// and chases buckets per packet, and map range order is where
// nondeterminism classically leaks into an event schedule; hot per-packet
// state belongs in internal/flatmap's open-addressed tables or dense stamp
// rows. Cold-path maps (setup, reporting) are fine — they are not
// reachable from OnEvent.
//
// Arguments of panic(...) are exempt: the failure path is allowed to format.
// Observer packages (trace, invariant) outside the simPackages list are not
// reported — they are opt-in diagnostics, not the steady-state data plane.
// Each finding carries the shortest OnEvent call chain that makes the
// function hot, so the fix target is visible from the message alone.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc: "forbid heap allocation in functions reachable from " +
		"sim.Handler.OnEvent implementations (the event dispatch hot path)",
	Run: runHotpath,
}

func runHotpath(p *Pass) {
	if !inSimPackage(p.Pkg.Path) {
		return
	}
	cg := p.Mod.CallGraph()
	pred := cg.hotSet()
	for _, node := range cg.sortedNodes() {
		if node.pkg != p.Pkg {
			continue
		}
		if _, hot := pred[node]; !hot {
			continue
		}
		checkAllocs(p, node, trace(pred, node))
	}
}

// checkAllocs flags every allocation site in node's own body (nested
// function literals are their own nodes and are checked if reachable).
func checkAllocs(p *Pass, node *cgNode, chain string) {
	report := func(pos token.Pos, what string) {
		p.Reportf(pos, "%s in event hot path (%s); preallocate or reuse", what, chain)
	}
	reportMap := func(pos token.Pos, what string) {
		p.Reportf(pos, "%s in event hot path (%s); use internal/flatmap or a dense slice", what, chain)
	}
	panicArgs := panicArgRanges(node.body)
	exempt := func(pos token.Pos) bool {
		for _, r := range panicArgs {
			if r[0] <= pos && pos < r[1] {
				return true
			}
		}
		return false
	}
	litEsc := escapingLits(p.Pkg, node.body)

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n == node.lit {
				return true
			}
			if litEsc[n] && !exempt(n.Pos()) {
				report(n.Pos(), "escaping function literal (closure allocates)")
			}
			return false // the literal's body is its own call-graph node
		case *ast.CallExpr:
			if exempt(n.Pos()) {
				return true
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := p.ObjectOf(id).(*types.Builtin); isBuiltin {
					switch id.Name {
					case "new":
						report(n.Pos(), "new(...)")
					case "make":
						report(n.Pos(), "make(...)")
					case "append":
						report(n.Pos(), "append (may grow the backing array)")
					case "delete":
						if len(n.Args) == 2 && isMapType(p.TypeOf(n.Args[0])) {
							reportMap(n.Pos(), "built-in map delete")
						}
					}
					return true
				}
			}
			if fn := calleeFunc(p, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				report(n.Pos(), "fmt."+fn.Name()+" (formats and boxes arguments)")
			}
		case *ast.CompositeLit:
			if exempt(n.Pos()) {
				return true
			}
			t := p.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				report(n.Pos(), "map literal")
			case *types.Slice:
				report(n.Pos(), "slice literal")
			}
		case *ast.UnaryExpr:
			if n.Op != token.AND || exempt(n.Pos()) {
				return true
			}
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				report(n.Pos(), "&composite literal (heap allocation)")
			}
		case *ast.IndexExpr:
			if exempt(n.Pos()) {
				return true
			}
			if isMapType(p.TypeOf(n.X)) {
				reportMap(n.Pos(), "built-in map access (hash + bucket probe per packet)")
			}
		case *ast.RangeStmt:
			if exempt(n.Pos()) {
				return true
			}
			if isMapType(p.TypeOf(n.X)) {
				reportMap(n.X.Pos(), "built-in map range (nondeterministic iteration order)")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && !exempt(n.Pos()) {
				if t := p.TypeOf(n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						if tv, ok := p.Pkg.Info.Types[n]; !ok || tv.Value == nil {
							report(n.Pos(), "string concatenation")
						}
					}
				}
			}
		}
		return true
	}
	ast.Inspect(node.body, walk)
}

// isMapType reports whether t's underlying type is a built-in map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// panicArgRanges returns the source ranges of every panic(...) argument list
// in body: formatting a message on the failure path is not a hot-path cost.
func panicArgRanges(body *ast.BlockStmt) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			out = append(out, [2]token.Pos{call.Lparen, call.Rparen + 1})
		}
		return true
	})
	return out
}

// escapingLits classifies every function literal in body: a literal is
// non-escaping when it is immediately invoked, or bound to local variables
// whose every use is a direct call — those run inline on the current stack.
// Anything else (passed as an argument, stored in a field, returned)
// escapes to the heap with its captures.
func escapingLits(pkg *Package, body *ast.BlockStmt) map[*ast.FuncLit]bool {
	esc := map[*ast.FuncLit]bool{}
	boundTo := map[*ast.FuncLit][]types.Object{}
	litOf := map[types.Object][]*ast.FuncLit{}

	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
		}
		return true
	})
	if len(lits) == 0 {
		return esc
	}

	for obj, ls := range litBindings(pkg, body) {
		for _, l := range ls {
			boundTo[l] = append(boundTo[l], obj)
			litOf[obj] = append(litOf[obj], l)
		}
	}

	// A literal's binding variable must only be used in call position
	// (f(...)), not passed or stored; assignment LHS occurrences re-binding
	// the variable do not count as uses.
	onlyCalled := map[types.Object]bool{}
	for obj := range litOf {
		onlyCalled[obj] = true
	}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if id, ok := n.(*ast.Ident); ok {
			obj := pkg.Info.ObjectOf(id)
			if obj != nil && onlyCalled[obj] && !identIsCallFunOrBinding(stack, id) {
				onlyCalled[obj] = false
			}
		}
		stack = append(stack, n)
		return true
	})

	// Immediately-invoked literals never escape.
	iife := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
				iife[lit] = true
			}
		}
		return true
	})

	for _, lit := range lits {
		if iife[lit] {
			continue
		}
		objs := boundTo[lit]
		ok := len(objs) > 0
		for _, obj := range objs {
			if !onlyCalled[obj] {
				ok = false
			}
		}
		if !ok {
			esc[lit] = true
		}
	}
	return esc
}

// identIsCallFunOrBinding reports whether, given the ancestor stack, ident id
// is the function operand of a call (f(...)) or the left-hand side of an
// assignment/declaration (a re-binding, not a use).
func identIsCallFunOrBinding(stack []ast.Node, id *ast.Ident) bool {
	// Walk inward past parens.
	var parent ast.Node
	child := ast.Node(id)
	for i := len(stack) - 1; i >= 0; i-- {
		if p, ok := stack[i].(*ast.ParenExpr); ok {
			child = p
			continue
		}
		parent = stack[i]
		break
	}
	switch p := parent.(type) {
	case *ast.CallExpr:
		return ast.Unparen(p.Fun) == ast.Unparen(child.(ast.Expr))
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if ast.Unparen(lhs) == child {
				return true
			}
		}
	case *ast.ValueSpec:
		for _, name := range p.Names {
			if name == id {
				return true
			}
		}
	}
	return false
}
