package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// callGraph is a module-wide static call graph over every function and
// function literal in the analysis scope. Edges come from four sources:
// direct calls to declared functions, concrete method calls, interface
// method calls devirtualized to every in-scope implementation (the
// interfaces that matter here — sim.Handler, the scheduler interface,
// switchsim.Router, fabric.Device, the lb decision interfaces — are all
// small and closed within the module, so devirtualization is precise), and
// calls through local variables bound to function literals. Function values
// stored in struct fields or passed as arguments are not traced; the tree's
// conventions (typed events instead of callbacks on the hot path) make that
// the cold-path case.
type callGraph struct {
	mod *Module

	// nodes, keyed by the function's declaration node (*ast.FuncDecl or
	// *ast.FuncLit).
	nodes map[ast.Node]*cgNode
	// byFunc maps a declared function or method object to its node.
	byFunc map[*types.Func]*cgNode

	// implCache memoizes devirtualization: interface method -> concrete
	// implementing methods, keyed by interface type and method name.
	implCache map[implKey][]*types.Func

	// hotPred memoizes the event hot set: for every function reachable from
	// a sim.Handler.OnEvent implementation, its BFS predecessor on a
	// shortest path from a root (roots map to nil).
	hotPred  map[*cgNode]*cgNode
	hotBuilt bool
}

// hotSet returns the memoized OnEvent reachability map.
func (cg *callGraph) hotSet() map[*cgNode]*cgNode {
	if !cg.hotBuilt {
		cg.hotPred = cg.reachableFrom(cg.handlerRoots())
		cg.hotBuilt = true
	}
	return cg.hotPred
}

// cgNode is one function (declared or literal) in the call graph.
type cgNode struct {
	// fn is the declared function object; nil for function literals.
	fn *types.Func
	// lit is the literal; nil for declared functions.
	lit *ast.FuncLit
	// decl is the declaration; nil for literals.
	decl *ast.FuncDecl
	pkg  *Package
	body *ast.BlockStmt

	// callees are the resolved outgoing edges, deduplicated, in source
	// order of first occurrence.
	callees []*cgNode

	// scc is the index of this node's strongly connected component in
	// reverse topological order (callees' SCCs are numbered <= the
	// caller's, with equality exactly within a cycle).
	scc int
}

// name renders a human-readable function name for traces:
// "(*Switch).OnEvent", "Release", or "func literal in (*Switch).OnEvent".
func (n *cgNode) name() string {
	if n.fn != nil {
		sig := n.fn.Type().(*types.Signature)
		if recv := sig.Recv(); recv != nil {
			t := recv.Type()
			if ptr, ok := t.(*types.Pointer); ok {
				return "(*" + typeBaseName(ptr.Elem()) + ")." + n.fn.Name()
			}
			return "(" + typeBaseName(t) + ")." + n.fn.Name()
		}
		return n.fn.Name()
	}
	return "func literal"
}

func typeBaseName(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

type implKey struct {
	iface  *types.Interface
	method string
}

// buildCallGraph constructs the graph over every function in mod and runs
// Tarjan's SCC algorithm so summaries can be computed bottom-up.
func buildCallGraph(mod *Module) *callGraph {
	cg := &callGraph{
		mod:       mod,
		nodes:     map[ast.Node]*cgNode{},
		byFunc:    map[*types.Func]*cgNode{},
		implCache: map[implKey][]*types.Func{},
	}
	// Pass 1: create a node per function declaration and literal.
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				node := &cgNode{fn: fn, decl: fd, pkg: pkg, body: fd.Body}
				cg.nodes[fd] = node
				cg.byFunc[fn] = node
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						cg.nodes[lit] = &cgNode{lit: lit, pkg: pkg, body: lit.Body}
					}
					return true
				})
			}
		}
	}
	// Pass 2: edges.
	for _, node := range cg.nodes {
		cg.addEdges(node)
	}
	cg.condenseSCCs()
	return cg
}

// addEdges walks node's body (excluding nested literal bodies, which are
// their own nodes) resolving call sites to callee nodes.
func (cg *callGraph) addEdges(node *cgNode) {
	seen := map[*cgNode]bool{}
	add := func(callee *cgNode) {
		if callee != nil && !seen[callee] {
			seen[callee] = true
			node.callees = append(node.callees, callee)
		}
	}
	// Local function-literal bindings: f := func() {...}; f() is an edge to
	// the literal. A variable rebound to several literals edges to all.
	litVars := litBindings(node.pkg, node.body)

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n != node.lit {
				return false // nested literal: its own node walks its body
			}
		case *ast.CallExpr:
			for _, callee := range cg.resolveCall(node.pkg, n, litVars) {
				add(callee)
			}
		}
		return true
	}
	ast.Inspect(node.body, walk)
}

// litBindings collects, within body, the local variables bound to function
// literals: f := func(){...}, var f = func(){...}, f = func(){...}.
func litBindings(pkg *Package, body *ast.BlockStmt) map[types.Object][]*ast.FuncLit {
	out := map[types.Object][]*ast.FuncLit{}
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
		if !ok {
			return
		}
		if obj := pkg.Info.ObjectOf(id); obj != nil {
			out[obj] = append(out[obj], lit)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i := range n.Lhs {
				if i < len(n.Rhs) {
					bind(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i := range n.Names {
				if i < len(n.Values) {
					bind(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// resolveCall maps one call expression to its possible callee nodes:
// a single node for direct and concrete-method calls, every implementing
// method for an interface call, every bound literal for a local
// function-variable call, and nil for calls the graph does not trace
// (builtins, the standard library, function values from fields or
// parameters).
func (cg *callGraph) resolveCall(pkg *Package, call *ast.CallExpr, litVars map[types.Object][]*ast.FuncLit) []*cgNode {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj := pkg.Info.ObjectOf(fun)
		switch obj := obj.(type) {
		case *types.Func:
			if n := cg.byFunc[obj]; n != nil {
				return []*cgNode{n}
			}
		case *types.Var:
			var out []*cgNode
			for _, lit := range litVars[obj] {
				if n := cg.nodes[lit]; n != nil {
					out = append(out, n)
				}
			}
			return out
		}
		return nil
	case *ast.FuncLit:
		// Immediately-invoked literal.
		if n := cg.nodes[fun]; n != nil {
			return []*cgNode{n}
		}
		return nil
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv()) {
				return cg.implNodes(sel.Recv(), fun.Sel.Name)
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				if n := cg.byFunc[fn]; n != nil {
					return []*cgNode{n}
				}
			}
			return nil
		}
		// Qualified call pkg.F(...) or method expression.
		if fn, ok := pkg.Info.ObjectOf(fun.Sel).(*types.Func); ok {
			if n := cg.byFunc[fn]; n != nil {
				return []*cgNode{n}
			}
		}
		return nil
	}
	return nil
}

// implNodes devirtualizes an interface method call: the callee set is the
// method on every in-scope named type whose method set satisfies the
// interface.
func (cg *callGraph) implNodes(recv types.Type, method string) []*cgNode {
	var out []*cgNode
	for _, fn := range cg.implementers(recv, method) {
		if n := cg.byFunc[fn]; n != nil {
			out = append(out, n)
		}
	}
	return out
}

// implementers returns the concrete methods implementing (iface, method)
// across every named type declared in the module, memoized.
func (cg *callGraph) implementers(recv types.Type, method string) []*types.Func {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	key := implKey{iface: iface, method: method}
	if got, ok := cg.implCache[key]; ok {
		return got
	}
	seen := map[*types.Func]bool{}
	var out []*types.Func
	for _, pkg := range cg.mod.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			// The pointer method set is the superset; a type whose pointer
			// satisfies the interface can be the dynamic value behind it.
			ptr := types.NewPointer(named)
			if !types.Implements(ptr, iface) && !types.Implements(named, iface) {
				continue
			}
			ms := types.NewMethodSet(ptr)
			sel := ms.Lookup(nil, method)
			if sel == nil {
				// Method may be unexported and defined in another package.
				sel = ms.Lookup(tn.Pkg(), method)
			}
			if sel == nil {
				continue
			}
			if fn, ok := sel.Obj().(*types.Func); ok && !seen[fn] {
				seen[fn] = true
				out = append(out, fn)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return funcKey(out[i]) < funcKey(out[j]) })
	cg.implCache[key] = out
	return out
}

// funcKey is a stable sort key for a function object.
func funcKey(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	return pkg + "." + fn.FullName()
}

// condenseSCCs runs Tarjan's algorithm, assigning every node its strongly
// connected component index in reverse topological order (a callee's SCC
// index is <= its caller's, equal exactly inside a cycle), so a bottom-up
// pass over components visits callees before callers.
func (cg *callGraph) condenseSCCs() {
	index := map[*cgNode]int{}
	low := map[*cgNode]int{}
	onStack := map[*cgNode]bool{}
	var stack []*cgNode
	next := 0
	sccCount := 0

	var strongconnect func(v *cgNode)
	strongconnect = func(v *cgNode) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range v.callees {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				w.scc = sccCount
				if w == v {
					break
				}
			}
			sccCount++
		}
	}

	// Deterministic iteration order: nodes sorted by position.
	all := cg.sortedNodes()
	for _, v := range all {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
}

// sortedNodes returns every node ordered by package path then source
// position — a deterministic traversal order for fixpoints and reports.
func (cg *callGraph) sortedNodes() []*cgNode {
	out := make([]*cgNode, 0, len(cg.nodes))
	for _, n := range cg.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pkg.Path != out[j].pkg.Path {
			return out[i].pkg.Path < out[j].pkg.Path
		}
		return out[i].body.Pos() < out[j].body.Pos()
	})
	return out
}

// handlerRoots returns the nodes implementing sim.Handler.OnEvent: every
// OnEvent method on an in-scope type whose method set satisfies the Handler
// interface of a package whose import path ends in internal/sim (suffix
// matching admits the fixture stand-ins under testdata).
func (cg *callGraph) handlerRoots() []*cgNode {
	var roots []*cgNode
	seen := map[*cgNode]bool{}
	for _, pkg := range cg.mod.Pkgs {
		if !pathHasSuffix(pkg.Path, "internal/sim") {
			continue
		}
		obj, ok := pkg.Types.Scope().Lookup("Handler").(*types.TypeName)
		if !ok {
			continue
		}
		iface, ok := obj.Type().Underlying().(*types.Interface)
		if !ok {
			continue
		}
		if iface.NumMethods() == 0 {
			continue
		}
		for _, fn := range cg.implementers(obj.Type(), "OnEvent") {
			if n := cg.byFunc[fn]; n != nil && !seen[n] {
				seen[n] = true
				roots = append(roots, n)
			}
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		if roots[i].pkg.Path != roots[j].pkg.Path {
			return roots[i].pkg.Path < roots[j].pkg.Path
		}
		return roots[i].body.Pos() < roots[j].body.Pos()
	})
	return roots
}

// reachableFrom runs a breadth-first search from roots and returns, for each
// reachable node, its predecessor on a shortest path from a root (roots map
// to nil). Traces rendered from the predecessor chain explain *why* a
// function is on the event hot path.
func (cg *callGraph) reachableFrom(roots []*cgNode) map[*cgNode]*cgNode {
	pred := map[*cgNode]*cgNode{}
	queue := make([]*cgNode, 0, len(roots))
	for _, r := range roots {
		if _, ok := pred[r]; !ok {
			pred[r] = nil
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range v.callees {
			if _, ok := pred[w]; !ok {
				pred[w] = v
				queue = append(queue, w)
			}
		}
	}
	return pred
}

// trace renders the shortest root→node call chain, e.g.
// "(*Switch).OnEvent → (*Switch).receiveData → (*leafRouter).Route".
func trace(pred map[*cgNode]*cgNode, node *cgNode) string {
	var chain []string
	for n := node; n != nil; n = pred[n] {
		chain = append(chain, n.name())
		if pred[n] == nil {
			break
		}
	}
	// Reverse into root-first order.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return strings.Join(chain, " → ")
}
