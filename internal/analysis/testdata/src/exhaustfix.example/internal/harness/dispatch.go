// Package harness holds the exhaustive fixture's dispatch sites: switches
// and map literals over the registries from ../spec and ../workload.
package harness

import (
	"exhaustfix.example/internal/spec"
	"exhaustfix.example/internal/workload"
)

var _ = spec.BaseSchemes
var _ = workload.Web

// Complete covers every registered scheme: no finding.
func Complete(name string) int {
	switch name {
	case "alpha":
		return 1
	case "beta":
		return 2
	case "gamma":
		return 3
	default:
		return 0
	}
}

// Partial misses gamma; the default clause does not excuse it.
func Partial(name string) int {
	switch name { // want `switch dispatches over scheme names but misses registered name "gamma"`
	case "alpha":
		return 1
	case "beta":
		return 2
	default:
		return 0
	}
}

// weights is a map-literal dispatch missing beta.
var weights = map[string]int{ // want `map literal dispatches over scheme names but misses registered name "beta"`
	"alpha": 1,
	"gamma": 2,
}

// order is a presentation slice, not a dispatch: never matched.
var order = []string{"alpha", "beta"}

// Unrelated shares a single name with the registry: coincidence, not
// dispatch.
func Unrelated(s string) bool {
	switch s {
	case "alpha", "omega", "incast":
		return true
	}
	return false
}

// ByWorkload misses the registered workload "data".
func ByWorkload(name string) int {
	switch name { // want `switch dispatches over workload names but misses registered name "data"`
	case "web":
		return 1
	case "cache":
		return 2
	default:
		return 0
	}
}

// AdaptiveOnly deliberately handles a subset, sanctioned by annotation.
func AdaptiveOnly(name string) bool {
	//simlint:allow(exhaustive) fixture: deliberately dispatches the adaptive subset only
	switch name {
	case "beta", "gamma":
		return true
	}
	return false
}
