// Package spec is an exhaustive fixture standing in for the real spec
// package: its import path ends in internal/spec, so BaseSchemes here is
// the scheme registry.
package spec

// BaseSchemes is the fixture scheme registry.
var BaseSchemes = []string{"alpha", "beta", "gamma"}
