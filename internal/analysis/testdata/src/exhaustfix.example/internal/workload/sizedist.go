// Package workload is an exhaustive fixture: the Name fields of its
// SizeDist literals form the workload registry.
package workload

// SizeDist mirrors the real workload CDF type.
type SizeDist struct {
	Name  string
	Sizes []int
}

// Web is one registered workload.
func Web() *SizeDist { return &SizeDist{Name: "web"} }

// Data is another.
func Data() *SizeDist { return &SizeDist{Name: "data"} }

// Cache is the third.
func Cache() *SizeDist { return &SizeDist{Name: "cache"} }
