// Package transport is a timercheck fixture: a model package that must keep
// sim.Timer handles as values.
package transport

import "timerfix.example/internal/sim"

// Sender holds timers correctly (by value) and incorrectly (by pointer).
type Sender struct {
	pacer sim.Timer
	rto   *sim.Timer // want `\*sim.Timer pointer`
}

// Rearm exercises address-taking and pointer declarations.
func (s *Sender) Rearm(e *sim.Engine) {
	s.pacer = e.After(10)
	p := &s.pacer // want `taking the address of a sim.Timer`
	_ = p
	var q *sim.Timer // want `\*sim.Timer pointer`
	_ = q
}

// Compare exercises pointer comparison (the declarations are also findings).
func Compare(a, b *sim.Timer) bool { // want `\*sim.Timer pointer`
	return a == b // want `comparing \*sim.Timer pointers`
}

// ByValue is the sanctioned style.
func ByValue(e *sim.Engine) bool {
	t := e.After(5)
	u := t
	return u.Stop()
}

// AllowedPointer is a justified suppression.
type AllowedPointer struct {
	shared *sim.Timer //simlint:allow(timercheck) fixture: engine-internal bridge documented in DESIGN.md
}
