// Package sim is a timercheck fixture standing in for the real engine: Timer
// is a generation-checked value handle.
package sim

// Timer is a value handle to a scheduled event.
type Timer struct {
	slot int
	gen  uint64
}

// Stop cancels the event; stale handles are no-ops.
func (t Timer) Stop() bool { return t.gen != 0 }

// Engine schedules events.
type Engine struct{ now int64 }

// After returns a value handle.
func (e *Engine) After(d int64) Timer { return Timer{slot: 1, gen: 1} }
