// Package switchsim is a determinism-analyzer fixture standing in for a
// simulation package (its import path ends in internal/switchsim).
package switchsim

import (
	"fmt"
	"math/rand" // want `import of math/rand in simulation package`
	"sort"
	"time"
)

// WallClock exercises the time-package rules.
func WallClock() int64 {
	now := time.Now() // want `time.Now reads the wall clock`
	time.Sleep(1)     // want `time.Sleep reads the wall clock`
	return now.UnixNano() + int64(rand.Int())
}

// AllowedWallClock shows a justified suppression.
func AllowedWallClock() time.Time {
	//simlint:allow(determinism) fixture: wall clock feeds a perf counter only
	return time.Now()
}

// Spawn exercises the goroutine and select rules.
func Spawn(ch chan int) {
	go func() { ch <- 1 }() // want `go statement in simulation package`
	select {                // want `select statement in simulation package`
	case <-ch:
	default:
	}
}

// EmitUnsorted ranges over a map and prints inside the loop: iteration order
// reaches the output.
func EmitUnsorted(m map[int]string) {
	for k, v := range m {
		fmt.Println(k, v) // want `order-dependent statement inside range over map m`
	}
}

// CollectUnsorted appends map values without sorting them afterwards.
func CollectUnsorted(m map[int]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want `order-dependent statement inside range over map m`
	}
	return out
}

// SortedKeys is the sanctioned idiom: extract, sort, iterate.
func SortedKeys(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Aggregate folds commutatively and writes through the key: order free.
func Aggregate(m map[int]int, dst map[int]int) int {
	total := 0
	for k, v := range m {
		total += v
		dst[k] = v
		if v == 0 {
			delete(dst, k)
		}
	}
	return total
}

// MinOverMap assigns a plain variable inside the loop: ties resolve in map
// order, so the result is nondeterministic.
func MinOverMap(m map[int]int) int {
	best := -1
	for _, v := range m {
		if v < best {
			best = v // want `order-dependent statement inside range over map m`
		}
	}
	return best
}

// AllowedEmit shows a justified suppression on the preceding line.
func AllowedEmit(m map[int]string) {
	for k := range m {
		//simlint:allow(determinism) fixture: debug dump, never reaches figures
		fmt.Println(k)
	}
}
