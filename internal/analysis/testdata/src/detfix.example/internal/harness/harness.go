// Package harness is a determinism-analyzer fixture proving the worker
// fan-out exemption: goroutines and select are legal in internal/harness,
// while the other determinism rules still apply.
package harness

import "time"

// FanOut mirrors the real harness worker pool: allowed.
func FanOut(jobs []func()) {
	done := make(chan struct{})
	for _, j := range jobs {
		j := j
		go func() {
			j()
			done <- struct{}{}
		}()
	}
	for range jobs {
		select {
		case <-done:
		}
	}
}

// StillNoWallClock proves the exemption is scoped to concurrency.
func StillNoWallClock() time.Time {
	return time.Now() // want `time.Now reads the wall clock`
}
