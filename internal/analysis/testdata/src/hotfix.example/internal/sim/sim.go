// Package sim is a hotpath fixture standing in for the real engine: its
// import path ends in internal/sim, so its Handler interface defines the
// hot-path roots.
package sim

// Time is the simulated clock.
type Time int64

// EventArg is the typed event payload.
type EventArg struct {
	Ptr any
	U64 uint64
}

// Handler receives dispatched events; every implementation's OnEvent is a
// hot-path root.
type Handler interface {
	OnEvent(EventArg)
}

// Engine schedules events.
type Engine struct{ pending []Handler }

// ScheduleAfter arms a timer for h.
func (e *Engine) ScheduleAfter(d Time, h Handler, arg EventArg) {}

// Defer runs f at the end of the current event (forces its closure to
// escape).
func (e *Engine) Defer(f func()) {}
