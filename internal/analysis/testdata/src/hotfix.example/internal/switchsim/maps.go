package switchsim

import "hotfix.example/internal/sim"

// Flowd is a second Handler whose helpers carry seeded built-in map traffic:
// the map-discipline side of the hotpath analyzer flags indexing, assignment,
// range, and delete on built-in maps in hot functions even when they do not
// allocate — per-packet state belongs in flat tables.
type Flowd struct {
	tbl   map[uint64]int
	stale map[uint64]sim.Time
	cold  map[string]int
	last  int
}

// OnEvent is a hot-path root.
func (f *Flowd) OnEvent(arg sim.EventArg) {
	f.classify(arg.U64)
	f.expire(sim.Time(arg.U64))
	f.last = f.audit()
}

// classify is hot via one direct call: map reads and writes are findings.
func (f *Flowd) classify(k uint64) int {
	f.tbl[k]++ // want `built-in map access \(hash \+ bucket probe per packet\) in event hot path`
	if v, ok := f.tbl[k]; ok { // want `built-in map access \(hash \+ bucket probe per packet\) in event hot path`
		return v
	}
	return 0
}

// expire is hot: ranging and deleting age entries out of a built-in map, a
// finding even though neither operation allocates (range order is also where
// nondeterminism classically leaks in).
func (f *Flowd) expire(cut sim.Time) {
	for k, at := range f.stale { // want `built-in map range \(nondeterministic iteration order\) in event hot path`
		if at < cut {
			delete(f.stale, k) // want `built-in map delete in event hot path`
		}
	}
}

// audit is hot, but its one map read carries a suppression: allow comments
// silence map-discipline findings like any other hotpath finding.
func (f *Flowd) audit() int {
	//simlint:allow(hotpath) fixture: sanctioned map read kept hot for the suppression case
	return f.cold["x"]
}

// Snapshot is construction/reporting-time code, unreachable from OnEvent:
// identical map traffic here is not a finding.
func (f *Flowd) Snapshot() map[uint64]int {
	out := make(map[uint64]int, len(f.tbl))
	for k, v := range f.tbl {
		out[k] = v
	}
	return out
}
