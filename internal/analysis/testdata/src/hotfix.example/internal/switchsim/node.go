// Package switchsim is the hotpath fixture's data plane: a sim.Handler
// implementation whose helpers — including one reached only through a
// devirtualized interface call — carry seeded allocations.
package switchsim

import (
	"fmt"

	"hotfix.example/internal/sim"
)

// router is a small in-package interface: calls through it must be
// devirtualized for the hot set to reach leaf.route.
type router interface {
	route(i int) int
}

// leaf is the only router implementation.
type leaf struct{ tbl []int }

// route is hot only via the devirtualized router call in dispatch.
func (l *leaf) route(i int) int {
	l.tbl = append(l.tbl, i) // want `append \(may grow the backing array\) in event hot path`
	return i
}

// Node implements sim.Handler.
type Node struct {
	eng   *sim.Engine
	r     router
	stats []int
	name  string
}

// OnEvent is a hot-path root.
func (n *Node) OnEvent(arg sim.EventArg) {
	n.process(int(arg.U64))
	n.dispatch(arg)
}

// process is one call from the root: every allocation here is a finding.
func (n *Node) process(v int) {
	n.stats = append(n.stats, v) // want `append \(may grow the backing array\) in event hot path`
	seen := make(map[int]bool)   // want `make\(...\) in event hot path`
	seen[v] = true               // want `built-in map access \(hash \+ bucket probe per packet\) in event hot path`
	pair := &struct{ a, b int }{v, v} // want `&composite literal \(heap allocation\) in event hot path`
	_ = pair
	label := n.name + "!" // want `string concatenation in event hot path`
	_ = label
	msg := fmt.Sprintf("v=%d", v) // want `fmt.Sprintf \(formats and boxes arguments\) in event hot path`
	_ = msg

	// A literal bound to a local and only ever called runs inline: exempt.
	bump := func(d int) { v += d }
	bump(1)
	bump(2)

	// Passing a literal somewhere forces closure allocation.
	n.eng.Defer(func() { v = 0 }) // want `escaping function literal \(closure allocates\) in event hot path`

	// The failure path may format: panic arguments are exempt.
	if v < 0 {
		panic(fmt.Sprintf("negative event value %d", v))
	}

	//simlint:allow(hotpath) fixture: amortized scratch growth, steady state reuses capacity
	n.stats = append(n.stats, v+1)
}

// dispatch reaches leaf.route only through the interface.
func (n *Node) dispatch(arg sim.EventArg) {
	n.r.route(int(arg.U64))
}

// NewNode is construction-time code, unreachable from OnEvent: allocations
// here are not findings.
func NewNode(eng *sim.Engine) *Node {
	return &Node{eng: eng, r: &leaf{}, stats: make([]int, 0, 64), name: "node"}
}
