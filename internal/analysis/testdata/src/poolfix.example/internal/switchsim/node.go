// Package switchsim is a poolcheck fixture: a data-plane package whose
// functions own pooled packets.
package switchsim

import "poolfix.example/internal/fabric"

// Port is a consuming sink (Enqueue takes ownership).
type Port struct{ q []*fabric.Packet }

// Enqueue takes ownership of pkt.
func (p *Port) Enqueue(pkt *fabric.Packet) { p.q = append(p.q, pkt) }

// Node is a minimal switch.
type Node struct {
	pool  *fabric.Pool
	ports []*Port
	held  *fabric.Packet
}

// BuildRaw constructs packets outside the pool: both forms are findings.
func BuildRaw() []*fabric.Packet {
	a := &fabric.Packet{Size: 64} // want `fabric.Packet composite literal outside internal/fabric`
	b := new(fabric.Packet)       // want `new\(fabric.Packet\) outside internal/fabric`
	return []*fabric.Packet{a, b}
}

// LeakyForward owns pkt (it enqueues on one path) but drops it on the
// congested path without releasing it.
func (n *Node) LeakyForward(pkt *fabric.Packet, congested bool) {
	if congested {
		return // want `return drops pooled packet pkt`
	}
	n.ports[0].Enqueue(pkt)
}

// CleanForward consumes pkt on every path.
func (n *Node) CleanForward(pkt *fabric.Packet, congested bool) {
	if congested {
		fabric.Release(pkt)
		return
	}
	n.ports[0].Enqueue(pkt)
}

// LeakyBuild gets a frame from the pool and forgets it on the early path.
func (n *Node) LeakyBuild(quiet bool) {
	pkt := n.pool.Control(1)
	if quiet {
		return // want `return drops pooled packet pkt`
	}
	n.ports[0].Enqueue(pkt)
}

// EarlyGuardIsFine returns before the packet exists.
func (n *Node) EarlyGuardIsFine(quiet bool) {
	if quiet {
		return
	}
	pkt := n.pool.Data(1, 1000)
	n.ports[0].Enqueue(pkt)
}

// Observe only reads the packet: no ownership, no obligation.
func (n *Node) Observe(pkt *fabric.Packet, limit int) bool {
	if pkt.Size > limit {
		return false
	}
	return pkt.Type == 0
}

// StoreTakesOwnership parks the packet in the node: consuming on that path,
// so the other path's drop is a finding.
func (n *Node) StoreTakesOwnership(pkt *fabric.Packet, park bool) {
	if park {
		n.held = pkt
		return
	}
	return // want `return drops pooled packet pkt`
}

// AllowedLeak is a justified suppression: ownership is documented to pass to
// the caller's caller.
func (n *Node) AllowedLeak(pkt *fabric.Packet, congested bool) {
	if congested {
		return //simlint:allow(poolcheck) fixture: wire loss accounting releases this frame
	}
	n.ports[0].Enqueue(pkt)
}

// FallThroughLeak owns the frame but can fall off the end still holding it.
func (n *Node) FallThroughLeak(arm bool) {
	pkt := n.pool.Data(2, 500)
	if arm {
		n.ports[0].Enqueue(pkt)
	}
} // want `function FallThroughLeak can fall through without releasing or forwarding pkt`
