// Package transport holds the cross-package poolcheck callers: ownership
// facts must flow from poolfix.example/internal/core's helpers into the
// leak analysis here, with no whitelist anywhere.
package transport

import (
	"poolfix.example/internal/core"
	"poolfix.example/internal/fabric"
)

// Node owns a pool.
type Node struct{ pool *fabric.Pool }

// LeakThroughBorrower hands the frame to a read-only helper and forgets it
// on the quiet path: Inspect borrows, so the early return still drops the
// frame. (The pre-interprocedural checker treated any call as consuming and
// missed exactly this.)
func (n *Node) LeakThroughBorrower(quiet bool) {
	pkt := n.pool.Data(7, 100)
	if core.Inspect(pkt) && quiet {
		return // want `return drops pooled packet pkt`
	}
	core.Stash(pkt)
}

// OwnViaHelper's parameter is owned because Stash owns it on the far path —
// the summary crosses the package boundary — so dropping it on the near
// path is a finding.
func (n *Node) OwnViaHelper(pkt *fabric.Packet, drop bool) {
	if drop {
		return // want `return drops pooled packet pkt`
	}
	core.Stash(pkt)
}

// BorrowOnly lends the packet to a borrower on every path: no ownership, no
// obligation, no finding.
func BorrowOnly(pkt *fabric.Packet) bool { return core.Inspect(pkt) }

// CleanHandoff forwards to the owning helper on every path.
func CleanHandoff(pkt *fabric.Packet, extra bool) {
	if extra {
		core.Stash(pkt)
		return
	}
	core.Stash(pkt)
}
