// Package fabric is a poolcheck fixture standing in for the real packet
// fabric (its import path ends in internal/fabric, so construction here is
// legal).
package fabric

// Packet is the pooled frame type.
type Packet struct {
	Type int
	Size int
	Seq  uint32
}

// Pool hands out and reclaims packets.
type Pool struct{ free []*Packet }

// Data returns a pooled data frame.
func (pl *Pool) Data(seq uint32, size int) *Packet {
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free = pl.free[:n-1]
		*p = Packet{Seq: seq, Size: size}
		return p
	}
	return &Packet{Seq: seq, Size: size}
}

// Control returns a pooled control frame.
func (pl *Pool) Control(t int) *Packet {
	p := pl.Data(0, 64)
	p.Type = t
	return p
}

// released is the shared free list Release feeds; storing the frame is what
// makes Release an owner under the interprocedural summaries, mirroring the
// real fabric.Release -> Pool.put chain.
var released []*Packet

// Release returns a frame to its pool.
func Release(p *Packet) { released = append(released, p) }
