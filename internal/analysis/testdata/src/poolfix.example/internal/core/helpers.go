// Package core provides the cross-package helpers for the interprocedural
// poolcheck fixtures: Stash owns its packet argument (it parks the frame in
// package state), Inspect only borrows it. Neither appears on any
// whitelist — their summaries are inferred from their bodies.
package core

import "poolfix.example/internal/fabric"

var stash []*fabric.Packet

// Stash takes ownership: the frame is stored.
func Stash(p *fabric.Packet) { stash = append(stash, p) }

// Inspect reads only: ownership stays with the caller.
func Inspect(p *fabric.Packet) bool { return p.Size > 0 }
