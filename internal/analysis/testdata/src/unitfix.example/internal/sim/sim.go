// Package sim is a unitsafe fixture: Time is picoseconds.
package sim

// Time is a point in virtual time, in picoseconds.
type Time int64

// Unit constants.
const (
	Picosecond  Time = 1
	Nanosecond       = 1000 * Picosecond
	Microsecond      = 1000 * Nanosecond
)
