// Package units is a unitsafe fixture: Bandwidth in bits per second. The
// package itself is exempt (it defines the constructors).
package units

// Bandwidth is a rate in bits per second.
type Bandwidth int64

// Unit constants.
const (
	BitPerSecond Bandwidth = 1
	Kbps                   = 1000 * BitPerSecond
	Gbps                   = 1000 * 1000 * Kbps
)

// Legal here: the constructor package owns raw-integer arithmetic.
func FromMbps(m int64) Bandwidth { return Bandwidth(m)*Kbps*1000 + 0 }
