// Package transport is a unitsafe fixture: model code that must not mix raw
// integer literals into dimensioned values.
package transport

import (
	"unitfix.example/internal/sim"
	"unitfix.example/internal/units"
)

// Pace exercises the additive and comparison rules on sim.Time.
func Pace(t sim.Time) sim.Time {
	t = t + 500   // want `raw integer literal added to a sim.Time value`
	t -= 3        // want `raw integer literal folded into a sim.Time value`
	if t > 1000 { // want `raw integer literal compared against a sim.Time value`
		t = t - 2*sim.Nanosecond // fine: the literal scales a unit constant
	}
	if t > 0 { // fine: zero carries no unit
		t = 2 * t // fine: dimensionless scaling
	}
	return t + 500*sim.Nanosecond
}

// Rate exercises the same rules on units.Bandwidth.
func Rate(b units.Bandwidth) units.Bandwidth {
	if b < 40 { // want `raw integer literal compared against a units.Bandwidth value`
		b += 10 * units.Gbps // fine
	}
	return b / 2 // fine: halving is dimensionless
}

// bucketWidth mirrors the calendar-queue geometry: a shift scales the typed
// one-picosecond value by a dimensionless power of two, which is legal.
const bucketWidth = sim.Time(1) << 14

// Align exercises the bucket-width idioms from the calendar queue: scaling
// and same-unit alignment arithmetic are fine, but folding raw literals into
// the additive or modulo operations is flagged.
func Align(t sim.Time) sim.Time {
	if t%16384 == 0 { // want `raw integer literal taken modulo a sim.Time value`
		return t
	}
	t = t - t%bucketWidth // fine: both modulo operands carry the unit
	if t+16384 > bucketWidth { // want `raw integer literal added to a sim.Time value`
		t += 4 * bucketWidth // fine: the literal scales a typed constant
	}
	t %= 16384 // want `raw integer literal folded into a sim.Time value with %=`
	span := 2048 * bucketWidth // fine: dimensionless bucket count scales the width
	return t + span
}

// Allowed is a justified suppression.
func Allowed(t sim.Time) sim.Time {
	return t + 1 //simlint:allow(unitsafe) fixture: +1ps tie-break documented in the engine contract
}
