// Package lb is an annotation-path fixture: malformed //simlint:allow
// annotations are findings in their own right, and a valid annotation only
// suppresses its own analyzer.
package lb

import "time"

// MissingReason has an annotation with no justification: the annotation is a
// finding AND it fails to suppress, so the wall-clock read still reports.
func MissingReason() time.Time {
	//simlint:allow(determinism) // want `simlint:allow\(determinism\) needs a reason`
	return time.Now() // want `time.Now reads the wall clock`
}

// UnknownAnalyzer names an analyzer that does not exist.
func UnknownAnalyzer() time.Time {
	//simlint:allow(nosuchcheck) the reason does not save an unknown name // want `simlint:allow names unknown analyzer "nosuchcheck"`
	return time.Now() // want `time.Now reads the wall clock`
}

// WrongAnalyzer suppresses a different analyzer than the one that fires.
func WrongAnalyzer() time.Time {
	//simlint:allow(unitsafe) reason aimed at the wrong analyzer
	return time.Now() // want `time.Now reads the wall clock`
}

// Valid is the control: correctly suppressed.
func Valid() time.Time {
	//simlint:allow(determinism) fixture: wall clock feeds a log timestamp only
	return time.Now()
}
