package analysis_test

import (
	"strings"
	"testing"

	"github.com/rlb-project/rlb/internal/analysis"
)

// TestTreeIsLintClean runs the full simlint suite over the real module and
// requires zero unannotated findings. This is the compile-time regression
// gate the runtime invariants cannot provide: introduce a time.Now, a
// math/rand import, an order-dependent map iteration, a dropped pooled
// packet, a *sim.Timer, or a raw literal added to a sim.Time anywhere in a
// simulation package, and this test (and therefore `make test`) fails.
func TestTreeIsLintClean(t *testing.T) {
	diags, err := analysis.RunModule(".")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(diags) == 0 {
		return
	}
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("\n  ")
		b.WriteString(d.String())
	}
	t.Fatalf("simlint found %d unannotated finding(s) — fix them or add a justified //simlint:allow:%s",
		len(diags), b.String())
}

// TestSuiteNamesAreStable pins the analyzer names: annotations in the tree
// reference them, so renaming one silently orphans every //simlint:allow.
func TestSuiteNamesAreStable(t *testing.T) {
	want := []string{"determinism", "poolcheck", "timercheck", "unitsafe", "hotpath", "exhaustive"}
	suite := analysis.Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("suite[%d].Name = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing doc or run function", a.Name)
		}
	}
}
