package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages without any external tooling.
// Packages inside the analyzed tree are resolved by Resolve and type-checked
// from source; everything else (the standard library) is delegated to the
// go/importer source importer, which also works offline.
type Loader struct {
	// Fset is shared by every file this loader touches.
	Fset *token.FileSet
	// Resolve maps an import path to its source directory. It returns
	// ok=false for paths outside the analyzed tree (i.e. the standard
	// library).
	Resolve func(importPath string) (dir string, ok bool)
	// IncludeTests, when set, also parses _test.go files in loaded packages
	// (external test packages "_test" are still skipped).
	IncludeTests bool

	stdlib types.Importer
	pkgs   map[string]*Package
	errs   map[string]error
}

// NewLoader returns a loader with the given in-tree resolver.
func NewLoader(resolve func(string) (string, bool)) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		Resolve: resolve,
		stdlib:  importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		errs:    map[string]error{},
	}
}

// ModuleResolver returns a Resolve func for a module rooted at root with the
// given module path: "<modPath>/x/y" maps to "<root>/x/y".
func ModuleResolver(root, modPath string) func(string) (string, bool) {
	return func(path string) (string, bool) {
		if path == modPath {
			return root, true
		}
		if strings.HasPrefix(path, modPath+"/") {
			return filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(path, modPath+"/"))), true
		}
		return "", false
	}
}

// TreeResolver returns a Resolve func for a GOPATH-style source tree: import
// path "a/b" maps to "<srcRoot>/a/b" when that directory exists. Used by the
// analyzer fixtures under testdata/src.
func TreeResolver(srcRoot string) func(string) (string, bool) {
	return func(path string) (string, bool) {
		dir := filepath.Join(srcRoot, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
		return "", false
	}
}

// Import implements types.Importer, so a package under analysis can import
// other in-tree packages.
func (ld *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := ld.Resolve(path); ok {
		pkg, err := ld.Load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.stdlib.Import(path)
}

// Load parses and type-checks the package in dir under import path path,
// memoizing by path. Type errors are returned, not panicked: the driver
// reports them as ordinary failures.
func (ld *Loader) Load(path, dir string) (*Package, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	if err, ok := ld.errs[path]; ok {
		return nil, err
	}
	pkg, err := ld.load(path, dir)
	if err != nil {
		ld.errs[path] = err
		return nil, err
	}
	ld.pkgs[path] = pkg
	return pkg, nil
}

func (ld *Loader) load(path, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !ld.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)

	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(ld.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		// Skip external test packages and files excluded by build tags
		// (the tree does not use build tags; ignoring them keeps the
		// loader simple).
		if strings.HasSuffix(f.Name.Name, "_test") && f.Name.Name != pkgName {
			continue
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		if f.Name.Name != pkgName {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go source in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: ld.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// Loaded returns every in-tree package this loader has parsed and
// type-checked so far (the requested packages plus their transitive in-tree
// dependencies), sorted by import path. This is the analysis scope handed to
// NewModule: interprocedural facts (call graph, ownership summaries) are
// computed over exactly these packages.
func (ld *Loader) Loaded() []*Package {
	out := make([]*Package, 0, len(ld.pkgs))
	for _, pkg := range ld.pkgs {
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// FindModule walks up from dir to the enclosing go.mod and returns the module
// root directory and module path.
func FindModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// ModulePackages lists the import paths of every package in the module rooted
// at root (directories containing .go files), skipping testdata, hidden
// directories, and vendor. The result is sorted.
func ModulePackages(root, modPath string) ([]string, error) {
	var paths []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		rel, rerr := filepath.Rel(root, filepath.Dir(p))
		if rerr != nil {
			return rerr
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		if len(paths) == 0 || paths[len(paths)-1] != ip {
			paths = append(paths, ip)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	// WalkDir visits files in directory order, so duplicates are already
	// adjacent; compact defensively anyway.
	out := paths[:0]
	for _, p := range paths {
		if len(out) == 0 || out[len(out)-1] != p {
			out = append(out, p)
		}
	}
	return out, nil
}
