package analysis_test

import (
	"testing"

	"github.com/rlb-project/rlb/internal/analysis"
	"github.com/rlb-project/rlb/internal/analysis/analysistest"
)

// Each analyzer is exercised over a fixture tree containing at least one true
// positive, at least one sanctioned (non-finding) idiom, and at least one
// //simlint:allow-suppressed case (see testdata/src/...).

func TestDeterminismFixture(t *testing.T) {
	src := analysistest.Fixture(".")
	analysistest.Run(t, src, "detfix.example/internal/switchsim", analysis.Determinism)
}

func TestDeterminismHarnessExemption(t *testing.T) {
	src := analysistest.Fixture(".")
	analysistest.Run(t, src, "detfix.example/internal/harness", analysis.Determinism)
}

func TestPoolcheckFixture(t *testing.T) {
	src := analysistest.Fixture(".")
	analysistest.Run(t, src, "poolfix.example/internal/switchsim", analysis.Poolcheck)
}

func TestPoolcheckExemptInsideFabric(t *testing.T) {
	src := analysistest.Fixture(".")
	analysistest.Run(t, src, "poolfix.example/internal/fabric", analysis.Poolcheck)
}

func TestTimercheckFixture(t *testing.T) {
	src := analysistest.Fixture(".")
	analysistest.Run(t, src, "timerfix.example/internal/transport", analysis.Timercheck)
}

func TestTimercheckExemptInsideSim(t *testing.T) {
	src := analysistest.Fixture(".")
	analysistest.Run(t, src, "timerfix.example/internal/sim", analysis.Timercheck)
}

func TestUnitsafeFixture(t *testing.T) {
	src := analysistest.Fixture(".")
	analysistest.Run(t, src, "unitfix.example/internal/transport", analysis.Unitsafe)
}

func TestUnitsafeExemptInsideUnits(t *testing.T) {
	src := analysistest.Fixture(".")
	analysistest.Run(t, src, "unitfix.example/internal/units", analysis.Unitsafe)
}
