package analysis_test

import (
	"testing"

	"github.com/rlb-project/rlb/internal/analysis"
	"github.com/rlb-project/rlb/internal/analysis/analysistest"
)

// Each analyzer is exercised over a fixture tree containing at least one true
// positive, at least one sanctioned (non-finding) idiom, and at least one
// //simlint:allow-suppressed case (see testdata/src/...).

func TestDeterminismFixture(t *testing.T) {
	src := analysistest.Fixture(".")
	analysistest.Run(t, src, "detfix.example/internal/switchsim", analysis.Determinism)
}

func TestDeterminismHarnessExemption(t *testing.T) {
	src := analysistest.Fixture(".")
	analysistest.Run(t, src, "detfix.example/internal/harness", analysis.Determinism)
}

func TestPoolcheckFixture(t *testing.T) {
	src := analysistest.Fixture(".")
	analysistest.Run(t, src, "poolfix.example/internal/switchsim", analysis.Poolcheck)
}

func TestPoolcheckExemptInsideFabric(t *testing.T) {
	src := analysistest.Fixture(".")
	analysistest.Run(t, src, "poolfix.example/internal/fabric", analysis.Poolcheck)
}

// TestPoolcheckCrossPackage seeds leaks that are only visible
// interprocedurally: the callers live in poolfix.example/internal/transport
// and the ownership facts (Stash owns, Inspect borrows) are inferred from
// helper bodies in poolfix.example/internal/core — there is no whitelist for
// the summaries to fall back on.
func TestPoolcheckCrossPackage(t *testing.T) {
	src := analysistest.Fixture(".")
	analysistest.RunMulti(t, src, []string{
		"poolfix.example/internal/transport",
		"poolfix.example/internal/core",
	}, analysis.Poolcheck)
}

// TestHotpathFixture proves the hotpath analyzer can fail: every seeded
// allocation sits in a function reachable from the fixture Handler's OnEvent
// (some only through interface devirtualization), while identical
// allocations in cold constructors stay silent.
func TestHotpathFixture(t *testing.T) {
	src := analysistest.Fixture(".")
	analysistest.Run(t, src, "hotfix.example/internal/switchsim", analysis.Hotpath)
}

// TestExhaustiveFixture proves the exhaustive analyzer can fail: switches
// and a map literal dispatch over the fixture scheme/workload registries
// with one registered name missing each.
func TestExhaustiveFixture(t *testing.T) {
	src := analysistest.Fixture(".")
	analysistest.Run(t, src, "exhaustfix.example/internal/harness", analysis.Exhaustive)
}

func TestTimercheckFixture(t *testing.T) {
	src := analysistest.Fixture(".")
	analysistest.Run(t, src, "timerfix.example/internal/transport", analysis.Timercheck)
}

func TestTimercheckExemptInsideSim(t *testing.T) {
	src := analysistest.Fixture(".")
	analysistest.Run(t, src, "timerfix.example/internal/sim", analysis.Timercheck)
}

func TestUnitsafeFixture(t *testing.T) {
	src := analysistest.Fixture(".")
	analysistest.Run(t, src, "unitfix.example/internal/transport", analysis.Unitsafe)
}

func TestUnitsafeExemptInsideUnits(t *testing.T) {
	src := analysistest.Fixture(".")
	analysistest.Run(t, src, "unitfix.example/internal/units", analysis.Unitsafe)
}
