package analysis

import (
	"fmt"
	"io"
)

// Suite returns the full simlint analyzer suite in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{Determinism, Poolcheck, Timercheck, Unitsafe}
}

// RunModule loads every package of the module rooted at root and runs the
// suite over each, returning all surviving findings. Load or type-check
// failures are returned as the error; findings are not errors.
func RunModule(root string) ([]Diagnostic, error) {
	root, modPath, err := FindModule(root)
	if err != nil {
		return nil, err
	}
	paths, err := ModulePackages(root, modPath)
	if err != nil {
		return nil, err
	}
	return RunPackages(NewLoader(ModuleResolver(root, modPath)), paths)
}

// RunPackages loads each import path with ld and runs the suite, collecting
// findings across all packages.
func RunPackages(ld *Loader, paths []string) ([]Diagnostic, error) {
	suite := Suite()
	var all []Diagnostic
	for _, path := range paths {
		dir, ok := ld.Resolve(path)
		if !ok {
			return nil, fmt.Errorf("analysis: cannot resolve %s", path)
		}
		pkg, err := ld.Load(path, dir)
		if err != nil {
			return nil, err
		}
		all = append(all, RunAnalyzers(pkg, suite)...)
	}
	return all, nil
}

// Print writes findings one per line in file:line:col form.
func Print(w io.Writer, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
}
