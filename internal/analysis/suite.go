package analysis

import (
	"encoding/json"
	"fmt"
	"io"
)

// Suite returns the full simlint analyzer suite in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{Determinism, Poolcheck, Timercheck, Unitsafe, Hotpath, Exhaustive}
}

// RunModule loads every package of the module rooted at root and runs the
// suite over each, returning all surviving findings. Load or type-check
// failures are returned as the error; findings are not errors.
func RunModule(root string) ([]Diagnostic, error) {
	root, modPath, err := FindModule(root)
	if err != nil {
		return nil, err
	}
	paths, err := ModulePackages(root, modPath)
	if err != nil {
		return nil, err
	}
	return RunPackages(NewLoader(ModuleResolver(root, modPath)), paths)
}

// RunPackages loads each import path with ld, builds one interprocedural
// module over everything loaded (the requested packages plus their in-tree
// dependencies, so call-graph facts cross package boundaries), and runs the
// suite over each requested package. Findings are reported only for the
// requested packages and returned globally sorted by file:line:col:analyzer,
// so output is diff-stable regardless of request order.
func RunPackages(ld *Loader, paths []string) ([]Diagnostic, error) {
	suite := Suite()
	pkgs := make([]*Package, 0, len(paths))
	for _, path := range paths {
		dir, ok := ld.Resolve(path)
		if !ok {
			return nil, fmt.Errorf("analysis: cannot resolve %s", path)
		}
		pkg, err := ld.Load(path, dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	mod := NewModule(ld.Loaded())
	var all []Diagnostic
	for _, pkg := range pkgs {
		all = append(all, mod.Analyze(pkg, suite)...)
	}
	sortDiagnostics(all)
	return all, nil
}

// Print writes findings one per line in file:line:col form.
func Print(w io.Writer, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
}

// jsonDiagnostic is the machine-readable form of one finding.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// PrintJSON writes findings as JSON, one object per line (JSON Lines), for
// CI artifacts and tooling.
func PrintJSON(w io.Writer, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		jd := jsonDiagnostic{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		}
		if err := enc.Encode(jd); err != nil {
			return err
		}
	}
	return nil
}
