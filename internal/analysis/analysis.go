// Package analysis is a self-contained static-analysis framework plus the
// simlint analyzer suite that enforces this repository's simulation
// discipline at compile time: determinism (no wall clock, no math/rand, no
// goroutines, no order-dependent map iteration in simulation packages),
// packet-pool conservation (pooled frames are constructed inside
// internal/fabric and consumed on every terminating path), timer-handle
// hygiene (sim.Timer is a value handle; pointers reintroduce stale-handle
// bugs), and unit discipline (no raw integer literals added to sim.Time or
// units.Bandwidth values).
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer / Pass / Diagnostic) but is built only on the standard library
// (go/parser + go/types with the source importer), so the module stays
// dependency-free and the suite runs in hermetic build environments.
//
// Findings are suppressed, one at a time and with a mandatory justification,
// by an annotation on the offending line or the line above:
//
//	//simlint:allow(determinism) wall-clock only feeds the Wall perf counter
//
// An annotation without a reason, or naming an unknown analyzer, is itself a
// finding. See TESTING.md, "Static analysis tier".
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path (module-relative packages keep their full
	// module-qualified path).
	Path string
	// Fset maps positions for every file of every package in this load.
	Fset *token.FileSet
	// Files are the parsed non-test source files, sorted by filename.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the type-checker's expression facts for Files.
	Info *types.Info
}

// Analyzer is one named check over a single package.
type Analyzer struct {
	// Name is the identifier used in findings and //simlint:allow(name).
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one (analyzer, package) run and collects its findings.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Mod is the interprocedural scope this package was analyzed in. It is
	// never nil: single-package runs get a module containing just that
	// package (and see only intra-package facts).
	Mod   *Module
	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil when untracked.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(e)
}

// ObjectOf returns the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.Pkg.Info.ObjectOf(id)
}

// RunAnalyzers executes the analyzers over pkg alone and returns the
// surviving findings: raw analyzer findings minus those suppressed by a valid
// //simlint:allow annotation, plus one finding per malformed annotation.
// The result is sorted by position. Interprocedural analyzers see a module
// containing only pkg; use Module.Analyze to give them a wider scope.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return NewModule([]*Package{pkg}).Analyze(pkg, analyzers)
}

// pathHasSuffix reports whether import path p is exactly suffix or ends with
// "/"+suffix. Matching by suffix lets the analyzers recognize both the real
// module packages and the fixture stand-ins under testdata.
func pathHasSuffix(p, suffix string) bool {
	if p == suffix {
		return true
	}
	n := len(p) - len(suffix)
	return n > 0 && p[n-1] == '/' && p[n:] == suffix
}

// isPtrToNamed reports whether t is a pointer to the named type
// pkgSuffix.name.
func isPtrToNamed(t types.Type, pkgSuffix, name string) bool {
	ptr, ok := t.(*types.Pointer)
	return ok && isNamed(ptr.Elem(), pkgSuffix, name)
}

// isNamed reports whether the named type t is defined in a package whose
// import path ends with pkgSuffix and has the given name.
func isNamed(t types.Type, pkgSuffix, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return pathHasSuffix(obj.Pkg().Path(), pkgSuffix)
}
