package analysis

import (
	"fmt"
	"go/token"
	"strings"
	"testing"
	"time"
)

func diag(file string, line, col int, analyzer, msg string) Diagnostic {
	return Diagnostic{
		Analyzer: analyzer,
		Pos:      token.Position{Filename: file, Line: line, Column: col},
		Message:  msg,
	}
}

// TestSortDiagnostics pins the global output order — file, then line, then
// column, then analyzer, then message — on a deliberately scrambled input.
func TestSortDiagnostics(t *testing.T) {
	got := []Diagnostic{
		diag("b.go", 1, 1, "poolcheck", "m1"),
		diag("a.go", 9, 1, "unitsafe", "m2"),
		diag("a.go", 2, 5, "hotpath", "m3"),
		diag("a.go", 2, 5, "exhaustive", "m4"),
		diag("a.go", 2, 1, "hotpath", "m5"),
		diag("a.go", 2, 5, "exhaustive", "m0"),
	}
	sortDiagnostics(got)
	want := []string{
		"a.go:2:1 hotpath m5",
		"a.go:2:5 exhaustive m0",
		"a.go:2:5 exhaustive m4",
		"a.go:2:5 hotpath m3",
		"a.go:9:1 unitsafe m2",
		"b.go:1:1 poolcheck m1",
	}
	for i, d := range got {
		rendered := fmt.Sprintf("%s:%d:%d %s %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		if rendered != want[i] {
			t.Errorf("index %d: got %q, want %q", i, rendered, want[i])
		}
	}
}

// TestRunPackagesDeterministic runs the suite twice over the same fixture
// packages with fresh loaders and modules: the rendered findings must be
// byte-identical and globally sorted, independent of map iteration order
// inside the loader, call graph, and registries.
func TestRunPackagesDeterministic(t *testing.T) {
	paths := []string{
		"poolfix.example/internal/switchsim",
		"poolfix.example/internal/transport",
		"hotfix.example/internal/switchsim",
		"exhaustfix.example/internal/harness",
	}
	run := func(order []string) string {
		ld := NewLoader(TreeResolver("testdata/src"))
		diags, err := RunPackages(ld, order)
		if err != nil {
			t.Fatalf("RunPackages: %v", err)
		}
		var b strings.Builder
		Print(&b, diags)
		return b.String()
	}
	first := run(paths)
	if first == "" {
		t.Fatal("fixture run produced no findings; the determinism check is vacuous")
	}
	// Same request in reverse order must render identically: the global sort
	// erases request order.
	reversed := make([]string, len(paths))
	for i, p := range paths {
		reversed[len(paths)-1-i] = p
	}
	for i := 0; i < 3; i++ {
		if again := run(reversed); again != first {
			t.Fatalf("run %d differs from first run:\n--- first ---\n%s--- again ---\n%s", i, first, again)
		}
	}
	lines := strings.Split(strings.TrimSuffix(first, "\n"), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i] < lines[i-1] {
			t.Errorf("output not sorted at line %d:\n%s\n%s", i, lines[i-1], lines[i])
		}
	}
}

// TestPrintJSON pins the machine-readable shape: one JSON object per line
// with analyzer, position, and message fields.
func TestPrintJSON(t *testing.T) {
	var b strings.Builder
	diags := []Diagnostic{
		diag("x/a.go", 3, 7, "hotpath", `alloc in "hot" path`),
		diag("x/b.go", 1, 2, "exhaustive", "missing case"),
	}
	if err := PrintJSON(&b, diags); err != nil {
		t.Fatal(err)
	}
	want := `{"analyzer":"hotpath","file":"x/a.go","line":3,"col":7,"message":"alloc in \"hot\" path"}
{"analyzer":"exhaustive","file":"x/b.go","line":1,"col":2,"message":"missing case"}
`
	if b.String() != want {
		t.Errorf("PrintJSON output:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestRunModuleWallBudget guards simlint's own cost: the interprocedural
// layer (call graph, devirtualization, summaries) over the whole module must
// stay interactive. The budget is deliberately generous — an order of
// magnitude over the observed ~2s — so only a complexity regression
// (quadratic devirtualization, unmemoized summaries) trips it.
func TestRunModuleWallBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full-module lint timing in -short mode")
	}
	start := time.Now()
	if _, err := RunModule("."); err != nil {
		t.Fatalf("RunModule: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 90*time.Second {
		t.Fatalf("full-module simlint took %v, budget 90s — the interprocedural layer has a complexity regression", elapsed)
	}
}
