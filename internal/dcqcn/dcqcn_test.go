package dcqcn

import (
	"testing"

	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/units"
)

func newTestRP() (*sim.Engine, *RP) {
	eng := sim.NewEngine()
	rp := NewRP(eng, DefaultConfig(), 40*units.Gbps)
	return eng, rp
}

func TestStartsAtLineRate(t *testing.T) {
	_, rp := newTestRP()
	defer rp.Close()
	if rp.Rate() != 40*units.Gbps {
		t.Fatalf("initial rate %v", rp.Rate())
	}
	if rp.Alpha() != 1.0 {
		t.Fatalf("initial alpha %v", rp.Alpha())
	}
}

func TestCNPCutsRate(t *testing.T) {
	_, rp := newTestRP()
	defer rp.Close()
	rp.OnCNP()
	// alpha=1 -> cut by half.
	if rp.Rate() != 20*units.Gbps {
		t.Fatalf("rate after first CNP = %v, want 20Gbps", rp.Rate())
	}
	if rp.CNPs != 1 {
		t.Fatalf("CNPs = %d", rp.CNPs)
	}
}

func TestRepeatedCNPsFloorAtMinRate(t *testing.T) {
	_, rp := newTestRP()
	defer rp.Close()
	for i := 0; i < 100; i++ {
		rp.OnCNP()
	}
	if rp.Rate() != DefaultConfig().MinRate {
		t.Fatalf("rate = %v, want floor %v", rp.Rate(), DefaultConfig().MinRate)
	}
}

func TestAlphaDecaysWithoutCNP(t *testing.T) {
	eng, rp := newTestRP()
	defer rp.Close()
	rp.OnCNP()
	a0 := rp.Alpha()
	eng.RunUntil(sim.Millisecond)
	if rp.Alpha() >= a0 {
		t.Fatalf("alpha did not decay: %v -> %v", a0, rp.Alpha())
	}
}

func TestFastRecoveryApproachesTarget(t *testing.T) {
	eng, rp := newTestRP()
	defer rp.Close()
	rp.OnCNP() // rt=40G, rc=20G
	// After a few rate-timer periods (fast recovery), rc -> rt.
	eng.RunUntil(300 * sim.Microsecond) // ~5 timer events
	got := float64(rp.Rate())
	if got < 0.9*40e9 {
		t.Fatalf("fast recovery too slow: %v", rp.Rate())
	}
	if rp.Rate() > 40*units.Gbps {
		t.Fatalf("rate exceeded line: %v", rp.Rate())
	}
}

func TestByteCounterTriggersIncrease(t *testing.T) {
	_, rp := newTestRP()
	defer rp.Close()
	rp.OnCNP()
	before := rp.Rate()
	// Push enough bytes for several byte-counter events without any timer.
	rp.NotifySent(5 * DefaultConfig().ByteCounter)
	if rp.Rate() <= before {
		t.Fatalf("byte counter did not raise rate: %v -> %v", before, rp.Rate())
	}
}

func TestHyperIncreaseAfterBothPastF(t *testing.T) {
	eng, rp := newTestRP()
	defer rp.Close()
	for i := 0; i < 20; i++ {
		rp.OnCNP()
	}
	low := rp.Rate()
	// Drive both timer and byte counters far past F.
	for i := 0; i < 20; i++ {
		rp.NotifySent(DefaultConfig().ByteCounter)
	}
	eng.RunUntil(2 * sim.Millisecond)
	if rp.Rate() <= low {
		t.Fatal("no recovery after sustained quiet period")
	}
	if rp.Rate() > 40*units.Gbps {
		t.Fatalf("rate above line: %v", rp.Rate())
	}
}

func TestRateNeverExceedsLineUnderMixedEvents(t *testing.T) {
	eng, rp := newTestRP()
	defer rp.Close()
	for i := 0; i < 50; i++ {
		i := i
		eng.At(sim.Time(i)*20*sim.Microsecond, func() {
			if i%7 == 0 {
				rp.OnCNP()
			}
			rp.NotifySent(2 * 1000 * 1000)
			if rp.Rate() > 40*units.Gbps || rp.Rate() < DefaultConfig().MinRate {
				t.Errorf("rate out of bounds: %v", rp.Rate())
			}
		})
	}
	eng.RunUntil(2 * sim.Millisecond)
}

func TestAlphaRisesOnCNP(t *testing.T) {
	eng, rp := newTestRP()
	defer rp.Close()
	eng.RunUntil(5 * sim.Millisecond) // decay alpha low
	aLow := rp.Alpha()
	rp.OnCNP()
	if rp.Alpha() <= aLow {
		t.Fatalf("alpha did not rise on CNP: %v -> %v", aLow, rp.Alpha())
	}
}

func TestCloseStopsTimers(t *testing.T) {
	eng, rp := newTestRP()
	rp.Close()
	executed := eng.Executed
	eng.RunUntil(10 * sim.Millisecond)
	if eng.Executed != executed {
		t.Fatal("timers still firing after Close")
	}
}

func TestCNPResetsIncreaseStages(t *testing.T) {
	eng, rp := newTestRP()
	defer rp.Close()
	rp.OnCNP()
	eng.RunUntil(sim.Millisecond) // recovery well underway
	r1 := rp.Rate()
	rp.OnCNP()
	if rp.Rate() >= r1 {
		t.Fatal("second CNP did not cut rate")
	}
}
