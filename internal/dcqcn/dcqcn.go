// Package dcqcn implements the DCQCN congestion-control algorithm (Zhu et
// al., SIGCOMM 2015), the default transport protocol in the paper's
// evaluation. The congestion point (CP) is the switch's RED/ECN marking
// (internal/switchsim); the notification point (NP) lives in the receiver
// (internal/transport), which emits at most one CNP per flow per CNPInterval;
// this package provides the reaction point (RP): the per-flow rate machine
// at the sender.
package dcqcn

import (
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/units"
)

// Config holds the RP/NP parameters. Defaults follow the DCQCN paper's
// recommended values, as the paper specifies ("parameters are set to the
// default values recommended in [2]").
type Config struct {
	// G is the alpha EWMA gain.
	G float64
	// AlphaTimer is the alpha-decay period when no CNP arrives (55 us).
	AlphaTimer sim.Time
	// RateTimer is the rate-increase timer period (55 us).
	RateTimer sim.Time
	// ByteCounter triggers a rate-increase event every this many bytes.
	ByteCounter int
	// F is the number of fast-recovery iterations before additive increase.
	F int
	// RateAI / RateHAI are the additive and hyper increase steps.
	RateAI  units.Bandwidth
	RateHAI units.Bandwidth
	// MinRate floors the sending rate.
	MinRate units.Bandwidth
	// CNPInterval rate-limits CNP generation at the NP (50 us).
	CNPInterval sim.Time
}

// DefaultConfig returns the DCQCN paper's recommended parameters.
func DefaultConfig() Config {
	return Config{
		G:           1.0 / 16.0,
		AlphaTimer:  55 * sim.Microsecond,
		RateTimer:   55 * sim.Microsecond,
		ByteCounter: 10 * 1000 * 1000,
		F:           5,
		RateAI:      40 * units.Mbps,
		RateHAI:     200 * units.Mbps,
		MinRate:     10 * units.Mbps,
		CNPInterval: 50 * sim.Microsecond,
	}
}

// RP is the DCQCN reaction point for one flow. It owns its timers on the
// simulation engine; call Close when the flow completes to cancel them.
type RP struct {
	eng  *sim.Engine
	cfg  Config
	line units.Bandwidth

	rc    float64 // current rate, bits/s
	rt    float64 // target rate
	alpha float64

	bytesSinceEvent int
	timerEvents     int // rate-timer expirations since last CNP
	byteEvents      int // byte-counter expirations since last CNP

	alphaTimer sim.Timer
	rateTimer  sim.Timer

	// CNPs counts congestion notifications received (stats).
	CNPs uint64
}

// Event codes for the RP's typed timers (EventArg.U64).
const (
	rpEvAlpha uint64 = iota
	rpEvRate
)

// OnEvent implements sim.Handler for the alpha-decay and rate-increase
// timers.
func (rp *RP) OnEvent(arg sim.EventArg) {
	switch arg.U64 {
	case rpEvAlpha:
		// No CNP for a full period: decay the congestion estimate.
		rp.alpha = (1 - rp.cfg.G) * rp.alpha
		rp.armAlphaTimer()
	case rpEvRate:
		rp.timerEvents++
		rp.increase()
		rp.armRateTimer()
	}
}

// NewRP returns a reaction point starting at line rate, with timers armed.
func NewRP(eng *sim.Engine, cfg Config, line units.Bandwidth) *RP {
	rp := &RP{
		eng:   eng,
		cfg:   cfg,
		line:  line,
		rc:    float64(line),
		rt:    float64(line),
		alpha: 1.0,
	}
	rp.armAlphaTimer()
	rp.armRateTimer()
	return rp
}

// Rate returns the current allowed sending rate.
func (rp *RP) Rate() units.Bandwidth {
	r := units.Bandwidth(rp.rc)
	if r < rp.cfg.MinRate {
		return rp.cfg.MinRate
	}
	if r > rp.line {
		return rp.line
	}
	return r
}

// Alpha returns the current congestion estimate (for tests/inspection).
func (rp *RP) Alpha() float64 { return rp.alpha }

// Close cancels the RP's timers.
func (rp *RP) Close() {
	rp.alphaTimer.Stop()
	rp.rateTimer.Stop()
}

// OnCNP applies the DCQCN rate cut: remember the target, multiplicatively
// decrease, raise alpha, and restart the increase machinery.
func (rp *RP) OnCNP() {
	rp.CNPs++
	rp.rt = rp.rc
	rp.rc = rp.rc * (1 - rp.alpha/2)
	if rp.rc < float64(rp.cfg.MinRate) {
		rp.rc = float64(rp.cfg.MinRate)
	}
	rp.alpha = (1-rp.cfg.G)*rp.alpha + rp.cfg.G
	rp.timerEvents = 0
	rp.byteEvents = 0
	rp.bytesSinceEvent = 0
	rp.armAlphaTimer()
	rp.armRateTimer()
}

// NotifySent informs the byte counter that n bytes left the sender.
func (rp *RP) NotifySent(n int) {
	rp.bytesSinceEvent += n
	for rp.bytesSinceEvent >= rp.cfg.ByteCounter {
		rp.bytesSinceEvent -= rp.cfg.ByteCounter
		rp.byteEvents++
		rp.increase()
	}
}

func (rp *RP) armAlphaTimer() {
	rp.alphaTimer.Stop()
	rp.alphaTimer = rp.eng.ScheduleAfter(rp.cfg.AlphaTimer, rp, sim.EventArg{U64: rpEvAlpha})
}

func (rp *RP) armRateTimer() {
	rp.rateTimer.Stop()
	rp.rateTimer = rp.eng.ScheduleAfter(rp.cfg.RateTimer, rp, sim.EventArg{U64: rpEvRate})
}

// increase performs one rate-increase event: fast recovery toward the target
// for the first F events, then additive (one side past F) or hyper (both
// sides past F) target growth, always averaging rc toward rt.
func (rp *RP) increase() {
	minEv := rp.timerEvents
	if rp.byteEvents < minEv {
		minEv = rp.byteEvents
	}
	maxEv := rp.timerEvents
	if rp.byteEvents > maxEv {
		maxEv = rp.byteEvents
	}
	switch {
	case minEv > rp.cfg.F:
		i := minEv - rp.cfg.F
		rp.rt += float64(i) * float64(rp.cfg.RateHAI)
	case maxEv > rp.cfg.F:
		rp.rt += float64(rp.cfg.RateAI)
	}
	if rp.rt > float64(rp.line) {
		rp.rt = float64(rp.line)
	}
	rp.rc = (rp.rt + rp.rc) / 2
	if rp.rc > float64(rp.line) {
		rp.rc = float64(rp.line)
	}
}
