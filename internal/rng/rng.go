// Package rng provides a small, fast, deterministic pseudo-random number
// generator for simulations. Simulations must be seed-reproducible across
// runs and Go versions, so this package implements its own generator
// (SplitMix64 seeding a xoshiro256**-style core) instead of relying on
// math/rand's unspecified stream.
package rng

import "math"

// Source is a deterministic PRNG. It is not safe for concurrent use; each
// simulation component owns its own Source (or the engine owns one).
type Source struct {
	s [4]uint64
}

// splitMix64 advances a SplitMix64 state and returns the next value. It is
// used to expand a single seed into the 256-bit xoshiro state.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds give independent
// streams for practical purposes.
func New(seed uint64) *Source {
	var r Source
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// Avoid the all-zero state, which is a fixed point.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Fork derives a new independent Source from this one, for handing separate
// streams to sub-components without correlating their draws.
func (r *Source) Fork() *Source { return New(r.Uint64()) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit integer.
func (r *Source) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed float64 with mean 1.
func (r *Source) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}
