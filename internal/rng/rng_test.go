package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at draw %d", i)
		}
	}
}

func TestDistinctSeeds(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("distinct seeds produced %d/100 identical draws", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 90 {
		t.Fatalf("seed 0 stream looks degenerate: %d unique / 100", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	prop := func(seed uint64, n uint16) bool {
		if n == 0 {
			return true
		}
		r := New(seed)
		for i := 0; i < 100; i++ {
			v := r.Intn(int(n))
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	for i, c := range counts {
		if c < draws/n*8/10 || c > draws/n*12/10 {
			t.Fatalf("bucket %d count %d far from uniform %d", i, c, draws/n)
		}
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(3)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential draw %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1.0) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1.0", mean)
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}

func TestPerm(t *testing.T) {
	r := New(11)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(13)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, 10)
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("shuffle duplicated values: %v", xs)
		}
		seen[v] = true
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(21)
	child := parent.Fork()
	// Child and parent streams should not be identical.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked stream correlates with parent: %d/100", same)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
