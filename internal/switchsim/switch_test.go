package switchsim

import (
	"testing"

	"github.com/rlb-project/rlb/internal/fabric"
	"github.com/rlb-project/rlb/internal/rng"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/units"
)

// endpoint is a minimal host stub: it obeys PFC and records data arrivals.
type endpoint struct {
	eng   *sim.Engine
	id    int
	port  *fabric.Port
	got   []*fabric.Packet
	gotAt []sim.Time
	sent  int
}

func newEndpoint(eng *sim.Engine, id int) *endpoint {
	ep := &endpoint{eng: eng, id: id}
	ep.port = &fabric.Port{Eng: eng, Owner: ep, Index: 0}
	return ep
}

func (ep *endpoint) Receive(pkt *fabric.Packet, in *fabric.Port) {
	switch pkt.Type {
	case fabric.Pause:
		in.SetPaused(pkt.Pause.Prio, true, pkt.Pause.Dur)
	case fabric.Resume:
		in.SetPaused(pkt.Pause.Prio, false, 0)
	default:
		ep.got = append(ep.got, pkt)
		ep.gotAt = append(ep.gotAt, ep.eng.Now())
	}
}

func (ep *endpoint) DevID() int { return ep.id }

// dstRouter routes by destination id using a static map.
type dstRouter map[int]int

func (r dstRouter) Route(sw *Switch, pkt *fabric.Packet, in int) Decision {
	out, ok := r[pkt.DstID]
	if !ok {
		return Decision{Drop: true}
	}
	return Decision{Out: out}
}

// rig builds host0 -- sw -- host1 with the given rate/delay and config.
type rig struct {
	eng  *sim.Engine
	sw   *Switch
	h    [2]*endpoint
	rate units.Bandwidth
}

func newRig(cfg Config, rate units.Bandwidth, delay sim.Time) *rig {
	eng := sim.NewEngine()
	sw := New(eng, 100, 2, cfg, rng.New(1))
	h0, h1 := newEndpoint(eng, 0), newEndpoint(eng, 1)
	fabric.Connect(h0.port, sw.Port(0), rate, delay)
	fabric.Connect(h1.port, sw.Port(1), rate, delay)
	sw.SetRouter(dstRouter{0: 0, 1: 1})
	return &rig{eng: eng, sw: sw, h: [2]*endpoint{h0, h1}, rate: rate}
}

func (r *rig) send(n int, size int) {
	for i := 0; i < n; i++ {
		r.h[0].port.Enqueue(fabric.NewData(1, uint32(i), size, 0, 1))
	}
}

func TestForwarding(t *testing.T) {
	r := newRig(DefaultConfig(), 40*units.Gbps, sim.Microsecond)
	r.send(10, 1000)
	r.eng.Run()
	if len(r.h[1].got) != 10 {
		t.Fatalf("delivered %d/10", len(r.h[1].got))
	}
	for i, p := range r.h[1].got {
		if p.Seq != uint32(i) {
			t.Fatalf("out of order at switch: pos %d seq %d", i, p.Seq)
		}
	}
}

func TestBufferAccountingReturnsToZero(t *testing.T) {
	r := newRig(DefaultConfig(), 40*units.Gbps, sim.Microsecond)
	r.send(50, 1000)
	r.eng.Run()
	if r.sw.SharedUsed() != 0 {
		t.Fatalf("shared pool leak: %d bytes", r.sw.SharedUsed())
	}
	if r.sw.IngressBytes(0) != 0 {
		t.Fatalf("ingress counter leak: %d", r.sw.IngressBytes(0))
	}
	if r.sw.Stats.PeakShared == 0 {
		t.Fatal("peak occupancy not recorded")
	}
}

// slowEgress builds a 2-in-1-out switch whose egress is slower than its
// ingress links, forcing queue buildup.
type slowRig struct {
	eng *sim.Engine
	sw  *Switch
	src [2]*endpoint
	dst *endpoint
}

func newSlowRig(cfg Config, in, out units.Bandwidth) *slowRig {
	eng := sim.NewEngine()
	sw := New(eng, 100, 3, cfg, rng.New(2))
	s0, s1, d := newEndpoint(eng, 0), newEndpoint(eng, 1), newEndpoint(eng, 2)
	fabric.Connect(s0.port, sw.Port(0), in, sim.Microsecond)
	fabric.Connect(s1.port, sw.Port(1), in, sim.Microsecond)
	fabric.Connect(d.port, sw.Port(2), out, sim.Microsecond)
	sw.SetRouter(dstRouter{0: 0, 1: 1, 2: 2})
	return &slowRig{eng: eng, sw: sw, src: [2]*endpoint{s0, s1}, dst: d}
}

func TestPFCPausesUpstream(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PFCThreshold = 20 * 1000
	r := newSlowRig(cfg, 40*units.Gbps, 4*units.Gbps)
	// 100 KB burst from src0 overwhelms the 10x slower egress.
	for i := 0; i < 100; i++ {
		r.src[0].port.Enqueue(fabric.NewData(1, uint32(i), 1000, 0, 2))
	}
	r.eng.Run()
	if r.sw.Stats.PauseSent == 0 {
		t.Fatal("PFC never triggered")
	}
	if r.sw.Stats.ResumeSent == 0 {
		t.Fatal("RESUME never sent")
	}
	if r.src[0].port.Stats.PausedFor == 0 {
		t.Fatal("upstream port never actually paused")
	}
	if len(r.dst.got) != 100 {
		t.Fatalf("lossless invariant violated: delivered %d/100", len(r.dst.got))
	}
	if r.sw.Stats.Dropped != 0 {
		t.Fatalf("drops under PFC: %d", r.sw.Stats.Dropped)
	}
}

func TestNoPFCWhenDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PFCEnabled = false
	cfg.PFCThreshold = 20 * 1000
	r := newSlowRig(cfg, 40*units.Gbps, 4*units.Gbps)
	for i := 0; i < 100; i++ {
		r.src[0].port.Enqueue(fabric.NewData(1, uint32(i), 1000, 0, 2))
	}
	r.eng.Run()
	if r.sw.Stats.PauseSent != 0 {
		t.Fatal("PAUSE sent while PFC disabled")
	}
}

func TestDropOnPoolOverflowWithoutPFC(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PFCEnabled = false
	cfg.BufferBytes = 10 * 1000
	r := newSlowRig(cfg, 40*units.Gbps, units.Gbps)
	for i := 0; i < 200; i++ {
		r.src[0].port.Enqueue(fabric.NewData(1, uint32(i), 1000, 0, 2))
	}
	r.eng.Run()
	if r.sw.Stats.Dropped == 0 {
		t.Fatal("tiny buffer without PFC must drop")
	}
	if len(r.dst.got)+int(r.sw.Stats.Dropped) != 200 {
		t.Fatalf("conservation violated: %d delivered + %d dropped != 200",
			len(r.dst.got), r.sw.Stats.Dropped)
	}
}

func TestPauseRefreshKeepsUpstreamPaused(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PFCThreshold = 10 * 1000
	cfg.PauseDur = 20 * sim.Microsecond
	r := newSlowRig(cfg, 40*units.Gbps, 400*units.Mbps)
	for i := 0; i < 300; i++ {
		r.src[0].port.Enqueue(fabric.NewData(1, uint32(i), 1000, 0, 2))
	}
	r.eng.Run()
	// Draining 300 KB at 400 Mb/s takes 6 ms >> PauseDur, so the pause must
	// have been refreshed many times.
	if r.sw.Stats.PauseSent < 10 {
		t.Fatalf("pause refreshes = %d, want many", r.sw.Stats.PauseSent)
	}
	if len(r.dst.got) != 300 {
		t.Fatalf("delivered %d/300", len(r.dst.got))
	}
}

func TestECNMarking(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ECNKmin = 5 * 1000
	cfg.ECNKmax = 20 * 1000
	cfg.ECNPmax = 1.0
	cfg.PFCThreshold = 1000 * 1000 // keep PFC out of the way
	r := newSlowRig(cfg, 40*units.Gbps, units.Gbps)
	for i := 0; i < 100; i++ {
		r.src[0].port.Enqueue(fabric.NewData(1, uint32(i), 1000, 0, 2))
	}
	r.eng.Run()
	marked := 0
	for _, p := range r.dst.got {
		if p.CE {
			marked++
		}
	}
	if marked == 0 {
		t.Fatal("no ECN marks despite deep egress queue")
	}
	// Early packets see an empty queue and must not be marked.
	if r.dst.got[0].CE {
		t.Fatal("first packet marked with empty queue")
	}
}

func TestECNDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ECNEnabled = false
	r := newSlowRig(cfg, 40*units.Gbps, units.Gbps)
	for i := 0; i < 100; i++ {
		r.src[0].port.Enqueue(fabric.NewData(1, uint32(i), 1000, 0, 2))
	}
	r.eng.Run()
	for _, p := range r.dst.got {
		if p.CE {
			t.Fatal("CE mark with ECN disabled")
		}
	}
}

// recircRouter recirculates each packet n times before forwarding.
type recircRouter struct {
	base  Router
	n     int
	delay sim.Time
}

func (r *recircRouter) Route(sw *Switch, pkt *fabric.Packet, in int) Decision {
	if pkt.Type == fabric.Data && pkt.Recirc < r.n {
		return Decision{Recirculate: true, RecircDelay: r.delay}
	}
	return r.base.Route(sw, pkt, in)
}

func TestRecirculationDelaysButDelivers(t *testing.T) {
	r := newRig(DefaultConfig(), 40*units.Gbps, sim.Microsecond)
	r.sw.SetRouter(&recircRouter{base: dstRouter{0: 0, 1: 1}, n: 3, delay: 2 * sim.Microsecond})
	r.send(1, 1000)
	r.eng.Run()
	if len(r.h[1].got) != 1 {
		t.Fatal("recirculated packet lost")
	}
	if r.sw.Stats.Recirced != 3 {
		t.Fatalf("Recirced = %d, want 3", r.sw.Stats.Recirced)
	}
	// Without recirculation: 200ns + 1us (first hop) + 200ns + 1us = 2.4us.
	// With 3 passes of 2us: >= 8.4us.
	if r.h[1].gotAt[0] < 8*sim.Microsecond {
		t.Fatalf("recirculation delay not applied: arrival %v", r.h[1].gotAt[0])
	}
	if r.sw.SharedUsed() != 0 {
		t.Fatal("buffer leak after recirculation")
	}
}

func TestRecirculationKeepsBufferCharged(t *testing.T) {
	r := newRig(DefaultConfig(), 40*units.Gbps, sim.Microsecond)
	r.sw.SetRouter(&recircRouter{base: dstRouter{0: 0, 1: 1}, n: 1000, delay: 10 * sim.Microsecond})
	r.send(1, 1000)
	r.eng.RunUntil(50 * sim.Microsecond)
	if r.sw.SharedUsed() != 1000 {
		t.Fatalf("recirculating packet not charged: shared=%d", r.sw.SharedUsed())
	}
}

func TestOnControlHookConsumes(t *testing.T) {
	r := newRig(DefaultConfig(), 40*units.Gbps, sim.Microsecond)
	var seen []*fabric.Packet
	r.sw.OnControl = func(pkt *fabric.Packet, in int) bool {
		seen = append(seen, pkt)
		return true
	}
	cnm := fabric.NewControl(fabric.CNM, 0, 1)
	r.h[0].port.Enqueue(cnm)
	r.eng.Run()
	if len(seen) != 1 {
		t.Fatal("OnControl not invoked for CNM")
	}
	if len(r.h[1].got) != 0 {
		t.Fatal("consumed control frame was still forwarded")
	}
}

func TestControlForwardedWhenNotConsumed(t *testing.T) {
	r := newRig(DefaultConfig(), 40*units.Gbps, sim.Microsecond)
	ack := fabric.NewControl(fabric.Ack, 0, 1)
	r.h[0].port.Enqueue(ack)
	r.eng.Run()
	if len(r.h[1].got) != 1 || r.h[1].got[0].Type != fabric.Ack {
		t.Fatal("ACK not forwarded")
	}
}

func TestRecentUpstreams(t *testing.T) {
	r := newRig(DefaultConfig(), 40*units.Gbps, sim.Microsecond)
	r.send(5, 1000)
	r.eng.Run()
	ups := r.sw.RecentUpstreams(1, sim.Second)
	if len(ups) != 1 || ups[0] != 0 {
		t.Fatalf("RecentUpstreams = %v, want [0]", ups)
	}
	// Outside the horizon the entry ages out.
	if got := r.sw.RecentUpstreams(1, 0); len(got) != 0 {
		t.Fatalf("aged upstreams still returned: %v", got)
	}
}

func TestLosslessUnderIncast(t *testing.T) {
	// Two senders at full rate into one egress: with PFC nothing is lost.
	cfg := DefaultConfig()
	cfg.PFCThreshold = 30 * 1000
	cfg.BufferBytes = 200 * 1000
	r := newSlowRig(cfg, 40*units.Gbps, 40*units.Gbps)
	for i := 0; i < 200; i++ {
		r.src[0].port.Enqueue(fabric.NewData(1, uint32(i), 1000, 0, 2))
		r.src[1].port.Enqueue(fabric.NewData(2, uint32(i), 1000, 1, 2))
	}
	r.eng.Run()
	if len(r.dst.got) != 400 {
		t.Fatalf("delivered %d/400 under incast", len(r.dst.got))
	}
	if r.sw.Stats.Dropped != 0 {
		t.Fatalf("%d drops despite PFC", r.sw.Stats.Dropped)
	}
	if r.sw.SharedUsed() != 0 {
		t.Fatal("buffer leak")
	}
}

func TestPauseActiveReflectsState(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PFCThreshold = 5 * 1000
	r := newSlowRig(cfg, 40*units.Gbps, 400*units.Mbps)
	for i := 0; i < 50; i++ {
		r.src[0].port.Enqueue(fabric.NewData(1, uint32(i), 1000, 0, 2))
	}
	r.eng.RunUntil(20 * sim.Microsecond)
	if !r.sw.PauseActive(0) {
		t.Fatal("PauseActive false during congestion")
	}
	r.eng.Run()
	if r.sw.PauseActive(0) {
		t.Fatal("PauseActive true after drain")
	}
}
