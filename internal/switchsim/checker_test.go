package switchsim

import (
	"testing"

	"github.com/rlb-project/rlb/internal/fabric"
	"github.com/rlb-project/rlb/internal/invariant"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/units"
)

func TestCheckerCleanOnHealthyRun(t *testing.T) {
	r := newRig(DefaultConfig(), 40*units.Gbps, sim.Microsecond)
	chk := invariant.New(true)
	r.sw.Checker = chk
	r.send(50, 1000)
	r.eng.Run()
	r.sw.AuditInvariants()
	if !chk.Ok() {
		t.Fatalf("healthy run has violations:\n%s", chk.Summary())
	}
	if chk.Checks() == 0 {
		t.Fatal("checker wired in but no assertions ran")
	}
}

func TestCheckerCatchesDropUnderPFC(t *testing.T) {
	// A buffer smaller than the PFC threshold: the pool overflows before PFC
	// would engage, so the switch drops data while nominally lossless — the
	// exact simulator bug the canary exists for.
	cfg := DefaultConfig()
	cfg.PFCThreshold = 100 * 1000
	cfg.BufferBytes = 10 * 1000
	r := newSlowRig(cfg, 40*units.Gbps, units.Gbps)
	chk := invariant.New(false)
	r.sw.Checker = chk
	for i := 0; i < 100; i++ {
		r.src[0].port.Enqueue(fabric.NewData(1, uint32(i), 1000, 0, 2))
	}
	r.eng.Run()
	if r.sw.Stats.Dropped == 0 {
		t.Fatal("scenario did not overflow the pool")
	}
	if chk.Ok() {
		t.Fatal("drops under PFC not flagged")
	}
	if chk.Violations()[0].Rule != invariant.RulePFCLossless {
		t.Fatalf("rule = %s", chk.Violations()[0].Rule)
	}
	if chk.Total() != r.sw.Stats.Dropped {
		t.Fatalf("violations %d != drops %d", chk.Total(), r.sw.Stats.Dropped)
	}
}

func TestStrictAuditCatchesBrokenMMU(t *testing.T) {
	// Corrupt the shared-pool accounting mid-run the way an MMU bug would
	// (bytes charged to the pool but not to any ingress) and verify the next
	// strict audit catches it.
	r := newRig(DefaultConfig(), 40*units.Gbps, sim.Microsecond)
	chk := invariant.New(true)
	r.sw.Checker = chk
	r.send(1, 1000)
	r.eng.Run()
	if !chk.Ok() {
		t.Fatalf("clean traffic flagged:\n%s", chk.Summary())
	}
	r.sw.sharedUsed += 777
	r.send(1, 1000)
	r.eng.Run()
	if chk.Ok() {
		t.Fatal("strict audit missed the corrupted pool accounting")
	}
	found := false
	for _, v := range chk.Violations() {
		if v.Rule == invariant.RulePoolConserve {
			found = true
		}
	}
	if !found {
		t.Fatalf("no %s violation:\n%s", invariant.RulePoolConserve, chk.Summary())
	}
}

func TestEndOfRunAuditFlagsBlackhole(t *testing.T) {
	r := newRig(DefaultConfig(), 40*units.Gbps, sim.Microsecond)
	chk := invariant.New(false)
	r.sw.Checker = chk
	fabric.SetLinkDown(r.sw.Port(1), true) // cut the egress toward h1
	r.send(5, 1000)
	r.eng.Run()
	if len(r.h[1].got) != 0 {
		t.Fatal("frames crossed a down link")
	}
	r.sw.AuditInvariants()
	found := false
	for _, v := range chk.Violations() {
		if v.Rule == invariant.RuleBlackhole {
			found = true
		}
	}
	if !found {
		t.Fatalf("stranded bytes on a down link not flagged:\n%s", chk.Summary())
	}
}

func TestWireLossCountsOnDownLink(t *testing.T) {
	// Cut the link while a frame is already on the wire: the frame is lost,
	// counted as WireLost, and is not a buffer drop.
	r := newRig(DefaultConfig(), 40*units.Gbps, sim.Microsecond)
	r.send(1, 1000)
	// The frame takes 200ns to serialize and 1us to propagate; cut mid-flight.
	r.eng.RunUntil(600 * sim.Nanosecond)
	fabric.SetLinkDown(r.h[0].port, true)
	r.eng.Run()
	if len(r.h[1].got) != 0 {
		t.Fatal("in-flight frame survived the cut")
	}
	if r.h[0].port.Stats.WireLost != 1 {
		t.Fatalf("WireLost = %d, want 1", r.h[0].port.Stats.WireLost)
	}
	if r.sw.Stats.Dropped != 0 {
		t.Fatal("wire loss misaccounted as a buffer drop")
	}
}
