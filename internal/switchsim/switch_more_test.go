package switchsim

import (
	"testing"

	"github.com/rlb-project/rlb/internal/fabric"
	"github.com/rlb-project/rlb/internal/rng"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/units"
)

func TestECNMarkingMonotoneInQueueDepth(t *testing.T) {
	// Marking probability must not decrease with queue depth: measure mark
	// fraction in shallow vs. deep regions of one congested run.
	cfg := DefaultConfig()
	cfg.ECNKmin = 10 * 1000
	cfg.ECNKmax = 100 * 1000
	cfg.ECNPmax = 0.5
	cfg.PFCThreshold = 10 * 1000 * 1000 // out of the way
	r := newSlowRig(cfg, 40*units.Gbps, 2*units.Gbps)
	for i := 0; i < 400; i++ {
		r.src[0].port.Enqueue(fabric.NewData(1, uint32(i), 1000, 0, 2))
	}
	r.eng.Run()
	// First 50 packets saw a shallow queue; the last 100 a deep one.
	early, late := 0, 0
	for i, p := range r.dst.got {
		if i < 50 && p.CE {
			early++
		}
		if i >= 300 && p.CE {
			late++
		}
	}
	if late <= early {
		t.Fatalf("marking not increasing with depth: early=%d late=%d", early, late)
	}
}

func TestRouterDropDecision(t *testing.T) {
	r := newRig(DefaultConfig(), 40*units.Gbps, sim.Microsecond)
	r.sw.SetRouter(RouterFunc(func(sw *Switch, pkt *fabric.Packet, in int) Decision {
		if pkt.Type == fabric.Data && pkt.Seq%2 == 0 {
			return Decision{Drop: true}
		}
		return Decision{Out: 1}
	}))
	r.send(10, 1000)
	r.eng.Run()
	if len(r.h[1].got) != 5 {
		t.Fatalf("delivered %d, want 5", len(r.h[1].got))
	}
	if r.sw.Stats.Dropped != 5 {
		t.Fatalf("dropped %d, want 5", r.sw.Stats.Dropped)
	}
	if r.sw.SharedUsed() != 0 {
		t.Fatal("dropped frames leaked buffer accounting")
	}
}

func TestControlRecirculationPanics(t *testing.T) {
	r := newRig(DefaultConfig(), 40*units.Gbps, sim.Microsecond)
	r.sw.SetRouter(RouterFunc(func(sw *Switch, pkt *fabric.Packet, in int) Decision {
		return Decision{Recirculate: true}
	}))
	r.h[0].port.Enqueue(fabric.NewControl(fabric.Ack, 0, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("recirculating a control frame did not panic")
		}
	}()
	r.eng.Run()
}

func TestPFCThresholdBoundary(t *testing.T) {
	// Exactly at the threshold no pause; one byte over pauses.
	cfg := DefaultConfig()
	cfg.PFCThreshold = 5000
	eng := sim.NewEngine()
	sw := New(eng, 100, 2, cfg, rng.New(1))
	up, down := newEndpoint(eng, 0), newEndpoint(eng, 1)
	fabric.Connect(up.port, sw.Port(0), 40*units.Gbps, sim.Microsecond)
	fabric.Connect(down.port, sw.Port(1), 40*units.Gbps, sim.Microsecond)
	sw.SetRouter(dstRouter{0: 0, 1: 1})
	// Pause downstream egress so nothing drains.
	sw.Port(1).SetPaused(fabric.PrioData, true, 0)
	for i := 0; i < 5; i++ {
		up.port.Enqueue(fabric.NewData(1, uint32(i), 1000, 0, 1))
	}
	eng.RunUntil(100 * sim.Microsecond)
	if sw.Stats.PauseSent != 0 {
		t.Fatalf("paused at exactly the threshold (%d bytes)", sw.IngressBytes(0))
	}
	up.port.Enqueue(fabric.NewData(1, 5, 1, 0, 1))
	eng.RunUntil(200 * sim.Microsecond)
	if sw.Stats.PauseSent == 0 {
		t.Fatal("no pause one byte over the threshold")
	}
	sw.Port(1).SetPaused(fabric.PrioData, false, 0)
	eng.Run()
}

func TestMultipleIngressIndependentAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PFCThreshold = 10 * 1000
	r := newSlowRig(cfg, 40*units.Gbps, units.Gbps)
	// Only src0 floods; src1 sends a trickle. Only src0's port should pause.
	for i := 0; i < 100; i++ {
		r.src[0].port.Enqueue(fabric.NewData(1, uint32(i), 1000, 0, 2))
	}
	r.src[1].port.Enqueue(fabric.NewData(2, 0, 1000, 1, 2))
	r.eng.RunUntil(60 * sim.Microsecond)
	if !r.sw.PauseActive(0) {
		t.Fatal("flooding ingress not paused")
	}
	if r.sw.PauseActive(1) {
		t.Fatal("innocent ingress paused (accounting not per-port)")
	}
	r.eng.Run()
}

func TestStatsDataInCount(t *testing.T) {
	r := newRig(DefaultConfig(), 40*units.Gbps, sim.Microsecond)
	r.send(25, 1000)
	r.eng.Run()
	if r.sw.Stats.DataIn != 25 {
		t.Fatalf("DataIn = %d", r.sw.Stats.DataIn)
	}
}

func TestDynamicThresholdShrinksWithPoolUse(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DynamicThreshold = true
	cfg.DynAlpha = 0.125
	cfg.BufferBytes = 800 * 1000
	eng := sim.NewEngine()
	sw := New(eng, 100, 2, cfg, rng.New(1))
	if got := sw.PFCThresholdFor(0); got != 100*1000 {
		t.Fatalf("empty-pool threshold = %d, want 100000", got)
	}
	// Fill half the pool (simulate by enqueueing into a paused egress).
	up, down := newEndpoint(eng, 0), newEndpoint(eng, 1)
	fabric.Connect(up.port, sw.Port(0), 40*units.Gbps, sim.Microsecond)
	fabric.Connect(down.port, sw.Port(1), 40*units.Gbps, sim.Microsecond)
	sw.SetRouter(dstRouter{0: 0, 1: 1})
	sw.Port(1).SetPaused(fabric.PrioData, true, 0)
	for i := 0; i < 60; i++ {
		up.port.Enqueue(fabric.NewData(1, uint32(i), 1000, 0, 1))
	}
	eng.RunUntil(100 * sim.Microsecond)
	if sw.SharedUsed() == 0 {
		t.Fatal("setup failed: pool empty")
	}
	if got := sw.PFCThresholdFor(0); got >= 100*1000 {
		t.Fatalf("threshold did not shrink with pool occupancy: %d", got)
	}
	sw.Port(1).SetPaused(fabric.PrioData, false, 0)
	eng.Run()
}

func TestDynamicThresholdClampedByStatic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DynamicThreshold = true
	cfg.DynAlpha = 100 // absurdly generous share
	eng := sim.NewEngine()
	sw := New(eng, 100, 1, cfg, rng.New(1))
	if got := sw.PFCThresholdFor(0); got != cfg.PFCThreshold {
		t.Fatalf("dynamic threshold not clamped: %d", got)
	}
}

func TestDynamicThresholdPausesEarlierWhenPoolFull(t *testing.T) {
	// Two ingresses flood a slow egress: with DT the threshold tightens as
	// the pool fills, pausing earlier than the static MMU.
	run := func(dynamic bool) uint64 {
		cfg := DefaultConfig()
		cfg.PFCThreshold = 200 * 1000
		cfg.BufferBytes = 400 * 1000
		cfg.DynamicThreshold = dynamic
		cfg.DynAlpha = 0.25
		r := newSlowRig(cfg, 40*units.Gbps, units.Gbps)
		for i := 0; i < 150; i++ {
			r.src[0].port.Enqueue(fabric.NewData(1, uint32(i), 1000, 0, 2))
			r.src[1].port.Enqueue(fabric.NewData(2, uint32(i), 1000, 1, 2))
		}
		r.eng.Run()
		return r.sw.Stats.PauseSent
	}
	if run(true) <= run(false) {
		t.Fatal("dynamic threshold did not pause earlier under pool pressure")
	}
}
