package scenario

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/rlb-project/rlb/internal/harness"
	"github.com/rlb-project/rlb/internal/sim"
)

// The metamorphic properties every scenario must satisfy. Each is a
// model-level truth the paper's setup implies, not a tuned expectation, so a
// violation is a simulator bug (or a deliberately injected breach), never a
// flaky scenario.
const (
	// PropChecks: the invariant checker actually ran assertions (guards
	// against the suite silently testing nothing).
	PropChecks = "checker-wired"
	// PropInvariants: no runtime invariant fired (pool conservation, PSN
	// order, monotone time, lossless PFC accounting, blackhole detection).
	PropInvariants = "invariants-clean"
	// PropLossless: PFC is on in every generated scenario, so buffer drops
	// must be exactly zero regardless of incast degree or fault windows.
	PropLossless = "pfc-lossless"
	// PropWireLoss: frames die on the wire only when a kill window cuts a
	// link; fault-free (and degrade-only) runs must not lose a frame.
	PropWireLoss = "no-wire-loss-fault-free"
	// PropCompletion: every generated fault window restores the link before
	// the traffic window ends and the drain exceeds several RTOs, so every
	// flow must complete — go-back-N plus restored paths guarantee it.
	PropCompletion = "flows-complete"
	// PropDeterminism: the same spec replays bit-identically (flow-level
	// fingerprint) run over run.
	PropDeterminism = "same-seed-determinism"
	// PropSchedEquiv: the calendar-queue scheduler and the reference heap
	// must be observationally equivalent end to end.
	PropSchedEquiv = "scheduler-equivalence"
)

// Failure is one property violation: which property, on which (normalized)
// spec, with enough detail to read the log without re-running.
type Failure struct {
	Property string `json:"property"`
	Detail   string `json:"detail"`
	Spec     Spec   `json:"spec"`
}

func (f *Failure) Error() string {
	return fmt.Sprintf("scenario violates %s: %s [%s]", f.Property, f.Detail, f.Spec.Params())
}

// CheckFunc decides whether a spec fails; Check is the real one, tests
// substitute pure predicates to exercise the shrinker cheaply.
type CheckFunc func(Spec) *Failure

// Check runs the full metamorphic property suite on one spec: two
// calendar-queue runs (single-run properties + same-seed determinism) and
// one reference-heap run (scheduler equivalence). Returns nil when every
// property holds.
func Check(s Spec) *Failure {
	s = s.Normalize()
	a := harness.Run(propertyConfig(s, sim.SchedCalendar))
	if f := checkSingleRun(s, a); f != nil {
		return f
	}
	b := harness.Run(propertyConfig(s, sim.SchedCalendar))
	if fa, fb := harness.Fingerprint(a), harness.Fingerprint(b); fa != fb {
		return &Failure{
			Property: PropDeterminism,
			Detail:   fmt.Sprintf("same spec diverged across runs:\n%s\nvs\n%s", fa, fb),
			Spec:     s,
		}
	}
	h := harness.Run(propertyConfig(s, sim.SchedHeap))
	if fa, fh := harness.Fingerprint(a), harness.Fingerprint(h); fa != fh {
		return &Failure{
			Property: PropSchedEquiv,
			Detail:   fmt.Sprintf("calendar and heap schedulers diverged:\ncalendar %s\nvs\nheap     %s", fa, fh),
			Spec:     s,
		}
	}
	return nil
}

// propertyConfig compiles a normalized spec for one property-suite run under
// the given event scheduler. The shared compiler builds the config; the
// property suite then forces its own observation knobs — strict invariants
// always on (their audits are what the properties consume) and the network
// retained for flow-level fingerprinting.
func propertyConfig(s Spec, kind sim.SchedulerKind) harness.RunConfig {
	cfg := harness.MustCompile(s)
	cfg.Topo.Scheduler = kind
	cfg.StrictInvariants = true
	cfg.KeepNetwork = true
	return cfg
}

// checkSingleRun evaluates the properties observable from one run.
func checkSingleRun(spec Spec, r *harness.Result) *Failure {
	fail := func(prop, format string, args ...any) *Failure {
		return &Failure{Property: prop, Detail: fmt.Sprintf(format, args...), Spec: spec}
	}
	if r.InvariantChecks == 0 {
		return fail(PropChecks, "strict invariant checker executed zero assertions")
	}
	if n := len(r.Violations); n > 0 {
		detail := fmt.Sprintf("%d invariant violation(s), first: %v", n, r.Violations[0])
		if n > 1 {
			detail += fmt.Sprintf("; last: %v", r.Violations[n-1])
		}
		return fail(PropInvariants, "%s", detail)
	}
	if r.Drops != 0 {
		return fail(PropLossless, "%d buffer drops in a PFC-lossless fabric", r.Drops)
	}
	kills := 0
	for _, f := range spec.Faults {
		if f.Kill() {
			kills++
		}
	}
	if kills == 0 && r.WireLost != 0 {
		return fail(PropWireLoss, "%d frames lost on the wire with no kill window scheduled", r.WireLost)
	}
	if r.Report.Completed != r.Report.Flows {
		return fail(PropCompletion, "%d of %d flows incomplete after restore + %dus drain",
			r.Report.Flows-r.Report.Completed, r.Report.Flows, spec.DrainUs)
	}
	return nil
}

// Sweep checks n scenarios generated from consecutive seeds base..base+n-1,
// fanned out across workers (GOMAXPROCS when workers <= 0), and returns one
// slot per scenario: nil for a clean pass, the Failure otherwise.
func Sweep(base uint64, n, workers int) []*Failure {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	failures := make([]*Failure, n)
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		// Worker-isolation contract (mirrors harness.runAllN): Check is a
		// pure function of its spec — every run inside it builds a fresh
		// engine, network, and seeded RNG streams. Workers communicate only
		// via the idx channel and write disjoint failures[i] slots, so the
		// output is identical for any worker count.
		go func() {
			defer wg.Done()
			for i := range idx {
				failures[i] = Check(Generate(base + uint64(i)))
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return failures
}
