package scenario

import (
	"testing"
)

// FuzzScenario decodes the fuzzer's byte stream into a generator draw (see
// byteStream: every input, however mangled, decodes to an in-envelope spec)
// and runs the full metamorphic property suite on it. A failure is shrunk
// and written as a repro file replayable via `rlbsim -repro`.
//
// The committed corpus lives in testdata/fuzz/FuzzScenario; these entries
// (plus f.Add below) also run as plain unit tests on every `go test`.
// `make fuzz-smoke` runs the mutating fuzzer for a bounded time.
func FuzzScenario(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte("scenario fuzzing seed: faults, incast, asymmetry"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if fail := Check(DecodeBytes(data)); fail != nil {
			t.Errorf("%s", shrinkAndReport(t, fail))
		}
	})
}
