// Package scenario turns the simulator's invariant and determinism
// infrastructure into an automated exploration engine: a deterministic,
// seed-driven random scenario generator (topology shape, link-speed
// asymmetry, LB scheme, RLB on/off, workload + load, incast, fault
// schedule — all derived from one seed), a metamorphic property runner that
// executes each generated scenario under strict invariants and checks the
// cross-run properties the paper implies (same-seed bit-identical results,
// heap-vs-calendar scheduler equivalence, PFC losslessness, pool/event
// conservation, flow completion after fault restoration), and a shrinker
// that minimizes a violating scenario into a replayable repro file
// (`rlbsim -repro <file>`). FuzzScenario wires the generator into Go native
// fuzzing by decoding corpus bytes into generator draws.
package scenario

import (
	"fmt"

	"github.com/rlb-project/rlb/internal/harness"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/topo"
	"github.com/rlb-project/rlb/internal/units"
	"github.com/rlb-project/rlb/internal/workload"
)

// Spec fully describes one scenario. Every field is plain data (integers,
// strings) so a spec serializes to JSON, diffs cleanly in a shrink log, and
// replays bit-identically from a repro file. Durations are microseconds and
// sizes kilobytes/percent — integral units shrink and clamp without float
// drift.
type Spec struct {
	// GenSeed is the generator seed that produced this spec (0 when the
	// spec was decoded from fuzz corpus bytes). Informational: replay uses
	// the spec fields themselves, never the seed.
	GenSeed uint64 `json:"genSeed"`
	// SimSeed seeds the simulation (harness.RunConfig.Seed).
	SimSeed uint64 `json:"simSeed"`

	Leaves       int `json:"leaves"`
	Spines       int `json:"spines"`
	HostsPerLeaf int `json:"hostsPerLeaf"`
	// LinkGbps is the symmetric link rate; switch thresholds are rescaled
	// from the paper's 40 Gb/s settings exactly as harness.Scale does.
	LinkGbps int `json:"linkGbps"`
	// AsymPct downgrades that percentage of leaf-spine links to quarter
	// rate (§4.2's static asymmetry). 0 = symmetric.
	AsymPct int `json:"asymPct,omitempty"`

	// Scheme is a harness scheme name ("drill", "presto+rlb", ...).
	Scheme string `json:"scheme"`
	// Workload is a workload.ByName distribution name.
	Workload string `json:"workload"`
	// LoadPct is the offered load as a percent of host line rate.
	LoadPct int `json:"loadPct"`
	// MaxFlowKB truncates sampled flow sizes (kB) so elephants finish
	// within the window.
	MaxFlowKB int `json:"maxFlowKB"`

	// DurationUs is the traffic window; DrainUs the extra time for
	// in-flight flows (and post-fault retransmissions) to finish. Normalize
	// keeps DrainUs above a floor derived from DurationUs so the
	// completion property stays meaningful.
	DurationUs int `json:"durationUs"`
	DrainUs    int `json:"drainUs"`

	// Incast fields describe one synchronized fan-in (§4.3) injected at
	// IncastAtUs: IncastDegree servers each send IncastKB/degree to
	// IncastClient. IncastDegree < 2 means no incast.
	IncastDegree int `json:"incastDegree,omitempty"`
	IncastKB     int `json:"incastKB,omitempty"`
	IncastAtUs   int `json:"incastAtUs,omitempty"`
	IncastClient int `json:"incastClient,omitempty"`

	// Faults is the fault schedule; every window restores what it broke
	// before the traffic window ends, so fault-free-at-end properties
	// (completion, no blackholes) hold for every generated spec.
	Faults []FaultSpec `json:"faults,omitempty"`

	// LeakPutEvery is deliberate fault injection for the seeded-breach
	// meta-test: every Nth packet returned to the pool is silently leaked
	// (fabric.Pool.LeakEvery), which the strict packet-pool conservation
	// invariant must catch. The generator never sets it; it serializes so
	// a breach repro file replays the breach.
	LeakPutEvery int `json:"leakPutEvery,omitempty"`
}

// FaultSpec is one restore-guaranteed fault window on leaf-spine link
// (Leaf, Spine): a kill window (RateDiv <= 1) cutting the link from DownAtUs
// to UpAtUs, or a degrade window (RateDiv > 1) running it at LinkRate/RateDiv
// over the same span.
type FaultSpec struct {
	Leaf     int `json:"leaf"`
	Spine    int `json:"spine"`
	DownAtUs int `json:"downAtUs"`
	UpAtUs   int `json:"upAtUs"`
	RateDiv  int `json:"rateDiv,omitempty"`
}

// Kill reports whether the window cuts the link (vs. degrading it).
func (f FaultSpec) Kill() bool { return f.RateDiv <= 1 }

// usTime converts integral microseconds to sim.Time.
func usTime(us int) sim.Time { return sim.Time(us) * sim.Microsecond }

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// drainFloorUs is the minimum drain that makes the flows-complete property
// sound rather than a tuning assumption: a flow that has not finished by
// then is stuck, not slow. Two parts:
//
//   - a time base: three more traffic windows plus 2 ms, covering PFC
//     backlog draining and several go-back-N RTO cycles (the transport
//     default is 400 µs) after a restored kill window;
//   - a capacity term: the worst case is every byte crossing one
//     quarter-rate link (static asymmetry and degrade windows both floor at
//     LinkRate/4, and hashing can pile all flows onto it), so budget the
//     per-flow cap, the window's offered bytes, and the incast — each with
//     margin for Poisson overshoot, DCQCN ramp-up, and retransmissions —
//     across a LinkGbps/4 bottleneck. Long drains are nearly free: once
//     flows finish, only periodic timers tick.
//
// Fields are read post-clamp, so LinkGbps >= 5.
func (s Spec) drainFloorUs() int {
	hosts := s.Leaves * s.HostsPerLeaf
	// Offered bytes over the window, in KB: LoadPct% of line rate per host.
	genKB := s.LoadPct * hosts * s.LinkGbps * s.DurationUs / 800
	slowKB := 4*s.MaxFlowKB + 3*genKB + 2*s.IncastKB
	// A quarter-rate link moves LinkGbps/32 KB per microsecond.
	return 3*s.DurationUs + 2000 + 32*slowKB/s.LinkGbps
}

// Normalize clamps every field into the envelope the property suite is
// calibrated for and repairs inconsistencies (fault addresses outside the
// fabric, unordered windows, duplicate links, impossible incasts). Both the
// generator and the byte decoder emit normalized specs, and the shrinker
// re-normalizes every candidate, so all specs that reach the runner satisfy
// the same invariants: PFC on, every fault restored before the window ends,
// drain above the completion floor.
func (s Spec) Normalize() Spec {
	s.Leaves = clampInt(s.Leaves, 2, 4)
	s.Spines = clampInt(s.Spines, 2, 6)
	s.HostsPerLeaf = clampInt(s.HostsPerLeaf, 1, 4)
	s.LinkGbps = clampInt(s.LinkGbps, 5, 40)
	s.AsymPct = clampInt(s.AsymPct, 0, 50)
	if _, err := harness.SchemeByName(s.Scheme, 2*sim.Microsecond, nil); err != nil {
		s.Scheme = "ecmp"
	}
	if _, err := workload.ByName(s.Workload); err != nil {
		s.Workload = "webserver"
	}
	s.LoadPct = clampInt(s.LoadPct, 5, 50)
	s.MaxFlowKB = clampInt(s.MaxFlowKB, 10, 1000)
	s.DurationUs = clampInt(s.DurationUs, 50, 800)

	hosts := s.Leaves * s.HostsPerLeaf
	if s.IncastDegree < 2 || hosts-1 < 2 {
		s.IncastDegree, s.IncastKB, s.IncastAtUs, s.IncastClient = 0, 0, 0, 0
	} else {
		s.IncastDegree = clampInt(s.IncastDegree, 2, minInt(6, hosts-1))
		s.IncastKB = clampInt(s.IncastKB, 4, 64)
		s.IncastAtUs = clampInt(s.IncastAtUs, 0, s.DurationUs)
		s.IncastClient = clampInt(s.IncastClient, 0, hosts-1)
	}

	// The drain floor reads the clamped dims/load/caps above, so it comes last.
	if floor := s.drainFloorUs(); s.DrainUs < floor {
		s.DrainUs = floor
	}

	// Faults: clamp addresses, keep at most one window per link (overlapping
	// windows on one link could re-kill it after its restore and leave it
	// down at end of run), and force DownAt < UpAt <= Duration so every
	// break is repaired inside the traffic window.
	var faults []FaultSpec
	seen := make(map[[2]int]bool)
	for _, f := range s.Faults {
		if len(faults) == 3 {
			break
		}
		f.Leaf = clampInt(f.Leaf, 0, s.Leaves-1)
		f.Spine = clampInt(f.Spine, 0, s.Spines-1)
		key := [2]int{f.Leaf, f.Spine}
		if seen[key] {
			continue
		}
		seen[key] = true
		f.DownAtUs = clampInt(f.DownAtUs, s.DurationUs/8, s.DurationUs-s.DurationUs/8)
		f.UpAtUs = clampInt(f.UpAtUs, f.DownAtUs+1, s.DurationUs)
		if f.RateDiv != 0 {
			f.RateDiv = clampInt(f.RateDiv, 1, 8)
		}
		faults = append(faults, f)
	}
	s.Faults = faults

	if s.LeakPutEvery < 0 {
		s.LeakPutEvery = 0
	}
	return s
}

// Params renders the spec as the one-line parameter summary attached to
// every invariant violation (RunConfig.Context), so any failure in a log is
// reproducible without the repro file.
func (s Spec) Params() string {
	out := fmt.Sprintf("scenario gen-seed=%d sim-seed=%d fabric=%dx%d/%d@%dG scheme=%s wl=%s load=%d%% cap=%dKB dur=%dus drain=%dus",
		s.GenSeed, s.SimSeed, s.Leaves, s.Spines, s.HostsPerLeaf, s.LinkGbps,
		s.Scheme, s.Workload, s.LoadPct, s.MaxFlowKB, s.DurationUs, s.DrainUs)
	if s.AsymPct > 0 {
		out += fmt.Sprintf(" asym=%d%%", s.AsymPct)
	}
	if s.IncastDegree >= 2 {
		out += fmt.Sprintf(" incast=%dx%dKB@%dus->h%d", s.IncastDegree, s.IncastKB, s.IncastAtUs, s.IncastClient)
	}
	for _, f := range s.Faults {
		kind := "kill"
		if !f.Kill() {
			kind = fmt.Sprintf("rate/%d", f.RateDiv)
		}
		out += fmt.Sprintf(" fault=%s(l%d,s%d,%d-%dus)", kind, f.Leaf, f.Spine, f.DownAtUs, f.UpAtUs)
	}
	if s.LeakPutEvery > 0 {
		out += fmt.Sprintf(" leak-every=%d", s.LeakPutEvery)
	}
	return out
}

// scale bundles the spec's fabric dimensions the way the figure builders do,
// reusing harness.Scale's threshold rescaling (PFC/ECN constants follow the
// link rate so reduced fabrics still pause).
func (s Spec) scale() harness.Scale {
	return harness.Scale{
		Name:         "scenario",
		Leaves:       s.Leaves,
		Spines:       s.Spines,
		HostsPerLeaf: s.HostsPerLeaf,
		LinkRate:     units.Bandwidth(s.LinkGbps) * units.Gbps,
		LinkDelay:    2 * sim.Microsecond,
		Duration:     usTime(s.DurationUs),
		Drain:        usTime(s.DrainUs),
		MaxFlowBytes: s.MaxFlowKB * 1000,
	}
}

// ToFaults renders the restore-guaranteed windows as the topo fault schedule.
func (s Spec) ToFaults() []topo.Fault {
	rate := units.Bandwidth(s.LinkGbps) * units.Gbps
	var fs []topo.Fault
	for _, f := range s.Faults {
		if f.Kill() {
			fs = append(fs,
				topo.Fault{At: usTime(f.DownAtUs), Kind: topo.LinkDown, Leaf: f.Leaf, Spine: f.Spine},
				topo.Fault{At: usTime(f.UpAtUs), Kind: topo.LinkUp, Leaf: f.Leaf, Spine: f.Spine})
		} else {
			fs = append(fs,
				topo.Fault{At: usTime(f.DownAtUs), Kind: topo.LinkRate, Leaf: f.Leaf, Spine: f.Spine, Rate: rate / units.Bandwidth(f.RateDiv)},
				topo.Fault{At: usTime(f.UpAtUs), Kind: topo.LinkRate, Leaf: f.Leaf, Spine: f.Spine, Rate: rate})
		}
	}
	return fs
}

// RunConfig builds the harness config for one property-suite run of this
// spec under the given event scheduler. Strict invariants are always on
// (the property suite is the consumer of their audits), the network is
// retained for flow-level fingerprinting, and the violation context carries
// the full generator parameter set.
func (s Spec) RunConfig(kind sim.SchedulerKind) harness.RunConfig {
	sc := s.scale()
	p := sc.TopoParams()
	if s.AsymPct > 0 {
		p.AsymFraction = float64(s.AsymPct) / 100
		p.AsymRate = sc.LinkRate / 4
	}
	harness.MustScheme(s.Scheme, sc.LinkDelay, nil).Apply(&p)
	p.Scheduler = kind

	dist, err := workload.ByName(s.Workload)
	if err != nil {
		panic(err) // Normalize guarantees a known workload
	}

	spec := s // captured by the inject hook below
	var inject func(n *topo.Network)
	if spec.LeakPutEvery > 0 || spec.IncastDegree >= 2 {
		inject = func(n *topo.Network) {
			if spec.LeakPutEvery > 0 {
				n.PacketPool().LeakEvery = spec.LeakPutEvery
			}
			if spec.IncastDegree >= 2 {
				var servers []int
				hosts := spec.Leaves * spec.HostsPerLeaf
				for h := 0; h < hosts && len(servers) < spec.IncastDegree; h++ {
					if h != spec.IncastClient {
						servers = append(servers, h)
					}
				}
				n.Eng.At(usTime(spec.IncastAtUs), func() {
					workload.Incast(n.Starter(), spec.IncastClient, servers, spec.IncastKB*1000)
				})
			}
		}
	}

	return harness.RunConfig{
		Topo:             p,
		Workload:         dist,
		Load:             float64(s.LoadPct) / 100,
		MaxFlowBytes:     sc.MaxFlowBytes,
		Duration:         sc.Duration,
		Drain:            sc.Drain,
		Inject:           inject,
		Faults:           s.ToFaults(),
		KeepNetwork:      true,
		StrictInvariants: true,
		Context:          s.Params(),
		Seed:             s.SimSeed,
	}
}
