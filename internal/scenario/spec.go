// Package scenario turns the simulator's invariant and determinism
// infrastructure into an automated exploration engine: a deterministic,
// seed-driven random scenario generator (topology shape, link-speed
// asymmetry, LB scheme, RLB on/off, workload + load, incast, fault
// schedule — all derived from one seed), a metamorphic property runner that
// executes each generated scenario under strict invariants and checks the
// cross-run properties the paper implies (same-seed bit-identical results,
// heap-vs-calendar scheduler equivalence, PFC losslessness, pool/event
// conservation, flow completion after fault restoration), and a shrinker
// that minimizes a violating scenario into a replayable repro file
// (`rlbsim -repro <file>`). FuzzScenario wires the generator into Go native
// fuzzing by decoding corpus bytes into generator draws.
//
// The scenario type itself is the repo-wide canonical experiment spec
// (internal/spec); this package generates, normalizes, shrinks, and replays
// it, while internal/harness compiles it into runnable configs.
package scenario

import "github.com/rlb-project/rlb/internal/spec"

// Spec is the canonical experiment spec. The generator stays within
// spec.Spec.Normalize's fuzz envelope; repro files and fuzz corpus entries
// serialize this shared type directly, so a spec the fuzzer shrinks is the
// same document `rlbsim -spec` and the figure grids consume.
type Spec = spec.Spec

// FaultSpec is one restore-guaranteed fault window (see spec.FaultSpec).
type FaultSpec = spec.FaultSpec
