package scenario

import (
	"path/filepath"
	"strings"
	"testing"

	"github.com/rlb-project/rlb/internal/invariant"
)

// TestSeededBreachIsCaughtAndShrunk proves the fuzz tier detects real bugs,
// the same way TestTreeIsLintClean's fixtures prove simlint does: seed a
// deliberate invariant breach — every Nth packet returned to the pool is
// silently leaked (fabric.Pool.LeakEvery), exactly what a missing Release
// call looks like — and assert the property suite catches it, the shrinker
// minimizes it without losing it, and the written repro file reproduces it
// from disk alone.
func TestSeededBreachIsCaughtAndShrunk(t *testing.T) {
	spec := Generate(42)
	spec.LeakPutEvery = 50

	fail := Check(spec)
	if fail == nil {
		t.Fatal("seeded pool leak not caught by the property suite")
	}
	if fail.Property != PropInvariants {
		t.Fatalf("leak surfaced as %s, want %s: %s", fail.Property, PropInvariants, fail.Detail)
	}
	if !strings.Contains(fail.Detail, invariant.RulePacketPool) {
		t.Fatalf("leak not attributed to the %s invariant: %s", invariant.RulePacketPool, fail.Detail)
	}
	// The violation context must carry the generator identity, so the
	// failure is reproducible from the log line alone.
	if !strings.Contains(fail.Detail, "gen-seed=42") {
		t.Fatalf("violation context missing generator seed: %s", fail.Detail)
	}

	min, minFail := Shrink(spec, Check, 25)
	if minFail == nil {
		t.Fatal("shrinker lost the seeded breach")
	}
	if minFail.Property != PropInvariants || !strings.Contains(minFail.Detail, invariant.RulePacketPool) {
		t.Fatalf("shrinking changed the failure: %s", minFail.Error())
	}
	if min.LeakPutEvery != spec.LeakPutEvery {
		t.Fatalf("shrinker touched the injected breach knob: %d", min.LeakPutEvery)
	}
	if min.DurationUs > spec.DurationUs || len(min.Faults) > len(spec.Faults) {
		t.Fatalf("shrunk spec grew: %s", min.Params())
	}
	if min.DurationUs == spec.DurationUs && min.LoadPct == spec.LoadPct &&
		min.MaxFlowKB == spec.MaxFlowKB && min.Leaves == spec.Leaves &&
		min.Spines == spec.Spines && min.HostsPerLeaf == spec.HostsPerLeaf {
		t.Fatalf("shrinker made no progress on a leak that survives shrinking: %s", min.Params())
	}

	// The repro file alone must reproduce the breach (LeakPutEvery rides
	// along in the serialized spec).
	path := filepath.Join(t.TempDir(), "leak-repro.json")
	if err := WriteRepro(path, minFail); err != nil {
		t.Fatal(err)
	}
	r, replayFail, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Property != PropInvariants {
		t.Fatalf("repro file lost the verdict: %+v", r)
	}
	if replayFail == nil {
		t.Fatal("replayed repro no longer reproduces the seeded breach")
	}
	if replayFail.Property != PropInvariants || !strings.Contains(replayFail.Detail, invariant.RulePacketPool) {
		t.Fatalf("replay produced a different failure: %s", replayFail.Error())
	}
}
