package scenario

import (
	"encoding/binary"

	"github.com/rlb-project/rlb/internal/rng"
	"github.com/rlb-project/rlb/internal/spec"
	"github.com/rlb-project/rlb/internal/workload"
)

// entropy is the generator's randomness source. Seeded generation draws from
// an rng.Source; fuzz-decoded generation draws from a byteStream over the
// corpus bytes. Funneling both through the same generate() keeps every
// fuzz-mutated spec inside the generator's calibrated envelope, so the
// property suite never fails on an impossible scenario (a kill window that
// is never restored, a drain too short for completion) instead of a real bug.
type entropy interface {
	Uint64() uint64
}

// byteStream yields 64-bit words from fuzz corpus bytes, little-endian. When
// the corpus is exhausted it extends deterministically from the last state
// with a splitmix64 step, so any byte slice — including the empty one —
// decodes to a complete spec and byte mutations near the front perturb every
// later draw.
type byteStream struct {
	data []byte
	pos  int
	last uint64
}

func (b *byteStream) Uint64() uint64 {
	if b.pos+8 <= len(b.data) {
		b.last = binary.LittleEndian.Uint64(b.data[b.pos:])
		b.pos += 8
		return b.last
	}
	for b.pos < len(b.data) {
		b.last = b.last<<8 | uint64(b.data[b.pos])
		b.pos++
	}
	// splitmix64 finalizer over a golden-ratio increment.
	b.last += 0x9e3779b97f4a7c15
	z := b.last
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn draws a uniform value in [0, n).
func intn(e entropy, n int) int {
	if n <= 1 {
		return 0
	}
	return int(e.Uint64() % uint64(n))
}

// between draws a uniform value in [lo, hi] (inclusive).
func between(e entropy, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + intn(e, hi-lo+1)
}

// chance is true pct percent of the time.
func chance(e entropy, pct int) bool { return intn(e, 100) < pct }

// genSchemes is every scheme the generator samples, straight from the
// canonical registry: the paper's six base load balancers, each with and
// without RLB. spec.SchemeNames pins the order the corpus format relies on.
var genSchemes = spec.SchemeNames()

// genWorkloads are the four empirical flow-size CDFs from the paper's §4.1,
// in the registry's corpus-format order.
var genWorkloads = workload.Names()

// genLinkGbps are the sampled symmetric link rates.
var genLinkGbps = []int{10, 25, 40}

// Generate derives a complete scenario from one seed: same seed, same spec,
// on any platform.
func Generate(seed uint64) Spec {
	s := generate(rng.New(seed))
	s.GenSeed = seed
	return s
}

// DecodeBytes interprets fuzz corpus bytes as the generator's entropy stream
// and returns the (normalized) spec they draw.
func DecodeBytes(data []byte) Spec {
	return generate(&byteStream{data: data})
}

// generate draws one scenario from the entropy stream. Draw order is part of
// the corpus format: reordering draws invalidates committed fuzz inputs
// (they still decode, just to different scenarios), so append new draws at
// the end. All ranges stay within Normalize's envelope; the trailing
// Normalize is belt-and-braces plus the fault-window repairs.
func generate(e entropy) Spec {
	s := Spec{
		SimSeed:      e.Uint64(),
		Leaves:       between(e, 2, 3),
		Spines:       between(e, 2, 4),
		HostsPerLeaf: between(e, 2, 3),
		LinkGbps:     genLinkGbps[intn(e, len(genLinkGbps))],
		Scheme:       genSchemes[intn(e, len(genSchemes))],
		Workload:     genWorkloads[intn(e, len(genWorkloads))],
		LoadPct:      between(e, 10, 40),
		MaxFlowKB:    between(e, 50, 400),
		DurationUs:   between(e, 200, 500),
	}
	extraDrainUs := between(e, 0, 1000)
	if chance(e, 25) {
		s.AsymPct = between(e, 10, 30)
	}
	if hosts := s.Leaves * s.HostsPerLeaf; chance(e, 30) && hosts >= 3 {
		s.IncastDegree = between(e, 2, minInt(6, hosts-1))
		s.IncastKB = between(e, 16, 64)
		s.IncastAtUs = between(e, s.DurationUs/4, s.DurationUs/2)
		s.IncastClient = intn(e, hosts)
	}
	for i, n := 0, intn(e, 3); i < n; i++ {
		f := FaultSpec{
			Leaf:     intn(e, s.Leaves),
			Spine:    intn(e, s.Spines),
			DownAtUs: between(e, s.DurationUs/8, s.DurationUs/2),
		}
		f.UpAtUs = between(e, f.DownAtUs+s.DurationUs/8, s.DurationUs)
		if chance(e, 30) {
			f.RateDiv = 4 // degrade window instead of a kill window
		}
		s.Faults = append(s.Faults, f)
	}
	// Normalize derives the drain floor from the clamped spec; the extra
	// drawn above rides on top (a floored spec plus slack is still a
	// Normalize fixpoint, since the floor only raises).
	s = s.Normalize()
	s.DrainUs += extraDrainUs
	return s
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
