package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"github.com/rlb-project/rlb/internal/spec"
)

// corpusEntries parses every committed seed-corpus file (Go's "go test fuzz
// v1" format: a header line, then one quoted []byte argument per line) and
// returns the raw fuzz inputs.
func corpusEntries(t *testing.T) map[string][]byte {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", "FuzzScenario")
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("no committed corpus: %v", err)
	}
	out := make(map[string][]byte)
	for _, f := range files {
		data, err := os.ReadFile(filepath.Join(dir, f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) != 2 || lines[0] != "go test fuzz v1" {
			t.Fatalf("%s: not a v1 corpus file (%d lines)", f.Name(), len(lines))
		}
		quoted := strings.TrimSuffix(strings.TrimPrefix(lines[1], "[]byte("), ")")
		s, err := strconv.Unquote(quoted)
		if err != nil {
			t.Fatalf("%s: unquoting corpus bytes: %v", f.Name(), err)
		}
		out[f.Name()] = []byte(s)
	}
	if len(out) == 0 {
		t.Fatal("corpus directory is empty")
	}
	return out
}

// TestCommittedCorpusStillDecodes pins the fuzz-input format across the spec
// migration: every committed corpus entry must still decode deterministically
// into a normalized in-envelope spec. A failure here means the byte-stream
// decoder changed meaning and the committed corpus now exercises different
// scenarios than the ones it was minimized for.
func TestCommittedCorpusStillDecodes(t *testing.T) {
	for name, in := range corpusEntries(t) {
		s := DecodeBytes(in)
		n := s.Normalize()
		js, _ := json.Marshal(s)
		jn, _ := json.Marshal(n)
		if string(js) != string(jn) {
			t.Errorf("%s: decoded spec is not a Normalize fixpoint:\n%s\nvs\n%s", name, js, jn)
		}
		if a, b := DecodeBytes(in), DecodeBytes(in); a.Params() != b.Params() {
			t.Errorf("%s: decode nondeterministic", name)
		}
	}
}

// TestCommittedReproStillReplays pins the repro-file format: the committed
// fixture must load, its spec must survive the canonical JSON round trip,
// and the recorded scenario must still pass the property suite (it records a
// long-fixed failure, kept as a format regression fixture).
func TestCommittedReproStillReplays(t *testing.T) {
	path := filepath.Join("testdata", "repro_fixture.json")
	r, fail, err := Replay(path)
	if err != nil {
		t.Fatalf("committed repro no longer loads: %v", err)
	}
	if r.Property == "" || r.Detail == "" {
		t.Fatalf("fixture lost its verdict fields: %+v", r)
	}
	data, err := spec.Encode(r.Spec)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := spec.Decode(data)
	if err != nil {
		t.Fatalf("fixture spec does not survive the canonical round trip: %v", err)
	}
	if decoded.Params() != r.Spec.Params() {
		t.Fatalf("round trip changed the fixture spec:\n%s\nvs\n%s", decoded.Params(), r.Spec.Params())
	}
	if fail != nil {
		t.Fatalf("fixture scenario fails the property suite again: %v", fail)
	}
}
