package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateIsDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		a, b := Generate(seed), Generate(seed)
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if string(ja) != string(jb) {
			t.Fatalf("seed %d generated two different specs:\n%s\nvs\n%s", seed, ja, jb)
		}
		if a.GenSeed != seed {
			t.Fatalf("seed %d: GenSeed not stamped (got %d)", seed, a.GenSeed)
		}
	}
	if ja, jb := Generate(1), Generate(2); ja.Params() == jb.Params() {
		t.Fatal("distinct seeds generated identical specs")
	}
}

// TestGeneratedSpecsAreNormalized pins the generator to Normalize's envelope:
// every generated spec must be a fixpoint of Normalize, every fault window
// restored inside the traffic window, every drain above the completion floor.
// The property suite's correctness rests on these.
func TestGeneratedSpecsAreNormalized(t *testing.T) {
	for seed := uint64(0); seed < 300; seed++ {
		s := Generate(seed)
		n := s.Normalize()
		n.GenSeed = s.GenSeed
		js, _ := json.Marshal(s)
		jn, _ := json.Marshal(n)
		if string(js) != string(jn) {
			t.Fatalf("seed %d: generated spec is not a Normalize fixpoint:\n%s\nvs\n%s", seed, js, jn)
		}
		if s.DrainUs < s.DrainFloorUs() {
			t.Fatalf("seed %d: drain %dus below floor for %dus window", seed, s.DrainUs, s.DurationUs)
		}
		links := map[[2]int]bool{}
		for _, f := range s.Faults {
			if f.Leaf < 0 || f.Leaf >= s.Leaves || f.Spine < 0 || f.Spine >= s.Spines {
				t.Fatalf("seed %d: fault addresses nonexistent link l%d/s%d", seed, f.Leaf, f.Spine)
			}
			if !(f.DownAtUs < f.UpAtUs && f.UpAtUs <= s.DurationUs) {
				t.Fatalf("seed %d: fault window %d-%dus not restored inside %dus window",
					seed, f.DownAtUs, f.UpAtUs, s.DurationUs)
			}
			key := [2]int{f.Leaf, f.Spine}
			if links[key] {
				t.Fatalf("seed %d: two fault windows on link l%d/s%d", seed, f.Leaf, f.Spine)
			}
			links[key] = true
		}
		if s.IncastDegree != 0 {
			hosts := s.Leaves * s.HostsPerLeaf
			if s.IncastDegree < 2 || s.IncastDegree > hosts-1 {
				t.Fatalf("seed %d: incast degree %d impossible with %d hosts", seed, s.IncastDegree, hosts)
			}
		}
	}
}

// TestDecodeBytesStaysInEnvelope feeds adversarial byte slices through the
// fuzz decoder and asserts every decoded spec lands in the same normalized
// envelope as seeded generation — the property that makes fuzzing sound.
func TestDecodeBytesStaysInEnvelope(t *testing.T) {
	inputs := [][]byte{
		nil,
		{},
		{0},
		{0xff},
		make([]byte, 3),
		make([]byte, 7), // partial word
		make([]byte, 8),
		make([]byte, 200),
		{0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5},
	}
	for i := 0; i < 64; i++ {
		inputs = append(inputs, []byte(strings.Repeat(string(rune('a'+i%26)), i)))
	}
	for _, in := range inputs {
		s := DecodeBytes(in)
		n := s.Normalize()
		js, _ := json.Marshal(s)
		jn, _ := json.Marshal(n)
		if string(js) != string(jn) {
			t.Fatalf("decode(%q) escaped the envelope:\n%s\nvs\n%s", in, js, jn)
		}
		if a, b := DecodeBytes(in), DecodeBytes(in); a.Params() != b.Params() {
			t.Fatalf("decode(%q) nondeterministic", in)
		}
	}
}

// TestShrinkMinimizesAgainstPredicate drives the shrinker with a pure
// predicate (no simulation) and asserts it reaches the predicate's minimal
// failing spec, not just some smaller one.
func TestShrinkMinimizesAgainstPredicate(t *testing.T) {
	// "Bug" reproduces iff at least one fault window exists and the window is
	// at least 100us on a >=2-leaf fabric — everything else is noise the
	// shrinker must strip.
	pred := func(s Spec) *Failure {
		s = s.Normalize()
		if len(s.Faults) >= 1 && s.DurationUs >= 100 {
			return &Failure{Property: "synthetic", Detail: "still failing", Spec: s}
		}
		return nil
	}
	start := Spec{
		SimSeed: 9, Leaves: 3, Spines: 4, HostsPerLeaf: 3, LinkGbps: 40,
		AsymPct: 20, Scheme: "drill+rlb", Workload: "websearch",
		LoadPct: 40, MaxFlowKB: 400, DurationUs: 480, DrainUs: 5000,
		IncastDegree: 4, IncastKB: 64, IncastAtUs: 200, IncastClient: 1,
		Faults: []FaultSpec{
			{Leaf: 0, Spine: 0, DownAtUs: 100, UpAtUs: 200},
			{Leaf: 1, Spine: 2, DownAtUs: 120, UpAtUs: 300, RateDiv: 4},
			{Leaf: 2, Spine: 3, DownAtUs: 60, UpAtUs: 400},
		},
	}
	min, fail := Shrink(start, pred, 500)
	if fail == nil {
		t.Fatal("shrinker lost the failure")
	}
	if len(min.Faults) != 1 {
		t.Fatalf("faults not minimized: %d left", len(min.Faults))
	}
	if min.DurationUs >= 200 {
		t.Fatalf("duration not minimized: %dus (halving below 100 must pass the predicate)", min.DurationUs)
	}
	if min.IncastDegree != 0 || min.AsymPct != 0 {
		t.Fatalf("noise not stripped: incast=%d asym=%d", min.IncastDegree, min.AsymPct)
	}
	if min.Leaves != 2 || min.Spines != 2 || min.HostsPerLeaf != 1 {
		t.Fatalf("fabric not minimized: %dx%d/%d", min.Leaves, min.Spines, min.HostsPerLeaf)
	}
	if min.LoadPct != 5 || min.MaxFlowKB != 10 {
		t.Fatalf("load/cap not minimized: %d%% %dKB", min.LoadPct, min.MaxFlowKB)
	}
	// A passing spec comes back unchanged with no failure.
	if _, f := Shrink(Spec{DurationUs: 50}, pred, 50); f != nil {
		t.Fatalf("passing spec reported failing: %v", f)
	}
}

func TestShrinkRespectsBudget(t *testing.T) {
	calls := 0
	pred := func(s Spec) *Failure {
		calls++
		return &Failure{Property: "synthetic", Detail: "always fails", Spec: s}
	}
	Shrink(Generate(3), pred, 10)
	if calls > 10 {
		t.Fatalf("shrinker ran %d checks against a budget of 10", calls)
	}
}

func TestReproRoundTrip(t *testing.T) {
	f := &Failure{Property: PropLossless, Detail: "7 buffer drops", Spec: Generate(11)}
	path := filepath.Join(t.TempDir(), "repro.json")
	if err := WriteRepro(path, f); err != nil {
		t.Fatal(err)
	}
	r, err := LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Property != f.Property || r.Detail != f.Detail {
		t.Fatalf("round trip lost the verdict: %+v", r)
	}
	ja, _ := json.Marshal(f.Spec)
	jb, _ := json.Marshal(r.Spec)
	if string(ja) != string(jb) {
		t.Fatalf("round trip changed the spec:\n%s\nvs\n%s", ja, jb)
	}
	if _, err := LoadRepro(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("loading a missing repro did not error")
	}
}

// reproDir is where failing sweeps/fuzz runs park their repro files: the
// RLB_REPRO_DIR environment variable when set, else the system temp dir —
// somewhere that outlives the test process, unlike t.TempDir.
func reproDir() string {
	if d := os.Getenv("RLB_REPRO_DIR"); d != "" {
		return d
	}
	return os.TempDir()
}

// shrinkAndReport minimizes a failing spec and writes a repro file, returning
// the message for t.Errorf.
func shrinkAndReport(t *testing.T, fail *Failure) string {
	t.Helper()
	min, minFail := Shrink(fail.Spec, Check, 60)
	if minFail == nil { // flaky environment guard; report the original
		min, minFail = fail.Spec, fail
	}
	path := filepath.Join(reproDir(), "rlb-repro-"+minFail.Property+".json")
	msg := minFail.Error()
	if err := WriteRepro(path, minFail); err != nil {
		msg += " (repro write failed: " + err.Error() + ")"
	} else {
		msg += "\nshrunk spec: " + min.Params() + "\nreplay: rlbsim -repro " + path
	}
	return msg
}

// TestMetamorphicSweep is the fuzz tier's deterministic core: N generated
// scenarios, every metamorphic property checked on each. Failures are
// shrunk and written as repro files replayable via `rlbsim -repro`.
func TestMetamorphicSweep(t *testing.T) {
	n := 50
	if testing.Short() {
		n = 10
	}
	for i, fail := range Sweep(1000, n, 0) {
		if fail != nil {
			t.Errorf("scenario %d (gen-seed %d): %s", i, 1000+uint64(i), shrinkAndReport(t, fail))
		}
	}
}

// TestSweepIndependentOfWorkerCount pins the sweep's worker-isolation
// contract: the verdict vector must not depend on parallelism.
func TestSweepIndependentOfWorkerCount(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	serial := Sweep(2000, 6, 1)
	wide := Sweep(2000, 6, 4)
	for i := range serial {
		a, b := serial[i] == nil, wide[i] == nil
		if a != b {
			t.Fatalf("scenario %d verdict differs across worker counts: serial=%v wide=%v", i, serial[i], wide[i])
		}
	}
}
