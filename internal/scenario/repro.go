package scenario

import (
	"encoding/json"
	"fmt"
	"os"
)

// Repro is the on-disk reproduction record the shrinker writes for a failing
// scenario: the minimized spec plus which property it violated and how.
// `rlbsim -repro <file>` (and Replay below) re-runs the full property suite
// on the spec alone — no seed or corpus bytes needed.
type Repro struct {
	Property string `json:"property"`
	Detail   string `json:"detail"`
	Spec     Spec   `json:"spec"`
}

// WriteRepro serializes the failure as an indented-JSON repro file.
func WriteRepro(path string, f *Failure) error {
	data, err := json.MarshalIndent(Repro{Property: f.Property, Detail: f.Detail, Spec: f.Spec}, "", "  ")
	if err != nil {
		return fmt.Errorf("scenario: marshal repro: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadRepro parses a repro file.
func LoadRepro(path string) (Repro, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Repro{}, fmt.Errorf("scenario: read repro: %w", err)
	}
	var r Repro
	if err := json.Unmarshal(data, &r); err != nil {
		return Repro{}, fmt.Errorf("scenario: parse repro %s: %w", path, err)
	}
	return r, nil
}

// Replay loads a repro file and re-runs the property suite on its spec.
// Returns the record, the current verdict (nil = the failure no longer
// reproduces, i.e. the bug is fixed), and any file/parse error.
func Replay(path string) (Repro, *Failure, error) {
	r, err := LoadRepro(path)
	if err != nil {
		return Repro{}, nil, err
	}
	return r, Check(r.Spec), nil
}
