package scenario

// Shrink greedily minimizes a failing spec: it tries one reduction at a
// time (drop a fault, halve the duration, remove a host, ...), keeps any
// candidate that still fails — any property, not necessarily the original
// one, since the smallest reproduction of the underlying bug is what a human
// wants to stare at — and restarts from the smaller spec until no reduction
// fails or the check budget is exhausted. Every candidate passes through
// Normalize, so shrinking can never escape the generator's envelope (e.g.
// halving the duration re-floors the drain, keeping the completion property
// honest). Returns the smallest failing spec found and its Failure; when the
// input unexpectedly passes, returns it unchanged with a nil Failure.
func Shrink(spec Spec, check CheckFunc, budget int) (Spec, *Failure) {
	spec = spec.Normalize()
	best := check(spec)
	budget--
	if best == nil {
		return spec, nil
	}
	for changed := true; changed && budget > 0; {
		changed = false
		for _, cand := range shrinkCandidates(spec) {
			if budget <= 0 {
				break
			}
			f := check(cand)
			budget--
			if f != nil {
				spec, best = cand, f
				changed = true
				break // restart enumeration from the smaller spec
			}
		}
	}
	return spec, best
}

// cloneFaults deep-copies the fault slice so candidates never alias the
// parent spec's backing array.
func cloneFaults(fs []FaultSpec) []FaultSpec {
	if len(fs) == 0 {
		return nil
	}
	out := make([]FaultSpec, len(fs))
	copy(out, fs)
	return out
}

// shrinkCandidates enumerates the one-step reductions of s, biggest wins
// first (structure before sizes before knobs), each already normalized.
func shrinkCandidates(s Spec) []Spec {
	var out []Spec
	add := func(c Spec) { out = append(out, c.Normalize()) }

	// Drop each fault window individually.
	for i := range s.Faults {
		c := s
		c.Faults = append(cloneFaults(s.Faults[:i]), s.Faults[i+1:]...)
		add(c)
	}
	// Drop the incast burst.
	if s.IncastDegree >= 2 {
		c := s
		c.IncastDegree = 0
		add(c)
	}
	// Halve the traffic window (Normalize re-floors the drain to match).
	if s.DurationUs > 50 {
		c := s
		c.Faults = cloneFaults(s.Faults)
		c.DurationUs = s.DurationUs / 2
		c.DrainUs = 0 // re-derived by Normalize
		add(c)
	}
	// Pull the drain down to its floor.
	if s.DrainUs > s.DrainFloorUs() {
		c := s
		c.DrainUs = 0
		add(c)
	}
	// Shrink the fabric one dimension at a time.
	if s.HostsPerLeaf > 1 {
		c := s
		c.Faults = cloneFaults(s.Faults)
		c.HostsPerLeaf--
		add(c)
	}
	if s.Leaves > 2 {
		c := s
		c.Faults = cloneFaults(s.Faults)
		c.Leaves--
		add(c)
	}
	if s.Spines > 2 {
		c := s
		c.Faults = cloneFaults(s.Faults)
		c.Spines--
		add(c)
	}
	// Halve the offered load and the elephant cap.
	if s.LoadPct > 5 {
		c := s
		c.LoadPct = s.LoadPct / 2
		add(c)
	}
	if s.MaxFlowKB > 10 {
		c := s
		c.MaxFlowKB = s.MaxFlowKB / 2
		add(c)
	}
	// Shrink the incast before dropping it entirely failed.
	if s.IncastDegree > 2 {
		c := s
		c.IncastDegree--
		add(c)
	}
	if s.IncastDegree >= 2 && s.IncastKB > 4 {
		c := s
		c.IncastKB = s.IncastKB / 2
		add(c)
	}
	// Remove static asymmetry.
	if s.AsymPct > 0 {
		c := s
		c.AsymPct = 0
		add(c)
	}
	return out
}
