// Package telemetry is the simulator's run-time observability layer: named
// probes sampled periodically on the simulation clock into fixed-capacity,
// preallocated series buffers, exportable as JSONL or CSV.
//
// The paper's evaluation is built on time-series evidence — queue build-up
// and PFC pause propagation over time (Figs. 1–2), OOD degree, throughput
// under asymmetry — but end-of-run aggregates cannot show *when* a queue
// filled or a pause front crossed the fabric. Telemetry closes that gap
// without touching the determinism contract:
//
//   - Sampling is observation-only. A probe is a read-only func() int64; the
//     Sampler never mutates simulator state, touches an RNG stream, or holds
//     a packet. Sampler events consume engine sequence numbers, but sequence
//     assignment is monotone in scheduling order, so the relative order of
//     all non-sampler events — and therefore every golden figure and
//     determinism fingerprint — is bit-identical with sampling on or off
//     (harness tests pin this).
//   - The steady-state tick is allocation-free. Series buffers are sized
//     once at construction; each tick performs indexed stores only, and the
//     rearm reuses the engine's pooled event structs. The hotpath analyzer
//     covers Sampler.OnEvent like any other event handler, and a benchmark
//     asserts 0 allocs/op.
//
// The topology layer registers the standard probe set (switch shared-pool
// occupancy, per-port queue depth and pause state, DCQCN rates, per-host
// sender state, RLB counters) via topo.AttachTelemetry; the harness attaches
// the recorded series to its Result when RunConfig.Telemetry is set.
package telemetry

import "fmt"

// Probe is one named time series source. Fn must be a pure read of simulator
// state: it is called once per sampling tick from the event loop and must
// not mutate anything or allocate.
type Probe struct {
	Name string
	Fn   func() int64
}

// Registry holds the probe set for one simulation in registration order.
// Registration is a cold-path, construction-time activity; the set must be
// complete before a Sampler is built from it.
type Registry struct {
	probes []Probe
	names  map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// Register adds a probe. Duplicate names panic: they are programming errors
// in the wiring layer, and silently shadowing a series would corrupt every
// exporter keyed by name.
func (r *Registry) Register(name string, fn func() int64) {
	if name == "" || fn == nil {
		panic("telemetry: probe needs a name and a func")
	}
	if r.names[name] {
		panic(fmt.Sprintf("telemetry: duplicate probe %q", name))
	}
	r.names[name] = true
	r.probes = append(r.probes, Probe{Name: name, Fn: fn})
}

// Len returns the number of registered probes.
func (r *Registry) Len() int { return len(r.probes) }

// Names returns the probe names in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.probes))
	for i, p := range r.probes {
		out[i] = p.Name
	}
	return out
}
