package telemetry

import (
	"bufio"
	"io"
	"strconv"
)

// Exporters serialize a Recording. Output is byte-stable: fields are written
// in a fixed order with strconv (no map iteration, no float formatting), so
// the same recording always produces the same bytes — the property the
// telemetry golden test and `make telemetry-verify` pin.

// WriteJSONL writes the recording as JSON Lines: one header object
//
//	{"intervalPs":N,"samples":M,"dropped":D,"probes":["a","b",...]}
//
// followed by one object per tick
//
//	{"tPs":T,"v":[v0,v1,...]}
//
// where v is parallel to the header's probes array. Timestamps and the
// interval are in picoseconds, the simulator's native resolution.
func WriteJSONL(w io.Writer, rec *Recording) error {
	bw := bufio.NewWriter(w)
	buf := make([]byte, 0, 64)

	bw.WriteString(`{"intervalPs":`)
	bw.Write(strconv.AppendInt(buf, int64(rec.Interval), 10))
	bw.WriteString(`,"samples":`)
	bw.Write(strconv.AppendInt(buf, int64(len(rec.Times)), 10))
	bw.WriteString(`,"dropped":`)
	bw.Write(strconv.AppendInt(buf, int64(rec.Dropped), 10))
	bw.WriteString(`,"probes":[`)
	for j, name := range rec.Names {
		if j > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(strconv.Quote(name))
	}
	bw.WriteString("]}\n")

	for i, t := range rec.Times {
		bw.WriteString(`{"tPs":`)
		bw.Write(strconv.AppendInt(buf, int64(t), 10))
		bw.WriteString(`,"v":[`)
		for j := range rec.Series {
			if j > 0 {
				bw.WriteByte(',')
			}
			bw.Write(strconv.AppendInt(buf, rec.Series[j][i], 10))
		}
		bw.WriteString("]}\n")
	}
	return bw.Flush()
}

// WriteCSV writes the recording in wide form: a header row
// "t_ps,<probe>,<probe>,..." and one row per tick. Probe names are quoted
// only when they contain a comma or quote (they normally do not: the wiring
// layer uses '/'-separated names).
func WriteCSV(w io.Writer, rec *Recording) error {
	bw := bufio.NewWriter(w)
	buf := make([]byte, 0, 64)

	bw.WriteString("t_ps")
	for _, name := range rec.Names {
		bw.WriteByte(',')
		bw.WriteString(csvEscape(name))
	}
	bw.WriteByte('\n')

	for i, t := range rec.Times {
		bw.Write(strconv.AppendInt(buf, int64(t), 10))
		for j := range rec.Series {
			bw.WriteByte(',')
			bw.Write(strconv.AppendInt(buf, rec.Series[j][i], 10))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// csvEscape quotes a field if it contains a comma, quote, or newline.
func csvEscape(s string) string {
	needs := false
	for i := 0; i < len(s); i++ {
		if c := s[i]; c == ',' || c == '"' || c == '\n' || c == '\r' {
			needs = true
			break
		}
	}
	if !needs {
		return s
	}
	out := make([]byte, 0, len(s)+2)
	out = append(out, '"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			out = append(out, '"')
		}
		out = append(out, s[i])
	}
	out = append(out, '"')
	return string(out)
}
