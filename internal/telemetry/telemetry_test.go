package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"github.com/rlb-project/rlb/internal/sim"
)

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Register("a/x", func() int64 { return 1 })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate probe name did not panic")
		}
	}()
	r.Register("a/x", func() int64 { return 2 })
}

func TestRegistryOrder(t *testing.T) {
	r := NewRegistry()
	r.Register("b", func() int64 { return 0 })
	r.Register("a", func() int64 { return 0 })
	r.Register("c", func() int64 { return 0 })
	got := r.Names()
	if len(got) != 3 || got[0] != "b" || got[1] != "a" || got[2] != "c" {
		t.Fatalf("Names() = %v, want registration order [b a c]", got)
	}
	if r.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", r.Len())
	}
}

func TestSamplerRecordsAtInterval(t *testing.T) {
	eng := sim.NewEngine()
	var v int64
	r := NewRegistry()
	r.Register("v", func() int64 { return v })
	r.Register("2v", func() int64 { return 2 * v })

	s := NewSampler(eng, r, 10*sim.Microsecond, 16)
	s.Start() // tick at t=0
	for i := 1; i <= 5; i++ {
		// Advance value between ticks so each sample sees a distinct state.
		eng.At(sim.Time(i)*10*sim.Microsecond-sim.Nanosecond, func() { v++ })
	}
	eng.RunUntil(50 * sim.Microsecond)
	s.Stop()

	rec := s.Recording()
	if len(rec.Times) != 6 {
		t.Fatalf("got %d ticks, want 6 (t=0..50us)", len(rec.Times))
	}
	for i, want := range []sim.Time{0, 10, 20, 30, 40, 50} {
		if rec.Times[i] != want*sim.Microsecond {
			t.Fatalf("tick %d at %v, want %dus", i, rec.Times[i], want)
		}
		if rec.Series[0][i] != int64(i) {
			t.Fatalf("probe v at tick %d = %d, want %d", i, rec.Series[0][i], i)
		}
		if rec.Series[1][i] != 2*int64(i) {
			t.Fatalf("probe 2v at tick %d = %d, want %d", i, rec.Series[1][i], 2*i)
		}
	}
	if rec.Dropped != 0 {
		t.Fatalf("Dropped = %d, want 0", rec.Dropped)
	}
}

func TestSamplerStopsTicking(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRegistry()
	r.Register("z", func() int64 { return 0 })
	s := NewSampler(eng, r, sim.Microsecond, 64)
	s.Start()
	eng.RunUntil(5 * sim.Microsecond)
	s.Stop()
	n := s.Samples()
	eng.RunUntil(20 * sim.Microsecond)
	if s.Samples() != n {
		t.Fatalf("sampler recorded %d ticks after Stop (had %d)", s.Samples()-n, n)
	}
	if eng.Pending() != 0 {
		t.Fatalf("%d events still pending after Stop; the tick timer should be cancelled", eng.Pending())
	}
}

func TestSamplerCapacityDrops(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRegistry()
	r.Register("z", func() int64 { return 7 })
	s := NewSampler(eng, r, sim.Microsecond, 3)
	s.Start()
	eng.RunUntil(10 * sim.Microsecond)
	s.Stop()
	rec := s.Recording()
	if len(rec.Times) != 3 {
		t.Fatalf("recorded %d ticks, want capacity 3", len(rec.Times))
	}
	// Ticks at 0..10us inclusive = 11; 3 recorded, 8 dropped.
	if rec.Dropped != 8 {
		t.Fatalf("Dropped = %d, want 8", rec.Dropped)
	}
}

func TestWriteJSONL(t *testing.T) {
	rec := &Recording{
		Interval: 10 * sim.Microsecond,
		Names:    []string{"leaf0/shared", "host1/una"},
		Times:    []sim.Time{0, 10 * sim.Microsecond},
		Series:   [][]int64{{100, 200}, {0, 42}},
		Dropped:  1,
	}
	var b bytes.Buffer
	if err := WriteJSONL(&b, rec); err != nil {
		t.Fatal(err)
	}
	want := `{"intervalPs":10000000,"samples":2,"dropped":1,"probes":["leaf0/shared","host1/una"]}
{"tPs":0,"v":[100,0]}
{"tPs":10000000,"v":[200,42]}
`
	if b.String() != want {
		t.Fatalf("JSONL mismatch:\ngot:\n%swant:\n%s", b.String(), want)
	}
}

func TestWriteCSV(t *testing.T) {
	rec := &Recording{
		Interval: sim.Microsecond,
		Names:    []string{"a", `we"ird,name`},
		Times:    []sim.Time{5},
		Series:   [][]int64{{1}, {-2}},
	}
	var b bytes.Buffer
	if err := WriteCSV(&b, rec); err != nil {
		t.Fatal(err)
	}
	want := "t_ps,a,\"we\"\"ird,name\"\n5,1,-2\n"
	if b.String() != want {
		t.Fatalf("CSV mismatch:\ngot:\n%q\nwant:\n%q", b.String(), want)
	}
}

func TestExportEmptyRecording(t *testing.T) {
	rec := &Recording{Interval: sim.Microsecond, Names: []string{"a"}}
	var b bytes.Buffer
	if err := WriteJSONL(&b, rec); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(b.String(), "\n"); got != 1 {
		t.Fatalf("empty recording wrote %d lines, want header only", got)
	}
}

// TestSamplerTickAllocs is the 0 allocs/op steady-state assertion: after the
// warmup ticks have populated the engine's event free list, each sampling
// tick must allocate nothing.
func TestSamplerTickAllocs(t *testing.T) {
	eng := sim.NewEngine()
	var counters [8]int64
	r := NewRegistry()
	for i := range counters {
		i := i
		r.Register("c"+string(rune('0'+i)), func() int64 { return counters[i] })
	}
	s := NewSampler(eng, r, sim.Microsecond, 1<<16)
	s.Start()
	next := sim.Time(0)
	step := func() {
		next += sim.Microsecond
		eng.RunUntil(next)
	}
	for i := 0; i < 16; i++ {
		step() // warm the event pool
	}
	if avg := testing.AllocsPerRun(200, step); avg != 0 {
		t.Fatalf("sampler tick allocates %.2f allocs/op in steady state, want 0", avg)
	}
	s.Stop()
}

func BenchmarkSamplerTick(b *testing.B) {
	eng := sim.NewEngine()
	var counters [32]int64
	r := NewRegistry()
	for i := range counters {
		i := i
		r.Register("bench/c"+string(rune('a'+i%26))+string(rune('0'+i/26)), func() int64 { return counters[i] })
	}
	// Capacity sized so long -benchtime runs wrap into the drop path rather
	// than allocating; drops follow the identical indexed code shape.
	s := NewSampler(eng, r, sim.Microsecond, 1<<20)
	s.Start()
	next := sim.Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next += sim.Microsecond
		eng.RunUntil(next)
	}
	b.StopTimer()
	s.Stop()
}
