package telemetry

import (
	"github.com/rlb-project/rlb/internal/sim"
)

// evTick is the only event code the sampler schedules.
const evTick = 0

// Sampler drives a Registry's probes at a fixed simulated-time interval.
// All series storage is allocated at construction; once Start has run, the
// per-tick path (OnEvent → sample → rearm) performs indexed stores into the
// preallocated buffers and reuses the engine's pooled event structs, so the
// steady state allocates nothing. Ticks past capacity are counted in Dropped
// and otherwise ignored — the run is never perturbed by a short buffer.
type Sampler struct {
	eng      *sim.Engine
	interval sim.Time

	names []string
	fns   []func() int64

	times []sim.Time
	cols  [][]int64 // cols[j][i] = probe j at tick i; parallel to names
	n     int       // ticks recorded
	drop  int       // ticks discarded after the buffers filled

	running bool
	timer   sim.Timer
}

// NewSampler builds a sampler over the registry's current probe set with
// room for capacity ticks. The probe list is snapshotted: probes registered
// after this call are not sampled. Interval must be positive and capacity
// non-negative.
func NewSampler(eng *sim.Engine, reg *Registry, interval sim.Time, capacity int) *Sampler {
	if interval <= 0 {
		panic("telemetry: sample interval must be positive")
	}
	if capacity < 0 {
		panic("telemetry: negative capacity")
	}
	s := &Sampler{
		eng:      eng,
		interval: interval,
		names:    make([]string, len(reg.probes)),
		fns:      make([]func() int64, len(reg.probes)),
		times:    make([]sim.Time, capacity),
		cols:     make([][]int64, len(reg.probes)),
	}
	for j, p := range reg.probes {
		s.names[j] = p.Name
		s.fns[j] = p.Fn
		s.cols[j] = make([]int64, capacity)
	}
	return s
}

// Start records the first tick at the current virtual time and arms the
// periodic timer. Starting an already-running sampler panics.
func (s *Sampler) Start() {
	if s.running {
		panic("telemetry: sampler already started")
	}
	s.running = true
	s.sample()
	s.arm()
}

// Stop halts sampling. Recorded ticks stay available via Recording. Safe to
// call on a never-started or already-stopped sampler.
func (s *Sampler) Stop() {
	s.running = false
	s.timer.Stop()
	s.timer = sim.Timer{}
}

// OnEvent is the periodic tick: record one sample and rearm.
func (s *Sampler) OnEvent(arg sim.EventArg) {
	if !s.running {
		return
	}
	s.sample()
	s.arm()
}

// sample records one tick, or counts it as dropped when the preallocated
// buffers are full.
func (s *Sampler) sample() {
	if s.n == len(s.times) {
		s.drop++
		return
	}
	s.times[s.n] = s.eng.Now()
	for j := range s.fns {
		s.cols[j][s.n] = s.fns[j]()
	}
	s.n++
}

// arm schedules the next tick.
func (s *Sampler) arm() {
	s.timer = s.eng.ScheduleAfter(s.interval, s, sim.EventArg{U64: evTick})
}

// Samples returns the number of ticks recorded so far.
func (s *Sampler) Samples() int { return s.n }

// Dropped returns the number of ticks discarded because capacity was reached.
func (s *Sampler) Dropped() int { return s.drop }

// Recording is an immutable view of a sampler's recorded series, the form
// carried on harness results and consumed by the exporters.
type Recording struct {
	Interval sim.Time   // tick spacing
	Names    []string   // probe names, registration order
	Times    []sim.Time // tick timestamps, length == number of ticks
	Series   [][]int64  // Series[j][i] = probe j at tick i; parallel to Names
	Dropped  int        // ticks lost to capacity
}

// Recording snapshots the recorded series. The returned slices alias the
// sampler's buffers truncated to the recorded length; call after Stop.
func (s *Sampler) Recording() *Recording {
	rec := &Recording{
		Interval: s.interval,
		Names:    s.names,
		Times:    s.times[:s.n],
		Series:   make([][]int64, len(s.cols)),
		Dropped:  s.drop,
	}
	for j, col := range s.cols {
		rec.Series[j] = col[:s.n]
	}
	return rec
}
