package sim

import (
	"math/rand"
	"testing"
)

func TestSchedulerByName(t *testing.T) {
	cases := []struct {
		name string
		kind SchedulerKind
		ok   bool
	}{
		{"calendar", SchedCalendar, true},
		{"heap", SchedHeap, true},
		{"splay", SchedCalendar, false},
		{"", SchedCalendar, false},
	}
	for _, c := range cases {
		kind, ok := SchedulerByName(c.name)
		if kind != c.kind || ok != c.ok {
			t.Errorf("SchedulerByName(%q) = (%v, %v), want (%v, %v)", c.name, kind, ok, c.kind, c.ok)
		}
	}
	if SchedCalendar.String() != "calendar" || SchedHeap.String() != "heap" {
		t.Errorf("String() = %q/%q", SchedCalendar.String(), SchedHeap.String())
	}
}

// driveScheduler runs a seeded random schedule/cancel/run workload against an
// engine with the given scheduler kind and returns the exact fire log
// (id@time per event, in dispatch order).
func driveScheduler(kind SchedulerKind, seed int64) []string {
	r := rand.New(rand.NewSource(seed))
	e := NewEngineWith(kind)
	rec := &seqRecorder{eng: e}
	var live []Timer
	var nextID uint64
	// Delay mix chosen around the calendar geometry: zero (same-instant),
	// sub-bucket, a few buckets, straddling the 2^24 ps wheel horizon, and
	// deep overflow — every placement and migration path gets traffic.
	delay := func() Time {
		switch r.Intn(5) {
		case 0:
			return 0
		case 1:
			return Time(r.Intn(100))
		case 2:
			return Time(r.Intn(1 << 18))
		case 3:
			return Time(r.Intn(1 << 25))
		default:
			return Time(r.Intn(1 << 28))
		}
	}
	for op := 0; op < 4000; op++ {
		switch r.Intn(6) {
		case 0, 1: // schedule one event
			tm := e.Schedule(e.Now()+delay(), rec, EventArg{U64: nextID})
			nextID++
			live = append(live, tm)
		case 2: // same-timestamp burst: FIFO among equals must survive
			at := e.Now() + delay()
			for k := 0; k < 1+r.Intn(8); k++ {
				tm := e.Schedule(at, rec, EventArg{U64: nextID})
				nextID++
				live = append(live, tm)
			}
		case 3: // lazy-cancel a random handle (possibly already stale)
			if len(live) > 0 {
				live[r.Intn(len(live))].Stop()
			}
		case 4: // partial drain to an arbitrary limit
			e.RunUntil(e.Now() + delay())
		case 5: // occasional full drain, exercising re-anchoring after idle
			if r.Intn(8) == 0 {
				e.Run()
			}
		}
	}
	e.Run()
	return rec.log
}

// TestSchedulerEquivalence is the determinism property test for the
// tentpole: under seeded random schedule/cancel/run workloads — including
// same-timestamp bursts, partial drains, and far-future overflow events —
// the calendar queue must produce a fire log bit-identical to the reference
// binary heap's. Golden figures are protected by construction: any ordering
// divergence between the two schedulers fails here first.
func TestSchedulerEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		hLog := driveScheduler(SchedHeap, seed)
		cLog := driveScheduler(SchedCalendar, seed)
		if len(hLog) != len(cLog) {
			t.Fatalf("seed %d: heap fired %d events, calendar %d", seed, len(hLog), len(cLog))
		}
		for i := range hLog {
			if hLog[i] != cLog[i] {
				t.Fatalf("seed %d: pop order diverged at %d: heap %s, calendar %s", seed, i, hLog[i], cLog[i])
			}
		}
	}
}

// TestCalendarFarFutureRollover pins the overflow path directly: events
// beyond the wheel horizon migrate onto the wheel in order as the cursor
// rolls, and FIFO among same-instant overflow events survives migration.
func TestCalendarFarFutureRollover(t *testing.T) {
	e := NewEngine()
	var order []uint64
	rec := handlerFunc(func(arg EventArg) { order = append(order, arg.U64) })
	e.Schedule(cwSpan*3+Time(5), rec, EventArg{U64: 2})
	e.Schedule(cwSpan*3+Time(5), rec, EventArg{U64: 3})
	e.Schedule(Time(7), rec, EventArg{U64: 0})
	e.Schedule(cwSpan+Time(1), rec, EventArg{U64: 1})
	e.Run()
	if len(order) != 4 {
		t.Fatalf("fired %d events, want 4", len(order))
	}
	for i, id := range order {
		if id != uint64(i) {
			t.Fatalf("order = %v, want 0,1,2,3", order)
		}
	}
	if e.Now() != cwSpan*3+Time(5) {
		t.Fatalf("Now = %v", e.Now())
	}
}

// TestCalendarRunUntilParksBeforeFarEvent pins the cursor-parking guard: a
// RunUntil that stops short of a far-future event must leave the queue in a
// state where new near-term events still fire first, in order.
func TestCalendarRunUntilParksBeforeFarEvent(t *testing.T) {
	e := NewEngine()
	var order []uint64
	rec := handlerFunc(func(arg EventArg) { order = append(order, arg.U64) })
	far := cwSpan * 2
	e.Schedule(far, rec, EventArg{U64: 2})
	e.RunUntil(cwWidth * 3) // parks well before the far event
	if len(order) != 0 {
		t.Fatalf("fired early: %v", order)
	}
	// New events inside the already-traversed region must not alias onto a
	// later wheel lap.
	e.Schedule(e.Now()+Time(1), rec, EventArg{U64: 0})
	e.Schedule(e.Now()+cwWidth, rec, EventArg{U64: 1})
	e.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("order = %v, want 0,1,2", order)
	}
}

// TestEventPoolConservation checks gets == puts + queued across a mixed
// fire/cancel workload, the invariant the event-pool audit enforces at the
// end of every simulation.
func TestEventPoolConservation(t *testing.T) {
	for _, kind := range []SchedulerKind{SchedCalendar, SchedHeap} {
		e := NewEngineWith(kind)
		var h nopHandler
		var timers []Timer
		for i := 0; i < 500; i++ {
			timers = append(timers, e.ScheduleAfter(Time(i%50)*cwWidth, h, EventArg{}))
		}
		for i := 0; i < len(timers); i += 3 {
			timers[i].Stop()
		}
		gets, puts, queued := e.EventPoolStats()
		if gets != puts+uint64(queued) {
			t.Fatalf("%v mid-run: gets=%d puts=%d queued=%d", kind, gets, puts, queued)
		}
		e.Run()
		gets, puts, queued = e.EventPoolStats()
		if queued != 0 || gets != puts {
			t.Fatalf("%v drained: gets=%d puts=%d queued=%d", kind, gets, puts, queued)
		}
		if e.Pending() != 0 {
			t.Fatalf("%v drained: Pending = %d", kind, e.Pending())
		}
	}
}

// BenchmarkEngineScheduleCancel is the schedule/cancel-heavy workload: every
// iteration arms two timers and lazily cancels one, the pattern transport
// RTO and pacer timers produce. Tracks the cost of dead-event skip +
// reclamation; must stay 0 allocs/op once warm.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := NewEngine()
	var h nopHandler
	for i := 0; i < 2048; i++ {
		e.ScheduleAfter(Time(i%1000), h, EventArg{U64: uint64(i)})
	}
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleAfter(Time(1+i%1000), h, EventArg{})
		dead := e.ScheduleAfter(Time(2000+i%1000), h, EventArg{})
		dead.Stop()
		if e.Pending() > 5000 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkEngineBucketRollover spreads events across several wheel laps so
// the measured cost includes cursor advancement, bitmap scans, and
// overflow-heap migration — the paths BenchmarkEngineDispatchTyped (which
// stays inside one bucket) never touches.
func BenchmarkEngineBucketRollover(b *testing.B) {
	e := NewEngine()
	var h nopHandler
	x := uint64(1)
	spread := func() Time {
		x = x*6364136223846793005 + 1442695040888963407
		return Time(x % uint64(cwSpan*4))
	}
	for i := 0; i < 4096; i++ {
		e.ScheduleAfter(spread(), h, EventArg{})
	}
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleAfter(spread(), h, EventArg{})
		if e.Pending() > 10000 {
			e.Run()
		}
	}
	e.Run()
}
