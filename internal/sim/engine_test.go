package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConstants(t *testing.T) {
	if Second != 1e12*Picosecond {
		t.Fatalf("Second = %d ps, want 1e12", int64(Second))
	}
	if Microsecond != 1000*Nanosecond {
		t.Fatal("microsecond/nanosecond ratio wrong")
	}
}

func TestTimeConversions(t *testing.T) {
	if got := (2 * Microsecond).Micros(); got != 2.0 {
		t.Errorf("Micros = %v, want 2", got)
	}
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Errorf("Seconds = %v, want 1.5", got)
	}
	if got := FromStd(3 * time.Microsecond); got != 3*Microsecond {
		t.Errorf("FromStd = %v", got)
	}
	if got := (5 * Microsecond).Std(); got != 5*time.Microsecond {
		t.Errorf("Std = %v", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{2 * Nanosecond, "2ns"},
		{3 * Microsecond, "3us"},
		{4 * Millisecond, "4ms"},
		{2 * Second, "2s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestEngineFIFOAmongEqualTimes(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: pos %d got %d", i, v)
		}
	}
}

func TestEngineAfterNesting(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.After(10, func() {
		fired = append(fired, e.Now())
		e.After(5, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i)*10, func() { count++ })
	}
	e.RunUntil(55)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != 55 {
		t.Fatalf("Now = %v, want 55", e.Now())
	}
	e.RunUntil(MaxTime)
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	// Run resumes after Stop.
	e.Run()
	if count != 10 {
		t.Fatalf("count = %d, want 10 after resume", count)
	}
}

func TestEnginePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestTimerStop(t *testing.T) {
	e := NewEngine()
	fired := false
	timer := e.At(10, func() { fired = true })
	if !timer.Pending() {
		t.Fatal("timer should be pending")
	}
	if !timer.Stop() {
		t.Fatal("Stop should report true for pending timer")
	}
	if timer.Stop() {
		t.Fatal("second Stop should report false")
	}
	e.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	e := NewEngine()
	timer := e.At(10, func() {})
	e.Run()
	if timer.Pending() {
		t.Fatal("fired timer still pending")
	}
	if timer.Stop() {
		t.Fatal("Stop after fire should report false")
	}
}

func TestTimerWhen(t *testing.T) {
	e := NewEngine()
	timer := e.At(42, func() {})
	if timer.When() != 42 {
		t.Fatalf("When = %v", timer.When())
	}
	timer.Stop()
}

func TestHeapRandomizedOrdering(t *testing.T) {
	// Property: events inserted in random order execute in sorted order.
	check := func(times []uint16) bool {
		e := NewEngine()
		var executed []Time
		for _, raw := range times {
			tm := Time(raw)
			e.At(tm, func() { executed = append(executed, tm) })
		}
		e.Run()
		return sort.SliceIsSorted(executed, func(i, j int) bool { return executed[i] < executed[j] }) &&
			len(executed) == len(times)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapRandomizedCancellation(t *testing.T) {
	// Property: with random cancellations, exactly the non-cancelled events
	// fire, in time order.
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		n := 200
		fired := make(map[int]bool)
		timers := make([]Timer, n)
		for i := 0; i < n; i++ {
			i := i
			timers[i] = e.At(Time(r.Intn(1000)), func() { fired[i] = true })
		}
		cancelled := make(map[int]bool)
		for i := 0; i < n/3; i++ {
			j := r.Intn(n)
			if timers[j].Stop() {
				cancelled[j] = true
			}
		}
		e.Run()
		for i := 0; i < n; i++ {
			if cancelled[i] && fired[i] {
				t.Fatalf("trial %d: cancelled event %d fired", trial, i)
			}
			if !cancelled[i] && !fired[i] {
				t.Fatalf("trial %d: live event %d did not fire", trial, i)
			}
		}
	}
}

func TestEngineExecutedCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if e.Executed != 5 {
		t.Fatalf("Executed = %d", e.Executed)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%1000), func() {})
		if e.Pending() > 10000 {
			e.Run()
		}
	}
	e.Run()
}
