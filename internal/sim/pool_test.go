package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// recorder is a typed handler that logs (scalar payload, fire time) pairs.
type recorder struct {
	fired [][2]uint64
}

func (r *recorder) OnEvent(arg EventArg) {
	r.fired = append(r.fired, [2]uint64{arg.U64, 0})
}

func TestZeroTimerIsSafe(t *testing.T) {
	var tm Timer
	if tm.Stop() {
		t.Error("zero Timer Stop reported true")
	}
	if tm.Pending() {
		t.Error("zero Timer Pending reported true")
	}
	if tm.When() != 0 {
		t.Errorf("zero Timer When = %v, want 0", tm.When())
	}
}

func TestTimerWhenAfterStopAndFire(t *testing.T) {
	e := NewEngine()
	tm := e.At(42, func() {})
	if tm.When() != 42 {
		t.Fatalf("pending When = %v, want 42", tm.When())
	}
	tm.Stop()
	if tm.When() != 0 {
		t.Errorf("stopped When = %v, want 0", tm.When())
	}
	tm2 := e.At(10, func() {})
	e.Run()
	if tm2.When() != 0 {
		t.Errorf("fired When = %v, want 0", tm2.When())
	}
	if tm2.Pending() {
		t.Error("fired timer still pending")
	}
}

// TestStaleTimerCannotCancelReusedEvent is the generation-counter contract:
// after an event fires, its struct returns to the pool; a handle to the old
// event must not cancel whichever event reuses the slot.
func TestStaleTimerCannotCancelReusedEvent(t *testing.T) {
	e := NewEngine()
	first := e.At(10, func() {})
	e.Run()
	if first.Pending() {
		t.Fatal("fired timer reports pending")
	}
	// The next schedule reuses the pooled event struct.
	fired := false
	second := e.At(20, func() { fired = true })
	if first.ev != second.ev {
		t.Fatal("test premise broken: event struct was not reused")
	}
	if first.Stop() {
		t.Error("stale handle cancelled a reused event")
	}
	if !second.Pending() {
		t.Error("live timer lost by stale Stop")
	}
	e.Run()
	if !fired {
		t.Error("reused event did not fire")
	}
}

func TestStopReturnsEventToPool(t *testing.T) {
	e := NewEngine()
	tm := e.At(10, func() {})
	ev := tm.ev
	if !tm.Stop() {
		t.Fatal("Stop on pending timer reported false")
	}
	if tm.Stop() {
		t.Error("double Stop reported true")
	}
	// Cancellation is lazy: the dead event stays queued until the run loop
	// skips it, and only then does its struct return to the free list.
	gets, puts, queued := e.EventPoolStats()
	if queued != 1 || gets != puts+1 {
		t.Fatalf("before reclamation: gets=%d puts=%d queued=%d, want 1 outstanding", gets, puts, queued)
	}
	e.Run()
	gets, puts, queued = e.EventPoolStats()
	if queued != 0 || gets != puts {
		t.Fatalf("after reclamation: gets=%d puts=%d queued=%d, want conservation", gets, puts, queued)
	}
	if e.Now() != 0 {
		t.Errorf("skipping a dead event advanced the clock to %v, want 0", e.Now())
	}
	tm2 := e.At(20, func() {})
	if tm2.ev != ev {
		t.Error("reclaimed event was not pooled for reuse")
	}
	tm2.Stop()
}

func TestTypedScheduleDispatch(t *testing.T) {
	e := NewEngine()
	r := &recorder{}
	e.Schedule(30, r, EventArg{U64: 3})
	e.Schedule(10, r, EventArg{U64: 1})
	tm := e.ScheduleAfter(20, r, EventArg{U64: 2})
	if tm.When() != 20 {
		t.Fatalf("When = %v, want 20", tm.When())
	}
	e.Run()
	if len(r.fired) != 3 || r.fired[0][0] != 1 || r.fired[1][0] != 2 || r.fired[2][0] != 3 {
		t.Fatalf("fired = %v", r.fired)
	}
}

func TestTypedScheduleCarriesPointerPayload(t *testing.T) {
	e := NewEngine()
	type payload struct{ x int }
	p := &payload{x: 7}
	var got *payload
	h := handlerFunc(func(arg EventArg) { got = arg.Ptr.(*payload) })
	e.Schedule(5, h, EventArg{Ptr: p})
	e.Run()
	if got != p {
		t.Fatalf("payload pointer not delivered: got %p want %p", got, p)
	}
}

// handlerFunc adapts a func to Handler for tests.
type handlerFunc func(EventArg)

func (f handlerFunc) OnEvent(arg EventArg) { f(arg) }

// seqRecorder logs (id, time) of every fire for replay comparison.
type seqRecorder struct {
	log []string
	eng *Engine
}

func (r *seqRecorder) OnEvent(arg EventArg) {
	r.log = append(r.log, fmt.Sprintf("%d@%d", arg.U64, int64(r.eng.Now())))
}

// runInterleaved drives one randomized At/Stop/fire interleaving and returns
// the exact fire log plus which ids were successfully cancelled.
func runInterleaved(seed int64) (log []string, cancelled map[uint64]bool) {
	r := rand.New(rand.NewSource(seed))
	e := NewEngine()
	rec := &seqRecorder{eng: e}
	type handle struct {
		id uint64
		tm Timer
	}
	var live []handle
	cancelled = make(map[uint64]bool)
	var nextID uint64
	for op := 0; op < 2000; op++ {
		switch r.Intn(4) {
		case 0, 1: // schedule
			id := nextID
			nextID++
			tm := e.Schedule(e.Now()+Time(r.Intn(500)), rec, EventArg{U64: id})
			live = append(live, handle{id: id, tm: tm})
		case 2: // stop a random handle (possibly stale)
			if len(live) == 0 {
				continue
			}
			h := live[r.Intn(len(live))]
			if h.tm.Stop() {
				cancelled[h.id] = true
			}
		case 3: // advance the clock, firing a prefix of the queue
			e.RunUntil(e.Now() + Time(r.Intn(200)))
		}
	}
	e.Run()
	return rec.log, cancelled
}

// TestEventPoolInterleavedStopNeverFiresStale is the satellite property test:
// under random At/Stop/fire interleavings with aggressive event-struct reuse,
// (a) no cancelled event ever fires, (b) every non-cancelled event fires
// exactly once, and (c) the whole schedule replays byte-identically per seed.
func TestEventPoolInterleavedStopNeverFiresStale(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		log1, cancelled := runInterleaved(seed)
		fired := make(map[string]int)
		firedID := make(map[uint64]bool)
		for _, entry := range log1 {
			fired[entry]++
			var id uint64
			fmt.Sscanf(entry, "%d@", &id)
			firedID[id] = true
		}
		for entry, n := range fired {
			if n > 1 {
				t.Fatalf("seed %d: event %s fired %d times", seed, entry, n)
			}
		}
		for id := range cancelled {
			if firedID[id] {
				t.Fatalf("seed %d: cancelled event %d fired (stale generation)", seed, id)
			}
		}
		// Replay: identical seed must yield an identical fire sequence.
		log2, _ := runInterleaved(seed)
		if len(log1) != len(log2) {
			t.Fatalf("seed %d: replay fired %d events, first run %d", seed, len(log2), len(log1))
		}
		for i := range log1 {
			if log1[i] != log2[i] {
				t.Fatalf("seed %d: replay diverged at %d: %s vs %s", seed, i, log1[i], log2[i])
			}
		}
	}
}

// nopHandler is the benchmark handler: typed dispatch with no work.
type nopHandler struct{}

func (nopHandler) OnEvent(EventArg) {}

// TestEngineDispatchZeroAlloc is the bench-smoke assertion: once the pool is
// warm, scheduling and dispatching typed events performs zero heap
// allocations per event.
func TestEngineDispatchZeroAlloc(t *testing.T) {
	e := NewEngine()
	var h nopHandler
	// Warm the event pool and the heap's backing array.
	for i := 0; i < 64; i++ {
		e.ScheduleAfter(Time(i), h, EventArg{U64: uint64(i)})
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e.ScheduleAfter(10, h, EventArg{})
		e.ScheduleAfter(20, h, EventArg{})
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("typed schedule+dispatch allocated %.1f objects per op, want 0", allocs)
	}
}

// BenchmarkEngineDispatchTyped measures the pooled typed-event hot path; the
// committed perf trajectory (BENCH_PR2.json) tracks its ns/op and asserts
// 0 allocs/op.
func BenchmarkEngineDispatchTyped(b *testing.B) {
	e := NewEngine()
	var h nopHandler
	// Reach steady state first: grow the scheduler's backing arrays and the
	// event free list to their working size so the loop measures pure
	// dispatch.
	for i := 0; i < 10001; i++ {
		e.ScheduleAfter(Time(i%1000), h, EventArg{U64: uint64(i)})
	}
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleAfter(Time(i%1000), h, EventArg{U64: uint64(i)})
		if e.Pending() > 10000 {
			e.Run()
		}
	}
	e.Run()
}
