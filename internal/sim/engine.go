package sim

// Handler is a typed event callback: the scheduled component itself (or a
// small adapter owned by it) implements OnEvent and receives the payload it
// packed at schedule time. Scheduling a Handler allocates nothing on the
// steady-state hot path: the interface value is two words copied into a
// pooled event struct, unlike a closure, which heap-allocates its capture.
type Handler interface {
	OnEvent(arg EventArg)
}

// EventArg is the payload carried by a typed event: one pointer word (e.g.
// the *fabric.Packet in flight) and one scalar word (an event code, port
// index, priority class — whatever the handler packed). Both are optional.
type EventArg struct {
	Ptr any
	U64 uint64
}

// event is a scheduled callback. Events are ordered by (at, seq) where seq is
// the scheduling order, guaranteeing FIFO execution among same-time events.
// Event structs are pooled on the engine's free list; gen increments on every
// release so stale Timer handles can never cancel or inspect a reused slot.
type event struct {
	at  Time
	seq uint64
	gen uint64

	// h/arg is the typed fast path; fn is the closure fallback used by the
	// cold-path At/After API. Exactly one of h and fn is set.
	h   Handler
	arg EventArg
	fn  func()

	// dead marks a lazily cancelled event: Timer.Stop flips it in O(1) and
	// the run loop returns the struct to the pool when the scheduler pops
	// it, instead of paying for an arbitrary-position removal at Stop time.
	dead bool
}

// Timer is a value handle to a scheduled event. The zero Timer is valid and
// behaves like an already-stopped one: Stop and Pending report false, When
// returns 0. Handles stay safe after the event fires and its struct is
// reused — the generation check makes a stale Stop a no-op instead of
// cancelling whatever event now occupies the slot.
type Timer struct {
	ev  *event
	eng *Engine
	gen uint64
}

// live reports whether the handle still refers to the queued event it was
// created for.
func (t Timer) live() bool {
	return t.ev != nil && t.ev.gen == t.gen && !t.ev.dead
}

// Stop cancels the timer. It reports whether the timer was still pending.
// Stopping a zero, already-fired, or already-stopped timer is a no-op.
// Cancellation is lazy: the event stays queued, marked dead, and its struct
// returns to the pool when the run loop skips over it.
func (t Timer) Stop() bool {
	if !t.live() {
		return false
	}
	t.ev.dead = true
	t.eng.live--
	return true
}

// Pending reports whether the timer has not yet fired or been stopped.
func (t Timer) Pending() bool { return t.live() }

// When returns the virtual time at which the timer fires, or 0 for a zero,
// fired, or stopped handle.
func (t Timer) When() Time {
	if !t.live() {
		return 0
	}
	return t.ev.at
}

// Engine is a single-threaded discrete-event scheduler. The zero value is not
// usable; create engines with NewEngine or NewEngineWith.
type Engine struct {
	now     Time
	sched   scheduler
	// cal devirtualizes the default scheduler: when non-nil it is the same
	// object as sched, and the per-event push/pop sites call it directly
	// instead of through the interface (two indirect calls per event add up
	// at tens of millions of events per second).
	cal     *calendarQueue
	seq     uint64
	stopped bool

	// live counts queued events that have not been lazily cancelled; the
	// scheduler's own length additionally includes dead events awaiting
	// reclamation.
	live int

	// free is the event free list: fired and cancelled events return here and
	// are reused by the next schedule, so the steady-state hot path performs
	// zero heap allocations. gets/puts count the traffic for the event-pool
	// conservation audit: gets == puts + events still queued.
	free       []*event
	gets, puts uint64

	// Executed counts events dispatched so far (for stats and runaway guards).
	Executed uint64
}

// NewEngine returns an engine with the clock at zero, using the default
// calendar-queue scheduler.
func NewEngine() *Engine { return NewEngineWith(SchedCalendar) }

// NewEngineWith returns an engine with the clock at zero and the given
// scheduler implementation behind it.
func NewEngineWith(kind SchedulerKind) *Engine {
	e := &Engine{sched: newScheduler(kind)}
	e.cal, _ = e.sched.(*calendarQueue)
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// alloc takes an event from the free list, or grows the pool by one.
func (e *Engine) alloc() *event {
	e.gets++
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	//simlint:allow(hotpath) free-list miss grows the event pool once; steady state recycles events (0 allocs/op, bench-gated)
	return &event{}
}

// release returns a dequeued event to the free list, bumping its generation
// so outstanding Timer handles go stale.
func (e *Engine) release(ev *event) {
	ev.gen++
	ev.dead = false
	ev.h = nil
	ev.arg = EventArg{}
	ev.fn = nil
	e.puts++
	e.free = append(e.free, ev)
}

// EventPoolStats reports the event free-list traffic and the number of event
// structs still queued, live or dead. The conservation invariant audited by
// internal/invariant is gets == puts + queued: every struct handed out was
// either returned to the pool or is still in the scheduler.
func (e *Engine) EventPoolStats() (gets, puts uint64, queued int) {
	return e.gets, e.puts, e.sched.len()
}

// schedule inserts an event at absolute time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) schedule(t Time) *event {
	if t < e.now {
		panic("sim: scheduling event in the past")
	}
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	e.seq++
	if e.cal != nil {
		e.cal.push(ev, e.now)
	} else {
		e.sched.push(ev, e.now)
	}
	e.live++
	return ev
}

// Schedule runs h.OnEvent(arg) at absolute virtual time t. This is the
// allocation-free path: handler and payload are stored in a pooled event.
func (e *Engine) Schedule(t Time, h Handler, arg EventArg) Timer {
	ev := e.schedule(t)
	ev.h = h
	ev.arg = arg
	return Timer{ev: ev, eng: e, gen: ev.gen}
}

// ScheduleAfter runs h.OnEvent(arg) d after the current time.
func (e *Engine) ScheduleAfter(d Time, h Handler, arg EventArg) Timer {
	if d < 0 {
		panic("sim: negative delay")
	}
	return e.Schedule(e.now+d, h, arg)
}

// At schedules fn to run at absolute virtual time t. The closure API is for
// cold paths (workload generation, fault injection, tests); hot paths use
// Schedule, which avoids the closure capture allocation.
func (e *Engine) At(t Time, fn func()) Timer {
	ev := e.schedule(t)
	ev.fn = fn
	return Timer{ev: ev, eng: e, gen: ev.gen}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) Timer {
	if d < 0 {
		panic("sim: negative delay")
	}
	return e.At(e.now+d, fn)
}

// Stop halts the run loop after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of queued events, not counting lazily
// cancelled ones still awaiting reclamation.
func (e *Engine) Pending() int { return e.live }

// Run executes events until the queue is empty or Stop is called. It returns
// the final virtual time.
func (e *Engine) Run() Time { return e.RunUntil(MaxTime) }

// RunUntil executes events with timestamps <= limit, then advances the clock
// to limit (unless limit is MaxTime or Stop was called, in which case the
// clock stays at the last executed event).
func (e *Engine) RunUntil(limit Time) Time {
	e.stopped = false
	for !e.stopped {
		var ev *event
		if e.cal != nil {
			ev = e.cal.popLE(limit)
		} else {
			ev = e.sched.popLE(limit)
		}
		if ev == nil {
			break
		}
		if ev.dead {
			// Lazily cancelled: reclaim the struct without touching the
			// clock — a cancelled event must leave no trace in the run.
			e.release(ev)
			continue
		}
		e.live--
		e.now = ev.at
		// Free the slot before dispatching: the handler may immediately
		// schedule again and reuse it, and its own Timer handle (now stale by
		// generation) can no longer cancel the reused slot.
		h, arg, fn := ev.h, ev.arg, ev.fn
		e.release(ev)
		switch {
		case h != nil:
			e.Executed++
			h.OnEvent(arg)
		case fn != nil:
			e.Executed++
			fn()
		}
	}
	if !e.stopped && limit != MaxTime && e.now < limit {
		e.now = limit
	}
	return e.now
}
