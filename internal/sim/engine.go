package sim

// Event is a scheduled callback. Events are ordered by (At, seq) where seq is
// the scheduling order, guaranteeing FIFO execution among same-time events.
type event struct {
	at  Time
	seq uint64
	fn  func()
	// heap index, -1 when not queued; used for O(log n) cancellation.
	index int
}

// Timer is a handle to a scheduled event that can be cancelled or inspected.
type Timer struct {
	ev  *event
	eng *Engine
}

// Stop cancels the timer. It reports whether the timer was still pending.
// Stopping an already-fired or already-stopped timer is a no-op.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.index < 0 {
		return false
	}
	t.eng.q.remove(t.ev)
	t.ev.fn = nil
	return true
}

// Pending reports whether the timer has not yet fired or been stopped.
func (t *Timer) Pending() bool { return t != nil && t.ev != nil && t.ev.index >= 0 }

// When returns the virtual time at which the timer fires.
func (t *Timer) When() Time { return t.ev.at }

// Engine is a single-threaded discrete-event scheduler. The zero value is not
// usable; create engines with NewEngine.
type Engine struct {
	now     Time
	q       eventHeap
	seq     uint64
	stopped bool

	// Executed counts events dispatched so far (for stats and runaway guards).
	Executed uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{q: eventHeap{items: make([]*event, 0, 1024)}}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) *Timer {
	if t < e.now {
		panic("sim: scheduling event in the past")
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	e.q.push(ev)
	return &Timer{ev: ev, eng: e}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) *Timer {
	if d < 0 {
		panic("sim: negative delay")
	}
	return e.At(e.now+d, fn)
}

// Stop halts the run loop after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.q.len() }

// Run executes events until the queue is empty or Stop is called. It returns
// the final virtual time.
func (e *Engine) Run() Time { return e.RunUntil(MaxTime) }

// RunUntil executes events with timestamps <= limit, then advances the clock
// to limit (unless limit is MaxTime or Stop was called, in which case the
// clock stays at the last executed event).
func (e *Engine) RunUntil(limit Time) Time {
	e.stopped = false
	for !e.stopped {
		ev := e.q.peek()
		if ev == nil {
			break
		}
		if ev.at > limit {
			e.now = limit
			return e.now
		}
		e.q.pop()
		e.now = ev.at
		if ev.fn != nil {
			fn := ev.fn
			ev.fn = nil
			e.Executed++
			fn()
		}
	}
	if !e.stopped && limit != MaxTime && e.now < limit {
		e.now = limit
	}
	return e.now
}
