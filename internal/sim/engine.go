package sim

// Handler is a typed event callback: the scheduled component itself (or a
// small adapter owned by it) implements OnEvent and receives the payload it
// packed at schedule time. Scheduling a Handler allocates nothing on the
// steady-state hot path: the interface value is two words copied into a
// pooled event struct, unlike a closure, which heap-allocates its capture.
type Handler interface {
	OnEvent(arg EventArg)
}

// EventArg is the payload carried by a typed event: one pointer word (e.g.
// the *fabric.Packet in flight) and one scalar word (an event code, port
// index, priority class — whatever the handler packed). Both are optional.
type EventArg struct {
	Ptr any
	U64 uint64
}

// event is a scheduled callback. Events are ordered by (at, seq) where seq is
// the scheduling order, guaranteeing FIFO execution among same-time events.
// Event structs are pooled on the engine's free list; gen increments on every
// release so stale Timer handles can never cancel or inspect a reused slot.
type event struct {
	at  Time
	seq uint64
	gen uint64

	// h/arg is the typed fast path; fn is the closure fallback used by the
	// cold-path At/After API. Exactly one of h and fn is set.
	h   Handler
	arg EventArg
	fn  func()

	// heap index, -1 when not queued; used for O(log n) cancellation.
	index int
}

// Timer is a value handle to a scheduled event. The zero Timer is valid and
// behaves like an already-stopped one: Stop and Pending report false, When
// returns 0. Handles stay safe after the event fires and its struct is
// reused — the generation check makes a stale Stop a no-op instead of
// cancelling whatever event now occupies the slot.
type Timer struct {
	ev  *event
	eng *Engine
	gen uint64
}

// live reports whether the handle still refers to the queued event it was
// created for.
func (t Timer) live() bool {
	return t.ev != nil && t.ev.gen == t.gen && t.ev.index >= 0
}

// Stop cancels the timer. It reports whether the timer was still pending.
// Stopping a zero, already-fired, or already-stopped timer is a no-op.
func (t Timer) Stop() bool {
	if !t.live() {
		return false
	}
	t.eng.q.remove(t.ev)
	t.eng.release(t.ev)
	return true
}

// Pending reports whether the timer has not yet fired or been stopped.
func (t Timer) Pending() bool { return t.live() }

// When returns the virtual time at which the timer fires, or 0 for a zero,
// fired, or stopped handle.
func (t Timer) When() Time {
	if !t.live() {
		return 0
	}
	return t.ev.at
}

// Engine is a single-threaded discrete-event scheduler. The zero value is not
// usable; create engines with NewEngine.
type Engine struct {
	now     Time
	q       eventHeap
	seq     uint64
	stopped bool

	// free is the event free list: fired and cancelled events return here and
	// are reused by the next schedule, so the steady-state hot path performs
	// zero heap allocations.
	free []*event

	// Executed counts events dispatched so far (for stats and runaway guards).
	Executed uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{q: eventHeap{items: make([]*event, 0, 1024)}}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// alloc takes an event from the free list, or grows the pool by one.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

// release returns a dequeued event to the free list, bumping its generation
// so outstanding Timer handles go stale.
func (e *Engine) release(ev *event) {
	ev.gen++
	ev.h = nil
	ev.arg = EventArg{}
	ev.fn = nil
	e.free = append(e.free, ev)
}

// schedule inserts an event at absolute time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) schedule(t Time) *event {
	if t < e.now {
		panic("sim: scheduling event in the past")
	}
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	e.seq++
	e.q.push(ev)
	return ev
}

// Schedule runs h.OnEvent(arg) at absolute virtual time t. This is the
// allocation-free path: handler and payload are stored in a pooled event.
func (e *Engine) Schedule(t Time, h Handler, arg EventArg) Timer {
	ev := e.schedule(t)
	ev.h = h
	ev.arg = arg
	return Timer{ev: ev, eng: e, gen: ev.gen}
}

// ScheduleAfter runs h.OnEvent(arg) d after the current time.
func (e *Engine) ScheduleAfter(d Time, h Handler, arg EventArg) Timer {
	if d < 0 {
		panic("sim: negative delay")
	}
	return e.Schedule(e.now+d, h, arg)
}

// At schedules fn to run at absolute virtual time t. The closure API is for
// cold paths (workload generation, fault injection, tests); hot paths use
// Schedule, which avoids the closure capture allocation.
func (e *Engine) At(t Time, fn func()) Timer {
	ev := e.schedule(t)
	ev.fn = fn
	return Timer{ev: ev, eng: e, gen: ev.gen}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) Timer {
	if d < 0 {
		panic("sim: negative delay")
	}
	return e.At(e.now+d, fn)
}

// Stop halts the run loop after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.q.len() }

// Run executes events until the queue is empty or Stop is called. It returns
// the final virtual time.
func (e *Engine) Run() Time { return e.RunUntil(MaxTime) }

// RunUntil executes events with timestamps <= limit, then advances the clock
// to limit (unless limit is MaxTime or Stop was called, in which case the
// clock stays at the last executed event).
func (e *Engine) RunUntil(limit Time) Time {
	e.stopped = false
	for !e.stopped {
		ev := e.q.peek()
		if ev == nil {
			break
		}
		if ev.at > limit {
			e.now = limit
			return e.now
		}
		e.q.pop()
		e.now = ev.at
		// Free the slot before dispatching: the handler may immediately
		// schedule again and reuse it, and its own Timer handle (now stale by
		// generation) can no longer cancel the reused slot.
		h, arg, fn := ev.h, ev.arg, ev.fn
		e.release(ev)
		switch {
		case h != nil:
			e.Executed++
			h.OnEvent(arg)
		case fn != nil:
			e.Executed++
			fn()
		}
	}
	if !e.stopped && limit != MaxTime && e.now < limit {
		e.now = limit
	}
	return e.now
}
