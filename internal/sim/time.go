// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock with picosecond resolution and executes
// scheduled events in (time, scheduling-order) order, so two runs with the
// same inputs produce byte-identical histories. All model code in this module
// (switches, NICs, transports) runs single-threaded inside one engine;
// parallelism is obtained by running many independent engines concurrently
// (see internal/harness).
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, measured in picoseconds since the start of
// the simulation. Picosecond resolution makes serialization delays of
// high-speed links exact: a 1000-byte frame at 40 Gb/s is exactly 200,000 ps.
type Time int64

// Duration constants in picoseconds.
const (
	Picosecond  Time = 1
	Nanosecond       = 1000 * Picosecond
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time.
const MaxTime = Time(1<<63 - 1)

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns t expressed in microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns t expressed in milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Std converts t to a time.Duration (nanosecond resolution, truncating).
func (t Time) Std() time.Duration { return time.Duration(t / Nanosecond) }

// FromStd converts a time.Duration to a sim.Time.
func FromStd(d time.Duration) Time { return Time(d.Nanoseconds()) * Nanosecond }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%s", -t)
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.3gns", float64(t)/float64(Nanosecond))
	case t < Millisecond:
		return fmt.Sprintf("%.4gus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.4gms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4gs", float64(t)/float64(Second))
	}
}
