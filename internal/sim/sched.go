package sim

import "math/bits"

// SchedulerKind selects the event-queue implementation behind an Engine. The
// zero value is the calendar queue, so zero-valued configs get the fast
// scheduler without opting in.
type SchedulerKind int

const (
	// SchedCalendar is the hierarchical calendar queue (default): a timing
	// wheel of (at, seq)-ordered mini-heap buckets with a binary-heap
	// overflow for events beyond the wheel horizon.
	SchedCalendar SchedulerKind = iota
	// SchedHeap is the single binary min-heap, kept as the reference
	// implementation for A/B debugging and the equivalence property test.
	SchedHeap
)

func (k SchedulerKind) String() string {
	if k == SchedHeap {
		return "heap"
	}
	return "calendar"
}

// SchedulerByName maps a CLI spelling to a SchedulerKind. It reports false
// for names it does not know.
func SchedulerByName(name string) (SchedulerKind, bool) {
	switch name {
	case "calendar":
		return SchedCalendar, true
	case "heap":
		return SchedHeap, true
	}
	return SchedCalendar, false
}

// scheduler is the pluggable event queue behind an Engine. Implementations
// must yield events in exact (at, seq) order — the determinism of every
// figure rests on that contract, which the heap-vs-calendar property test
// pins bit-for-bit.
type scheduler interface {
	// push inserts ev at the engine clock now. The engine guarantees
	// ev.at >= now (no scheduling in the past), which lets implementations
	// keep a monotone cursor anchored at or before now.
	push(ev *event, now Time)
	// popLE removes and returns the earliest event iff its timestamp is at
	// most limit; it returns nil without dequeuing when the queue is empty
	// or the earliest event lies beyond limit.
	popLE(limit Time) *event
	// len counts queued events, including dead (lazily cancelled) ones that
	// have not been reclaimed yet.
	len() int
}

func newScheduler(kind SchedulerKind) scheduler {
	if kind == SchedHeap {
		return &eventHeap{items: make([]*event, 0, 1024)}
	}
	return newCalendarQueue()
}

func newCalendarQueue() *calendarQueue {
	cq := &calendarQueue{}
	// One contiguous slab gives every bucket an initial capacity in a single
	// allocation, instead of cwBuckets separate ones per engine (figure runs
	// build an engine per simulation, so setup allocations multiply).
	// Buckets that outgrow their slab segment migrate out through append's
	// usual growth; with occupancy tuned near one event per bucket, almost
	// none do.
	const slabCap = 4
	slab := make([]*event, cwBuckets*slabCap)
	for i := range cq.buckets {
		cq.buckets[i] = slab[i*slabCap : i*slabCap : (i+1)*slabCap]
	}
	return cq
}

// Calendar-queue geometry. Bucket width is sized for bucket occupancy near
// one, where the per-bucket mini-heaps degenerate into plain appends and
// pops with no comparisons: a simulated fabric keeps roughly one pending
// event per port, so with ~100 ports emitting a frame every ~1.2 µs
// (1500 B at 10 Gb/s) the queue holds about one event per 15 ns — a 2^14 ps
// ≈ 16.4 ns bucket. 2048 buckets span ≈ 33.6 µs, covering link delays,
// serialization times, and most pacer gaps; only RTO-class timers and
// deeply throttled pacers overflow.
const (
	cwLogWidth = 14
	cwBuckets  = 2048
	cwMask     = cwBuckets - 1
	cwWidth    = Time(1) << cwLogWidth
	cwSpan     = Time(cwBuckets) << cwLogWidth
)

// calendarQueue is a hierarchical timing wheel: cwBuckets buckets of width
// cwWidth, each an (at, seq) mini-heap, plus a binary-heap overflow for
// events at or beyond the wheel horizon. A bitmap marks occupied buckets so
// the cursor can skip empty ones a word at a time.
//
// Invariants, relied on throughout:
//   - start is cwWidth-aligned and start <= engine now at every push, so
//     every pushed event has at >= start and the cyclic slot mapping is
//     unambiguous (advanceToward never moves start past the run limit, and
//     the engine clamps now to the limit on exit);
//   - wheel events satisfy at - start < cwSpan, overflow events satisfy
//     at - start >= cwSpan (migrate restores this after every cursor move);
//   - bitmap bits exactly mark non-empty buckets, except the active bucket
//     cur, whose bit may be stale-set while it drains; advanceToward clears
//     it on entry, so occupancy scans never see a false positive.
type calendarQueue struct {
	buckets  [cwBuckets][]*event
	bitmap   [cwBuckets / 64]uint64
	start    Time // window start of buckets[cur], cwWidth-aligned
	cur      int
	count    int // events on the wheel, excluding overflow
	overflow []*event
}

func (cq *calendarQueue) len() int { return cq.count + len(cq.overflow) }

func (cq *calendarQueue) slot(at Time) int {
	return int(uint64(at)>>cwLogWidth) & cwMask
}

func (cq *calendarQueue) setBit(i int)   { cq.bitmap[i>>6] |= 1 << (uint(i) & 63) }
func (cq *calendarQueue) clearBit(i int) { cq.bitmap[i>>6] &^= 1 << (uint(i) & 63) }

func (cq *calendarQueue) push(ev *event, now Time) {
	if cq.count == 0 && len(cq.overflow) == 0 {
		// Empty queue: re-anchor the window at the clock (never at the
		// event — a later push may carry an earlier timestamp, and every
		// push satisfies at >= now, so the clock is the one safe anchor)
		// so an idle period never forces a bucket-by-bucket walk.
		cq.start = now - now%cwWidth
		cq.cur = cq.slot(now)
	}
	if ev.at-cq.start >= cwSpan {
		cq.overflow = heapPush(cq.overflow, ev)
		return
	}
	i := cq.slot(ev.at)
	cq.buckets[i] = heapPush(cq.buckets[i], ev)
	cq.setBit(i)
	cq.count++
}

func (cq *calendarQueue) popLE(limit Time) *event {
	for len(cq.buckets[cq.cur]) == 0 {
		if !cq.advanceToward(limit) {
			return nil
		}
	}
	b := cq.buckets[cq.cur]
	if b[0].at > limit {
		return nil
	}
	var ev *event
	cq.buckets[cq.cur], ev = heapPop(b)
	cq.count--
	return ev
}

// advanceToward moves the cursor to the next non-empty bucket whose window
// starts at or before limit. It reports false — leaving start <= limit so
// later pushes cannot alias across the wheel — when every remaining event
// lies beyond limit or the queue is empty. The caller guarantees
// buckets[cur] is empty.
func (cq *calendarQueue) advanceToward(limit Time) bool {
	cq.clearBit(cq.cur)
	if cq.count == 0 {
		// Wheel drained: jump straight to the earliest overflow event.
		if len(cq.overflow) == 0 {
			return false
		}
		min := cq.overflow[0].at
		if min > limit {
			return false
		}
		cq.start = min - min%cwWidth
		cq.cur = cq.slot(min)
		cq.migrate()
		return true
	}
	for {
		d := cq.nextOccupiedDelta()
		if len(cq.overflow) > 0 {
			if s := cq.stepsToHorizon(); s < d {
				d = s
			}
		}
		next := cq.start + Time(d)<<cwLogWidth
		if next > limit {
			return false
		}
		cq.start = next
		cq.cur = (cq.cur + d) & cwMask
		cq.migrate()
		if len(cq.buckets[cq.cur]) > 0 {
			return true
		}
		// Stopped at the migration boundary and nothing migrated into this
		// bucket; keep hunting from here.
	}
}

// migrate moves every overflow event that now falls inside the wheel window
// onto the wheel. Cursor moves are capped at cwBuckets-1 buckets per step,
// so a migrated event (at >= old start + cwSpan) always lands at least one
// bucket ahead of the new cursor — never behind it.
func (cq *calendarQueue) migrate() {
	for len(cq.overflow) > 0 && cq.overflow[0].at-cq.start < cwSpan {
		var ev *event
		cq.overflow, ev = heapPop(cq.overflow)
		i := cq.slot(ev.at)
		cq.buckets[i] = heapPush(cq.buckets[i], ev)
		cq.setBit(i)
		cq.count++
	}
}

// nextOccupiedDelta returns the cyclic distance from cur to the nearest
// occupied bucket strictly ahead of it. The caller guarantees count > 0 and
// that cur's bit is clear, so a scan always terminates on a true occupant.
func (cq *calendarQueue) nextOccupiedDelta() int {
	i := (cq.cur + 1) & cwMask
	w := i >> 6
	word := cq.bitmap[w] &^ (1<<(uint(i)&63) - 1)
	for {
		if word != 0 {
			j := w<<6 + bits.TrailingZeros64(word)
			return (j - cq.cur + cwBuckets) & cwMask
		}
		w = (w + 1) & (cwBuckets/64 - 1)
		word = cq.bitmap[w]
	}
}

// stepsToHorizon returns how many buckets the cursor may advance before the
// earliest overflow event enters the wheel window and must migrate. Overflow
// events satisfy at - start >= cwSpan, so the result is always >= 1.
func (cq *calendarQueue) stepsToHorizon() int {
	return int((cq.overflow[0].at-cq.start-cwSpan)>>cwLogWidth) + 1
}
