package sim

// eventHeap is a binary min-heap of events ordered by (at, seq). A hand-rolled
// heap (rather than container/heap) avoids interface boxing on the hot path:
// a busy simulation pushes and pops millions of events.
type eventHeap struct {
	items []*event
}

func (h *eventHeap) len() int { return len(h.items) }

func (h *eventHeap) less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(ev *event) {
	ev.index = len(h.items)
	h.items = append(h.items, ev)
	h.up(ev.index)
}

func (h *eventHeap) peek() *event {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

func (h *eventHeap) pop() *event {
	ev := h.items[0]
	last := len(h.items) - 1
	h.swap(0, last)
	h.items[last] = nil
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	ev.index = -1
	return ev
}

// remove deletes an arbitrary queued event (for Timer.Stop).
func (h *eventHeap) remove(ev *event) {
	i := ev.index
	if i < 0 || i >= len(h.items) || h.items[i] != ev {
		return
	}
	last := len(h.items) - 1
	h.swap(i, last)
	h.items[last] = nil
	h.items = h.items[:last]
	if i < last {
		h.down(i)
		h.up(i)
	}
	ev.index = -1
}

func (h *eventHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].index = i
	h.items[j].index = j
}

func (h *eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *eventHeap) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(h.items[right], h.items[left]) {
			smallest = right
		}
		if !h.less(h.items[smallest], h.items[i]) {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
