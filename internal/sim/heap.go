package sim

// eventBefore is the total order every scheduler must respect: earlier time
// first, and FIFO (scheduling order) among events at the same instant.
func eventBefore(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapPush and heapPop maintain a binary min-heap over a plain event slice.
// Hand-rolled (rather than container/heap) to avoid interface boxing on the
// hot path, and shared between the standalone eventHeap and the calendar
// queue's per-bucket mini-heaps and overflow heap.
func heapPush(items []*event, ev *event) []*event {
	//simlint:allow(hotpath) heap growth is amortized; buckets and the overflow heap retain capacity across events
	items = append(items, ev)
	siftUp(items, len(items)-1)
	return items
}

func heapPop(items []*event) ([]*event, *event) {
	ev := items[0]
	last := len(items) - 1
	items[0] = items[last]
	items[last] = nil
	items = items[:last]
	if last > 0 {
		siftDown(items, 0)
	}
	return items, ev
}

func siftUp(items []*event, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !eventBefore(items[i], items[parent]) {
			return
		}
		items[i], items[parent] = items[parent], items[i]
		i = parent
	}
}

func siftDown(items []*event, i int) {
	n := len(items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && eventBefore(items[right], items[left]) {
			smallest = right
		}
		if !eventBefore(items[smallest], items[i]) {
			return
		}
		items[i], items[smallest] = items[smallest], items[i]
		i = smallest
	}
}

// eventHeap is the reference scheduler: a single binary min-heap. Lazy
// cancellation removed the only need for arbitrary deletion, so there is no
// per-event index bookkeeping — cancelled events stay queued, marked dead,
// and are skipped at pop.
type eventHeap struct {
	items []*event
}

func (h *eventHeap) len() int { return len(h.items) }

func (h *eventHeap) push(ev *event, _ Time) { h.items = heapPush(h.items, ev) }

func (h *eventHeap) popLE(limit Time) *event {
	if len(h.items) == 0 || h.items[0].at > limit {
		return nil
	}
	var ev *event
	h.items, ev = heapPop(h.items)
	return ev
}
