package fabric

import (
	"testing"

	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/units"
)

func TestPoolReusesPackets(t *testing.T) {
	pl := NewPool()
	p1 := pl.Data(1, 0, 1000, 1, 2)
	if !p1.Pooled() {
		t.Fatal("pool-issued packet not marked pooled")
	}
	Release(p1)
	p2 := pl.Data(2, 5, 500, 3, 4)
	if p1 != p2 {
		t.Fatal("pool did not reuse the released packet")
	}
	if p2.FlowID != 2 || p2.Seq != 5 || p2.Size != 500 || p2.SrcID != 3 || p2.DstID != 4 {
		t.Fatalf("reused packet not reinitialized: %+v", p2)
	}
	if p2.Retransmitted || p2.CE || p2.SentAt != 0 {
		t.Fatalf("reused packet carries stale state: %+v", p2)
	}
	st := pl.Stats()
	if st.Gets != 2 || st.Puts != 1 || st.DoublePuts != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPoolDoublePutRefused(t *testing.T) {
	pl := NewPool()
	p := pl.Control(Ack, 1, 2)
	Release(p)
	Release(p) // second release must be refused, not corrupt the free list
	if st := pl.Stats(); st.DoublePuts != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
	a := pl.Data(1, 0, 100, 1, 2)
	b := pl.Data(1, 1, 100, 1, 2)
	if a == b {
		t.Fatal("double put duplicated a packet in the free list")
	}
}

func TestReleaseSafeOnForeignAndNil(t *testing.T) {
	Release(nil)
	p := NewData(1, 0, 1000, 1, 2) // plain allocation, no pool backref
	Release(p)                     // must be a no-op
	if p.inPool {
		t.Fatal("foreign packet marked as pooled")
	}
}

func TestNilPoolDegradesToAllocation(t *testing.T) {
	var pl *Pool
	p := pl.Data(1, 0, 1000, 1, 2)
	if p == nil || p.Pooled() {
		t.Fatal("nil pool must hand out plain packets")
	}
	c := pl.Control(Pause, 1, 2)
	if c == nil || c.Pooled() || c.Prio != PrioControl {
		t.Fatal("nil pool control packet wrong")
	}
	if st := pl.Stats(); st != (PoolStats{}) {
		t.Fatalf("nil pool stats = %+v", st)
	}
}

func TestQueuedPooledFrames(t *testing.T) {
	eng := sim.NewEngine()
	pl := NewPool()
	_, _, pa, _ := pair(eng, units.Gbps, sim.Microsecond)
	pa.SetPaused(PrioData, true, 0)
	pa.Enqueue(pl.Data(1, 0, 1000, 1, 2))
	pa.Enqueue(NewData(1, 1, 1000, 1, 2)) // foreign frame must not count
	pa.Enqueue(pl.Data(1, 2, 1000, 1, 2))
	if got := pa.QueuedPooledFrames(); got != 2 {
		t.Fatalf("QueuedPooledFrames = %d, want 2", got)
	}
}

func TestWirePooledConservation(t *testing.T) {
	eng := sim.NewEngine()
	pl := NewPool()
	a, _, pa, pb := pair(eng, units.Gbps, sim.Microsecond)
	_ = a
	for i := 0; i < 4; i++ {
		pa.Enqueue(pl.Data(1, uint32(i), 1000, 1, 2))
	}
	// Mid-flight the frames are split between the queue and the wire: at
	// 8.5us frame 0 is propagating, frame 1 serializing, frames 2-3 queued
	// (1000 B at 1 Gb/s = 8us serialization; nothing delivered before 9us).
	eng.RunUntil(8500 * sim.Nanosecond)
	st := pl.Stats()
	live := pa.QueuedPooledFrames() + pa.WirePooled() + pb.QueuedPooledFrames() + pb.WirePooled()
	if st.Gets != st.Puts+uint64(live) {
		t.Fatalf("mid-run conservation broken: gets %d puts %d live %d", st.Gets, st.Puts, live)
	}
	eng.Run()
	// The sink does not release; the fabric layer only returns frames on drop
	// and wire loss, so all 4 are still out.
	if pa.WirePooled() != 0 || pb.WirePooled() != 0 {
		t.Fatalf("wirePooled not drained: %d/%d", pa.WirePooled(), pb.WirePooled())
	}
}

func TestWireLossReturnsToPool(t *testing.T) {
	eng := sim.NewEngine()
	pl := NewPool()
	_, b, pa, _ := pair(eng, units.Gbps, sim.Microsecond)
	pa.Enqueue(pl.Data(1, 0, 1000, 1, 2))
	SetLinkDown(pa, true) // cut after serialization started: frame is lost
	eng.Run()
	if b.received != 0 {
		t.Fatal("frame delivered over a cut link")
	}
	st := pl.Stats()
	if pa.Stats.WireLost != 1 || st.Puts != 1 || st.Gets != st.Puts {
		t.Fatalf("wire loss did not return frame: port %+v pool %+v", pa.Stats, st)
	}
}

// echo bounces every received pooled frame straight back out its in-port,
// keeping exactly one frame circulating on the link forever.
type echo struct{ id int }

func (e *echo) Receive(p *Packet, in *Port) { in.Enqueue(p) }
func (e *echo) DevID() int                  { return e.id }

// BenchmarkPortPingPong measures the full port hot path — Enqueue, trySend,
// serialization timer, delivery timer, Receive — with pooled packets and
// pooled events. Steady state must not allocate.
func BenchmarkPortPingPong(b *testing.B) {
	eng := sim.NewEngine()
	pl := NewPool()
	ea, eb := &echo{id: 1}, &echo{id: 2}
	pa := &Port{Eng: eng, Owner: ea, Index: 0}
	pb := &Port{Eng: eng, Owner: eb, Index: 0}
	Connect(pa, pb, 40*units.Gbps, 2*sim.Microsecond)
	pa.Enqueue(pl.Data(1, 0, 1000, 1, 2))
	// Warm the event pool and reach steady state.
	eng.RunUntil(eng.Now() + 100*sim.Microsecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.RunUntil(eng.Now() + 10*sim.Microsecond)
	}
	if pa.Stats.TxFrames == 0 {
		b.Fatal("no traffic flowed")
	}
}

func TestLeakEveryBreaksConservation(t *testing.T) {
	// The fault-injection knob must produce exactly the imbalance the strict
	// packet-pool invariant looks for: gets != puts + live, with no frame in
	// the free list to show for the missing put.
	pl := NewPool()
	pl.LeakEvery = 3
	for i := 0; i < 9; i++ {
		Release(pl.Data(1, uint32(i), 1000, 0, 1))
	}
	st := pl.Stats()
	if st.Gets != 9 || st.Puts != 6 {
		t.Fatalf("gets=%d puts=%d, want 9 gets and 6 puts (3 leaked)", st.Gets, st.Puts)
	}
	if st.Gets == st.Puts {
		t.Fatal("leak injection did not unbalance the pool")
	}
	// Off by default: a zero knob conserves every frame.
	clean := NewPool()
	for i := 0; i < 9; i++ {
		Release(clean.Data(1, uint32(i), 1000, 0, 1))
	}
	if st := clean.Stats(); st.Gets != st.Puts {
		t.Fatalf("clean pool unbalanced: %+v", st)
	}
}
