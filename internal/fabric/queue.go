package fabric

// packetFIFO is a slice-backed FIFO queue of packets. Pop does not shrink the
// backing array immediately; the head space is reclaimed when it grows past
// half the slice, keeping amortized O(1) operations without per-packet
// allocation.
type packetFIFO struct {
	buf   []*Packet
	head  int
	bytes int
}

// Len returns the number of queued packets.
func (q *packetFIFO) Len() int { return len(q.buf) - q.head }

// Bytes returns the total wire bytes queued.
func (q *packetFIFO) Bytes() int { return q.bytes }

// Push appends a packet.
func (q *packetFIFO) Push(p *Packet) {
	//simlint:allow(hotpath) FIFO backing growth is amortized; Pop compacts in place and capacity is retained
	q.buf = append(q.buf, p)
	q.bytes += p.Size
}

// Pop removes and returns the oldest packet, or nil if empty.
func (q *packetFIFO) Pop() *Packet {
	if q.head >= len(q.buf) {
		return nil
	}
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	q.bytes -= p.Size
	if q.head > len(q.buf)/2 && q.head > 32 {
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = nil
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	return p
}

// pooledFrames counts queued frames that came from a packet pool, for the
// end-of-run conservation audit (see pool.go).
func (q *packetFIFO) pooledFrames() int {
	n := 0
	for _, p := range q.buf[q.head:] {
		if p.Pooled() {
			n++
		}
	}
	return n
}

// Peek returns the oldest packet without removing it, or nil if empty.
func (q *packetFIFO) Peek() *Packet {
	if q.head >= len(q.buf) {
		return nil
	}
	return q.buf[q.head]
}
