package fabric

// PoolStats counts pool traffic for the conservation invariant: every Get
// must eventually be matched by exactly one Put (frame consumed) or remain
// live in a queue, on the wire, or in a recirculation loop when the run ends.
type PoolStats struct {
	Gets uint64
	Puts uint64
	// DoublePuts counts frames returned twice. The pool refuses the second
	// return (handing the same struct out to two owners would corrupt a later
	// run), and the strict invariant tier turns a non-zero count into a test
	// failure.
	DoublePuts uint64
}

// Pool is a per-simulation free list of Packet structs. One simulation owns
// one pool (single-threaded, like its engine); frames are taken at the
// sending NIC or switch control plane and returned at every terminal point:
// delivery, MMU drop, and wire loss. A nil *Pool is valid and degrades to
// plain allocation, so unit tests that build packets directly pay nothing.
type Pool struct {
	// LeakEvery, when positive, silently discards every LeakEvery-th
	// returned frame instead of pooling it — neither the Puts counter nor
	// the free list sees it, exactly what a missing Release looks like.
	// This is deliberate fault injection: the scenario fuzzer's meta-test
	// (internal/scenario) seeds a leak through it and asserts the strict
	// packet-pool conservation invariant (gets == puts + live) catches and
	// shrinks the breach. Always zero outside that test.
	LeakEvery int

	free     []*Packet
	stats    PoolStats
	putCalls uint64
}

// NewPool returns an empty packet pool.
func NewPool() *Pool { return &Pool{} }

// Stats returns the pool counters.
func (pl *Pool) Stats() PoolStats {
	if pl == nil {
		return PoolStats{}
	}
	return pl.stats
}

// get hands out a fully reset packet owned by this pool.
func (pl *Pool) get() *Packet {
	pl.stats.Gets++
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		*p = Packet{pool: pl}
		return p
	}
	//simlint:allow(hotpath) free-list miss grows the pool once; steady state recycles frames (0 allocs/op, bench-gated)
	return &Packet{pool: pl}
}

// Data returns a data frame of the given wire size, pooled when pl is
// non-nil.
func (pl *Pool) Data(flow uint32, seq uint32, size int, src, dst int) *Packet {
	if pl == nil {
		return NewData(flow, seq, size, src, dst)
	}
	p := pl.get()
	p.Type, p.Prio, p.Size = Data, PrioData, size
	p.FlowID, p.Seq, p.SrcID, p.DstID = flow, seq, src, dst
	return p
}

// Control returns a control frame of the given kind, pooled when pl is
// non-nil.
func (pl *Pool) Control(t PacketType, src, dst int) *Packet {
	if pl == nil {
		return NewControl(t, src, dst)
	}
	p := pl.get()
	p.Type, p.Prio, p.Size = t, PrioControl, ControlFrameSize
	p.SrcID, p.DstID = src, dst
	return p
}

// put returns a frame to the free list, refusing double returns.
func (pl *Pool) put(p *Packet) {
	if p.inPool {
		pl.stats.DoublePuts++
		return
	}
	if pl.LeakEvery > 0 {
		if pl.putCalls++; pl.putCalls%uint64(pl.LeakEvery) == 0 {
			return // injected leak: frame dropped on the floor, uncounted
		}
	}
	p.inPool = true
	pl.stats.Puts++
	//simlint:allow(hotpath) free-list growth is amortized; the backing array is retained across events
	pl.free = append(pl.free, p)
}

// Release returns pkt to its originating pool. Terminal consumers (host
// delivery, switch drops, wire loss) call this instead of dropping the
// reference. Safe on nil packets and on packets built outside any pool.
func Release(pkt *Packet) {
	if pkt == nil || pkt.pool == nil {
		return
	}
	pkt.pool.put(pkt)
}
