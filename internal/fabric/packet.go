// Package fabric models the data plane shared by hosts and switches: packets,
// full-duplex ports, and links with serialization and propagation delay.
//
// A Port is one end of a full-duplex link. Its egress side holds one FIFO
// queue per priority class and serializes packets at the link rate; the
// ingress side delivers packets to the owning Device after the propagation
// delay. Priority-based flow control (PFC) pause state lives on the egress
// side: a paused priority class simply stops being scheduled, while an
// in-flight frame always finishes serialization, matching IEEE 802.1Qbb.
package fabric

import (
	"fmt"

	"github.com/rlb-project/rlb/internal/sim"
)

// PacketType discriminates the frames that cross the fabric.
type PacketType uint8

// Frame kinds. Data carries flow payload; all others are control frames that
// travel in the control priority class and are never paused by data-class PFC.
const (
	Data PacketType = iota
	Ack
	Nak
	CNP    // DCQCN congestion notification packet (NP -> RP)
	Pause  // PFC PAUSE for a priority class
	Resume // PFC RESUME for a priority class
	CNM    // RLB's PFC-warning congestion notification message
	Probe  // path telemetry probe
)

// String returns the frame kind name.
func (t PacketType) String() string {
	switch t {
	case Data:
		return "DATA"
	case Ack:
		return "ACK"
	case Nak:
		return "NAK"
	case CNP:
		return "CNP"
	case Pause:
		return "PAUSE"
	case Resume:
		return "RESUME"
	case CNM:
		return "CNM"
	case Probe:
		return "PROBE"
	default:
		return fmt.Sprintf("PacketType(%d)", uint8(t))
	}
}

// Priority classes. Control is strict-priority above Data and is exempt from
// data-class PFC, mirroring how PFC/CNP frames use a separate traffic class
// in RoCE deployments.
const (
	PrioControl = 0
	PrioData    = 1
	NumPrio     = 2
)

// Typical frame sizes in bytes.
const (
	// ControlFrameSize is the wire size of ACK/NAK/CNP/PFC/CNM frames.
	ControlFrameSize = 64
	// DefaultMTU is the wire size of a full data frame (payload + headers).
	DefaultMTU = 1000
)

// PauseInfo is the payload of PFC Pause/Resume frames.
type PauseInfo struct {
	Prio uint8    // paused priority class
	Dur  sim.Time // pause duration (ignored for Resume)
}

// CNMInfo is the payload of RLB's PFC-warning message (§3.2.1 of the paper).
// It identifies the congestion point so upstream switches can scope the
// warning to the paths that traverse it.
type CNMInfo struct {
	// SwitchID is the switch whose ingress queue is predicted to trigger PFC.
	SwitchID int
	// IngressPort is the port id at that switch (the QCN field of the CNM).
	IngressPort int
	// DstLeaf optionally scopes the warning to paths toward one leaf; -1
	// means the warning applies to every destination through this hop.
	DstLeaf int
	// Hops counts propagation hops, bounding hop-by-hop flooding.
	Hops int
}

// AckInfo is the payload of ACK and NAK frames.
type AckInfo struct {
	Seq uint32 // NAK: the expected (missing) sequence; ACK: cumulative next-expected
}

// Packet is a frame traversing the fabric. One struct serves all frame kinds;
// the control payloads are small and inlined to avoid per-frame allocations
// of secondary objects.
type Packet struct {
	Type PacketType
	Prio uint8
	Size int // bytes on the wire

	FlowID uint32
	Seq    uint32
	SrcID  int // source host id
	DstID  int // destination host id

	CE bool // ECN congestion-experienced mark

	Pause PauseInfo
	CNMsg CNMInfo
	AckNk AckInfo

	// SentAt is stamped by the source NIC when the frame first leaves it.
	SentAt sim.Time

	// Transient per-switch state, reset at each hop.

	// InPort is the ingress port index at the switch currently holding the
	// packet, used to release shared-buffer accounting on egress.
	InPort int
	// InPrio is the ingress accounting priority at the current switch.
	InPrio uint8
	// Recirc counts egress->ingress recirculations at the current switch.
	Recirc int

	// Retransmitted marks frames sent again by go-back-N (for accounting).
	Retransmitted bool

	// pool, when non-nil, is the free list this frame came from and returns
	// to on Release; inPool guards against double returns (see pool.go).
	pool   *Pool
	inPool bool
}

// Pooled reports whether the frame came from a packet pool (and therefore
// participates in the pool-conservation audit).
func (p *Packet) Pooled() bool { return p.pool != nil }

// NewData returns a data frame of the given wire size.
func NewData(flow uint32, seq uint32, size int, src, dst int) *Packet {
	//simlint:allow(hotpath) unpooled constructor: pooled runs take Pool.get instead; reached hot only as the nil-pool fallback
	return &Packet{Type: Data, Prio: PrioData, Size: size, FlowID: flow, Seq: seq, SrcID: src, DstID: dst}
}

// NewControl returns a control frame of the given kind addressed dst.
func NewControl(t PacketType, src, dst int) *Packet {
	//simlint:allow(hotpath) unpooled constructor: pooled runs take Pool.get instead; reached hot only as the nil-pool fallback
	return &Packet{Type: t, Prio: PrioControl, Size: ControlFrameSize, SrcID: src, DstID: dst}
}
