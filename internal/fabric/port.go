package fabric

import (
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/units"
)

// Device is anything that terminates ports: a switch or a host NIC.
type Device interface {
	// Receive is invoked by the fabric when a frame arrives on in.
	Receive(pkt *Packet, in *Port)
	// DevID returns a unique device identifier (host id or switch id space).
	DevID() int
}

// PortStats counts traffic through a port's egress side.
type PortStats struct {
	TxFrames     uint64
	TxBytes      uint64
	PauseRx      uint64 // PAUSE frames received (this side was throttled)
	PauseTx      uint64 // PAUSE frames sent by the owning device via this port
	PausedFor    sim.Time
	lastPausedAt sim.Time
	// WireLost counts frames that were on the wire (or serializing) when the
	// link was cut and never arrived. Distinct from switch buffer drops: wire
	// loss is a fault-plane event, not an MMU decision, and is therefore not
	// a lossless-invariant violation.
	WireLost uint64
}

// Port is one end of a full-duplex link. Egress queues and pause state belong
// to this end; frames sent here arrive at Peer.Owner after serialization and
// propagation delay.
type Port struct {
	Eng   *sim.Engine
	Owner Device
	// Index is the port number within the owning device.
	Index int
	Peer  *Port

	Rate  units.Bandwidth
	Delay sim.Time

	queues [NumPrio]packetFIFO
	busy   bool
	down   bool

	// wirePooled counts pool-owned frames currently serializing or
	// propagating out of this port (scheduled for delivery but not yet
	// received), for the end-of-run pool-conservation audit.
	wirePooled int

	paused     [NumPrio]bool
	pauseTimer [NumPrio]sim.Timer

	// OnTxDone, if set, fires when a frame finishes serialization out of
	// this port (switches use it to release shared-buffer accounting).
	OnTxDone func(pkt *Packet)

	Stats PortStats
}

// Connect wires a and b into a full-duplex link with the given rate and
// one-way propagation delay on both directions.
func Connect(a, b *Port, rate units.Bandwidth, delay sim.Time) {
	a.Peer, b.Peer = b, a
	a.Rate, b.Rate = rate, rate
	a.Delay, b.Delay = delay, delay
}

// ConnectAsym wires a full-duplex link with distinct per-direction rates
// (a transmits at rateA, b at rateB).
func ConnectAsym(a, b *Port, rateA, rateB units.Bandwidth, delay sim.Time) {
	a.Peer, b.Peer = b, a
	a.Rate, b.Rate = rateA, rateB
	a.Delay, b.Delay = delay, delay
}

// QueuedBytes returns the egress backlog of one priority class.
func (p *Port) QueuedBytes(prio uint8) int { return p.queues[prio].Bytes() }

// QueuedFrames returns the egress frame backlog of one priority class.
func (p *Port) QueuedFrames(prio uint8) int { return p.queues[prio].Len() }

// TotalQueuedBytes returns the backlog across all priorities.
func (p *Port) TotalQueuedBytes() int {
	total := 0
	for i := 0; i < NumPrio; i++ {
		total += p.queues[i].Bytes()
	}
	return total
}

// Paused reports whether a priority class is currently paused by PFC.
func (p *Port) Paused(prio uint8) bool { return p.paused[prio] }

// Down reports whether this end of the link is failed.
func (p *Port) Down() bool { return p.down }

// SetDown fails or restores this transmit direction. While down the egress
// queues stop draining (upstream PFC backpressure takes over); a frame
// already serializing, or propagating on the wire, is lost and counted in
// Stats.WireLost. Restoring the link resumes transmission immediately. Fail
// both ends (see SetLinkDown) to cut a full-duplex link.
func (p *Port) SetDown(down bool) {
	if p.down == down {
		return
	}
	p.down = down
	if !down {
		p.trySend()
	}
}

// SetLinkDown fails or restores both directions of the link this port
// belongs to.
func SetLinkDown(p *Port, down bool) {
	p.SetDown(down)
	if p.Peer != nil {
		p.Peer.SetDown(down)
	}
}

// SetLinkRate changes both directions of a link to a new rate (degradation or
// repair). A frame mid-serialization finishes at the old rate; subsequent
// frames serialize at the new one.
func SetLinkRate(p *Port, rate units.Bandwidth) {
	p.Rate = rate
	if p.Peer != nil {
		p.Peer.Rate = rate
	}
}

// Busy reports whether the port is serializing a frame right now.
func (p *Port) Busy() bool { return p.busy }

// DrainTime estimates how long the current data-class backlog takes to
// serialize at link rate (used by delay-aware load balancers).
func (p *Port) DrainTime() sim.Time {
	return units.TxTime(p.queues[PrioData].Bytes(), p.Rate)
}

// Enqueue places pkt in this port's egress queue and starts transmission if
// the line is idle.
func (p *Port) Enqueue(pkt *Packet) {
	p.queues[pkt.Prio].Push(pkt)
	p.trySend()
}

// SetPaused pauses or resumes a priority class. A pause with dur > 0 arms an
// auto-resume timer (the PFC pause quanta expiring); a RESUME cancels it.
func (p *Port) SetPaused(prio uint8, paused bool, dur sim.Time) {
	p.pauseTimer[prio].Stop()
	p.pauseTimer[prio] = sim.Timer{}
	if paused == p.paused[prio] && !paused {
		return
	}
	if paused {
		if !p.paused[prio] {
			p.Stats.lastPausedAt = p.Eng.Now()
		}
		p.paused[prio] = true
		p.Stats.PauseRx++
		if dur > 0 {
			p.pauseTimer[prio] = p.Eng.ScheduleAfter(dur, p, sim.EventArg{U64: portEvPause + uint64(prio)})
		}
		return
	}
	p.resume(prio)
}

func (p *Port) resume(prio uint8) {
	if !p.paused[prio] {
		return
	}
	p.paused[prio] = false
	p.Stats.PausedFor += p.Eng.Now() - p.Stats.lastPausedAt
	p.trySend()
}

// nextFrame picks the highest-priority sendable frame, honoring pause state.
func (p *Port) nextFrame() *Packet {
	for prio := 0; prio < NumPrio; prio++ {
		if p.paused[prio] {
			continue
		}
		if pkt := p.queues[prio].Pop(); pkt != nil {
			return pkt
		}
	}
	return nil
}

// Event codes for the port's typed events (EventArg.U64). Pause-expiry codes
// occupy [portEvPause, portEvPause+NumPrio).
const (
	portEvTxDone uint64 = iota
	portEvDeliver
	portEvPause
)

// OnEvent implements sim.Handler: serialization-done and wire-delivery events
// carry the frame as the pointer payload; pause expiries encode the priority
// class in the scalar word. Using intern typed events instead of per-frame
// closures keeps the per-hop cost allocation-free.
func (p *Port) OnEvent(arg sim.EventArg) {
	switch arg.U64 {
	case portEvTxDone:
		p.busy = false
		if p.OnTxDone != nil {
			p.OnTxDone(arg.Ptr.(*Packet))
		}
		p.trySend()
	case portEvDeliver:
		pkt := arg.Ptr.(*Packet)
		if pkt.Pooled() {
			p.wirePooled--
		}
		// A frame on the wire when the link went down is lost.
		if p.down {
			p.Stats.WireLost++
			Release(pkt)
			return
		}
		p.Peer.Owner.Receive(pkt, p.Peer)
	default:
		prio := uint8(arg.U64 - portEvPause)
		p.pauseTimer[prio] = sim.Timer{}
		p.resume(prio)
	}
}

// WirePooled returns the number of pool-owned frames currently on the wire
// out of this port (for the pool-conservation audit).
func (p *Port) WirePooled() int { return p.wirePooled }

// QueuedPooledFrames counts pool-owned frames across this port's egress
// queues (for the pool-conservation audit).
func (p *Port) QueuedPooledFrames() int {
	total := 0
	for i := 0; i < NumPrio; i++ {
		total += p.queues[i].pooledFrames()
	}
	return total
}

func (p *Port) trySend() {
	if p.busy || p.down || p.Peer == nil {
		return
	}
	pkt := p.nextFrame()
	if pkt == nil {
		return
	}
	p.busy = true
	tx := units.TxTime(pkt.Size, p.Rate)
	p.Stats.TxFrames++
	p.Stats.TxBytes += uint64(pkt.Size)
	if pkt.Pooled() {
		p.wirePooled++
	}
	p.Eng.ScheduleAfter(tx, p, sim.EventArg{Ptr: pkt, U64: portEvTxDone})
	p.Eng.ScheduleAfter(tx+p.Delay, p, sim.EventArg{Ptr: pkt, U64: portEvDeliver})
}
