package fabric

import (
	"testing"
	"testing/quick"

	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/units"
)

// sink is a test Device that records arrivals.
type sink struct {
	id       int
	got      []*Packet
	gotAt    []sim.Time
	eng      *sim.Engine
	onRecv   func(p *Packet, in *Port)
	inPort   *Port
	received int
}

func (s *sink) Receive(p *Packet, in *Port) {
	s.got = append(s.got, p)
	s.gotAt = append(s.gotAt, s.eng.Now())
	s.received++
	if s.onRecv != nil {
		s.onRecv(p, in)
	}
}

func (s *sink) DevID() int { return s.id }

func pair(eng *sim.Engine, rate units.Bandwidth, delay sim.Time) (*sink, *sink, *Port, *Port) {
	a := &sink{id: 1, eng: eng}
	b := &sink{id: 2, eng: eng}
	pa := &Port{Eng: eng, Owner: a, Index: 0}
	pb := &Port{Eng: eng, Owner: b, Index: 0}
	Connect(pa, pb, rate, delay)
	a.inPort, b.inPort = pa, pb
	return a, b, pa, pb
}

func TestPacketDelivery(t *testing.T) {
	eng := sim.NewEngine()
	_, b, pa, _ := pair(eng, 40*units.Gbps, 2*sim.Microsecond)
	pkt := NewData(1, 0, 1000, 1, 2)
	pa.Enqueue(pkt)
	eng.Run()
	if b.received != 1 {
		t.Fatalf("received %d packets", b.received)
	}
	// Arrival = serialization (200ns) + propagation (2us).
	want := 200*sim.Nanosecond + 2*sim.Microsecond
	if b.gotAt[0] != want {
		t.Fatalf("arrival at %v, want %v", b.gotAt[0], want)
	}
}

func TestFIFOWithinPriority(t *testing.T) {
	eng := sim.NewEngine()
	_, b, pa, _ := pair(eng, 10*units.Gbps, sim.Microsecond)
	for i := 0; i < 10; i++ {
		pa.Enqueue(NewData(1, uint32(i), 500, 1, 2))
	}
	eng.Run()
	if len(b.got) != 10 {
		t.Fatalf("received %d", len(b.got))
	}
	for i, p := range b.got {
		if p.Seq != uint32(i) {
			t.Fatalf("packet %d has seq %d", i, p.Seq)
		}
	}
}

func TestControlPreemptsData(t *testing.T) {
	eng := sim.NewEngine()
	_, b, pa, _ := pair(eng, 10*units.Gbps, sim.Microsecond)
	// Fill data queue, then enqueue a control frame; the control frame must
	// jump ahead of the queued (not yet serializing) data.
	for i := 0; i < 5; i++ {
		pa.Enqueue(NewData(1, uint32(i), 1000, 1, 2))
	}
	ctrl := NewControl(Ack, 2, 1)
	pa.Enqueue(ctrl)
	eng.Run()
	// First frame already started serializing (seq 0), so control is 2nd.
	if b.got[1].Type != Ack {
		t.Fatalf("control frame arrived at position != 1: %v", b.got[1].Type)
	}
}

func TestPauseStopsDataNotControl(t *testing.T) {
	eng := sim.NewEngine()
	_, b, pa, _ := pair(eng, 10*units.Gbps, sim.Microsecond)
	pa.SetPaused(PrioData, true, 0)
	pa.Enqueue(NewData(1, 0, 1000, 1, 2))
	pa.Enqueue(NewControl(Ack, 1, 2))
	eng.RunUntil(100 * sim.Microsecond)
	if len(b.got) != 1 || b.got[0].Type != Ack {
		t.Fatalf("expected only control frame, got %d frames", len(b.got))
	}
	pa.SetPaused(PrioData, false, 0)
	eng.Run()
	if len(b.got) != 2 {
		t.Fatalf("data frame not released after resume: %d frames", len(b.got))
	}
	if pa.Stats.PausedFor == 0 {
		t.Fatal("paused duration not recorded")
	}
}

func TestPauseAutoExpiry(t *testing.T) {
	eng := sim.NewEngine()
	_, b, pa, _ := pair(eng, 10*units.Gbps, sim.Microsecond)
	pa.SetPaused(PrioData, true, 5*sim.Microsecond)
	pa.Enqueue(NewData(1, 0, 1000, 1, 2))
	eng.Run()
	if len(b.got) != 1 {
		t.Fatal("packet never delivered after pause expiry")
	}
	// Released at 5us, 800ns serialization, 1us propagation.
	want := 5*sim.Microsecond + 800*sim.Nanosecond + sim.Microsecond
	if b.gotAt[0] != want {
		t.Fatalf("arrival %v, want %v", b.gotAt[0], want)
	}
}

func TestResumeCancelsPauseTimer(t *testing.T) {
	eng := sim.NewEngine()
	_, b, pa, _ := pair(eng, 10*units.Gbps, sim.Microsecond)
	pa.SetPaused(PrioData, true, 100*sim.Microsecond)
	pa.Enqueue(NewData(1, 0, 1000, 1, 2))
	eng.After(2*sim.Microsecond, func() { pa.SetPaused(PrioData, false, 0) })
	eng.Run()
	if b.gotAt[0] > 5*sim.Microsecond {
		t.Fatalf("early resume ignored; arrival at %v", b.gotAt[0])
	}
}

func TestRepeatedPauseRefreshesDuration(t *testing.T) {
	eng := sim.NewEngine()
	_, b, pa, _ := pair(eng, 10*units.Gbps, sim.Microsecond)
	pa.Enqueue(NewData(1, 0, 1000, 1, 2))
	// This packet starts serializing immediately; pause affects next ones.
	pa.Enqueue(NewData(1, 1, 1000, 1, 2))
	pa.SetPaused(PrioData, true, 3*sim.Microsecond)
	eng.After(2*sim.Microsecond, func() { pa.SetPaused(PrioData, true, 10*sim.Microsecond) })
	eng.Run()
	// Second packet must wait for the refreshed pause: released at 12us.
	if len(b.gotAt) != 2 {
		t.Fatalf("got %d frames", len(b.gotAt))
	}
	if b.gotAt[1] < 12*sim.Microsecond {
		t.Fatalf("refreshed pause not honored: second arrival %v", b.gotAt[1])
	}
}

func TestInFlightFrameFinishesWhenPaused(t *testing.T) {
	eng := sim.NewEngine()
	_, b, pa, _ := pair(eng, 10*units.Gbps, sim.Microsecond)
	pa.Enqueue(NewData(1, 0, 1000, 1, 2)) // starts serializing at t=0
	eng.After(100*sim.Nanosecond, func() { pa.SetPaused(PrioData, true, 0) })
	eng.RunUntil(50 * sim.Microsecond)
	if len(b.got) != 1 {
		t.Fatal("in-flight frame should complete despite pause")
	}
}

func TestAsymmetricLink(t *testing.T) {
	eng := sim.NewEngine()
	a := &sink{id: 1, eng: eng}
	b := &sink{id: 2, eng: eng}
	pa := &Port{Eng: eng, Owner: a}
	pb := &Port{Eng: eng, Owner: b}
	ConnectAsym(pa, pb, 40*units.Gbps, 10*units.Gbps, sim.Microsecond)
	pa.Enqueue(NewData(1, 0, 1000, 1, 2))
	pb.Enqueue(NewData(2, 0, 1000, 2, 1))
	eng.Run()
	// a->b at 40G: 200ns + 1us; b->a at 10G: 800ns + 1us.
	if b.gotAt[0] != 1200*sim.Nanosecond {
		t.Fatalf("fast direction arrival %v", b.gotAt[0])
	}
	if a.gotAt[0] != 1800*sim.Nanosecond {
		t.Fatalf("slow direction arrival %v", a.gotAt[0])
	}
}

func TestQueueAccounting(t *testing.T) {
	eng := sim.NewEngine()
	_, _, pa, _ := pair(eng, units.Gbps, sim.Microsecond)
	for i := 0; i < 5; i++ {
		pa.Enqueue(NewData(1, uint32(i), 1000, 1, 2))
	}
	// One frame is in flight (serializing), 4 queued.
	if pa.QueuedFrames(PrioData) != 4 {
		t.Fatalf("QueuedFrames = %d, want 4", pa.QueuedFrames(PrioData))
	}
	if pa.QueuedBytes(PrioData) != 4000 {
		t.Fatalf("QueuedBytes = %d", pa.QueuedBytes(PrioData))
	}
	if pa.TotalQueuedBytes() != 4000 {
		t.Fatalf("TotalQueuedBytes = %d", pa.TotalQueuedBytes())
	}
	eng.Run()
	if pa.QueuedBytes(PrioData) != 0 {
		t.Fatal("queue should drain to zero")
	}
	if pa.Stats.TxFrames != 5 || pa.Stats.TxBytes != 5000 {
		t.Fatalf("stats = %+v", pa.Stats)
	}
}

func TestOnTxDoneFires(t *testing.T) {
	eng := sim.NewEngine()
	_, _, pa, _ := pair(eng, 10*units.Gbps, sim.Microsecond)
	var done []uint32
	pa.OnTxDone = func(p *Packet) { done = append(done, p.Seq) }
	for i := 0; i < 3; i++ {
		pa.Enqueue(NewData(1, uint32(i), 500, 1, 2))
	}
	eng.Run()
	if len(done) != 3 || done[0] != 0 || done[2] != 2 {
		t.Fatalf("OnTxDone order = %v", done)
	}
}

func TestDrainTime(t *testing.T) {
	eng := sim.NewEngine()
	_, _, pa, _ := pair(eng, 10*units.Gbps, sim.Microsecond)
	pa.SetPaused(PrioData, true, 0)
	for i := 0; i < 10; i++ {
		pa.Enqueue(NewData(1, uint32(i), 1000, 1, 2))
	}
	// 10 KB at 10 Gb/s = 8us.
	if got := pa.DrainTime(); got != 8*sim.Microsecond {
		t.Fatalf("DrainTime = %v, want 8us", got)
	}
}

func TestPacketFIFOProperty(t *testing.T) {
	// Property: any push/pop interleaving preserves FIFO order and byte sum.
	prop := func(ops []uint8) bool {
		var q packetFIFO
		next, expect := uint32(0), uint32(0)
		bytes := 0
		for _, op := range ops {
			if op%3 != 0 { // push twice as often as pop
				p := NewData(1, next, int(op)+1, 1, 2)
				next++
				bytes += p.Size
				q.Push(p)
			} else if p := q.Pop(); p != nil {
				if p.Seq != expect {
					return false
				}
				expect++
				bytes -= p.Size
			}
			if q.Bytes() != bytes || q.Len() != int(next-expect) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPacketFIFOCompaction(t *testing.T) {
	var q packetFIFO
	for i := 0; i < 1000; i++ {
		q.Push(NewData(1, uint32(i), 10, 1, 2))
		if i%2 == 1 {
			q.Pop()
			q.Pop()
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d, want 0", q.Len())
	}
	if q.Peek() != nil || q.Pop() != nil {
		t.Fatal("empty queue returned a packet")
	}
}

func TestPacketTypeString(t *testing.T) {
	names := map[PacketType]string{
		Data: "DATA", Ack: "ACK", Nak: "NAK", CNP: "CNP",
		Pause: "PAUSE", Resume: "RESUME", CNM: "CNM", Probe: "PROBE",
	}
	for pt, want := range names {
		if pt.String() != want {
			t.Errorf("%d.String() = %q, want %q", pt, pt.String(), want)
		}
	}
	if PacketType(99).String() != "PacketType(99)" {
		t.Error("unknown type formatting wrong")
	}
}
