package core

import (
	"github.com/rlb-project/rlb/internal/fabric"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/switchsim"
	"github.com/rlb-project/rlb/internal/trace"
	"github.com/rlb-project/rlb/internal/units"
)

// PredictorStats counts predictor activity.
type PredictorStats struct {
	Samples   uint64
	Warnings  uint64 // CNMs originated by this predictor
	Predicted uint64 // warnings triggered by the derivative term
	Static    uint64 // warnings triggered by the Qth threshold term
}

// Predictor is RLB's predicting module (§3.2.1) attached to one switch. It
// samples the ingress-queue lengths every DeltaT, differentiates them, and
// sends a CNM out of any ingress port whose queue is about to trigger PFC.
type Predictor struct {
	sw     *switchsim.Switch
	params Params

	// monitor lists the ingress port indices watched (a leaf only watches
	// its fabric-facing ports; warning hosts is pointless).
	monitor []int

	// originDstLeaf scopes warnings originated here: the leaf index when
	// this switch is a destination leaf, or -1 on spines (port-level PFC
	// pauses every destination equally).
	originDstLeaf int

	qth int
	// warnTime is the remaining-time threshold derived from Qth: a queue
	// predicted to hit the PFC threshold within warnTime triggers a CNM.
	warnTime sim.Time
	prev     []int
	lastWarn []sim.Time

	timer   sim.Timer
	stopped bool

	Stats PredictorStats
}

// OnEvent implements sim.Handler: one Δt sampling tick.
func (p *Predictor) OnEvent(sim.EventArg) {
	if p.stopped {
		return
	}
	p.sample()
	p.arm()
}

// NewPredictor attaches a predictor to sw, watching the given ingress ports.
// linkDelay and the port rate derive the conservative Qth. originDstLeaf
// scopes the CNMs (-1 for spines). The predictor starts sampling immediately.
func NewPredictor(sw *switchsim.Switch, params Params, monitor []int, originDstLeaf int, linkDelay sim.Time) *Predictor {
	params = params.Normalize(linkDelay)
	rate := sw.Port(monitor[0]).Rate
	p := &Predictor{
		sw:            sw,
		params:        params,
		monitor:       monitor,
		originDstLeaf: originDstLeaf,
		qth:           params.Qth(sw.Cfg.PFCThreshold, linkDelay, rate),
		prev:          make([]int, sw.NumPorts()),
		lastWarn:      make([]sim.Time, sw.NumPorts()),
	}
	// The remaining-time threshold follows §3.2.3's line-rate analysis: a
	// queue at Qth growing at line rate C reaches QPFC in (QPFC−Qth)/C.
	// Congestion events aggregate several senders, so the per-ingress
	// growth headroom is divided by a typical fan-in of 4. A high Qth makes
	// this window shorter than the CNM's propagation+reaction time and the
	// warning arrives after PFC has triggered — the Fig. 10(a) failure mode.
	p.warnTime = units.TxTime(sw.Cfg.PFCThreshold-p.qth, rate) / 4
	for i := range p.lastWarn {
		p.lastWarn[i] = -sim.Second
	}
	p.arm()
	return p
}

// QthBytes returns the effective warning threshold.
func (p *Predictor) QthBytes() int { return p.qth }

// Stop halts sampling (call at end of simulation to drain the event queue).
func (p *Predictor) Stop() {
	p.stopped = true
	p.timer.Stop()
}

func (p *Predictor) arm() {
	p.timer = p.sw.Eng.ScheduleAfter(p.params.DeltaT, p, sim.EventArg{})
}

// sample is one Δt tick: differentiate each monitored ingress queue and warn
// upstream when PFC triggering is imminent.
func (p *Predictor) sample() {
	p.Stats.Samples++
	now := p.sw.Eng.Now()
	for _, port := range p.monitor {
		// Under the dynamic-threshold MMU this moves with pool occupancy.
		qPFC := p.sw.PFCThresholdFor(port)
		q := p.sw.IngressBytes(port)
		deriv := q - p.prev[port] // bytes per DeltaT
		p.prev[port] = q
		if q == 0 {
			continue
		}
		// §3.2.1: compute the remaining time until the queue reaches the PFC
		// threshold at its current growth rate; warn when that time drops
		// below the warning-time threshold. The threshold is derived from
		// Qth as T = (QPFC − Qth) / C — i.e. a queue growing at line rate
		// warns exactly when it crosses Qth, and slower growth warns
		// correspondingly closer to QPFC. Low Qth ⇒ large T ⇒ early
		// warnings; high Qth ⇒ late warnings (the Fig. 10(a) trade-off).
		// An already-active pause keeps the warning refreshed for as long
		// as the upstream is being paused.
		warn := predictWarn(q, deriv, qPFC, p.qth, p.params.DeltaT, p.warnTime,
			p.sw.PauseActive(port), p.params.DisableDerivative)
		switch warn {
		case warnStatic:
			p.Stats.Static++
		case warnPredicted:
			p.Stats.Predicted++
		}
		if warn != warnNone && now-p.lastWarn[port] >= p.params.ReWarnInterval {
			p.lastWarn[port] = now
			p.sendCNM(port)
		}
	}
}

// warnCause classifies one sample's warn decision.
type warnCause int

const (
	warnNone      warnCause = iota
	warnStatic              // threshold term: static ablation hit, or active-pause refresh
	warnPredicted           // derivative term: PFC predicted within the warning window
)

// predictWarn is the §3.2.1 per-port warn decision, extracted pure so the
// boundary cases are table-testable: q is the sampled ingress-queue length,
// deriv its growth in bytes per deltaT, qPFC the port's current (dynamic)
// PFC threshold, qth the effective warning threshold, warnTime the
// remaining-time threshold T = (QPFC − Qth)/C scaled for fan-in, paused
// whether the port is already pausing its upstream, and staticOnly the
// DisableDerivative ablation.
func predictWarn(q, deriv, qPFC, qth int, deltaT, warnTime sim.Time, paused, staticOnly bool) warnCause {
	switch {
	case staticOnly:
		// Static ablation: threshold only, growth ignored.
		if q >= qth {
			return warnStatic
		}
	case q < qth:
		// Below the congestion-activation threshold: no prediction.
	case paused:
		return warnStatic
	case deriv > 0:
		// remaining = (qPFC - q)/deriv * Δt  <=  T(qth)
		remaining := int64(qPFC-q) * int64(deltaT) / int64(deriv)
		if remaining <= int64(warnTime) {
			return warnPredicted
		}
	}
	return warnNone
}

// sendCNM emits the PFC warning out of the endangered ingress port, i.e.
// directly to the upstream hop that is feeding the queue.
func (p *Predictor) sendCNM(port int) {
	p.Stats.Warnings++
	if p.sw.Trace != nil {
		p.sw.Trace.Add(trace.Event{At: p.sw.Eng.Now(), Kind: trace.CNMSent,
			Dev: p.sw.ID, Port: port, Aux: p.sw.IngressBytes(port)})
	}
	cnm := p.sw.Pool.Control(fabric.CNM, p.sw.ID, -1)
	cnm.CNMsg = fabric.CNMInfo{
		SwitchID:    p.sw.ID,
		IngressPort: port,
		DstLeaf:     p.originDstLeaf,
		Hops:        0,
	}
	p.sw.SendControl(cnm, port)
}
