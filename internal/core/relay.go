package core

import (
	"github.com/rlb-project/rlb/internal/fabric"
	"github.com/rlb-project/rlb/internal/switchsim"
	"github.com/rlb-project/rlb/internal/trace"
)

// maxCNMHops bounds hop-by-hop warning propagation (leaf-spine needs one
// relay hop: destination leaf -> spine -> source leaves).
const maxCNMHops = 2

// RelayStats counts CNM propagation at one relay switch.
type RelayStats struct {
	Received uint64
	Relayed  uint64
}

// Relay is RLB's hop-by-hop CNM propagation on a transit (spine) switch.
// The paper records source MACs in the flow table and forwards CNMs to them;
// we keep the equivalent recent-upstream set per egress port (see DESIGN.md,
// substitution 3): a CNM arriving on the port toward the congested switch is
// re-sent out of every ingress port that recently fed that egress port.
type Relay struct {
	sw     *switchsim.Switch
	params Params

	Stats RelayStats
}

// NewRelay builds the CNM relay for one transit switch.
func NewRelay(sw *switchsim.Switch, params Params) *Relay {
	return &Relay{sw: sw, params: params.Normalize(0)}
}

// OnControl is installed as the spine switch's control hook.
func (r *Relay) OnControl(pkt *fabric.Packet, inPort int) bool {
	if pkt.Type != fabric.CNM {
		return false
	}
	r.Stats.Received++
	if pkt.CNMsg.Hops+1 >= maxCNMHops {
		return true
	}
	for _, up := range r.sw.RecentUpstreams(inPort, r.params.CNMHorizon) {
		if up == inPort {
			continue
		}
		relayed := r.sw.Pool.Control(fabric.CNM, r.sw.ID, -1)
		relayed.CNMsg = pkt.CNMsg
		relayed.CNMsg.Hops++
		r.sw.SendControl(relayed, up)
		r.Stats.Relayed++
		r.sw.Stats.CNMRelayed++
		if r.sw.Trace != nil {
			r.sw.Trace.Add(trace.Event{At: r.sw.Eng.Now(), Kind: trace.CNMRelayed,
				Dev: r.sw.ID, Port: up, Aux: pkt.CNMsg.DstLeaf})
		}
	}
	return true
}
