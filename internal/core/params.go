// Package core implements RLB, the paper's contribution: a building block
// that makes existing load-balancing schemes reordering-robust in lossless
// (PFC-enabled) datacenter networks.
//
// RLB has two halves (paper §3):
//
//   - The predicting module (Predictor) runs on every switch. Every Δt it
//     differentiates each ingress queue's length; when the queue is rising
//     fast enough to hit the PFC threshold soon — or has already crossed the
//     warning threshold Qth — it sends a CNM "PFC warning" to the upstream
//     hop, before PFC actually fires. Spine switches relay warnings another
//     hop upstream (Relay) so source leaves learn about congestion two hops
//     away.
//
//   - The rerouting module (Agent, an lb.Policy) runs on leaf switches. It
//     asks the underlying load balancer for its optimal path; if that path
//     carries a live PFC warning it applies Algorithm 1: when the suboptimal
//     path is much slower than the optimal one (delay gap > recirculation
//     delay trc), recirculate the packet and decide again; otherwise take
//     the suboptimal path. Either way the packet never enters a path about
//     to be paused, so it cannot arrive after its successors — eliminating
//     the go-back-N retransmission storms PFC otherwise causes.
package core

import (
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/units"
)

// Params holds all RLB tunables. Zero values are replaced by defaults via
// Normalize.
type Params struct {
	// DeltaT is the queue-derivative sampling interval (paper default: the
	// 2 us link delay).
	DeltaT sim.Time

	// QthFraction positions the PFC-warning threshold Qth as a fraction of
	// the PFC threshold (Fig. 10(a) sweeps 20%-80%). The absolute value is
	// clamped into the conservative range of §3.2.3.
	QthFraction float64

	// WarnHorizon is the look-ahead used with the queue derivative: warn
	// when the queue is predicted to reach the PFC threshold within this
	// time. The analysis uses the one-hop delay d (the time the warning
	// needs to take effect upstream).
	WarnHorizon sim.Time

	// WarnExpiry is how long a PFC warning stays live at the upstream
	// switch without being refreshed.
	WarnExpiry sim.Time

	// ReWarnInterval rate-limits CNM generation per ingress port.
	ReWarnInterval sim.Time

	// Trc is the measured delay of one packet recirculation (egress ->
	// ingress pipeline pass).
	Trc sim.Time

	// MaxRecirc bounds recirculations per packet ("recirculation will stop
	// to avoid the endless loop", §3.2.2).
	MaxRecirc int

	// CNMHorizon is how far back "recently forwarded through this egress"
	// reaches when relaying CNMs upstream.
	CNMHorizon sim.Time

	// DisableRecirculation makes Algorithm 1 always reroute (the Fig. 9
	// ablation, "RLB W/O Recir.").
	DisableRecirculation bool

	// DisableDerivative warns on the static threshold only (ablation of the
	// predictor's derivative term).
	DisableDerivative bool

	// DisableOrderGuard lets warned mid-flow packets divert immediately
	// instead of staying behind recently-committed predecessors (ablation:
	// trusts the prediction unconditionally, as the paper's Algorithm 1 is
	// written).
	DisableOrderGuard bool
}

// DefaultParams returns the paper's suggested settings for a fabric with the
// given one-hop link delay.
func DefaultParams(linkDelay sim.Time) Params {
	return Params{
		DeltaT:         2 * sim.Microsecond,
		QthFraction:    0.3,
		WarnHorizon:    linkDelay + 2*sim.Microsecond,
		WarnExpiry:     30 * sim.Microsecond,
		ReWarnInterval: 10 * sim.Microsecond,
		Trc:            1 * sim.Microsecond,
		MaxRecirc:      8,
		CNMHorizon:     50 * sim.Microsecond,
	}
}

// Normalize fills zero fields with defaults.
func (p Params) Normalize(linkDelay sim.Time) Params {
	d := DefaultParams(linkDelay)
	if p.DeltaT <= 0 {
		p.DeltaT = d.DeltaT
	}
	if p.QthFraction <= 0 {
		p.QthFraction = d.QthFraction
	}
	if p.WarnHorizon <= 0 {
		p.WarnHorizon = d.WarnHorizon
	}
	if p.WarnExpiry <= 0 {
		p.WarnExpiry = d.WarnExpiry
	}
	if p.ReWarnInterval <= 0 {
		p.ReWarnInterval = d.ReWarnInterval
	}
	if p.Trc <= 0 {
		p.Trc = d.Trc
	}
	if p.MaxRecirc <= 0 {
		p.MaxRecirc = d.MaxRecirc
	}
	if p.CNMHorizon <= 0 {
		p.CNMHorizon = d.CNMHorizon
	}
	return p
}

// WarningThresholdRange returns the conservative [lo, hi) range for the PFC
// warning threshold Qth derived in §3.2.3: [⌊d·C⌋, ⌊QPFC − d·C·(n−1)⌋), where
// d is the link delay, C the link capacity, QPFC the PFC threshold, and n the
// incast fan-in the analysis assumes.
func WarningThresholdRange(d sim.Time, c units.Bandwidth, qPFC int, n int) (lo, hi int) {
	dc := units.BytesIn(c, d)
	lo = dc
	hi = qPFC - dc*(n-1)
	return lo, hi
}

// Qth computes the effective warning threshold for a switch: QthFraction of
// the PFC threshold, clamped into the conservative range for n = 2.
func (p Params) Qth(qPFC int, linkDelay sim.Time, c units.Bandwidth) int {
	lo, hi := WarningThresholdRange(linkDelay, c, qPFC, 2)
	q := int(p.QthFraction * float64(qPFC))
	if q < lo {
		q = lo
	}
	if hi > lo && q >= hi {
		q = hi - 1
	}
	return q
}
