package core

import (
	"testing"

	"github.com/rlb-project/rlb/internal/fabric"
	"github.com/rlb-project/rlb/internal/flatmap"
	"github.com/rlb-project/rlb/internal/lb"
	"github.com/rlb-project/rlb/internal/rng"
	"github.com/rlb-project/rlb/internal/sim"
)

// fakeView is a scriptable lb.View.
type fakeView struct {
	n      int
	queues []int
	delays []sim.Time
	now    sim.Time
	rng    *rng.Source
}

func newFakeView(n int) *fakeView {
	return &fakeView{n: n, queues: make([]int, n), delays: make([]sim.Time, n), rng: rng.New(1)}
}

func (f *fakeView) NumPaths() int                              { return f.n }
func (f *fakeView) QueueBytes(i int) int                       { return f.queues[i] }
func (f *fakeView) PathDelay(i int, _ *fabric.Packet) sim.Time { return f.delays[i] }
func (f *fakeView) Now() sim.Time                              { return f.now }
func (f *fakeView) Rng() *rng.Source                           { return f.rng }

// rankedChooser prefers paths in a fixed order, honoring exclusion — a
// deterministic stand-in for any base LB scheme.
type rankedChooser struct{ order []int }

func (r rankedChooser) Name() string { return "ranked" }
func (r rankedChooser) Choose(v lb.View, pkt *fabric.Packet, exclude lb.PathSet) int {
	for _, p := range r.order {
		if !exclude.Has(p) {
			return p
		}
	}
	return r.order[0]
}

func testAgent(n int) *Agent {
	return NewAgent(rankedChooser{order: seq(n)}, Params{}, 0, n,
		func(hostID int) int { return hostID / 10 }, 2*sim.Microsecond)
}

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

// pkt builds a data packet; distinct destinations get distinct flow ids
// (flow state in the agent is per-flow, and a real flow has one destination).
func pkt(dst int) *fabric.Packet { return fabric.NewData(uint32(dst), 0, 1000, 0, dst) }

// The Qth range and clamping spot checks formerly here grew into the
// table-driven boundary suite in qth_table_test.go.

func TestNormalizeFillsDefaults(t *testing.T) {
	p := Params{}.Normalize(2 * sim.Microsecond)
	if p.DeltaT != 2*sim.Microsecond || p.MaxRecirc != 8 || p.Trc != sim.Microsecond {
		t.Fatalf("defaults wrong: %+v", p)
	}
	// Explicit values survive.
	p2 := Params{DeltaT: 5 * sim.Microsecond}.Normalize(2 * sim.Microsecond)
	if p2.DeltaT != 5*sim.Microsecond {
		t.Fatal("explicit DeltaT overwritten")
	}
}

func TestPickNoWarningUsesOptimal(t *testing.T) {
	a := testAgent(4)
	v := newFakeView(4)
	d := a.Pick(v, pkt(5))
	if d.Recirculate || d.Uplink != 0 {
		t.Fatalf("decision = %+v, want optimal path 0", d)
	}
	if a.Stats.PicksWarned != 0 {
		t.Fatal("spurious warned pick")
	}
}

func warn(a *Agent, uplink, dstLeaf int, now sim.Time) {
	a.warned[uplink].SetGrow(dstLeaf+1, now+a.Params.WarnExpiry)
}

func TestPickWarnedSmallGapReroutes(t *testing.T) {
	a := testAgent(4)
	v := newFakeView(4)
	// Path 0 warned; path 1 has nearly equal delay -> take suboptimal.
	warn(a, 0, -1, v.now)
	v.delays = []sim.Time{10 * sim.Microsecond, 10*sim.Microsecond + 100*sim.Nanosecond, 50 * sim.Microsecond, 50 * sim.Microsecond}
	d := a.Pick(v, pkt(5))
	if d.Recirculate || d.Uplink != 1 {
		t.Fatalf("decision = %+v, want reroute to 1", d)
	}
	if a.Stats.Reroutes != 1 {
		t.Fatalf("Reroutes = %d", a.Stats.Reroutes)
	}
}

func TestPickWarnedLargeGapRecirculates(t *testing.T) {
	a := testAgent(4)
	v := newFakeView(4)
	// Path 0 warned but far faster than the alternative: wait on the switch.
	warn(a, 0, -1, v.now)
	v.delays = []sim.Time{5 * sim.Microsecond, 50 * sim.Microsecond, 60 * sim.Microsecond, 70 * sim.Microsecond}
	d := a.Pick(v, pkt(5))
	if !d.Recirculate {
		t.Fatalf("decision = %+v, want recirculation", d)
	}
	if a.Stats.Recircs != 1 {
		t.Fatalf("Recircs = %d", a.Stats.Recircs)
	}
}

func TestPickRecircBudgetExhaustedReroutes(t *testing.T) {
	a := testAgent(4)
	v := newFakeView(4)
	warn(a, 0, -1, v.now)
	// Gap (20us) is below the blocking estimate (WarnExpiry), so the detour
	// is still worthwhile once waiting is off the table.
	v.delays = []sim.Time{5 * sim.Microsecond, 25 * sim.Microsecond, 60 * sim.Microsecond, 70 * sim.Microsecond}
	p := pkt(5)
	p.Recirc = a.Params.MaxRecirc // budget used up
	d := a.Pick(v, p)
	if d.Recirculate {
		t.Fatal("recirculated past MaxRecirc")
	}
	if d.Uplink != 1 {
		t.Fatalf("fell back to %d, want suboptimal 1", d.Uplink)
	}
}

func TestPickStaysWhenDetourCostsMoreThanBlocking(t *testing.T) {
	a := testAgent(4)
	a.Params.DisableRecirculation = true
	v := newFakeView(4)
	warn(a, 0, -1, v.now)
	// Every alternative is slower than the expected blocking time: ride out
	// the warning on the optimal path.
	v.delays = []sim.Time{5 * sim.Microsecond, 500 * sim.Microsecond, 600 * sim.Microsecond, 700 * sim.Microsecond}
	d := a.Pick(v, pkt(5))
	if d.Recirculate || d.Uplink != 0 {
		t.Fatalf("decision = %+v, want stay on 0", d)
	}
	if a.Stats.StayCheaper != 1 {
		t.Fatalf("StayCheaper = %d", a.Stats.StayCheaper)
	}
}

func TestPickDisableRecirculation(t *testing.T) {
	a := testAgent(4)
	a.Params.DisableRecirculation = true
	v := newFakeView(4)
	warn(a, 0, -1, v.now)
	v.delays = []sim.Time{5 * sim.Microsecond, 15 * sim.Microsecond, 600 * sim.Microsecond, 700 * sim.Microsecond}
	d := a.Pick(v, pkt(5))
	if d.Recirculate {
		t.Fatal("recirculated despite ablation flag")
	}
	if d.Uplink != 1 {
		t.Fatalf("Uplink = %d, want 1", d.Uplink)
	}
}

func TestPickChainsPastMultipleWarnedPaths(t *testing.T) {
	a := testAgent(4)
	v := newFakeView(4)
	// Paths 0,1,2 warned, equal delays -> land on 3.
	warn(a, 0, -1, v.now)
	warn(a, 1, -1, v.now)
	warn(a, 2, -1, v.now)
	d := a.Pick(v, pkt(5))
	if d.Recirculate || d.Uplink != 3 {
		t.Fatalf("decision = %+v, want path 3", d)
	}
}

func TestPickAllWarnedFallsBack(t *testing.T) {
	a := testAgent(4)
	v := newFakeView(4)
	for i := 0; i < 4; i++ {
		warn(a, i, -1, v.now)
	}
	d := a.Pick(v, pkt(5))
	if d.Recirculate {
		t.Fatal("recirculated with every path warned")
	}
	if a.Stats.Fallbacks != 1 {
		t.Fatalf("Fallbacks = %d", a.Stats.Fallbacks)
	}
}

func TestWarningExpiry(t *testing.T) {
	a := testAgent(4)
	v := newFakeView(4)
	warn(a, 0, -1, v.now)
	v.now += a.Params.WarnExpiry + sim.Nanosecond
	d := a.Pick(v, pkt(5))
	if d.Uplink != 0 {
		t.Fatalf("expired warning still honored: %+v", d)
	}
}

func TestWarningDstLeafScoping(t *testing.T) {
	a := testAgent(4)
	v := newFakeView(4)
	// Warning scoped to destination leaf 2 (hosts 20-29).
	warn(a, 0, 2, v.now)
	if d := a.Pick(v, pkt(25)); d.Uplink == 0 && !d.Recirculate {
		t.Fatal("scoped warning ignored for matching leaf")
	}
	if d := a.Pick(v, pkt(35)); d.Uplink != 0 {
		t.Fatalf("warning for leaf 2 affected leaf 3 traffic: %+v", d)
	}
}

func TestWildcardWarningMatchesAllLeaves(t *testing.T) {
	a := testAgent(4)
	v := newFakeView(4)
	warn(a, 0, -1, v.now)
	if d := a.Pick(v, pkt(25)); d.Uplink == 0 && !d.Recirculate {
		t.Fatal("wildcard warning ignored")
	}
	if d := a.Pick(v, pkt(35)); d.Uplink == 0 && !d.Recirculate {
		t.Fatal("wildcard warning ignored for other leaf")
	}
}

func TestWarnedExpiresByComparison(t *testing.T) {
	a := testAgent(2)
	warn(a, 0, 3, 0)
	if !a.Warned(0, 3, sim.Microsecond) {
		t.Fatal("live warning not reported")
	}
	if a.Warned(0, 3, sim.Second) {
		t.Fatal("expired warning reported")
	}
	// Expiry is a comparison against the stamp, not a deletion: the slot
	// keeps its stamp and simply stops matching, and re-warning revives it.
	if a.warned[0].Get(4) == sim.Time(flatmap.Never) {
		t.Fatal("expired stamp was cleared; aging should be compare-only")
	}
	warn(a, 0, 3, 2*sim.Second)
	if !a.Warned(0, 3, 2*sim.Second+sim.Microsecond) {
		t.Fatal("re-warned slot not live again")
	}
}
