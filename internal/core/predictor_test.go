package core

import (
	"testing"

	"github.com/rlb-project/rlb/internal/fabric"
	"github.com/rlb-project/rlb/internal/rng"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/switchsim"
	"github.com/rlb-project/rlb/internal/units"
)

// recorder is an upstream endpoint that records CNM and PAUSE arrivals.
type recorder struct {
	eng     *sim.Engine
	id      int
	port    *fabric.Port
	cnmAt   []sim.Time
	pauseAt []sim.Time
	dataGot int
}

func newRecorder(eng *sim.Engine, id int) *recorder {
	r := &recorder{eng: eng, id: id}
	r.port = &fabric.Port{Eng: eng, Owner: r, Index: 0}
	return r
}

func (r *recorder) DevID() int { return r.id }

func (r *recorder) Receive(pkt *fabric.Packet, in *fabric.Port) {
	switch pkt.Type {
	case fabric.CNM:
		r.cnmAt = append(r.cnmAt, r.eng.Now())
	case fabric.Pause:
		r.pauseAt = append(r.pauseAt, r.eng.Now())
		in.SetPaused(pkt.Pause.Prio, true, pkt.Pause.Dur)
	case fabric.Resume:
		in.SetPaused(pkt.Pause.Prio, false, 0)
	default:
		r.dataGot++
	}
}

type predRig struct {
	eng  *sim.Engine
	sw   *switchsim.Switch
	up   *recorder // upstream (sender side)
	down *recorder // downstream (slow sink)
	pred *Predictor
}

// newPredRig builds up --40G--> sw --slow--> down with a predictor on sw
// watching ingress port 0.
func newPredRig(cfg switchsim.Config, params Params, slow units.Bandwidth) *predRig {
	eng := sim.NewEngine()
	sw := switchsim.New(eng, 100, 2, cfg, rng.New(3))
	up := newRecorder(eng, 0)
	down := newRecorder(eng, 1)
	fabric.Connect(up.port, sw.Port(0), 40*units.Gbps, 2*sim.Microsecond)
	fabric.Connect(down.port, sw.Port(1), slow, 2*sim.Microsecond)
	sw.SetRouter(switchsim.RouterFunc(func(_ *switchsim.Switch, pkt *fabric.Packet, _ int) switchsim.Decision {
		return switchsim.Decision{Out: 1}
	}))
	pred := NewPredictor(sw, params, []int{0}, -1, 2*sim.Microsecond)
	return &predRig{eng: eng, sw: sw, up: up, down: down, pred: pred}
}

func (r *predRig) flood(n int) {
	for i := 0; i < n; i++ {
		r.up.port.Enqueue(fabric.NewData(1, uint32(i), 1000, 0, 1))
	}
}

func TestPredictorWarnsBeforePFC(t *testing.T) {
	cfg := switchsim.DefaultConfig()
	cfg.PFCThreshold = 100 * 1000
	r := newPredRig(cfg, Params{}, 4*units.Gbps)
	r.flood(300) // 300 KB burst into a 10x slower egress
	r.eng.RunUntil(5 * sim.Millisecond)
	r.pred.Stop()
	if len(r.up.cnmAt) == 0 {
		t.Fatal("predictor never warned")
	}
	if len(r.up.pauseAt) == 0 {
		t.Fatal("scenario too gentle: PFC never triggered")
	}
	if r.up.cnmAt[0] >= r.up.pauseAt[0] {
		t.Fatalf("warning at %v not before PAUSE at %v", r.up.cnmAt[0], r.up.pauseAt[0])
	}
}

func TestPredictorQuietWhenUncongested(t *testing.T) {
	cfg := switchsim.DefaultConfig()
	r := newPredRig(cfg, Params{}, 40*units.Gbps) // egress as fast as ingress
	r.flood(100)
	r.eng.RunUntil(sim.Millisecond)
	r.pred.Stop()
	if len(r.up.cnmAt) != 0 {
		t.Fatalf("%d spurious warnings on an uncongested path", len(r.up.cnmAt))
	}
}

func TestPredictorDerivativeFiresBeforeStaticThreshold(t *testing.T) {
	cfg := switchsim.DefaultConfig()
	cfg.PFCThreshold = 120 * 1000
	// Static threshold very late, long look-ahead: the derivative term must
	// be what fires.
	params := Params{QthFraction: 0.8, WarnHorizon: 12 * sim.Microsecond}
	r := newPredRig(cfg, params, 2*units.Gbps)
	r.flood(200)
	r.eng.RunUntil(2 * sim.Millisecond)
	r.pred.Stop()
	if r.pred.Stats.Predicted == 0 {
		t.Fatalf("derivative term never fired: %+v", r.pred.Stats)
	}
}

func TestPredictorStaticOnlyAblation(t *testing.T) {
	cfg := switchsim.DefaultConfig()
	cfg.PFCThreshold = 100 * 1000
	params := Params{DisableDerivative: true}
	r := newPredRig(cfg, params, 4*units.Gbps)
	r.flood(300)
	r.eng.RunUntil(5 * sim.Millisecond)
	r.pred.Stop()
	if r.pred.Stats.Predicted != 0 {
		t.Fatal("derivative fired despite ablation")
	}
	if r.pred.Stats.Static == 0 {
		t.Fatal("static threshold never fired")
	}
}

func TestPredictorRateLimitsCNMs(t *testing.T) {
	cfg := switchsim.DefaultConfig()
	cfg.PFCThreshold = 50 * 1000
	params := Params{ReWarnInterval: 20 * sim.Microsecond}
	r := newPredRig(cfg, params, units.Gbps)
	r.flood(500)
	horizon := 2 * sim.Millisecond
	r.eng.RunUntil(horizon)
	r.pred.Stop()
	maxCNMs := uint64(horizon/params.ReWarnInterval) + 2
	if r.pred.Stats.Warnings > maxCNMs {
		t.Fatalf("warnings = %d exceed rate limit %d", r.pred.Stats.Warnings, maxCNMs)
	}
	if r.pred.Stats.Warnings < 2 {
		t.Fatal("persistent congestion should refresh warnings")
	}
}

func TestPredictorStopDrainsEventQueue(t *testing.T) {
	cfg := switchsim.DefaultConfig()
	r := newPredRig(cfg, Params{}, 40*units.Gbps)
	r.eng.RunUntil(20 * sim.Microsecond)
	r.pred.Stop()
	r.eng.Run() // must terminate: no self-rearming timers left
	if r.eng.Pending() != 0 {
		t.Fatalf("%d events still pending after Stop", r.eng.Pending())
	}
}

func TestPredictorQthExposed(t *testing.T) {
	cfg := switchsim.DefaultConfig()
	r := newPredRig(cfg, Params{QthFraction: 0.5}, 40*units.Gbps)
	defer r.pred.Stop()
	if r.pred.QthBytes() != 128*1000 {
		t.Fatalf("Qth = %d, want 128000", r.pred.QthBytes())
	}
}

func TestRelayPropagatesUpstream(t *testing.T) {
	// up0, up1 --> spine --> downLeaf. Data from both ups flows to down;
	// then a CNM from downLeaf must be relayed to both ups.
	eng := sim.NewEngine()
	cfg := switchsim.DefaultConfig()
	spine := switchsim.New(eng, 200, 3, cfg, rng.New(4))
	up0, up1, down := newRecorder(eng, 0), newRecorder(eng, 1), newRecorder(eng, 2)
	fabric.Connect(up0.port, spine.Port(0), 40*units.Gbps, sim.Microsecond)
	fabric.Connect(up1.port, spine.Port(1), 40*units.Gbps, sim.Microsecond)
	fabric.Connect(down.port, spine.Port(2), 40*units.Gbps, sim.Microsecond)
	spine.SetRouter(switchsim.RouterFunc(func(_ *switchsim.Switch, pkt *fabric.Packet, _ int) switchsim.Decision {
		return switchsim.Decision{Out: 2}
	}))
	relay := NewRelay(spine, Params{})
	spine.OnControl = relay.OnControl

	up0.port.Enqueue(fabric.NewData(1, 0, 1000, 0, 2))
	up1.port.Enqueue(fabric.NewData(2, 0, 1000, 1, 2))
	eng.RunUntil(20 * sim.Microsecond)

	cnm := fabric.NewControl(fabric.CNM, 2, -1)
	cnm.CNMsg = fabric.CNMInfo{SwitchID: 2, IngressPort: 0, DstLeaf: 7}
	down.port.Enqueue(cnm)
	eng.Run()

	if len(up0.cnmAt) != 1 || len(up1.cnmAt) != 1 {
		t.Fatalf("relay reached %d/%d upstreams, want 1/1", len(up0.cnmAt), len(up1.cnmAt))
	}
	if relay.Stats.Received != 1 || relay.Stats.Relayed != 2 {
		t.Fatalf("relay stats = %+v", relay.Stats)
	}
}

func TestRelayHopLimit(t *testing.T) {
	eng := sim.NewEngine()
	cfg := switchsim.DefaultConfig()
	spine := switchsim.New(eng, 200, 2, cfg, rng.New(5))
	up, down := newRecorder(eng, 0), newRecorder(eng, 1)
	fabric.Connect(up.port, spine.Port(0), 40*units.Gbps, sim.Microsecond)
	fabric.Connect(down.port, spine.Port(1), 40*units.Gbps, sim.Microsecond)
	spine.SetRouter(switchsim.RouterFunc(func(_ *switchsim.Switch, pkt *fabric.Packet, _ int) switchsim.Decision {
		return switchsim.Decision{Out: 1}
	}))
	relay := NewRelay(spine, Params{})
	spine.OnControl = relay.OnControl
	up.port.Enqueue(fabric.NewData(1, 0, 1000, 0, 1))
	eng.RunUntil(20 * sim.Microsecond)

	cnm := fabric.NewControl(fabric.CNM, 1, -1)
	cnm.CNMsg = fabric.CNMInfo{SwitchID: 1, IngressPort: 0, Hops: maxCNMHops - 1}
	down.port.Enqueue(cnm)
	eng.Run()
	if len(up.cnmAt) != 0 {
		t.Fatal("hop limit not enforced")
	}
}
