package core

import (
	"github.com/rlb-project/rlb/internal/fabric"
	"github.com/rlb-project/rlb/internal/flatmap"
	"github.com/rlb-project/rlb/internal/lb"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/switchsim"
	"github.com/rlb-project/rlb/internal/trace"
)

// AgentStats counts rerouting-module activity at one leaf switch.
type AgentStats struct {
	WarningsRcvd uint64 // CNMs accepted from the fabric
	PicksTotal   uint64
	PicksWarned  uint64 // picks whose optimal path carried a live warning
	Reroutes     uint64 // packets moved to a suboptimal path
	Recircs      uint64 // recirculation decisions
	Fallbacks    uint64 // all paths warned; optimal used anyway
	OrderStays   uint64 // warned picks kept in place to preserve flow order
	OrderRecircs uint64 // recirculations forced to stay behind a waiting flow-mate
	DivertSticky uint64 // packets that followed an active diversion
	StayCheaper  uint64 // warned picks kept because every detour cost more
}

// flowMem remembers where a flow's previous packet went, so the agent never
// diverts a packet ahead of predecessors that are already committed to the
// warned path — doing so would cause exactly the overtaking RLB exists to
// prevent (§3.2.2: packets must not "arrive at the receiver later than the
// subsequent packets in the same flow").
type flowMem struct {
	path int
	at   sim.Time
	// noRecircUntil suppresses further recirculation for this flow after a
	// packet exhausted its recirculation budget without the warning
	// clearing: the congestion is not transient, so waiting is wasted
	// pipeline bandwidth (the paper's "avoid the endless loop" rule, made
	// sticky per flow).
	noRecircUntil sim.Time
	// waitUntil is the exit time of this flow's latest recirculating
	// packet. Until then, later packets of the flow must also recirculate —
	// otherwise they would overtake the waiting packet inside the switch.
	waitUntil sim.Time
	// divert pins the flow to divertTo for as long as the base scheme keeps
	// proposing divertFrom. Without this, a warning expiring mid-flowcell
	// would flap the flow back to the base path, reordering against the
	// packets already diverted (stateless bases like Presto cannot follow
	// the diversion on their own).
	divert     bool
	divertFrom int
	divertTo   int
}

// Agent is RLB's rerouting module (§3.2.2) on one leaf switch: it tracks PFC
// warnings per (uplink, destination leaf) and applies Algorithm 1 on top of
// any base load balancer.
type Agent struct {
	Base   lb.Chooser
	Params Params

	// UplinkPortBase is the first fabric-facing port index on the leaf
	// switch (host ports come first); uplink i is port UplinkPortBase+i.
	UplinkPortBase int
	// NumUplinks is the equal-cost path count.
	NumUplinks int
	// DstLeafOf maps a destination host id to its leaf index.
	DstLeafOf func(hostID int) int

	// warned[uplink] holds warning expiry stamps in a dense row: slot 0 is
	// the "any destination" wildcard (the old -1 key), slot d+1 is leaf d.
	// A warning is live iff now < its stamp, so expiry is a compare and no
	// entry is ever deleted (see internal/flatmap). Rows grow lazily to the
	// highest leaf seen — the agent does not know the leaf count up front.
	warned []flatmap.Stamps[sim.Time]

	// faults[uplink] marks link-state faults from the fault plane in the
	// same slot scheme (slot 0 = the whole uplink is dead). A faulted slot
	// is stamped 0; restoring the link clears it back to Never. Unlike CNM
	// warnings, faults do not expire.
	faults []flatmap.Stamps[sim.Time]

	// mem tracks each flow's previous uplink for the order guard, in a flat
	// open-addressed table probed on every pick.
	mem flatmap.U32[flowMem]

	Stats AgentStats
}

// NewAgent builds the rerouting module for one leaf switch.
func NewAgent(base lb.Chooser, params Params, uplinkPortBase, numUplinks int, dstLeafOf func(int) int, linkDelay sim.Time) *Agent {
	a := &Agent{
		Base:           base,
		Params:         params.Normalize(linkDelay),
		UplinkPortBase: uplinkPortBase,
		NumUplinks:     numUplinks,
		DstLeafOf:      dstLeafOf,
		warned:         make([]flatmap.Stamps[sim.Time], numUplinks),
		faults:         make([]flatmap.Stamps[sim.Time], numUplinks),
	}
	return a
}

// SetLinkFault records link-state from the fault plane: uplink i is dead
// toward dstLeaf (-1 = dead entirely) until cleared with down=false. Faulted
// paths behave like permanently warned ones, except the order guard does not
// hold flows on them — predecessors committed to a dead path are stalled or
// lost, so staying put can only blackhole more packets.
func (a *Agent) SetLinkFault(uplink, dstLeaf int, down bool) {
	if uplink < 0 || uplink >= a.NumUplinks {
		return
	}
	if down {
		a.faults[uplink].SetGrow(dstLeaf+1, 0)
	} else {
		a.faults[uplink].Clear(dstLeaf + 1)
	}
}

// Faulted reports whether uplink i is dead toward dstLeaf per the fault
// plane's link-state notifications.
func (a *Agent) Faulted(uplink, dstLeaf int) bool {
	f := &a.faults[uplink]
	return f.AtLeast(0, 0) || f.AtLeast(dstLeaf+1, 0)
}

// OnControl is installed as the leaf switch's control hook: it absorbs CNMs
// arriving on uplink ports and records the warning.
func (a *Agent) OnControl(sw *switchsim.Switch, pkt *fabric.Packet, inPort int) bool {
	if pkt.Type != fabric.CNM {
		return false
	}
	uplink := inPort - a.UplinkPortBase
	if uplink < 0 || uplink >= a.NumUplinks {
		return true // CNM from a host-facing port: ignore
	}
	a.Stats.WarningsRcvd++
	a.warned[uplink].SetGrow(pkt.CNMsg.DstLeaf+1, sw.Eng.Now()+a.Params.WarnExpiry)
	if sw.Trace != nil {
		sw.Trace.Add(trace.Event{At: sw.Eng.Now(), Kind: trace.WarningSet,
			Dev: sw.ID, Port: uplink, Aux: pkt.CNMsg.DstLeaf})
	}
	return true
}

// Warned reports whether uplink i currently has a live PFC warning for the
// given destination leaf (warnings with DstLeaf -1 match every destination).
// Link faults count as warnings: a dead path is the limit case of a paused
// one.
func (a *Agent) Warned(uplink, dstLeaf int, now sim.Time) bool {
	if a.Faulted(uplink, dstLeaf) {
		return true
	}
	w := &a.warned[uplink]
	return now < w.Get(0) || now < w.Get(dstLeaf+1)
}

// Pick implements lb.Policy with Algorithm 1 ("Rerouting without Packet
// Reordering"): start from the base scheme's optimal path; while it carries a
// PFC warning, either recirculate (when the suboptimal path is slower by more
// than the recirculation delay trc) or adopt the suboptimal path and retry.
//
// One order guard refines the algorithm: if the flow's previous packet
// recently took the now-warned path, its predecessors are already queued (or
// blocked) there, and moving this packet elsewhere would overtake them —
// exactly the reordering RLB exists to prevent. Such packets stay put;
// Algorithm 1 applies at rerouting opportunities (new flows, flowlet/cell
// boundaries, per-packet schemes that moved anyway, or once the path has had
// time to drain).
func (a *Agent) Pick(v lb.View, pkt *fabric.Packet) lb.Decision {
	a.Stats.PicksTotal++
	now := v.Now()
	// Wait chain: a flow-mate is still inside the recirculation loop; going
	// straight to an egress queue now would overtake it.
	// Forced waits all share the same pipeline delay, so they stay FIFO
	// among themselves and need not extend the wait window.
	if m, _ := a.mem.Get(pkt.FlowID); now < m.waitUntil && !a.Params.DisableRecirculation && pkt.Recirc < a.Params.MaxRecirc {
		a.Stats.OrderRecircs++
		return lb.Decision{Recirculate: true}
	}
	dstLeaf := a.DstLeafOf(pkt.DstID)
	var exclude lb.PathSet
	p := a.Base.Choose(v, pkt, exclude) // line 2: initial optimal path

	// Follow or retire an active diversion. It retires when the base scheme
	// moves the flow on its own (new flowcell/flowlet), or when the warning
	// cleared and the diverted in-flight packets have had time to deliver —
	// switching back earlier would overtake them.
	if m := a.mem.Ptr(pkt.FlowID); m != nil && m.divert {
		switch {
		case p != m.divertFrom:
			m.divert = false
		case a.Faulted(m.divertTo, dstLeaf):
			// The diverted-to path itself died; re-run Algorithm 1.
			m.divert = false
		case !a.Warned(p, a.DstLeafOf(pkt.DstID), now) && now-m.at > v.PathDelay(m.divertTo, pkt):
			m.divert = false
		default:
			a.Stats.DivertSticky++
			// remember may rehash the table and invalidate m; copy first.
			to := m.divertTo
			a.remember(pkt.FlowID, to, now)
			return a.commit(pkt, to)
		}
	}

	if !a.Warned(p, dstLeaf, now) { // line 3 fast path
		a.remember(pkt.FlowID, p, now)
		return a.commit(pkt, p) // line 10
	}
	a.Stats.PicksWarned++

	// Order guard: predecessors committed to p and possibly still in flight.
	// It does not apply to faulted paths: predecessors there are stalled or
	// lost on the wire, and staying would only feed the blackhole.
	if mem := a.mem.Ptr(pkt.FlowID); mem != nil && !a.Params.DisableOrderGuard &&
		!a.Faulted(p, dstLeaf) &&
		mem.path == p && now-mem.at <= v.PathDelay(p, pkt) {
		a.Stats.OrderStays++
		a.remember(pkt.FlowID, p, now)
		return a.commit(pkt, p)
	}

	// Recirculating means waiting for the *initial optimal* path to clear
	// its warning. That only pays when the flow is invested in that path
	// (its packets have been using it) or the flow is brand new; when the
	// base scheme is moving the flow anyway (Presto cell / LetFlow flowlet
	// boundaries, DRILL's per-packet churn), a detour costs nothing extra
	// and waiting would only burn pipeline passes.
	mem, hasMem := a.mem.Get(pkt.FlowID)
	recircOK := !a.Params.DisableRecirculation && now >= mem.noRecircUntil &&
		(!hasMem || mem.path == p || pkt.Recirc > 0)
	if pkt.Recirc >= a.Params.MaxRecirc {
		// Budget exhausted without the warning clearing: not a transient.
		recircOK = false
		a.mem.Upsert(pkt.FlowID).noRecircUntil = now + a.Params.WarnExpiry
	}
	initial := p
	for iter := 0; iter < a.NumUplinks; iter++ {
		if !a.Warned(p, dstLeaf, now) {
			a.Stats.Reroutes++
			a.divertTo(pkt.FlowID, initial, p, now)
			return a.commit(pkt, p) // line 10
		}
		exclude = exclude.With(p)
		if exclude.Count() >= a.NumUplinks {
			break // every path warned
		}
		ps := a.Base.Choose(v, pkt, exclude) // line 4: suboptimal path
		if ps == p || exclude.Has(ps) {
			break
		}
		// Line 5: is waiting on this switch cheaper than the detour? The
		// paper compares the delay gap against one recirculation pass (trc);
		// since a warning usually outlives a single pass, we charge the
		// whole remaining wait budget, which avoids paying MaxRecirc passes
		// only to take the detour anyway (see DESIGN.md).
		gap := v.PathDelay(ps, pkt) - v.PathDelay(p, pkt)
		wait := a.Params.Trc * sim.Time(a.Params.MaxRecirc-pkt.Recirc)
		if recircOK && pkt.Recirc < a.Params.MaxRecirc && gap > wait {
			a.Stats.Recircs++
			a.recircNoted(pkt.FlowID, now)
			return lb.Decision{Recirculate: true} // line 6
		}
		if gap > sim.Time(a.Params.WarnExpiry) {
			// The detour costs more than the blocking the warning predicts
			// (e.g. the only alternative is a degraded link): ride it out.
			a.Stats.StayCheaper++
			a.remember(pkt.FlowID, p, now)
			return a.commit(pkt, p)
		}
		p = ps // line 8: adopt the suboptimal path, re-check its warning
	}
	a.Stats.Fallbacks++
	a.divertTo(pkt.FlowID, initial, p, now)
	return a.commit(pkt, p)
}

// commit finalizes a forwarding decision, informing stateful base schemes
// (lb.Committer) where the packet actually went.
func (a *Agent) commit(pkt *fabric.Packet, path int) lb.Decision {
	if c, ok := a.Base.(lb.Committer); ok {
		c.Commit(pkt, path)
	}
	return lb.Decision{Uplink: path}
}

func (a *Agent) remember(flow uint32, path int, now sim.Time) {
	m := a.mem.Upsert(flow)
	m.path, m.at = path, now
}

// recircNoted records that a packet of flow is in the recirculation loop
// until now+Trc, so later flow-mates know to wait behind it.
func (a *Agent) recircNoted(flow uint32, now sim.Time) {
	m := a.mem.Upsert(flow)
	if exit := now + a.Params.Trc; exit > m.waitUntil {
		m.waitUntil = exit
	}
}

// divertTo records the Algorithm 1 outcome; if it moved the flow off the
// base scheme's choice, the diversion is pinned until the base moves on.
func (a *Agent) divertTo(flow uint32, from, to int, now sim.Time) {
	m := a.mem.Upsert(flow)
	m.path, m.at = to, now
	if from != to {
		m.divert, m.divertFrom, m.divertTo = true, from, to
	}
}

var _ lb.Policy = (*Agent)(nil)
