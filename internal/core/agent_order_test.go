package core

import (
	"testing"

	"github.com/rlb-project/rlb/internal/fabric"
	"github.com/rlb-project/rlb/internal/lb"
	"github.com/rlb-project/rlb/internal/sim"
)

// flowPkt builds a packet of an ongoing flow.
func flowPkt(flow uint32, seq uint32, dst int) *fabric.Packet {
	return fabric.NewData(flow, seq, 1000, 0, dst)
}

func TestOrderGuardKeepsActiveFlowInPlace(t *testing.T) {
	a := testAgent(4)
	v := newFakeView(4)
	v.delays = []sim.Time{20 * sim.Microsecond, 21 * sim.Microsecond, 22 * sim.Microsecond, 23 * sim.Microsecond}
	// Establish the flow on path 0.
	if d := a.Pick(v, flowPkt(1, 0, 5)); d.Uplink != 0 {
		t.Fatalf("setup: flow not on path 0: %+v", d)
	}
	// Warning appears; next packet follows 1us later — predecessors are
	// still in flight, so the packet must stay on path 0.
	warn(a, 0, -1, v.now)
	v.now += sim.Microsecond
	d := a.Pick(v, flowPkt(1, 1, 5))
	if d.Recirculate || d.Uplink != 0 {
		t.Fatalf("order guard violated: %+v", d)
	}
	if a.Stats.OrderStays != 1 {
		t.Fatalf("OrderStays = %d", a.Stats.OrderStays)
	}
}

func TestOrderGuardExpiresAfterPathDelay(t *testing.T) {
	a := testAgent(4)
	v := newFakeView(4)
	v.delays = []sim.Time{5 * sim.Microsecond, 6 * sim.Microsecond, 7 * sim.Microsecond, 8 * sim.Microsecond}
	a.Pick(v, flowPkt(1, 0, 5))
	// Well past the path delay: predecessors delivered; divert is safe.
	v.now += 50 * sim.Microsecond
	warn(a, 0, -1, v.now)
	d := a.Pick(v, flowPkt(1, 1, 5))
	if !d.Recirculate && d.Uplink == 0 {
		t.Fatalf("stale flow still guarded: %+v", d)
	}
}

func TestOrderGuardAblation(t *testing.T) {
	a := testAgent(4)
	a.Params.DisableOrderGuard = true
	v := newFakeView(4)
	v.delays = []sim.Time{5 * sim.Microsecond, 6 * sim.Microsecond, 7 * sim.Microsecond, 8 * sim.Microsecond}
	a.Pick(v, flowPkt(1, 0, 5))
	warn(a, 0, -1, v.now)
	v.now += sim.Microsecond
	d := a.Pick(v, flowPkt(1, 1, 5))
	if d.Uplink == 0 && !d.Recirculate {
		t.Fatal("ablated guard still holding flows")
	}
}

func TestStickyDiversionFollowsAndRetires(t *testing.T) {
	a := testAgent(4)
	v := newFakeView(4)
	v.delays = []sim.Time{5 * sim.Microsecond, 6 * sim.Microsecond, 7 * sim.Microsecond, 8 * sim.Microsecond}
	warn(a, 0, -1, v.now)
	// New flow: path 0 warned, gap small -> diverted to 1.
	d := a.Pick(v, flowPkt(1, 0, 5))
	if d.Uplink != 1 {
		t.Fatalf("expected diversion to 1, got %+v", d)
	}
	// While the warning lives, subsequent packets follow the diversion.
	v.now += 2 * sim.Microsecond
	if d := a.Pick(v, flowPkt(1, 1, 5)); d.Uplink != 1 {
		t.Fatalf("diversion not sticky: %+v", d)
	}
	if a.Stats.DivertSticky == 0 {
		t.Fatal("DivertSticky not counted")
	}
	// Warning expires and in-flight packets drain: diversion retires back to
	// the base scheme's choice.
	v.now += a.Params.WarnExpiry + 20*sim.Microsecond
	if d := a.Pick(v, flowPkt(1, 2, 5)); d.Uplink != 0 {
		t.Fatalf("diversion did not retire: %+v", d)
	}
}

func TestWaitChainForcesRecirculation(t *testing.T) {
	a := testAgent(4)
	v := newFakeView(4)
	// Gap beyond the whole wait budget -> first packet recirculates.
	v.delays = []sim.Time{sim.Microsecond, 500 * sim.Microsecond, 500 * sim.Microsecond, 500 * sim.Microsecond}
	warn(a, 0, -1, v.now)
	d := a.Pick(v, flowPkt(1, 0, 5))
	if !d.Recirculate {
		t.Fatalf("lead packet should recirculate: %+v", d)
	}
	// A flow-mate deciding while the lead is inside the loop must wait too.
	v.now += 200 * sim.Nanosecond
	d2 := a.Pick(v, flowPkt(1, 1, 5))
	if !d2.Recirculate {
		t.Fatalf("follower overtook recirculating lead: %+v", d2)
	}
	if a.Stats.OrderRecircs == 0 {
		t.Fatal("OrderRecircs not counted")
	}
	// After the lead's exit time the chain is over.
	v.now += 2 * a.Params.Trc
	d3 := a.Pick(v, flowPkt(1, 2, 5))
	if d3.Recirculate && a.Stats.OrderRecircs > 1 {
		t.Fatalf("wait chain did not end: %+v", d3)
	}
}

func TestRecircExhaustionSuppressesFutureWaits(t *testing.T) {
	a := testAgent(4)
	v := newFakeView(4)
	v.delays = []sim.Time{sim.Microsecond, 25 * sim.Microsecond, 26 * sim.Microsecond, 27 * sim.Microsecond}
	warn(a, 0, -1, v.now)
	// A packet returning with its budget exhausted diverts...
	p := flowPkt(1, 0, 5)
	p.Recirc = a.Params.MaxRecirc
	if d := a.Pick(v, p); d.Recirculate {
		t.Fatal("exhausted packet recirculated")
	}
	// ...and flow-mates skip recirculation for a while (they divert too;
	// sticky diversion serves them the same path).
	v.now += 40 * sim.Microsecond // past PathDelay so order guard lapses
	warn(a, 0, -1, v.now)
	before := a.Stats.Recircs
	a.Pick(v, flowPkt(1, 1, 5))
	if a.Stats.Recircs != before {
		t.Fatal("recirculation not suppressed after exhaustion")
	}
}

// committingChooser records Commit calls.
type committingChooser struct {
	rankedChooser
	committed []int
}

func (c *committingChooser) Commit(pkt *fabric.Packet, path int) {
	c.committed = append(c.committed, path)
}

func TestAgentCommitsFinalDecision(t *testing.T) {
	base := &committingChooser{rankedChooser: rankedChooser{order: seq(4)}}
	a := NewAgent(base, Params{}, 0, 4, func(h int) int { return h / 10 }, 2*sim.Microsecond)
	v := newFakeView(4)
	warn(a, 0, -1, v.now)
	d := a.Pick(v, flowPkt(1, 0, 5))
	if d.Recirculate {
		t.Fatalf("unexpected recirculation: %+v", d)
	}
	if len(base.committed) != 1 || base.committed[0] != d.Uplink {
		t.Fatalf("commit calls = %v, decision %d", base.committed, d.Uplink)
	}
}

var _ lb.Committer = (*committingChooser)(nil)
