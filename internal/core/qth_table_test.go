package core

import (
	"testing"

	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/units"
)

// TestWarningThresholdRange pins §3.2.3's conservative Qth range
// [d·C, QPFC − d·C·(n−1)) against hand-computed values, including the
// degenerate fabrics where the range collapses.
func TestWarningThresholdRange(t *testing.T) {
	cases := []struct {
		name   string
		d      sim.Time
		c      units.Bandwidth
		qPFC   int
		n      int
		lo, hi int
	}{
		// Paper settings: d=2us, C=40G -> d*C = 10000 bytes.
		{"paper-n2", 2 * sim.Microsecond, 40 * units.Gbps, 256000, 2, 10000, 246000},
		// n=1: no other senders, the whole headroom above d*C is usable.
		{"paper-n1", 2 * sim.Microsecond, 40 * units.Gbps, 256000, 1, 10000, 256000},
		// Heavier assumed fan-in eats the top of the range.
		{"paper-n4", 2 * sim.Microsecond, 40 * units.Gbps, 256000, 4, 10000, 226000},
		// Reduced-rate fabric (harness.Scale rescales QPFC the same way).
		{"10g-n2", 2 * sim.Microsecond, 10 * units.Gbps, 64000, 2, 2500, 61500},
		// Longer links push both ends of the range.
		{"slow-link-n2", 8 * sim.Microsecond, 10 * units.Gbps, 64000, 2, 10000, 54000},
		// Degenerate: QPFC too small for the link's bandwidth-delay product,
		// the range collapses (hi < lo) and Qth falls back to lo.
		{"collapsed", 2 * sim.Microsecond, 40 * units.Gbps, 15000, 2, 10000, 5000},
		// Exactly collapsed: hi == lo.
		{"exactly-collapsed", 2 * sim.Microsecond, 40 * units.Gbps, 20000, 2, 10000, 10000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lo, hi := WarningThresholdRange(tc.d, tc.c, tc.qPFC, tc.n)
			if lo != tc.lo || hi != tc.hi {
				t.Fatalf("range = [%d, %d), want [%d, %d)", lo, hi, tc.lo, tc.hi)
			}
		})
	}
}

// TestQthClamping drives Params.Qth across the fraction sweep of Fig. 10(a)
// and the edges of the conservative range. All cases use d=2us, C=10G
// (d*C = 2500) against QPFC=40000, so for n=2: lo=2500, hi=37500.
func TestQthClamping(t *testing.T) {
	const qPFC = 40000
	d, c := 2*sim.Microsecond, 10*units.Gbps
	cases := []struct {
		name     string
		fraction float64
		qPFC     int
		want     int
	}{
		{"mid-range", 0.3, qPFC, 12000},
		// 0.0625 * 40000 = 2500 = lo exactly: in range, kept as-is.
		{"at-lo", 0.0625, qPFC, 2500},
		{"below-lo-clamps-up", 0.01, qPFC, 2500},
		// 0.9375 * 40000 = 37500 = hi exactly: half-open range, so hi-1.
		{"at-hi-clamps-down", 0.9375, qPFC, 37499},
		{"above-hi-clamps-down", 0.99, qPFC, 37499},
		// Just under hi passes through unclamped (0.93 * 40000 = 37200).
		{"just-under-hi", 0.93, qPFC, 37200},
		// Collapsed range (hi <= lo): only the lower clamp applies; the
		// predictor degrades to warning at the bandwidth-delay product.
		{"collapsed-range", 0.3, 4000, 2500},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := Params{QthFraction: tc.fraction}
			if got := p.Qth(tc.qPFC, d, c); got != tc.want {
				t.Fatalf("Qth(%d, fraction=%v) = %d, want %d", tc.qPFC, tc.fraction, got, tc.want)
			}
		})
	}
}

// TestPredictWarn tables the per-sample warn decision (predictWarn, the pure
// core of Predictor.sample) across its boundaries: the activation threshold,
// the remaining-time equality, non-growing queues, pause refresh, and the
// static ablation. Fixed frame: qPFC=64000, qth=16000, deltaT=2us,
// warnTime=5us, so the derivative branch warns iff
// (64000-q)*2us/deriv <= 5us.
func TestPredictWarn(t *testing.T) {
	const (
		qPFC = 64000
		qth  = 16000
	)
	deltaT, warnTime := 2*sim.Microsecond, 5*sim.Microsecond
	cases := []struct {
		name       string
		q, deriv   int
		paused     bool
		staticOnly bool
		want       warnCause
	}{
		// Below qth nothing fires, however steep the growth: prediction only
		// activates once the queue shows sustained congestion.
		{"below-qth-huge-deriv", qth - 1, 1 << 20, false, false, warnNone},
		// At qth with growth fast enough to cross within warnTime:
		// (64000-16000)*2/19200 = 5us exactly; <= is inclusive.
		{"remaining-equals-warntime", qth, 19200, false, false, warnPredicted},
		// One byte/deltaT slower leaves remaining just above warnTime.
		{"remaining-just-over", qth, 19199, false, false, warnNone},
		// Faster growth predicts comfortably.
		{"fast-growth", 32000, 32000, false, false, warnPredicted},
		// (64000-32000)*2/12800 = 5us exactly at the halfway queue.
		{"halfway-boundary", 32000, 12800, false, false, warnPredicted},
		{"halfway-just-over", 32000, 12799, false, false, warnNone},
		// Zero or draining derivative never predicts, even near qPFC.
		{"steady-queue", qPFC - 1, 0, false, false, warnNone},
		{"draining-queue", qPFC - 1, -4000, false, false, warnNone},
		// At or above qPFC with any growth: remaining <= 0, warn.
		{"at-qpfc", qPFC, 1, false, false, warnPredicted},
		// An active pause refreshes the warning regardless of growth.
		{"paused-refresh", qth, -4000, true, false, warnStatic},
		// ... but only above the activation threshold.
		{"paused-below-qth", qth - 1, -4000, true, false, warnNone},
		// Static ablation: threshold comparison only.
		{"static-at-qth", qth, 0, false, true, warnStatic},
		{"static-below-qth", qth - 1, 1 << 20, false, true, warnNone},
		// Static ablation ignores the pause state below threshold.
		{"static-paused-below-qth", qth - 1, 0, true, true, warnNone},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := predictWarn(tc.q, tc.deriv, qPFC, qth, deltaT, warnTime, tc.paused, tc.staticOnly)
			if got != tc.want {
				t.Fatalf("predictWarn(q=%d, deriv=%d, paused=%v, static=%v) = %v, want %v",
					tc.q, tc.deriv, tc.paused, tc.staticOnly, got, tc.want)
			}
		})
	}
}
