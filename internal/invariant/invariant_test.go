package invariant

import (
	"strings"
	"testing"

	"github.com/rlb-project/rlb/internal/sim"
)

func TestNilCheckerIsSafe(t *testing.T) {
	var c *Checker
	c.ObserveEvent(1)
	c.PoolBounds(1, 0, 10, 100)
	c.PFCDrop(1, 0, 10)
	c.AuditPool(1, 0, 10, []int{10}, false)
	c.Delivered(1, 1, 0)
	c.Blackhole(1, 0, 0, 10)
	c.Violatef(1, RulePoolBounds, "x")
	if c.Total() != 0 || c.Checks() != 0 || c.Violations() != nil {
		t.Fatal("nil checker accumulated state")
	}
	if !c.Ok() {
		t.Fatal("nil checker not Ok")
	}
}

func TestPoolBounds(t *testing.T) {
	c := New(false)
	c.PoolBounds(1, 7, 0, 100)
	c.PoolBounds(2, 7, 100, 100)
	if !c.Ok() {
		t.Fatalf("in-bounds occupancy flagged: %s", c.Summary())
	}
	c.PoolBounds(3, 7, 101, 100)
	c.PoolBounds(4, 7, -1, 100)
	if c.Total() != 2 {
		t.Fatalf("Total = %d, want 2", c.Total())
	}
	if c.Violations()[0].Rule != RulePoolBounds {
		t.Fatalf("rule = %s", c.Violations()[0].Rule)
	}
}

func TestMonotoneTime(t *testing.T) {
	c := New(false)
	c.ObserveEvent(10)
	c.ObserveEvent(10) // equal is fine: simultaneous events share a timestamp
	c.ObserveEvent(20)
	if !c.Ok() {
		t.Fatalf("monotone sequence flagged: %s", c.Summary())
	}
	c.ObserveEvent(5)
	if c.Total() != 1 || c.Violations()[0].Rule != RuleMonotoneTime {
		t.Fatalf("backwards time not caught: %s", c.Summary())
	}
	// The clock must not be dragged backwards by the bad event.
	c.ObserveEvent(15)
	if c.Total() != 2 {
		t.Fatal("high-water mark lost after violation")
	}
}

func TestPFCDropAlwaysViolates(t *testing.T) {
	c := New(false)
	c.PFCDrop(9, 3, 5000)
	if c.Ok() || c.Violations()[0].Rule != RulePFCLossless {
		t.Fatalf("PFC drop not flagged: %s", c.Summary())
	}
}

func TestAuditPool(t *testing.T) {
	c := New(true)
	c.AuditPool(1, 0, 30, []int{10, 20}, false)
	if !c.Ok() {
		t.Fatalf("balanced audit flagged: %s", c.Summary())
	}
	c.AuditPool(2, 0, 31, []int{10, 20}, true)
	if c.Total() != 1 || c.Violations()[0].Rule != RulePoolConserve {
		t.Fatalf("imbalance not caught: %s", c.Summary())
	}
	if !strings.Contains(c.Violations()[0].Detail, "end of run") {
		t.Fatalf("final audit not labeled: %s", c.Violations()[0].Detail)
	}
	c.AuditPool(3, 0, 5, []int{-5, 11}, false)
	// Negative ingress accounting is its own violation plus the sum mismatch.
	if c.Total() != 3 {
		t.Fatalf("Total = %d, want 3", c.Total())
	}
}

func TestDeliveredStrictOnly(t *testing.T) {
	cheap := New(false)
	cheap.Delivered(1, 1, 5) // out of order, but cheap tier ignores PSNs
	if cheap.Total() != 0 || cheap.Checks() != 0 {
		t.Fatal("cheap tier tracked PSNs")
	}

	c := New(true)
	c.Delivered(1, 1, 0)
	c.Delivered(2, 1, 1)
	c.Delivered(3, 2, 0) // independent flow
	if !c.Ok() {
		t.Fatalf("contiguous delivery flagged: %s", c.Summary())
	}
	c.Delivered(4, 1, 3) // skipped PSN 2
	if c.Total() != 1 || c.Violations()[0].Rule != RulePSNOrder {
		t.Fatalf("PSN gap not caught: %s", c.Summary())
	}
	// Tracking resynchronizes after the violation.
	c.Delivered(5, 1, 4)
	if c.Total() != 1 {
		t.Fatal("tracker did not resync to delivered PSN")
	}
}

func TestBlackhole(t *testing.T) {
	c := New(false)
	c.Blackhole(99, 4, 2, 12000)
	if c.Ok() || c.Violations()[0].Rule != RuleBlackhole {
		t.Fatalf("blackhole not flagged: %s", c.Summary())
	}
}

func TestRecordingCapKeepsCounting(t *testing.T) {
	c := New(false)
	for i := 0; i < maxRecorded+50; i++ {
		c.Violatef(sim.Time(i), RulePoolBounds, "v%d", i)
	}
	if len(c.Violations()) != maxRecorded {
		t.Fatalf("recorded %d, want cap %d", len(c.Violations()), maxRecorded)
	}
	if c.Total() != uint64(maxRecorded+50) {
		t.Fatalf("Total = %d", c.Total())
	}
	if !strings.Contains(c.Summary(), "more not recorded") {
		t.Fatalf("summary hides overflow:\n%s", c.Summary())
	}
}

func TestSummaryOkWhenClean(t *testing.T) {
	if got := New(false).Summary(); got != "ok" {
		t.Fatalf("Summary = %q", got)
	}
}

func TestPacketPoolConservation(t *testing.T) {
	c := New(true)
	c.PacketPool(10, 100, 90, 0, 10) // gets == puts + live: clean
	if !c.Ok() {
		t.Fatalf("balanced pool flagged: %s", c.Summary())
	}
	c.PacketPool(20, 100, 90, 0, 5) // 5 frames leaked
	if c.Total() != 1 || c.Violations()[0].Rule != RulePacketPool {
		t.Fatalf("leak not caught: %s", c.Summary())
	}
}

func TestPacketPoolDoubleFree(t *testing.T) {
	c := New(true)
	c.PacketPool(10, 100, 100, 2, 0)
	if c.Total() != 1 || c.Violations()[0].Rule != RulePacketPool {
		t.Fatalf("double free not caught: %s", c.Summary())
	}
}

func TestPacketPoolStrictOnly(t *testing.T) {
	c := New(false)
	c.PacketPool(10, 100, 0, 7, 0) // grossly broken, but cheap tier skips it
	if !c.Ok() {
		t.Fatalf("cheap tier ran the pool audit: %s", c.Summary())
	}
	var nilc *Checker
	nilc.PacketPool(10, 1, 0, 0, 0) // nil-receiver safe
}

func TestEventPoolConservation(t *testing.T) {
	c := New(true)
	c.EventPool(10, 100, 90, 10) // gets == puts + queued: clean
	if !c.Ok() {
		t.Fatalf("balanced event pool flagged: %s", c.Summary())
	}
	c.EventPool(20, 100, 90, 4) // 6 event structs leaked
	if c.Total() != 1 || c.Violations()[0].Rule != RuleEventPool {
		t.Fatalf("event leak not caught: %s", c.Summary())
	}
}

func TestEventPoolStrictOnly(t *testing.T) {
	c := New(false)
	c.EventPool(10, 100, 0, 0) // grossly broken, but cheap tier skips it
	if !c.Ok() {
		t.Fatalf("cheap tier ran the event-pool audit: %s", c.Summary())
	}
	var nilc *Checker
	nilc.EventPool(10, 1, 0, 0) // nil-receiver safe
}

func TestContextLabelsViolations(t *testing.T) {
	c := New(false)
	c.SetContext("seed=7 fabric=2x2/3")
	c.Violatef(5, RulePoolBounds, "pool %d out of range", -1)
	v := c.Violations()[0]
	if v.Ctx != "seed=7 fabric=2x2/3" {
		t.Fatalf("Ctx = %q", v.Ctx)
	}
	if got := v.String(); !strings.Contains(got, "(seed=7 fabric=2x2/3)") {
		t.Fatalf("String() omits context: %q", got)
	}
	// Context applies to violations recorded after it was set; without one
	// the format stays unchanged.
	bare := New(false)
	bare.Violatef(5, RulePoolBounds, "x")
	if got := bare.Violations()[0].String(); strings.Contains(got, "()") {
		t.Fatalf("empty context rendered: %q", got)
	}
	var nilc *Checker
	nilc.SetContext("ignored") // nil-receiver safe
}
