// Package invariant is a runtime self-checker for the lossless-Ethernet
// invariants the paper's evaluation rests on. Every simulation carries one
// Checker; the data plane reports into it at the few points where the
// invariants could break, and the harness surfaces recorded violations in the
// run's Result instead of letting a buggy simulator silently produce figures.
//
// Two tiers keep the hot path fast:
//
//   - cheap (always on): integer-compare assertions — shared-pool occupancy
//     bounds, zero data drops while PFC is enabled, monotone event time — plus
//     one full conservation audit at the end of the run.
//   - strict (opt-in): per-mutation shared-pool conservation audits
//     (sum of per-ingress accounting == pool occupancy) and per-flow in-order
//     PSN delivery tracking at receivers.
//
// All methods are nil-receiver safe so un-instrumented components (direct
// switchsim/transport unit tests) pay nothing.
package invariant

import (
	"fmt"
	"strings"

	"github.com/rlb-project/rlb/internal/sim"
)

// Rule names identify which invariant a violation broke.
const (
	RulePoolBounds   = "pool-bounds"   // shared pool occupancy outside [0, BufferBytes]
	RulePoolConserve = "pool-conserve" // sum(ingress accounting) != shared pool occupancy
	RulePFCLossless  = "pfc-lossless"  // data frame dropped while PFC was enabled
	RuleMonotoneTime = "monotone-time" // event observed before an earlier one
	RulePSNOrder     = "psn-order"     // receiver delivered a non-contiguous PSN
	RuleBlackhole    = "blackhole"     // bytes stranded on a failed link at end of run
	RulePacketPool   = "packet-pool"   // packet free list leaked or double-freed a frame
	RuleEventPool    = "event-pool"    // engine event free list leaked a pooled event struct
)

// Violation is one recorded invariant break.
type Violation struct {
	At     sim.Time
	Rule   string
	Detail string
	// Ctx identifies the run that produced the violation — the simulation
	// seed and scenario parameters — so a failure pasted from a log is
	// reproducible without the surrounding harness state (the harness sets
	// it on every run; see RunConfig.Context).
	Ctx string
}

// String formats the violation on one line, including the run context when
// one was attached.
func (v Violation) String() string {
	if v.Ctx == "" {
		return fmt.Sprintf("[%v] %s: %s", v.At, v.Rule, v.Detail)
	}
	return fmt.Sprintf("[%v] %s: %s (%s)", v.At, v.Rule, v.Detail, v.Ctx)
}

// maxRecorded caps stored violations; the total count keeps climbing so a
// storm is still visible without unbounded memory.
const maxRecorded = 64

// Checker accumulates invariant violations for one simulation. It is not safe
// for concurrent use: each simulation (engine) owns exactly one Checker, which
// matches the harness's one-goroutine-per-simulation parallelism.
type Checker struct {
	// Strict enables the per-mutation conservation audits and PSN tracking.
	Strict bool

	violations []Violation
	total      uint64
	checks     uint64
	ctx        string

	lastEventAt sim.Time

	// nextPSN tracks, per flow, the next sequence a receiver must deliver
	// in order (strict mode only).
	nextPSN map[uint32]uint32
}

// New returns a Checker; strict enables the expensive tier.
func New(strict bool) *Checker {
	c := &Checker{Strict: strict}
	if strict {
		c.nextPSN = make(map[uint32]uint32)
	}
	return c
}

// SetContext labels every subsequently recorded violation with the run's
// identity (seed, fabric, workload, faults — whatever reproduces it). The
// harness sets it on every run so a violation in a log is self-describing.
func (c *Checker) SetContext(ctx string) {
	if c == nil {
		return
	}
	c.ctx = ctx
}

// Violatef records one violation.
func (c *Checker) Violatef(at sim.Time, rule, format string, args ...interface{}) {
	if c == nil {
		return
	}
	c.total++
	if len(c.violations) < maxRecorded {
		c.violations = append(c.violations, Violation{At: at, Rule: rule, Detail: fmt.Sprintf(format, args...), Ctx: c.ctx})
	}
}

// Violations returns the recorded violations (capped; see Total).
func (c *Checker) Violations() []Violation {
	if c == nil {
		return nil
	}
	return c.violations
}

// Total returns the number of violations detected, including ones beyond the
// recording cap.
func (c *Checker) Total() uint64 {
	if c == nil {
		return 0
	}
	return c.total
}

// Checks returns how many assertions ran (a sanity signal that the checker
// was actually wired in).
func (c *Checker) Checks() uint64 {
	if c == nil {
		return 0
	}
	return c.checks
}

// Ok reports whether no invariant broke.
func (c *Checker) Ok() bool { return c.Total() == 0 }

// Summary formats the recorded violations, one per line ("ok" when clean).
func (c *Checker) Summary() string {
	if c.Ok() {
		return "ok"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d violation(s):\n", c.Total())
	for _, v := range c.Violations() {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	if int(c.Total()) > len(c.violations) {
		fmt.Fprintf(&b, "  ... %d more not recorded\n", c.Total()-uint64(len(c.violations)))
	}
	return b.String()
}

// ObserveEvent asserts virtual time never runs backwards as seen by the data
// plane (cheap tier).
func (c *Checker) ObserveEvent(at sim.Time) {
	if c == nil {
		return
	}
	c.checks++
	if at < c.lastEventAt {
		c.Violatef(at, RuleMonotoneTime, "event at %v after one at %v", at, c.lastEventAt)
		return
	}
	c.lastEventAt = at
}

// PoolBounds asserts a switch's shared-pool occupancy stays within
// [0, capacity] (cheap tier).
func (c *Checker) PoolBounds(at sim.Time, swID, used, capacity int) {
	if c == nil {
		return
	}
	c.checks++
	if used < 0 || used > capacity {
		c.Violatef(at, RulePoolBounds, "switch %d shared pool %d outside [0, %d]", swID, used, capacity)
	}
}

// PFCDrop records a data-frame drop that happened while PFC was enabled —
// the canary the whole lossless evaluation depends on (cheap tier). Wire loss
// from injected link faults is accounted separately and is not a violation.
func (c *Checker) PFCDrop(at sim.Time, swID, used int) {
	if c == nil {
		return
	}
	c.checks++
	c.Violatef(at, RulePFCLossless, "switch %d dropped a data frame under PFC (pool %d)", swID, used)
}

// AuditPool verifies per-ingress accounting sums to the shared-pool
// occupancy. Called per mutation in strict mode and once at end of run by the
// harness (final == true labels the latter).
func (c *Checker) AuditPool(at sim.Time, swID, used int, ingress []int, final bool) {
	if c == nil {
		return
	}
	c.checks++
	sum := 0
	for i, b := range ingress {
		if b < 0 {
			c.Violatef(at, RulePoolConserve, "switch %d ingress %d accounting negative (%d)", swID, i, b)
		}
		sum += b
	}
	if sum != used {
		when := ""
		if final {
			when = " at end of run"
		}
		c.Violatef(at, RulePoolConserve, "switch %d ingress sum %d != shared pool %d%s", swID, sum, used, when)
	}
}

// Delivered asserts a receiver consumed PSNs contiguously, per flow (strict
// tier; a no-op otherwise).
func (c *Checker) Delivered(at sim.Time, flow uint32, seq uint32) {
	if c == nil || !c.Strict {
		return
	}
	c.checks++
	want := c.nextPSN[flow]
	if seq != want {
		c.Violatef(at, RulePSNOrder, "flow %d delivered PSN %d, want %d", flow, seq, want)
	}
	c.nextPSN[flow] = seq + 1
}

// PacketPool audits packet-pool conservation at end of run (strict tier):
// every frame taken from the free list must either have been returned or
// still be accounted for somewhere live in the fabric (queued, on the wire,
// or in a recirculation loop), and no frame may have been returned twice.
// gets == puts + live catches leaks (frames consumed without Release) and,
// via the doublePuts counter, use-after-free of pooled frames.
func (c *Checker) PacketPool(at sim.Time, gets, puts, doublePuts uint64, live int) {
	if c == nil || !c.Strict {
		return
	}
	c.checks++
	if doublePuts != 0 {
		c.Violatef(at, RulePacketPool, "%d double-free(s) of pooled frames", doublePuts)
	}
	if live < 0 || gets != puts+uint64(live) {
		c.Violatef(at, RulePacketPool, "pool gets %d != puts %d + live %d at end of run", gets, puts, live)
	}
}

// EventPool audits the engine's event free list at end of run (strict tier):
// every event struct handed out by the pool must either have been returned
// (after firing or being skipped as a lazily cancelled dead event) or still
// be queued in the scheduler. gets == puts + queued catches events dropped
// on the floor by a scheduler implementation — the failure mode lazy
// cancellation makes possible, since cancelled events now linger queued
// until the run loop reclaims them.
func (c *Checker) EventPool(at sim.Time, gets, puts uint64, queued int) {
	if c == nil || !c.Strict {
		return
	}
	c.checks++
	if queued < 0 || gets != puts+uint64(queued) {
		c.Violatef(at, RuleEventPool, "event pool gets %d != puts %d + queued %d at end of run", gets, puts, queued)
	}
}

// Blackhole records bytes stranded on a failed link when the run ended — the
// signature of a routing policy forwarding into a dead path (cheap tier,
// asserted by the end-of-run audit).
func (c *Checker) Blackhole(at sim.Time, swID, port, bytes int) {
	if c == nil {
		return
	}
	c.checks++
	c.Violatef(at, RuleBlackhole, "switch %d port %d holds %d bytes on a down link", swID, port, bytes)
}
