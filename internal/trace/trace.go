// Package trace provides a lightweight event recorder for the simulator:
// a fixed-size ring buffer of typed events (packet arrivals, PFC pause
// transitions, CNM warnings, recirculations, drops) that switches and RLB
// components publish when a buffer is attached. Tracing is strictly opt-in;
// with no buffer attached the hot paths pay a single nil check.
package trace

import (
	"fmt"
	"io"
	"strings"

	"github.com/rlb-project/rlb/internal/sim"
)

// Kind classifies an event.
type Kind uint8

// Event kinds.
const (
	DataArrive Kind = iota
	DataDepart
	PauseOn
	PauseOff
	ECNMark
	Recirculate
	Drop
	CNMSent
	CNMRelayed
	WarningSet
	FlowDone
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case DataArrive:
		return "DATA_ARRIVE"
	case DataDepart:
		return "DATA_DEPART"
	case PauseOn:
		return "PAUSE_ON"
	case PauseOff:
		return "PAUSE_OFF"
	case ECNMark:
		return "ECN_MARK"
	case Recirculate:
		return "RECIRC"
	case Drop:
		return "DROP"
	case CNMSent:
		return "CNM_SENT"
	case CNMRelayed:
		return "CNM_RELAY"
	case WarningSet:
		return "WARN_SET"
	case FlowDone:
		return "FLOW_DONE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one recorded occurrence. Fields are reused across kinds: Dev is
// the switch/host id, Port the ingress/egress/uplink index, Flow/Seq the
// packet identity, Aux a kind-specific value (queue bytes, destination leaf).
type Event struct {
	At   sim.Time
	Kind Kind
	Dev  int
	Port int
	Flow uint32
	Seq  uint32
	Aux  int
}

// String formats one event line.
func (e Event) String() string {
	return fmt.Sprintf("%-12v %-11s dev=%-4d port=%-3d flow=%-6d seq=%-6d aux=%d",
		e.At, e.Kind, e.Dev, e.Port, e.Flow, e.Seq, e.Aux)
}

// Buffer is a fixed-capacity ring of events. The zero value is unusable;
// create with NewBuffer. Buffers are not safe for concurrent use — one
// buffer per simulation engine, like every other model component.
type Buffer struct {
	ring  []Event
	next  int
	full  bool
	total uint64

	// Filter, when set, drops events for which it returns false.
	Filter func(Event) bool
}

// NewBuffer returns a ring buffer holding the last capacity events.
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Buffer{ring: make([]Event, capacity)}
}

// Add records an event (subject to Filter).
func (b *Buffer) Add(ev Event) {
	if b == nil {
		return
	}
	if b.Filter != nil && !b.Filter(ev) {
		return
	}
	b.total++
	b.ring[b.next] = ev
	b.next++
	if b.next == len(b.ring) {
		b.next = 0
		b.full = true
	}
}

// Total counts all recorded events, including those already overwritten.
func (b *Buffer) Total() uint64 { return b.total }

// Len returns the number of events currently held.
func (b *Buffer) Len() int {
	if b.full {
		return len(b.ring)
	}
	return b.next
}

// Events returns the retained events in chronological order.
func (b *Buffer) Events() []Event {
	if !b.full {
		out := make([]Event, b.next)
		copy(out, b.ring[:b.next])
		return out
	}
	out := make([]Event, 0, len(b.ring))
	out = append(out, b.ring[b.next:]...)
	out = append(out, b.ring[:b.next]...)
	return out
}

// CountKind returns how many retained events have the given kind.
func (b *Buffer) CountKind(k Kind) int {
	n := 0
	for _, ev := range b.Events() {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

// Dump writes the retained events, one per line.
func (b *Buffer) Dump(w io.Writer) error {
	for _, ev := range b.Events() {
		if _, err := fmt.Fprintln(w, ev); err != nil {
			return err
		}
	}
	return nil
}

// Summary returns a one-line histogram of retained event kinds.
func (b *Buffer) Summary() string {
	counts := map[Kind]int{}
	for _, ev := range b.Events() {
		counts[ev.Kind]++
	}
	var parts []string
	for k := DataArrive; k <= FlowDone; k++ {
		if counts[k] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, counts[k]))
		}
	}
	return strings.Join(parts, " ")
}
