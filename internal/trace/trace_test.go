package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/rlb-project/rlb/internal/sim"
)

func ev(at int, k Kind) Event { return Event{At: sim.Time(at), Kind: k} }

func TestRingKeepsLastN(t *testing.T) {
	b := NewBuffer(4)
	for i := 0; i < 10; i++ {
		b.Add(Event{At: sim.Time(i), Kind: DataArrive, Seq: uint32(i)})
	}
	got := b.Events()
	if len(got) != 4 {
		t.Fatalf("Len = %d", len(got))
	}
	for i, e := range got {
		if e.Seq != uint32(6+i) {
			t.Fatalf("ring order wrong at %d: seq %d", i, e.Seq)
		}
	}
	if b.Total() != 10 {
		t.Fatalf("Total = %d", b.Total())
	}
}

func TestPartialFill(t *testing.T) {
	b := NewBuffer(8)
	b.Add(ev(1, PauseOn))
	b.Add(ev(2, PauseOff))
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	events := b.Events()
	if events[0].Kind != PauseOn || events[1].Kind != PauseOff {
		t.Fatal("order wrong")
	}
}

func TestFilter(t *testing.T) {
	b := NewBuffer(16)
	b.Filter = func(e Event) bool { return e.Kind == PauseOn }
	b.Add(ev(1, DataArrive))
	b.Add(ev(2, PauseOn))
	b.Add(ev(3, ECNMark))
	if b.Len() != 1 || b.Events()[0].Kind != PauseOn {
		t.Fatalf("filter failed: %v", b.Events())
	}
}

func TestCountKindAndSummary(t *testing.T) {
	b := NewBuffer(16)
	b.Add(ev(1, PauseOn))
	b.Add(ev(2, PauseOn))
	b.Add(ev(3, CNMSent))
	if b.CountKind(PauseOn) != 2 || b.CountKind(Drop) != 0 {
		t.Fatal("CountKind wrong")
	}
	s := b.Summary()
	if !strings.Contains(s, "PAUSE_ON=2") || !strings.Contains(s, "CNM_SENT=1") {
		t.Fatalf("summary = %q", s)
	}
}

func TestDump(t *testing.T) {
	b := NewBuffer(4)
	b.Add(Event{At: 5 * sim.Microsecond, Kind: Recirculate, Dev: 3, Flow: 9})
	var sb strings.Builder
	if err := b.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "RECIRC") || !strings.Contains(out, "dev=3") {
		t.Fatalf("dump = %q", out)
	}
}

func TestNilBufferSafe(t *testing.T) {
	var b *Buffer
	b.Add(ev(1, Drop)) // must not panic
}

func TestKindStrings(t *testing.T) {
	for k := DataArrive; k <= FlowDone; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Fatalf("kind %d missing name", k)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("unknown kind formatting")
	}
}

func TestRingProperty(t *testing.T) {
	// Property: after adding n events to a buffer of capacity c, Events()
	// returns min(n, c) items, chronologically the last ones added.
	prop := func(cRaw, nRaw uint8) bool {
		c := int(cRaw%32) + 1
		n := int(nRaw)
		b := NewBuffer(c)
		for i := 0; i < n; i++ {
			b.Add(Event{Seq: uint32(i)})
		}
		got := b.Events()
		want := n
		if want > c {
			want = c
		}
		if len(got) != want {
			return false
		}
		for i, e := range got {
			if e.Seq != uint32(n-want+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
