package transport

import (
	"testing"

	"github.com/rlb-project/rlb/internal/fabric"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/units"
)

// middlebox sits between two hosts and forwards frames, optionally mangling
// data frames via hook (delay, drop) to exercise recovery paths.
type middlebox struct {
	eng   *sim.Engine
	ports [2]*fabric.Port
	// hook returns (forward, extraDelay). forward=false drops the frame.
	hook func(pkt *fabric.Packet) (bool, sim.Time)
	// hookCtrl filters control frames (Ack/Nak/CNP); false drops the frame.
	hookCtrl func(pkt *fabric.Packet) bool
	// hookAll observes every frame in both directions (control included).
	hookAll func(pkt *fabric.Packet)
}

func newMiddlebox(eng *sim.Engine) *middlebox {
	m := &middlebox{eng: eng}
	m.ports[0] = &fabric.Port{Eng: eng, Owner: m, Index: 0}
	m.ports[1] = &fabric.Port{Eng: eng, Owner: m, Index: 1}
	return m
}

func (m *middlebox) DevID() int { return 999 }

func (m *middlebox) Receive(pkt *fabric.Packet, in *fabric.Port) {
	if m.hookAll != nil {
		m.hookAll(pkt)
	}
	out := m.ports[1-in.Index]
	if pkt.Type == fabric.Data && m.hook != nil {
		fwd, delay := m.hook(pkt)
		if !fwd {
			return
		}
		if delay > 0 {
			m.eng.After(delay, func() { out.Enqueue(pkt) })
			return
		}
	}
	if pkt.Type != fabric.Data && m.hookCtrl != nil && !m.hookCtrl(pkt) {
		return
	}
	out.Enqueue(pkt)
}

type net2 struct {
	eng    *sim.Engine
	h1, h2 *Host
	mb     *middlebox
}

func newNet2(cfg HostConfig, rate units.Bandwidth, delay sim.Time) *net2 {
	eng := sim.NewEngine()
	h1 := NewHost(eng, 1, cfg)
	h2 := NewHost(eng, 2, cfg)
	mb := newMiddlebox(eng)
	fabric.Connect(h1.NIC(), mb.ports[0], rate, delay)
	fabric.Connect(h2.NIC(), mb.ports[1], rate, delay)
	return &net2{eng: eng, h1: h1, h2: h2, mb: mb}
}

func TestSingleFlowCompletes(t *testing.T) {
	cfg := DefaultHostConfig()
	cfg.CCEnabled = false
	n := newNet2(cfg, 10*units.Gbps, sim.Microsecond)
	f := n.h1.StartFlow(1, n.h2, 100*1000) // 100 packets
	n.eng.Run()
	if !f.Done {
		t.Fatal("flow did not complete")
	}
	// 100 KB at 10 Gb/s = 80 us serialization + ~2x(2 hops latency).
	if fct := f.FCT(); fct < 80*sim.Microsecond || fct > 120*sim.Microsecond {
		t.Fatalf("FCT = %v, want ~80-120us", fct)
	}
	if f.Retrans != 0 || f.OOOPkts != 0 {
		t.Fatalf("clean path produced retrans=%d ooo=%d", f.Retrans, f.OOOPkts)
	}
	if f.PktsSent != 100 || f.PktsRcvd != 100 {
		t.Fatalf("sent=%d rcvd=%d", f.PktsSent, f.PktsRcvd)
	}
}

func TestReorderingTriggersGoBackN(t *testing.T) {
	cfg := DefaultHostConfig()
	cfg.CCEnabled = false
	n := newNet2(cfg, 10*units.Gbps, sim.Microsecond)
	// Hold packet 10 for 50us: packets 11.. arrive first -> NAK(10) -> rewind.
	n.mb.hook = func(pkt *fabric.Packet) (bool, sim.Time) {
		if pkt.Seq == 10 && !pkt.Retransmitted {
			return true, 50 * sim.Microsecond
		}
		return true, 0
	}
	f := n.h1.StartFlow(1, n.h2, 100*1000)
	n.eng.Run()
	if !f.Done {
		t.Fatal("flow did not complete after reordering")
	}
	if f.OOOPkts == 0 {
		t.Fatal("no out-of-order packets recorded")
	}
	if f.Retrans == 0 {
		t.Fatal("go-back-N did not retransmit")
	}
	if f.MaxOOD == 0 {
		t.Fatal("MaxOOD not recorded")
	}
	if f.Dups == 0 {
		t.Fatal("delayed original should have arrived as duplicate")
	}
}

func TestOODHookObservesDegrees(t *testing.T) {
	cfg := DefaultHostConfig()
	cfg.CCEnabled = false
	n := newNet2(cfg, 10*units.Gbps, sim.Microsecond)
	n.mb.hook = func(pkt *fabric.Packet) (bool, sim.Time) {
		if pkt.Seq == 5 && !pkt.Retransmitted {
			return true, 30 * sim.Microsecond
		}
		return true, 0
	}
	var oods []uint32
	n.h2.OODHook = func(f *Flow, ood uint32) { oods = append(oods, ood) }
	f := n.h1.StartFlow(1, n.h2, 50*1000)
	n.eng.Run()
	if !f.Done || len(oods) == 0 {
		t.Fatalf("done=%v hooks=%d", f.Done, len(oods))
	}
	// First OOO arrival is seq 6 when 5 is expected: degree 1.
	if oods[0] != 1 {
		t.Fatalf("first OOD = %d, want 1", oods[0])
	}
}

func TestResequencingBufferAvoidsRetransmission(t *testing.T) {
	cfg := DefaultHostConfig()
	cfg.CCEnabled = false
	cfg.ReseqBufPkts = 64
	n := newNet2(cfg, 10*units.Gbps, sim.Microsecond)
	n.mb.hook = func(pkt *fabric.Packet) (bool, sim.Time) {
		if pkt.Seq == 10 && !pkt.Retransmitted {
			return true, 10 * sim.Microsecond
		}
		return true, 0
	}
	f := n.h1.StartFlow(1, n.h2, 100*1000)
	n.eng.Run()
	if !f.Done {
		t.Fatal("flow did not complete")
	}
	if f.Retrans != 0 {
		t.Fatalf("resequencing buffer should absorb reordering; retrans=%d", f.Retrans)
	}
	if f.OOOPkts == 0 {
		t.Fatal("OOO arrivals should still be observed")
	}
}

func TestDropRecoveredByNak(t *testing.T) {
	cfg := DefaultHostConfig()
	cfg.CCEnabled = false
	n := newNet2(cfg, 10*units.Gbps, sim.Microsecond)
	dropped := false
	n.mb.hook = func(pkt *fabric.Packet) (bool, sim.Time) {
		if pkt.Seq == 20 && !dropped {
			dropped = true
			return false, 0
		}
		return true, 0
	}
	f := n.h1.StartFlow(1, n.h2, 100*1000)
	n.eng.Run()
	if !f.Done {
		t.Fatal("flow did not recover from mid-flow drop")
	}
	if f.Retrans == 0 {
		t.Fatal("drop must cause retransmission")
	}
}

func TestTailDropRecoveredByRTO(t *testing.T) {
	cfg := DefaultHostConfig()
	cfg.CCEnabled = false
	n := newNet2(cfg, 10*units.Gbps, sim.Microsecond)
	drops := 0
	n.mb.hook = func(pkt *fabric.Packet) (bool, sim.Time) {
		// Drop the very last packet once; no later packet can trigger a NAK.
		if pkt.Seq == 99 && drops == 0 {
			drops++
			return false, 0
		}
		return true, 0
	}
	f := n.h1.StartFlow(1, n.h2, 100*1000)
	n.eng.Run()
	if !f.Done {
		t.Fatal("tail drop not recovered")
	}
	if f.RTOs == 0 {
		t.Fatal("RTO should have fired")
	}
}

func TestCNPReducesRate(t *testing.T) {
	cfg := DefaultHostConfig()
	n := newNet2(cfg, 10*units.Gbps, sim.Microsecond)
	// Mark CE on every data frame; receiver must emit rate-limited CNPs.
	n.mb.hook = func(pkt *fabric.Packet) (bool, sim.Time) {
		pkt.CE = true
		return true, 0
	}
	f := n.h1.StartFlow(1, n.h2, 2*1000*1000)
	n.eng.Run()
	if !f.Done {
		t.Fatal("flow did not complete")
	}
	if f.CNPsSent == 0 {
		t.Fatal("no CNPs for CE-marked traffic")
	}
	// With constant CE marking, the flow must finish much slower than line
	// rate: line-rate FCT would be ~1.6ms.
	if f.FCT() < 3*sim.Millisecond {
		t.Fatalf("DCQCN did not throttle: FCT=%v, CNPs=%d", f.FCT(), f.CNPsSent)
	}
}

func TestCNPRateLimited(t *testing.T) {
	cfg := DefaultHostConfig()
	n := newNet2(cfg, 10*units.Gbps, sim.Microsecond)
	n.mb.hook = func(pkt *fabric.Packet) (bool, sim.Time) {
		pkt.CE = true
		return true, 0
	}
	f := n.h1.StartFlow(1, n.h2, 1000*1000)
	n.eng.Run()
	dur := f.FinishAt - f.StartAt
	maxCNPs := uint64(dur/cfg.CC.CNPInterval) + 2
	if f.CNPsSent > maxCNPs {
		t.Fatalf("CNPs=%d exceed one per interval (max %d)", f.CNPsSent, maxCNPs)
	}
}

func TestConcurrentFlowsShareNIC(t *testing.T) {
	cfg := DefaultHostConfig()
	cfg.CCEnabled = false
	n := newNet2(cfg, 10*units.Gbps, sim.Microsecond)
	f1 := n.h1.StartFlow(1, n.h2, 200*1000)
	f2 := n.h1.StartFlow(2, n.h2, 200*1000)
	f3 := n.h2.StartFlow(3, n.h1, 200*1000) // reverse direction
	n.eng.Run()
	if !f1.Done || !f2.Done || !f3.Done {
		t.Fatalf("done: %v %v %v", f1.Done, f2.Done, f3.Done)
	}
	// Two same-direction flows share 10G: each should take ~2x solo time.
	solo := 160 * sim.Microsecond
	if f1.FCT() < solo || f2.FCT() < solo {
		t.Fatalf("sharing unrealistically fast: %v %v", f1.FCT(), f2.FCT())
	}
}

func TestNICBackpressureBoundsQueue(t *testing.T) {
	cfg := DefaultHostConfig()
	cfg.CCEnabled = false
	cfg.NICQueueCap = 20 * 1000
	n := newNet2(cfg, 10*units.Gbps, sim.Microsecond)
	// Pause the host NIC for a long time; the sender must stop pacing
	// rather than queueing the whole flow.
	n.h1.NIC().SetPaused(fabric.PrioData, true, 0)
	n.h1.StartFlow(1, n.h2, 1000*1000)
	n.eng.RunUntil(sim.Millisecond)
	q := n.h1.NIC().QueuedBytes(fabric.PrioData)
	if q > cfg.NICQueueCap+2000 {
		t.Fatalf("NIC queue %d exceeds cap %d", q, cfg.NICQueueCap)
	}
	n.h1.NIC().SetPaused(fabric.PrioData, false, 0)
	n.eng.Run()
}

func TestOnFlowDoneFires(t *testing.T) {
	cfg := DefaultHostConfig()
	cfg.CCEnabled = false
	n := newNet2(cfg, 10*units.Gbps, sim.Microsecond)
	var doneFlows []uint32
	n.h2.OnFlowDone = func(f *Flow) { doneFlows = append(doneFlows, f.ID) }
	n.h1.StartFlow(7, n.h2, 10*1000)
	n.eng.Run()
	if len(doneFlows) != 1 || doneFlows[0] != 7 {
		t.Fatalf("OnFlowDone = %v", doneFlows)
	}
}

func TestTinyFlowOnePacket(t *testing.T) {
	cfg := DefaultHostConfig()
	cfg.CCEnabled = false
	n := newNet2(cfg, 10*units.Gbps, sim.Microsecond)
	f := n.h1.StartFlow(1, n.h2, 100) // < 1 MTU
	n.eng.Run()
	if !f.Done || f.NumPkts != 1 {
		t.Fatalf("done=%v numPkts=%d", f.Done, f.NumPkts)
	}
}

func TestFlowStatsConsistency(t *testing.T) {
	cfg := DefaultHostConfig()
	cfg.CCEnabled = false
	n := newNet2(cfg, 10*units.Gbps, sim.Microsecond)
	n.mb.hook = func(pkt *fabric.Packet) (bool, sim.Time) {
		if pkt.Seq%17 == 3 && !pkt.Retransmitted {
			return true, 20 * sim.Microsecond
		}
		return true, 0
	}
	f := n.h1.StartFlow(1, n.h2, 300*1000)
	n.eng.Run()
	if !f.Done {
		t.Fatal("not done")
	}
	if f.PktsSent < uint64(f.NumPkts) {
		t.Fatalf("sent %d < NumPkts %d", f.PktsSent, f.NumPkts)
	}
	if f.PktsSent != uint64(f.NumPkts)+f.Retrans {
		t.Fatalf("PktsSent=%d != NumPkts+Retrans=%d", f.PktsSent, uint64(f.NumPkts)+f.Retrans)
	}
}

func TestZeroSizeFlowPanics(t *testing.T) {
	cfg := DefaultHostConfig()
	n := newNet2(cfg, 10*units.Gbps, sim.Microsecond)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size flow did not panic")
		}
	}()
	n.h1.StartFlow(1, n.h2, 0)
}
