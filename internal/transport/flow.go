// Package transport implements a RoCEv2-style reliable transport over the
// simulated fabric: rate-paced senders governed by DCQCN, and receivers that
// enforce in-order delivery with go-back-N retransmission, exactly the
// recovery model the paper attributes to lossless DCN NICs (§2.1.2): an
// out-of-order packet is discarded and a NAK asks the sender to rewind.
package transport

import "github.com/rlb-project/rlb/internal/sim"

// Flow is one unidirectional transfer between two hosts. The harness creates
// flows via Host.StartFlow and reads the stats afterwards.
type Flow struct {
	ID   uint32
	Src  int
	Dst  int
	Size int // bytes to transfer

	NumPkts uint32 // packets of Host.MTU wire bytes (last one padded)

	StartAt  sim.Time
	FinishAt sim.Time
	Done     bool

	// Sender-side stats.
	PktsSent uint64 // data frames transmitted, including retransmissions
	Retrans  uint64 // retransmitted frames (go-back-N rewind cost)
	RTOs     uint64 // retransmission timeouts fired

	// Receiver-side stats.
	PktsRcvd uint64 // all data arrivals, including duplicates
	OOOPkts  uint64 // out-of-order arrivals (discarded or resequenced)
	Dups     uint64 // arrivals below the expected sequence
	MaxOOD   uint32 // largest out-of-order degree observed
	CNPsSent uint64
}

// FCT returns the flow completion time, valid once Done.
func (f *Flow) FCT() sim.Time { return f.FinishAt - f.StartAt }

// GoodputBytes returns the payload bytes delivered (Size when Done).
func (f *Flow) GoodputBytes() int {
	if f.Done {
		return f.Size
	}
	return 0
}
