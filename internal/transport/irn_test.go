package transport

import (
	"testing"

	"github.com/rlb-project/rlb/internal/fabric"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/units"
)

func irnConfig() HostConfig {
	cfg := DefaultHostConfig()
	cfg.CCEnabled = false
	cfg.SelectiveRepeat = true
	return cfg
}

func TestIRNReorderingNoRewind(t *testing.T) {
	n := newNet2(irnConfig(), 10*units.Gbps, sim.Microsecond)
	// Same displacement as the go-back-N test: hold packet 10 for 50 us.
	n.mb.hook = func(pkt *fabric.Packet) (bool, sim.Time) {
		if pkt.Seq == 10 && !pkt.Retransmitted {
			return true, 50 * sim.Microsecond
		}
		return true, 0
	}
	f := n.h1.StartFlow(1, n.h2, 100*1000)
	n.eng.Run()
	if !f.Done {
		t.Fatal("flow incomplete")
	}
	if f.OOOPkts == 0 {
		t.Fatal("reordering not observed")
	}
	// Selective repeat retransmits at most the one NAKed packet, instead of
	// go-back-N's rewind of the whole window.
	if f.Retrans > 2 {
		t.Fatalf("IRN retransmitted %d packets for a single displacement", f.Retrans)
	}
}

func TestIRNSingleDropSingleRetransmission(t *testing.T) {
	n := newNet2(irnConfig(), 10*units.Gbps, sim.Microsecond)
	dropped := false
	n.mb.hook = func(pkt *fabric.Packet) (bool, sim.Time) {
		if pkt.Seq == 20 && !dropped {
			dropped = true
			return false, 0
		}
		return true, 0
	}
	f := n.h1.StartFlow(1, n.h2, 100*1000)
	n.eng.Run()
	if !f.Done {
		t.Fatal("flow incomplete")
	}
	if f.Retrans != 1 {
		t.Fatalf("Retrans = %d, want exactly 1", f.Retrans)
	}
}

func TestIRNMultipleDropsRecovered(t *testing.T) {
	n := newNet2(irnConfig(), 10*units.Gbps, sim.Microsecond)
	drops := map[uint32]bool{}
	n.mb.hook = func(pkt *fabric.Packet) (bool, sim.Time) {
		if pkt.Seq%25 == 7 && !pkt.Retransmitted && !drops[pkt.Seq] {
			drops[pkt.Seq] = true
			return false, 0
		}
		return true, 0
	}
	f := n.h1.StartFlow(1, n.h2, 200*1000)
	n.eng.Run()
	if !f.Done {
		t.Fatal("flow incomplete after multiple drops")
	}
	if f.Retrans != uint64(len(drops)) {
		t.Fatalf("Retrans = %d, want %d (one per drop)", f.Retrans, len(drops))
	}
}

func TestIRNTailDropViaRTO(t *testing.T) {
	n := newNet2(irnConfig(), 10*units.Gbps, sim.Microsecond)
	dropped := false
	n.mb.hook = func(pkt *fabric.Packet) (bool, sim.Time) {
		if pkt.Seq == 99 && !dropped {
			dropped = true
			return false, 0
		}
		return true, 0
	}
	f := n.h1.StartFlow(1, n.h2, 100*1000)
	n.eng.Run()
	if !f.Done {
		t.Fatal("tail drop not recovered")
	}
	if f.RTOs == 0 {
		t.Fatal("RTO expected for tail drop")
	}
	if f.Retrans > 3 {
		t.Fatalf("tail recovery retransmitted %d packets", f.Retrans)
	}
}

func TestIRNVsGoBackNRetransmissionCost(t *testing.T) {
	// Under identical periodic displacement, go-back-N must retransmit far
	// more than selective repeat — the quantitative reason lossless fabrics
	// with plain RoCE NICs care about reordering at all.
	run := func(cfg HostConfig) *Flow {
		n := newNet2(cfg, 10*units.Gbps, sim.Microsecond)
		n.mb.hook = func(pkt *fabric.Packet) (bool, sim.Time) {
			if pkt.Seq%40 == 11 && !pkt.Retransmitted {
				return true, 30 * sim.Microsecond
			}
			return true, 0
		}
		f := n.h1.StartFlow(1, n.h2, 400*1000)
		n.eng.Run()
		return f
	}
	gbn := DefaultHostConfig()
	gbn.CCEnabled = false
	fG := run(gbn)
	fI := run(irnConfig())
	if !fG.Done || !fI.Done {
		t.Fatal("flows incomplete")
	}
	if fI.Retrans*5 > fG.Retrans {
		t.Fatalf("IRN (%d) should retransmit far less than go-back-N (%d)", fI.Retrans, fG.Retrans)
	}
}
