package transport

// HostSnapshot is the host-level transport state exposed to the telemetry
// layer, aggregated across the host's active (not yet finished) senders.
type HostSnapshot struct {
	// ActiveSenders is the number of flows still transmitting from here.
	ActiveSenders int64
	// Inflight is the total sent-but-unacknowledged packet count
	// (sum of next - una).
	Inflight int64
	// Una is the sum of the lowest-unacknowledged sequences.
	Una int64
	// Next is the sum of the next-to-transmit sequences.
	Next int64
	// RateBps is the total DCQCN-allowed sending rate in bits per second
	// (line rate for flows without congestion control).
	RateBps int64
}

// TelemetrySnapshot folds the host's sender tables into a HostSnapshot. It
// is a probe body: read-only, allocation-free, and order-insensitive — the
// sums commute, so the flat tables' slot-order Scan is safe. Called between
// events by the telemetry sampler, never from the per-packet path.
func (h *Host) TelemetrySnapshot() HostSnapshot {
	var snap HostSnapshot
	h.senders.Scan(func(_ uint32, s *sender) {
		if s.done {
			return
		}
		snap.ActiveSenders++
		snap.Inflight += int64(s.next) - int64(s.una)
		snap.Una += int64(s.una)
		snap.Next += int64(s.next)
		snap.RateBps += int64(s.rate())
	})
	return snap
}
