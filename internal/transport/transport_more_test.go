package transport

import (
	"testing"

	"github.com/rlb-project/rlb/internal/fabric"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/units"
)

func TestReseqBufferOverflowStillNaks(t *testing.T) {
	cfg := DefaultHostConfig()
	cfg.CCEnabled = false
	cfg.ReseqBufPkts = 4 // tiny shim
	n := newNet2(cfg, 10*units.Gbps, sim.Microsecond)
	// Delay packet 10 long enough that >4 successors arrive: the gap
	// exceeds the buffer, so go-back-N must kick in.
	n.mb.hook = func(pkt *fabric.Packet) (bool, sim.Time) {
		if pkt.Seq == 10 && !pkt.Retransmitted {
			return true, 60 * sim.Microsecond
		}
		return true, 0
	}
	f := n.h1.StartFlow(1, n.h2, 100*1000)
	n.eng.Run()
	if !f.Done {
		t.Fatal("flow incomplete")
	}
	if f.Retrans == 0 {
		t.Fatal("overflowing the resequencing buffer must trigger go-back-N")
	}
}

func TestAckCoalescing(t *testing.T) {
	cfg := DefaultHostConfig()
	cfg.CCEnabled = false
	cfg.AckEvery = 16
	n := newNet2(cfg, 10*units.Gbps, sim.Microsecond)
	acks := 0
	n.mb.hookAll = func(pkt *fabric.Packet) {
		if pkt.Type == fabric.Ack {
			acks++
		}
	}
	f := n.h1.StartFlow(1, n.h2, 160*1000) // 160 packets
	n.eng.Run()
	if !f.Done {
		t.Fatal("incomplete")
	}
	// 160/16 = 10 coalesced plus the final ACK.
	if acks < 10 || acks > 12 {
		t.Fatalf("ACK count = %d, want ~11", acks)
	}
}

func TestGoBackNWithCongestionControl(t *testing.T) {
	cfg := DefaultHostConfig() // CC on
	n := newNet2(cfg, 10*units.Gbps, sim.Microsecond)
	n.mb.hook = func(pkt *fabric.Packet) (bool, sim.Time) {
		if pkt.Seq%31 == 7 && !pkt.Retransmitted {
			return true, 25 * sim.Microsecond
		}
		if pkt.Seq%17 == 3 {
			pkt.CE = true
		}
		return true, 0
	}
	f := n.h1.StartFlow(1, n.h2, 400*1000)
	n.eng.Run()
	if !f.Done {
		t.Fatal("flow with CC + reordering incomplete")
	}
	if f.CNPsSent == 0 || f.Retrans == 0 {
		t.Fatalf("expected both CNPs (%d) and retransmissions (%d)", f.CNPsSent, f.Retrans)
	}
}

func TestManyFlowsBothDirections(t *testing.T) {
	cfg := DefaultHostConfig()
	cfg.CCEnabled = false
	n := newNet2(cfg, 10*units.Gbps, sim.Microsecond)
	var flows []*Flow
	for i := 0; i < 10; i++ {
		flows = append(flows, n.h1.StartFlow(uint32(1+i), n.h2, 30*1000))
		flows = append(flows, n.h2.StartFlow(uint32(100+i), n.h1, 30*1000))
	}
	n.eng.Run()
	for i, f := range flows {
		if !f.Done {
			t.Fatalf("flow %d incomplete", i)
		}
	}
}

func TestFCTHelpers(t *testing.T) {
	f := &Flow{Size: 1000, StartAt: sim.Millisecond, FinishAt: 3 * sim.Millisecond, Done: true}
	if f.FCT() != 2*sim.Millisecond {
		t.Fatalf("FCT = %v", f.FCT())
	}
	if f.GoodputBytes() != 1000 {
		t.Fatal("GoodputBytes for done flow")
	}
	f.Done = false
	if f.GoodputBytes() != 0 {
		t.Fatal("GoodputBytes for incomplete flow should be 0")
	}
}

func TestDuplicateReACKAdvancesSender(t *testing.T) {
	cfg := DefaultHostConfig()
	cfg.CCEnabled = false
	n := newNet2(cfg, 10*units.Gbps, sim.Microsecond)
	// Delay a packet: after rewind its original arrives as a duplicate; the
	// flow must still terminate promptly (re-ACKs keep una moving).
	n.mb.hook = func(pkt *fabric.Packet) (bool, sim.Time) {
		if pkt.Seq == 50 && !pkt.Retransmitted {
			return true, 40 * sim.Microsecond
		}
		return true, 0
	}
	f := n.h1.StartFlow(1, n.h2, 100*1000)
	n.eng.Run()
	if !f.Done {
		t.Fatal("incomplete")
	}
	if f.Dups == 0 {
		t.Fatal("expected duplicate arrivals")
	}
}
