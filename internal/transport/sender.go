package transport

import (
	"github.com/rlb-project/rlb/internal/dcqcn"
	"github.com/rlb-project/rlb/internal/fabric"
	"github.com/rlb-project/rlb/internal/flatmap"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/units"
)

// sender paces one flow's data frames at the DCQCN-allowed rate and rewinds
// on NAKs (go-back-N).
type sender struct {
	h *Host
	f *Flow

	rp *dcqcn.RP // nil when CC disabled

	next    uint32 // next sequence to transmit
	una     uint32 // lowest unacknowledged sequence
	maxSent uint32 // highest sequence transmitted so far (retrans detection)
	done    bool

	// rtx queues individual sequences for selective-repeat retransmission
	// (IRN mode); unused under go-back-N. rtxMark dedupes the queue in a
	// flat table (zero value ready: the loss-free steady state never
	// touches it).
	rtx     []uint32
	rtxMark flatmap.U32[struct{}]

	pacer sim.Timer
	rto   sim.Timer
}

// Event codes for the sender's typed timers (EventArg.U64).
const (
	sndEvPump uint64 = iota
	sndEvRTO
)

// OnEvent implements sim.Handler for the pacing and retransmission timers.
func (s *sender) OnEvent(arg sim.EventArg) {
	switch arg.U64 {
	case sndEvPump:
		s.pump()
	case sndEvRTO:
		if s.done {
			return
		}
		s.f.RTOs++
		if s.h.Cfg.SelectiveRepeat {
			s.queueRtx(s.una)
		} else {
			s.next = s.una
		}
		s.pump()
	}
}

func newSender(h *Host, f *Flow) *sender {
	s := &sender{h: h, f: f}
	if h.Cfg.CCEnabled {
		s.rp = dcqcn.NewRP(h.Eng, h.Cfg.CC, h.LineRate())
	}
	return s
}

func (s *sender) start() { s.pump() }

func (s *sender) rate() units.Bandwidth {
	if s.rp != nil {
		return s.rp.Rate()
	}
	return s.h.LineRate()
}

// pump transmits the next frame if allowed and schedules the next attempt.
func (s *sender) pump() {
	if s.done {
		return
	}
	s.pacer.Stop()
	s.pacer = sim.Timer{}
	if len(s.rtx) == 0 && s.next >= s.f.NumPkts {
		// Everything sent once; wait for ACK/NAK, with a timeout as the
		// last-resort recovery for tail loss.
		s.armRTO()
		return
	}
	// NIC backpressure: when PFC has paused the NIC (or the queue is simply
	// deep), hold off instead of growing the egress queue without bound.
	if s.h.nic.QueuedBytes(fabric.PrioData) >= s.h.Cfg.NICQueueCap {
		s.pacer = s.h.Eng.ScheduleAfter(units.TxTime(s.h.Cfg.MTU, s.h.LineRate()), s, sim.EventArg{U64: sndEvPump})
		return
	}
	var seq uint32
	if len(s.rtx) > 0 {
		// Selective repeat: retransmissions take priority over new data.
		seq = s.rtx[0]
		s.rtx = s.rtx[1:]
		s.rtxMark.Delete(seq)
	} else {
		seq = s.next
		s.next++
	}
	pkt := s.h.Cfg.Pool.Data(s.f.ID, seq, s.h.Cfg.MTU, s.f.Src, s.f.Dst)
	pkt.SentAt = s.h.Eng.Now()
	if seq < s.maxSent {
		pkt.Retransmitted = true
		s.f.Retrans++
	} else {
		s.maxSent = s.next
	}
	s.f.PktsSent++
	s.h.nic.Enqueue(pkt)
	if s.rp != nil {
		s.rp.NotifySent(pkt.Size)
	}
	s.pacer = s.h.Eng.ScheduleAfter(units.TxTime(pkt.Size, s.rate()), s, sim.EventArg{U64: sndEvPump})
}

func (s *sender) onAckNak(pkt *fabric.Packet) {
	if s.done {
		return
	}
	s.disarmRTO()
	switch pkt.Type {
	case fabric.Ack:
		if pkt.AckNk.Seq > s.una {
			s.una = pkt.AckNk.Seq
		}
		if s.una >= s.f.NumPkts {
			s.finish()
			return
		}
		if s.next >= s.f.NumPkts {
			s.armRTO()
		}
	case fabric.Nak:
		if pkt.AckNk.Seq > s.una {
			s.una = pkt.AckNk.Seq
		}
		if s.h.Cfg.SelectiveRepeat {
			s.queueRtx(pkt.AckNk.Seq)
			s.pump()
			return
		}
		// Go-back-N: resume transmission from the receiver's expected
		// sequence; everything after it will be sent again.
		if pkt.AckNk.Seq < s.next {
			s.next = pkt.AckNk.Seq
		}
		s.pump()
	}
}

func (s *sender) onCNP() {
	if s.rp != nil {
		s.rp.OnCNP()
	}
}

func (s *sender) armRTO() {
	if s.rto.Pending() {
		return
	}
	s.rto = s.h.Eng.ScheduleAfter(s.h.Cfg.RTO, s, sim.EventArg{U64: sndEvRTO})
}

// queueRtx schedules one sequence for selective retransmission (idempotent).
func (s *sender) queueRtx(seq uint32) {
	if seq >= s.f.NumPkts {
		return
	}
	if s.rtxMark.Has(seq) {
		return
	}
	s.rtxMark.Put(seq, struct{}{})
	//simlint:allow(hotpath) retransmit queue grows only on loss events, not in the loss-free steady state
	s.rtx = append(s.rtx, seq)
}

func (s *sender) disarmRTO() {
	s.rto.Stop()
	s.rto = sim.Timer{}
}

func (s *sender) finish() {
	s.done = true
	s.disarmRTO()
	s.pacer.Stop()
	s.pacer = sim.Timer{}
	if s.rp != nil {
		s.rp.Close()
	}
}
