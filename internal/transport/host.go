package transport

import (
	"fmt"

	"github.com/rlb-project/rlb/internal/dcqcn"
	"github.com/rlb-project/rlb/internal/fabric"
	"github.com/rlb-project/rlb/internal/flatmap"
	"github.com/rlb-project/rlb/internal/invariant"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/units"
)

// HostConfig tunes the end-host transport.
type HostConfig struct {
	// MTU is the wire size of a full data frame.
	MTU int
	// AckEvery coalesces cumulative ACKs: one per this many in-order frames.
	AckEvery uint32
	// RTO is the sender's tail-recovery timeout after everything has been
	// sent once and neither ACK nor NAK arrives (only matters when frames
	// can actually be lost, i.e. PFC disabled).
	RTO sim.Time
	// NICQueueCap backpressures pacing when the NIC egress queue exceeds it,
	// modelling the bounded on-NIC buffer.
	NICQueueCap int
	// CCEnabled turns DCQCN on.
	CCEnabled bool
	// CC holds the DCQCN parameters.
	CC dcqcn.Config
	// ReseqBufPkts, when non-zero, gives receivers a resequencing buffer of
	// that many packets (a Presto-style edge shim) instead of pure
	// go-back-N. The paper's lossless setting uses 0.
	ReseqBufPkts uint32
	// Checker, when non-nil, receives receiver-side invariant assertions
	// (in-order PSN delivery; strict tier only). The topology layer installs
	// the simulation's checker here.
	Checker *invariant.Checker
	// Pool, when non-nil, supplies this host's data and control frames from
	// the simulation's packet free list; delivered frames return to it. Nil
	// degrades to plain allocation.
	Pool *fabric.Pool
	// SelectiveRepeat switches loss recovery to an IRN-style scheme
	// (Mittal et al., SIGCOMM 2018, cited in the paper's related work):
	// the receiver keeps out-of-order arrivals and NAKs only the missing
	// sequence; the sender retransmits exactly that packet instead of
	// rewinding. IRN is the "abandon PFC, fix the transport" alternative
	// to RLB's "keep PFC, fix load balancing".
	SelectiveRepeat bool
}

// DefaultHostConfig returns the settings used across the evaluation.
func DefaultHostConfig() HostConfig {
	return HostConfig{
		MTU:         fabric.DefaultMTU,
		AckEvery:    16,
		RTO:         400 * sim.Microsecond,
		NICQueueCap: 128 * 1000,
		CCEnabled:   true,
		CC:          dcqcn.DefaultConfig(),
	}
}

// Host is an end host with one NIC port. It multiplexes any number of
// sending and receiving flows and implements fabric.Device.
type Host struct {
	Eng *sim.Engine
	ID  int
	Cfg HostConfig

	nic  *fabric.Port
	line units.Bandwidth

	// senders/receivers resolve the per-flow endpoint for every frame the
	// NIC receives — flat open-addressed tables (see internal/flatmap), so
	// the per-packet dispatch is one probe, not a built-in map lookup.
	senders   flatmap.U32[*sender]
	receivers flatmap.U32[*receiver]

	// OnFlowDone fires (on the receiving host) when a flow completes.
	OnFlowDone func(*Flow)
	// OODHook observes every out-of-order arrival's degree.
	OODHook func(f *Flow, ood uint32)
}

// NewHost creates a host; connect its NIC with host.NIC() before use.
func NewHost(eng *sim.Engine, id int, cfg HostConfig) *Host {
	h := &Host{
		Eng: eng,
		ID:  id,
		Cfg: cfg,
	}
	h.nic = &fabric.Port{Eng: eng, Owner: h, Index: 0}
	return h
}

// NIC returns the host's single port for wiring into a topology.
func (h *Host) NIC() *fabric.Port { return h.nic }

// DevID implements fabric.Device.
func (h *Host) DevID() int { return h.ID }

// LineRate returns the NIC rate (valid after the port is connected).
func (h *Host) LineRate() units.Bandwidth {
	if h.line == 0 {
		h.line = h.nic.Rate
	}
	return h.line
}

// StartFlow begins transferring size bytes from h to dst, returning the flow
// handle whose stats fill in as the simulation runs.
func (h *Host) StartFlow(id uint32, dst *Host, size int) *Flow {
	if size <= 0 {
		panic(fmt.Sprintf("transport: flow %d with non-positive size %d", id, size))
	}
	f := &Flow{
		ID:      id,
		Src:     h.ID,
		Dst:     dst.ID,
		Size:    size,
		NumPkts: uint32((size + h.Cfg.MTU - 1) / h.Cfg.MTU),
		StartAt: h.Eng.Now(),
	}
	snd := newSender(h, f)
	h.senders.Put(id, snd)
	dst.receivers.Put(id, newReceiver(dst, f))
	snd.start()
	return f
}

// Receive implements fabric.Device: NIC-level dispatch. Every frame reaching
// a host is terminally consumed here and returns to the packet pool.
func (h *Host) Receive(pkt *fabric.Packet, in *fabric.Port) {
	switch pkt.Type {
	case fabric.Pause:
		in.SetPaused(pkt.Pause.Prio, true, pkt.Pause.Dur)
	case fabric.Resume:
		in.SetPaused(pkt.Pause.Prio, false, 0)
	case fabric.Data:
		if r, ok := h.receivers.Get(pkt.FlowID); ok {
			r.onData(pkt)
		}
	case fabric.Ack, fabric.Nak:
		if s, ok := h.senders.Get(pkt.FlowID); ok {
			s.onAckNak(pkt)
		}
	case fabric.CNP:
		if s, ok := h.senders.Get(pkt.FlowID); ok {
			s.onCNP()
		}
	}
	fabric.Release(pkt)
}

// sendControl emits a control frame from this host.
func (h *Host) sendControl(t fabric.PacketType, flow uint32, dst int, seq uint32) {
	pkt := h.Cfg.Pool.Control(t, h.ID, dst)
	pkt.FlowID = flow
	pkt.AckNk.Seq = seq
	h.nic.Enqueue(pkt)
}
