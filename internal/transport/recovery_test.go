package transport

import (
	"testing"

	"github.com/rlb-project/rlb/internal/fabric"
	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/units"
)

// Regression tests for the ACK/duplicate accounting fixes: tail-ACK loss
// recovery, duplicate re-ACK gating at AckEvery==1, reseq-buffer duplicate
// dedupe, post-completion straggler handling, and NAK-loss RTO recovery.

// TestAckEveryOneAcksEveryPacket pins the per-packet ACK cadence: a clean
// 100-packet flow with AckEvery=1 emits exactly one ACK per delivery (99
// intermediate + 1 completion).
func TestAckEveryOneAcksEveryPacket(t *testing.T) {
	cfg := DefaultHostConfig()
	cfg.CCEnabled = false
	cfg.AckEvery = 1
	n := newNet2(cfg, 10*units.Gbps, sim.Microsecond)
	acks := 0
	n.mb.hookAll = func(pkt *fabric.Packet) {
		if pkt.Type == fabric.Ack {
			acks++
		}
	}
	f := n.h1.StartFlow(1, n.h2, 100*1000)
	n.eng.Run()
	if !f.Done {
		t.Fatal("flow did not complete")
	}
	if acks != 100 {
		t.Fatalf("observed %d ACKs, want exactly 100 (one per delivery)", acks)
	}
}

// TestAckEveryOneDuplicatesReAck is the modulo-gating regression: with
// AckEvery == 1 the old `Dups % 1 == 1` condition was never true, so
// duplicates never triggered a re-ACK. Every duplicate must now re-ACK, so
// the ACK count is exactly deliveries (100) plus duplicates.
func TestAckEveryOneDuplicatesReAck(t *testing.T) {
	cfg := DefaultHostConfig()
	cfg.CCEnabled = false
	cfg.AckEvery = 1
	n := newNet2(cfg, 10*units.Gbps, sim.Microsecond)
	n.mb.hook = func(pkt *fabric.Packet) (bool, sim.Time) {
		if pkt.Seq == 10 && !pkt.Retransmitted {
			return true, 50 * sim.Microsecond
		}
		return true, 0
	}
	acks := 0
	n.mb.hookAll = func(pkt *fabric.Packet) {
		if pkt.Type == fabric.Ack {
			acks++
		}
	}
	f := n.h1.StartFlow(1, n.h2, 100*1000)
	n.eng.Run()
	if !f.Done {
		t.Fatal("flow did not complete")
	}
	if f.Dups == 0 {
		t.Fatal("scenario produced no duplicates; test is vacuous")
	}
	if want := 100 + int(f.Dups); acks != want {
		t.Fatalf("observed %d ACKs for %d dups, want %d (every duplicate re-ACKed at AckEvery=1)",
			acks, f.Dups, want)
	}
}

// TestTailAckLossRecoversWithOneRTO: when the completion ACK is lost, the
// single RTO retransmission must be re-ACKed by the done receiver so the
// sender finishes. Before the fix the receiver's Done path dropped the
// retransmission silently and the sender retried until the run limit.
func TestTailAckLossRecoversWithOneRTO(t *testing.T) {
	cfg := DefaultHostConfig()
	cfg.CCEnabled = false
	cfg.AckEvery = 1
	n := newNet2(cfg, 10*units.Gbps, sim.Microsecond)
	droppedAck := false
	n.mb.hookCtrl = func(pkt *fabric.Packet) bool {
		if pkt.Type == fabric.Ack && pkt.AckNk.Seq == 100 && !droppedAck {
			droppedAck = true
			return false
		}
		return true
	}
	f := n.h1.StartFlow(1, n.h2, 100*1000)
	n.eng.RunUntil(20 * sim.Millisecond)
	if !droppedAck {
		t.Fatal("completion ACK was never seen; test is vacuous")
	}
	if !f.Done {
		t.Fatal("flow did not complete")
	}
	if f.RTOs != 1 {
		t.Fatalf("RTOs = %d, want exactly 1 (done receiver must re-ACK the retransmission)", f.RTOs)
	}
	if f.Dups == 0 {
		t.Fatal("retransmission to a done receiver must be counted as a duplicate")
	}
	if n.eng.Pending() != 0 {
		t.Fatalf("%d events still pending at 20ms; sender never finished", n.eng.Pending())
	}
}

// TestReseqDuplicateNotRecounted is the OOD-inflation regression: a
// duplicate of an already-buffered out-of-order packet must count as a Dup,
// not re-enter the OOOPkts/MaxOOD accounting. Sequence 10 is delayed past
// the 32-packet buffer and its first retransmission dropped, so the rewind's
// copies of 11..42 arrive while those sequences are still buffered.
func TestReseqDuplicateNotRecounted(t *testing.T) {
	cfg := DefaultHostConfig()
	cfg.CCEnabled = false
	cfg.ReseqBufPkts = 32
	n := newNet2(cfg, 10*units.Gbps, sim.Microsecond)
	droppedRtx := false
	n.mb.hook = func(pkt *fabric.Packet) (bool, sim.Time) {
		if pkt.Seq == 10 && !pkt.Retransmitted {
			return true, 50 * sim.Microsecond
		}
		if pkt.Seq == 10 && pkt.Retransmitted && !droppedRtx {
			droppedRtx = true
			return false, 0
		}
		return true, 0
	}
	f := n.h1.StartFlow(1, n.h2, 100*1000)
	n.eng.Run()
	if !f.Done {
		t.Fatal("flow did not complete")
	}
	if f.Dups == 0 {
		t.Fatal("no duplicates of buffered packets arrived; test is vacuous")
	}
	// First-time out-of-order arrivals: originals 11..42 buffered (32),
	// original 43 past the buffer (NAK + discard), and originals 44..50
	// already on the wire before the rewind takes effect (7) — 40 total,
	// max degree 40. The rewind's copies of 11..42 are pure duplicates (32).
	// Re-counting buffered duplicates inflated OOOPkts to 61 before the fix.
	if f.OOOPkts != 40 {
		t.Fatalf("OOOPkts = %d, want 40 (buffered duplicates must not be re-counted)", f.OOOPkts)
	}
	if f.MaxOOD != 40 {
		t.Fatalf("MaxOOD = %d, want 40", f.MaxOOD)
	}
	if f.Dups != 32 {
		t.Fatalf("Dups = %d, want 32 (the rewind's copies of the buffered 11..42)", f.Dups)
	}
}

// TestCompletedFlowStragglerEmitsNoCNP is the post-completion CNP
// regression: a CE-marked straggler of a finished flow must not emit a CNP —
// the sender has nothing left to throttle. Before the fix maybeCNP ran ahead
// of the Done check.
func TestCompletedFlowStragglerEmitsNoCNP(t *testing.T) {
	cfg := DefaultHostConfig()
	n := newNet2(cfg, 10*units.Gbps, sim.Microsecond)
	n.mb.hook = func(pkt *fabric.Packet) (bool, sim.Time) {
		if pkt.Seq == 50 && !pkt.Retransmitted {
			pkt.CE = true
			return true, 3 * sim.Millisecond
		}
		return true, 0
	}
	f := n.h1.StartFlow(1, n.h2, 100*1000)
	n.eng.Run()
	if !f.Done {
		t.Fatal("flow did not complete")
	}
	if f.FinishAt >= 3*sim.Millisecond {
		t.Fatalf("flow finished at %v; the straggler was not post-completion and the test is vacuous", f.FinishAt)
	}
	if f.CNPsSent != 0 {
		t.Fatalf("CNPsSent = %d, want 0 (straggler of a done flow must not emit CNPs)", f.CNPsSent)
	}
	if f.Dups == 0 {
		t.Fatal("post-completion straggler must be counted as a duplicate")
	}
}

// TestLostNakRecoveredByRTO: a dropped data frame whose NAK is also lost
// (NAKs are sent once per gap) leaves the sender with no feedback; the RTO
// must rewind and recover the flow.
func TestLostNakRecoveredByRTO(t *testing.T) {
	cfg := DefaultHostConfig()
	cfg.CCEnabled = false
	n := newNet2(cfg, 10*units.Gbps, sim.Microsecond)
	droppedData, droppedNak := false, false
	n.mb.hook = func(pkt *fabric.Packet) (bool, sim.Time) {
		if pkt.Seq == 10 && !droppedData {
			droppedData = true
			return false, 0
		}
		return true, 0
	}
	n.mb.hookCtrl = func(pkt *fabric.Packet) bool {
		if pkt.Type == fabric.Nak && !droppedNak {
			droppedNak = true
			return false
		}
		return true
	}
	f := n.h1.StartFlow(1, n.h2, 100*1000)
	n.eng.Run()
	if !droppedNak {
		t.Fatal("no NAK was dropped; test is vacuous")
	}
	if !f.Done {
		t.Fatal("flow did not recover from the lost NAK")
	}
	if f.RTOs != 1 {
		t.Fatalf("RTOs = %d, want 1", f.RTOs)
	}
	if f.Retrans == 0 || f.Dups == 0 {
		t.Fatalf("rewind should retransmit past delivered data: retrans=%d dups=%d", f.Retrans, f.Dups)
	}
}

// TestDupAccountingAcrossModes pins the duplicate/OOO bookkeeping invariants
// in all three receiver modes under the same reordering disturbance.
func TestDupAccountingAcrossModes(t *testing.T) {
	cases := []struct {
		name string
		cfg  func(*HostConfig)
		// delay applied to the original copy of sequence 10
		delay sim.Time
		check func(t *testing.T, f *Flow)
	}{
		{
			name:  "go-back-n",
			cfg:   func(c *HostConfig) {},
			delay: 50 * sim.Microsecond,
			check: func(t *testing.T, f *Flow) {
				// Every received frame is delivered, discarded OOO, or a dup.
				if f.PktsRcvd != uint64(f.NumPkts)+f.OOOPkts+f.Dups {
					t.Fatalf("PktsRcvd=%d != NumPkts+OOOPkts+Dups=%d",
						f.PktsRcvd, uint64(f.NumPkts)+f.OOOPkts+f.Dups)
				}
				if f.Dups == 0 {
					t.Fatal("delayed original must arrive as a duplicate")
				}
			},
		},
		{
			name:  "reseq-buffer",
			cfg:   func(c *HostConfig) { c.ReseqBufPkts = 64 },
			delay: 10 * sim.Microsecond,
			check: func(t *testing.T, f *Flow) {
				// Reordering within the buffer: no retransmission, no dups,
				// every frame delivered exactly once.
				if f.Retrans != 0 || f.Dups != 0 {
					t.Fatalf("buffered reordering caused retrans=%d dups=%d", f.Retrans, f.Dups)
				}
				if f.PktsRcvd != uint64(f.NumPkts) {
					t.Fatalf("PktsRcvd=%d, want %d", f.PktsRcvd, f.NumPkts)
				}
				if f.OOOPkts == 0 {
					t.Fatal("OOO arrivals should still be observed")
				}
			},
		},
		{
			name:  "selective-repeat",
			cfg:   func(c *HostConfig) { c.SelectiveRepeat = true },
			delay: 50 * sim.Microsecond,
			check: func(t *testing.T, f *Flow) {
				// IRN retransmits only the missing packet; the delayed
				// original is the one duplicate.
				if f.Retrans != 1 {
					t.Fatalf("Retrans=%d, want 1 (only the NAKed packet)", f.Retrans)
				}
				if f.Dups != 1 {
					t.Fatalf("Dups=%d, want 1 (the delayed original)", f.Dups)
				}
				if f.PktsRcvd != uint64(f.NumPkts)+f.Dups {
					t.Fatalf("PktsRcvd=%d != NumPkts+Dups=%d", f.PktsRcvd, uint64(f.NumPkts)+f.Dups)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultHostConfig()
			cfg.CCEnabled = false
			tc.cfg(&cfg)
			n := newNet2(cfg, 10*units.Gbps, sim.Microsecond)
			n.mb.hook = func(pkt *fabric.Packet) (bool, sim.Time) {
				if pkt.Seq == 10 && !pkt.Retransmitted {
					return true, tc.delay
				}
				return true, 0
			}
			f := n.h1.StartFlow(1, n.h2, 100*1000)
			n.eng.Run()
			if !f.Done {
				t.Fatal("flow did not complete")
			}
			if f.OOOPkts == 0 {
				t.Fatal("disturbance produced no OOO arrivals; test is vacuous")
			}
			tc.check(t, f)
		})
	}
}
