package transport

import (
	"github.com/rlb-project/rlb/internal/fabric"
	"github.com/rlb-project/rlb/internal/flatmap"
	"github.com/rlb-project/rlb/internal/sim"
)

// receiver enforces in-order delivery for one flow. With ReseqBufPkts == 0 it
// is the go-back-N NIC of the paper: an out-of-order frame is discarded, the
// expected sequence is NAKed (once per gap), and the sender rewinds. A
// non-zero resequencing buffer instead absorbs bounded reordering at the
// edge (Presto's shim), still NAKing when the buffer cannot cover the gap.
type receiver struct {
	h *Host
	f *Flow

	expected uint32
	// lastNakFor suppresses duplicate NAKs for the same gap.
	lastNakFor uint32
	lastCNPAt  sim.Time

	// reseq buffers out-of-order sequence numbers in a flat table;
	// useReseq gates the resequencing modes (pure go-back-N keeps it off).
	reseq    flatmap.U32[struct{}]
	useReseq bool
}

func newReceiver(h *Host, f *Flow) *receiver {
	r := &receiver{h: h, f: f, lastNakFor: ^uint32(0), lastCNPAt: -sim.Second}
	r.useReseq = h.Cfg.ReseqBufPkts > 0 || h.Cfg.SelectiveRepeat
	return r
}

func (r *receiver) onData(pkt *fabric.Packet) {
	f := r.f
	f.PktsRcvd++
	if f.Done {
		// Straggler or retransmission of a completed flow: re-ACK so a
		// sender whose completion ACK was lost can finish instead of
		// spinning on RTO, and never emit a CNP — throttling a sender with
		// nothing left to send only delays its other flows.
		f.Dups++
		r.h.sendControl(fabric.Ack, f.ID, f.Src, r.expected)
		return
	}
	if pkt.CE {
		r.maybeCNP()
	}
	seq := pkt.Seq
	switch {
	case seq == r.expected:
		r.advance()
	case seq > r.expected:
		// A duplicate of an already-buffered arrival is not new reordering:
		// counting it into OOOPkts/MaxOOD would inflate the paper's OOD
		// metrics with retransmission artifacts.
		if r.useReseq && r.reseq.Has(seq) {
			f.Dups++
			return
		}
		ood := seq - r.expected
		f.OOOPkts++
		if ood > f.MaxOOD {
			f.MaxOOD = ood
		}
		if r.h.OODHook != nil {
			r.h.OODHook(f, ood)
		}
		if r.h.Cfg.SelectiveRepeat {
			// IRN: keep the arrival, request only the missing packet.
			r.reseq.Put(seq, struct{}{})
			if r.lastNakFor != r.expected {
				r.lastNakFor = r.expected
				r.h.sendControl(fabric.Nak, f.ID, f.Src, r.expected)
			}
			return
		}
		if r.useReseq && ood <= r.h.Cfg.ReseqBufPkts {
			r.reseq.Put(seq, struct{}{})
			return
		}
		// Go-back-N: discard and ask for the expected sequence, once per gap.
		if r.lastNakFor != r.expected {
			r.lastNakFor = r.expected
			r.h.sendControl(fabric.Nak, f.ID, f.Src, r.expected)
		}
	default:
		// Duplicate from a rewind whose original eventually arrived; re-ACK
		// (on the first duplicate, then every AckEvery-th) so the sender's
		// cumulative state advances even when AckEvery == 1.
		f.Dups++
		if (f.Dups-1)%uint64(r.h.Cfg.AckEvery) == 0 {
			r.h.sendControl(fabric.Ack, f.ID, f.Src, r.expected)
		}
	}
}

// advance consumes the expected frame and any buffered successors, emitting
// coalesced ACKs and detecting completion.
func (r *receiver) advance() {
	f := r.f
	r.h.Cfg.Checker.Delivered(r.h.Eng.Now(), f.ID, r.expected)
	r.expected++
	for r.useReseq && r.reseq.Delete(r.expected) {
		r.h.Cfg.Checker.Delivered(r.h.Eng.Now(), f.ID, r.expected)
		r.expected++
	}
	if r.expected >= f.NumPkts {
		f.Done = true
		f.FinishAt = r.h.Eng.Now()
		r.h.sendControl(fabric.Ack, f.ID, f.Src, r.expected)
		if r.h.OnFlowDone != nil {
			r.h.OnFlowDone(f)
		}
		return
	}
	if r.expected%r.h.Cfg.AckEvery == 0 {
		r.h.sendControl(fabric.Ack, f.ID, f.Src, r.expected)
	}
}

// maybeCNP emits a DCQCN congestion notification, rate-limited per flow.
func (r *receiver) maybeCNP() {
	now := r.h.Eng.Now()
	if now-r.lastCNPAt < r.h.Cfg.CC.CNPInterval {
		return
	}
	r.lastCNPAt = now
	r.f.CNPsSent++
	r.h.sendControl(fabric.CNP, r.f.ID, r.f.Src, 0)
}
