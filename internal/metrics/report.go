package metrics

import (
	"fmt"

	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/transport"
)

// FlowReport aggregates transport-level results over a set of flows, the raw
// material for every figure in the paper.
type FlowReport struct {
	Flows      int
	Completed  int
	FCT        Digest // milliseconds, completed flows
	SmallFCT   Digest // flows < SmallCutoff
	LargeFCT   Digest
	OOD        Digest // out-of-order degrees (packets), one sample per OOO arrival via hook or MaxOOD fallback
	TotalRcvd  uint64
	TotalOOO   uint64
	TotalSent  uint64
	TotalRetx  uint64
	TotalBytes int64 // payload bytes of completed flows
}

// SmallCutoff separates small from large flows in per-class FCT stats.
const SmallCutoff = 100 * 1000

// BuildFlowReport summarizes flows; incomplete flows count toward Flows but
// contribute no FCT samples.
func BuildFlowReport(flows []*transport.Flow) *FlowReport {
	r := &FlowReport{}
	r.FCT.Reserve(len(flows))
	r.OOD.Reserve(len(flows))
	for _, f := range flows {
		r.Flows++
		r.TotalRcvd += f.PktsRcvd
		r.TotalOOO += f.OOOPkts
		r.TotalSent += f.PktsSent
		r.TotalRetx += f.Retrans
		if f.MaxOOD > 0 {
			r.OOD.Add(float64(f.MaxOOD))
		}
		if !f.Done {
			continue
		}
		r.Completed++
		r.TotalBytes += int64(f.Size)
		fct := f.FCT().Millis()
		r.FCT.Add(fct)
		if f.Size < SmallCutoff {
			r.SmallFCT.Add(fct)
		} else {
			r.LargeFCT.Add(fct)
		}
	}
	return r
}

// OOORatio returns the fraction of received data frames that arrived out of
// order (the paper's "out-of-order packets (%)" metric).
func (r *FlowReport) OOORatio() float64 {
	if r.TotalRcvd == 0 {
		return 0
	}
	return float64(r.TotalOOO) / float64(r.TotalRcvd)
}

// RetxRatio returns the fraction of transmissions that were go-back-N
// retransmissions.
func (r *FlowReport) RetxRatio() float64 {
	if r.TotalSent == 0 {
		return 0
	}
	return float64(r.TotalRetx) / float64(r.TotalSent)
}

// AvgFCTms returns the mean FCT in milliseconds.
func (r *FlowReport) AvgFCTms() float64 { return r.FCT.Mean() }

// TailFCTms returns the 99th-percentile FCT in milliseconds.
func (r *FlowReport) TailFCTms() float64 { return r.FCT.Percentile(99) }

// String formats the headline numbers.
func (r *FlowReport) String() string {
	return fmt.Sprintf("flows=%d done=%d afct=%.3fms p99=%.3fms ooo=%.2f%% retx=%.2f%%",
		r.Flows, r.Completed, r.AvgFCTms(), r.TailFCTms(), 100*r.OOORatio(), 100*r.RetxRatio())
}

// PauseRate converts a PAUSE-frame count over a duration into frames/ms, the
// unit used in Fig. 3(a).
func PauseRate(pauseFrames uint64, dur sim.Time) float64 {
	if dur <= 0 {
		return 0
	}
	return float64(pauseFrames) / dur.Millis()
}
