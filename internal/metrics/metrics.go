// Package metrics provides the statistics used throughout the paper's
// evaluation: flow-completion-time digests with percentiles and CDFs,
// out-of-order degree distributions, and pause/reordering rate helpers.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"github.com/rlb-project/rlb/internal/sim"
)

// Digest accumulates float64 samples and answers mean/percentile/CDF
// queries. It keeps all samples (simulations produce at most a few hundred
// thousand flows), sorting lazily. A running sum makes Mean O(1): it adds
// samples in insertion order, exactly as the former on-demand loop did
// before any sort, so mean values are bit-identical on the usual
// mean-then-percentiles query order.
type Digest struct {
	samples []float64
	sum     float64
	sorted  bool
}

// Reserve preallocates room for n further samples — an optional size hint
// for callers that know the flow count up front.
func (d *Digest) Reserve(n int) {
	if need := len(d.samples) + n; need > cap(d.samples) {
		grown := make([]float64, len(d.samples), need)
		copy(grown, d.samples)
		d.samples = grown
	}
}

// Add appends one sample.
func (d *Digest) Add(v float64) {
	d.samples = append(d.samples, v)
	d.sum += v
	d.sorted = false
}

// AddTime appends a sim.Time sample in milliseconds.
func (d *Digest) AddTime(t sim.Time) { d.Add(t.Millis()) }

// Count returns the number of samples.
func (d *Digest) Count() int { return len(d.samples) }

// Mean returns the sample mean (0 with no samples) from the running sum.
func (d *Digest) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	return d.sum / float64(len(d.samples))
}

func (d *Digest) sort() {
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks; 0 with no samples.
func (d *Digest) Percentile(p float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.sort()
	if p <= 0 {
		return d.samples[0]
	}
	if p >= 100 {
		return d.samples[len(d.samples)-1]
	}
	rank := p / 100 * float64(len(d.samples)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return d.samples[lo]
	}
	frac := rank - float64(lo)
	return d.samples[lo]*(1-frac) + d.samples[hi]*frac
}

// Min returns the smallest sample.
func (d *Digest) Min() float64 { return d.Percentile(0) }

// Max returns the largest sample.
func (d *Digest) Max() float64 { return d.Percentile(100) }

// CDFPoint is one (value, cumulative fraction) pair.
type CDFPoint struct {
	X float64
	P float64
}

// CDF returns n evenly spaced points of the empirical CDF.
func (d *Digest) CDF(n int) []CDFPoint {
	if len(d.samples) == 0 || n <= 0 {
		return nil
	}
	d.sort()
	pts := make([]CDFPoint, 0, n)
	for i := 0; i < n; i++ {
		frac := float64(i+1) / float64(n)
		idx := int(frac*float64(len(d.samples))) - 1
		if idx < 0 {
			idx = 0
		}
		pts = append(pts, CDFPoint{X: d.samples[idx], P: frac})
	}
	return pts
}

// Summary formats count/mean/p50/p99/max on one line.
func (d *Digest) Summary(unit string) string {
	return fmt.Sprintf("n=%d mean=%.4g%s p50=%.4g%s p99=%.4g%s max=%.4g%s",
		d.Count(), d.Mean(), unit, d.Percentile(50), unit, d.Percentile(99), unit, d.Max(), unit)
}
