package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/rlb-project/rlb/internal/sim"
	"github.com/rlb-project/rlb/internal/transport"
)

func TestDigestEmpty(t *testing.T) {
	var d Digest
	if d.Mean() != 0 || d.Percentile(50) != 0 || d.Count() != 0 {
		t.Fatal("empty digest should return zeros")
	}
	if d.CDF(10) != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestDigestMeanAndPercentiles(t *testing.T) {
	var d Digest
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	if got := d.Mean(); got != 50.5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := d.Percentile(0); got != 1 {
		t.Fatalf("P0 = %v", got)
	}
	if got := d.Percentile(100); got != 100 {
		t.Fatalf("P100 = %v", got)
	}
	p50 := d.Percentile(50)
	if p50 < 50 || p50 > 51 {
		t.Fatalf("P50 = %v", p50)
	}
	p99 := d.Percentile(99)
	if p99 < 99 || p99 > 100 {
		t.Fatalf("P99 = %v", p99)
	}
}

// TestDigestRunningSumMatchesNaive pins the O(1) Mean to the naive
// insertion-order loop it replaced: same values, same addition order, so
// the result must be bit-identical, including after interleaved sorts
// (Percentile reorders samples but must not perturb the running sum).
func TestDigestRunningSumMatchesNaive(t *testing.T) {
	prop := func(raw []float64, sortAfter uint8) bool {
		var d Digest
		sum := 0.0
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = float64(i)
			}
			d.Add(v)
			sum += v
			if int(sortAfter)%(len(raw)+1) == i {
				_ = d.Percentile(50)
			}
		}
		if len(raw) == 0 {
			return d.Mean() == 0
		}
		return d.Mean() == sum/float64(len(raw))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestDigestReserve checks the size hint preallocates without changing
// observable state, and that adding past the hint still works.
func TestDigestReserve(t *testing.T) {
	var d Digest
	d.Reserve(100)
	if d.Count() != 0 || d.Mean() != 0 {
		t.Fatal("Reserve changed observable state")
	}
	if cap(d.samples) < 100 {
		t.Fatalf("Reserve(100) gave cap %d", cap(d.samples))
	}
	base := &d.samples[:1][0]
	for i := 0; i < 150; i++ {
		d.Add(float64(i))
		if i < 100 && &d.samples[0] != base {
			t.Fatal("Add within reserved capacity reallocated")
		}
	}
	if d.Count() != 150 || d.Mean() != 74.5 {
		t.Fatalf("after adds: n=%d mean=%v", d.Count(), d.Mean())
	}
}

func TestDigestInterleavedAddAndQuery(t *testing.T) {
	var d Digest
	d.Add(5)
	_ = d.Percentile(50)
	d.Add(1) // must invalidate sort
	if got := d.Min(); got != 1 {
		t.Fatalf("Min after re-add = %v", got)
	}
}

func TestDigestPercentileProperty(t *testing.T) {
	prop := func(raw []float64, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		var d Digest
		for _, v := range raw {
			d.Add(v)
		}
		p := float64(pRaw) / 255 * 100
		got := d.Percentile(p)
		s := append([]float64(nil), raw...)
		sort.Float64s(s)
		return got >= s[0] && got <= s[len(s)-1]
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDigestPercentileMonotone(t *testing.T) {
	var d Digest
	for i := 0; i < 1000; i++ {
		d.Add(float64(i * i % 997))
	}
	prev := d.Percentile(0)
	for p := 1.0; p <= 100; p++ {
		cur := d.Percentile(p)
		if cur < prev {
			t.Fatalf("percentiles not monotone at %v: %v < %v", p, cur, prev)
		}
		prev = cur
	}
}

func TestCDFShape(t *testing.T) {
	var d Digest
	for i := 1; i <= 1000; i++ {
		d.Add(float64(i))
	}
	cdf := d.CDF(10)
	if len(cdf) != 10 {
		t.Fatalf("CDF points = %d", len(cdf))
	}
	if cdf[9].P != 1.0 || cdf[9].X != 1000 {
		t.Fatalf("last point = %+v", cdf[9])
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].X < cdf[i-1].X || cdf[i].P <= cdf[i-1].P {
			t.Fatalf("CDF not monotone at %d", i)
		}
	}
}

func TestAddTime(t *testing.T) {
	var d Digest
	d.AddTime(2500 * sim.Microsecond)
	if got := d.Mean(); got != 2.5 {
		t.Fatalf("AddTime stored %v ms, want 2.5", got)
	}
}

func TestSummaryFormats(t *testing.T) {
	var d Digest
	d.Add(1)
	s := d.Summary("ms")
	if s == "" {
		t.Fatal("empty summary")
	}
}

func makeFlow(size int, done bool, fct sim.Time, ooo, rcvd, sent, retx uint64, maxOOD uint32) *transport.Flow {
	f := &transport.Flow{ID: 1, Size: size, Done: done, OOOPkts: ooo, PktsRcvd: rcvd, PktsSent: sent, Retrans: retx, MaxOOD: maxOOD}
	f.StartAt = 0
	f.FinishAt = fct
	return f
}

func TestBuildFlowReport(t *testing.T) {
	flows := []*transport.Flow{
		makeFlow(50*1000, true, 1*sim.Millisecond, 2, 100, 110, 10, 5),
		makeFlow(500*1000, true, 4*sim.Millisecond, 0, 500, 500, 0, 0),
		makeFlow(200*1000, false, 0, 1, 50, 60, 5, 3),
	}
	r := BuildFlowReport(flows)
	if r.Flows != 3 || r.Completed != 2 {
		t.Fatalf("flows=%d completed=%d", r.Flows, r.Completed)
	}
	if r.FCT.Count() != 2 {
		t.Fatalf("FCT samples = %d", r.FCT.Count())
	}
	if r.SmallFCT.Count() != 1 || r.LargeFCT.Count() != 1 {
		t.Fatal("size-class split wrong")
	}
	if got := r.OOORatio(); math.Abs(got-3.0/650.0) > 1e-9 {
		t.Fatalf("OOORatio = %v", got)
	}
	if got := r.RetxRatio(); math.Abs(got-15.0/670.0) > 1e-9 {
		t.Fatalf("RetxRatio = %v", got)
	}
	if r.OOD.Count() != 2 { // flows with MaxOOD > 0
		t.Fatalf("OOD samples = %d", r.OOD.Count())
	}
	if r.TotalBytes != 550*1000 {
		t.Fatalf("TotalBytes = %d", r.TotalBytes)
	}
}

func TestReportEmptyDivisions(t *testing.T) {
	r := BuildFlowReport(nil)
	if r.OOORatio() != 0 || r.RetxRatio() != 0 {
		t.Fatal("empty report ratios should be 0")
	}
	_ = r.String()
}

func TestPauseRate(t *testing.T) {
	if got := PauseRate(500, 10*sim.Millisecond); got != 50 {
		t.Fatalf("PauseRate = %v, want 50/ms", got)
	}
	if PauseRate(5, 0) != 0 {
		t.Fatal("zero duration should give 0")
	}
}
