#!/usr/bin/env sh
# CI gate for the RLB simulator. Runs the tiers in fail-fast order:
#
#   1. build       — everything compiles
#   2. lint        — go vet + simlint (determinism / poolcheck / timercheck /
#                    unitsafe / hotpath / exhaustive; see TESTING.md "Static
#                    analysis tier"). Findings are also captured as a JSON
#                    Lines artifact (simlint.jsonl under $CI_ARTIFACT_DIR,
#                    default artifacts/) for tooling, even when the tier
#                    fails.
#   3. race smoke  — -race -short over the simulator internals
#   4. full suite  — bench-smoke perf gate + all tests incl. golden figures
#   5. spec verify — canonical-spec contracts: byte-stable JSON round trips,
#                    compiler/Scale threshold agreement, figure-grid golden,
#                    committed corpus + repro fixture decode (TESTING.md
#                    "Spec round-trip tier")
#   6. telemetry   — observation-only contract: fingerprints bit-identical
#                    with sampling on/off, JSONL golden byte-stable, sampler
#                    tick allocation-free (TESTING.md "Telemetry tier")
#   7. fuzz smoke  — metamorphic scenario sweep + seeded-breach meta-test +
#                    time-boxed mutating fuzz over the committed corpus
#   8. bench gate  — figure/scale events/sec vs the committed BENCH_PR10.json
#                    (±10%), on by default; RLB_BENCH_GATE=0 opts out. The
#                    committed record is copied next to simlint.jsonl as an
#                    artifact.
#
# Each tier only runs if the previous one passed, so a compile error is not
# buried under lint output and a lint finding is not buried under test logs.
set -eu

cd "$(dirname "$0")/.."

GO=${GO:-go}

echo "==> build"
"$GO" build ./...

echo "==> lint (vet + simlint)"
"$GO" vet ./...
# Run simlint twice: the human-readable gate, plus a machine-readable JSON
# Lines artifact. The JSON run goes first and is allowed to "fail" (findings
# exit 1) so the artifact exists even when the gate below stops CI.
ARTIFACT_DIR=${CI_ARTIFACT_DIR:-artifacts}
mkdir -p "$ARTIFACT_DIR"
"$GO" run ./cmd/simlint -json ./... > "$ARTIFACT_DIR/simlint.jsonl" || true
echo "    simlint findings artifact: $ARTIFACT_DIR/simlint.jsonl"
"$GO" run ./cmd/simlint ./...

echo "==> race smoke (-race -short)"
"$GO" test -race -short ./internal/...

# The lint and race tiers above already ran, so invoke the remaining
# `make test` pieces directly instead of re-running them through make.
echo "==> full suite (perf smoke + tests + golden figures)"
make bench-smoke
"$GO" test ./...

# The spec tests also ran inside `go test ./...`; the dedicated tier re-runs
# them uncached (-count=1) so a cached pass can never mask a drifted golden
# or corpus file, and so the tier is meaningful standalone.
echo "==> spec verify (round trips, compiler math, grid golden, corpus)"
make spec-verify

# The telemetry tests also ran inside `go test ./...`; the dedicated tier
# re-runs them uncached so a cached pass can never mask a drifted telemetry
# golden, a fingerprint divergence, or a sampler tick that started allocating.
echo "==> telemetry verify (on/off parity, JSONL golden, zero-alloc tick)"
make telemetry-verify

# The deterministic halves of the fuzz tier (sweep + meta-test) already ran
# inside `go test ./...`; re-running them here is cheap and keeps the tier
# self-contained when invoked standalone. The -fuzztime bound keeps the
# mutating half deterministic in duration, not in coverage — real fuzzing
# sessions use `make fuzz`.
echo "==> fuzz smoke (metamorphic sweep + seeded breach + 20s mutation)"
make fuzz-smoke

# Perf regression gate: events/sec vs the committed BENCH_PR10.json (±10%),
# on by default now that the data plane is gated on staying map- and
# allocation-free. Wall-clock sensitive — set RLB_BENCH_GATE=0 to opt out on
# a noisy machine or one that does not match where the record was captured.
# The committed record ships as an artifact next to simlint.jsonl either way.
cp BENCH_PR10.json "$ARTIFACT_DIR/BENCH_PR10.json"
echo "    bench record artifact: $ARTIFACT_DIR/BENCH_PR10.json"
if [ "${RLB_BENCH_GATE:-1}" = "1" ]; then
	echo "==> bench gate (events/sec vs BENCH_PR10.json)"
	make bench-gate
fi

echo "==> ci passed"
