// Benchmarks that regenerate each figure of the paper's evaluation section.
// One benchmark per figure; `go test -bench=Fig -benchtime=1x` prints every
// table once. The scale is reduced (see harness.BenchScale and DESIGN.md
// substitution 4); run `cmd/figures -scale paper` for full-size fabrics.
package rlb_test

import (
	"testing"

	"github.com/rlb-project/rlb/internal/harness"
)

// benchSeed keeps benchmark runs comparable across invocations.
const benchSeed = 7

func logTable(b *testing.B, i int, tables ...*harness.Table) {
	if i != 0 {
		return
	}
	for _, t := range tables {
		b.Log("\n" + t.String())
	}
}

// reportEvents attaches simulator throughput (engine events dispatched per
// wall-clock second) to a figure benchmark. Call as
// `defer reportEvents(b, harness.TotalEvents())` before the loop.
func reportEvents(b *testing.B, start uint64) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(harness.TotalEvents()-start)/s, "events/sec")
	}
}

func BenchmarkFig3MotivationPFC(b *testing.B) {
	defer reportEvents(b, harness.TotalEvents())
	for i := 0; i < b.N; i++ {
		logTable(b, i, harness.Fig3(harness.BenchScale, benchSeed))
	}
}

func BenchmarkFig4aAffectedPaths(b *testing.B) {
	defer reportEvents(b, harness.TotalEvents())
	for i := 0; i < b.N; i++ {
		logTable(b, i, harness.Fig4Paths(harness.BenchScale, benchSeed))
	}
}

func BenchmarkFig4bContinuousBursts(b *testing.B) {
	defer reportEvents(b, harness.TotalEvents())
	for i := 0; i < b.N; i++ {
		logTable(b, i, harness.Fig4Bursts(harness.BenchScale, benchSeed))
	}
}

func BenchmarkFig6FCTCDFSymmetric(b *testing.B) {
	defer reportEvents(b, harness.TotalEvents())
	for i := 0; i < b.N; i++ {
		logTable(b, i, harness.Fig6(harness.BenchScale, benchSeed))
	}
}

func BenchmarkFig7AsymmetricLoadSweep(b *testing.B) {
	defer reportEvents(b, harness.TotalEvents())
	for i := 0; i < b.N; i++ {
		logTable(b, i, harness.Fig7(harness.BenchScale, benchSeed)...)
	}
}

func BenchmarkFig8aIncastDegree(b *testing.B) {
	defer reportEvents(b, harness.TotalEvents())
	for i := 0; i < b.N; i++ {
		logTable(b, i, harness.Fig8Degree(harness.BenchScale, benchSeed))
	}
}

func BenchmarkFig8bIncastResponseSize(b *testing.B) {
	defer reportEvents(b, harness.TotalEvents())
	for i := 0; i < b.N; i++ {
		logTable(b, i, harness.Fig8Size(harness.BenchScale, benchSeed))
	}
}

func BenchmarkFig9RecirculationAblation(b *testing.B) {
	defer reportEvents(b, harness.TotalEvents())
	for i := 0; i < b.N; i++ {
		logTable(b, i, harness.Fig9(harness.BenchScale, benchSeed)...)
	}
}

func BenchmarkFig10aQthSensitivity(b *testing.B) {
	defer reportEvents(b, harness.TotalEvents())
	for i := 0; i < b.N; i++ {
		logTable(b, i, harness.Fig10Qth(harness.BenchScale, benchSeed))
	}
}

func BenchmarkFig10bDeltaTSensitivity(b *testing.B) {
	defer reportEvents(b, harness.TotalEvents())
	for i := 0; i < b.N; i++ {
		logTable(b, i, harness.Fig10DeltaT(harness.BenchScale, benchSeed))
	}
}

// The Scale* benchmarks are the large-topology tier: one 8×8/8-fabric
// simulation per iteration at harness.ScaleTier, an order of magnitude more
// hosts and links than BenchScale. They measure raw engine throughput where
// scheduler cost dominates; BENCH_PR4.json tracks their events/sec.
func BenchmarkScaleFabricDrillRLB(b *testing.B) {
	defer reportEvents(b, harness.TotalEvents())
	for i := 0; i < b.N; i++ {
		harness.ScaleThroughput(harness.ScaleTier, "drill+rlb", benchSeed)
	}
}

func BenchmarkScaleFabricECMP(b *testing.B) {
	defer reportEvents(b, harness.TotalEvents())
	for i := 0; i < b.N; i++ {
		harness.ScaleThroughput(harness.ScaleTier, "ecmp", benchSeed)
	}
}

func BenchmarkExtIRNComparison(b *testing.B) {
	defer reportEvents(b, harness.TotalEvents())
	for i := 0; i < b.N; i++ {
		logTable(b, i, harness.ExtIRN(harness.BenchScale, benchSeed))
	}
}
